//! Integration: the deterministic simulation harness's own contract.
//!
//! Three acceptance properties from the torture-harness design: (1) the
//! same seed yields a byte-for-byte identical event trace and final
//! metrics snapshot across runs, (2) a bounded smoke sweep keeps every
//! invariant oracle green, and (3) a planted corruption is caught by the
//! byte oracle and shrinks to a reproducer that names the seed.

use edgecache_simtest::scenario::Profile;
use edgecache_simtest::{render_repro, run_scenario, shrink, Scenario};

#[test]
fn same_seed_is_byte_for_byte_reproducible() {
    // Seed 9 is a torture/Local scenario that crosses crash-restart
    // epochs — the hardest case for determinism, since the trace spans
    // several process lifetimes over one directory.
    for (seed, profile) in [(1, Profile::Smoke), (9, Profile::Torture)] {
        let sc = Scenario::generate(seed, profile);
        let first = run_scenario(&sc);
        let second = run_scenario(&sc);
        assert!(first.ok(), "seed {seed}: {:#?}", first.violations);
        assert_eq!(
            first.trace, second.trace,
            "seed {seed}: event traces diverged"
        );
        assert_eq!(first.trace_hash, second.trace_hash);
        assert_eq!(
            first.final_metrics_json, second.final_metrics_json,
            "seed {seed}: final metrics snapshots diverged"
        );
    }
}

#[test]
fn smoke_sweep_keeps_oracles_green() {
    for seed in 0..16u64 {
        let sc = Scenario::generate(seed, Profile::Smoke);
        let report = run_scenario(&sc);
        assert!(
            report.ok(),
            "seed {seed} violated an oracle: {:#?}",
            report.violations
        );
    }
}

#[test]
fn planted_corruption_shrinks_to_a_reproducer_naming_the_seed() {
    // Sabotage the remote: after three requests it silently flips the
    // first byte of every response. The byte oracle must catch it, and
    // the minimizer must produce a still-failing, smaller scenario.
    let mut sc = Scenario::generate(0, Profile::Smoke);
    sc.sabotage_after = Some(3);
    let report = run_scenario(&sc);
    assert!(
        report.violations.iter().any(|v| v.kind == "byte-mismatch"),
        "sabotage must trip the byte oracle: {:#?}",
        report.violations
    );

    let shrunk = shrink(&sc, 200);
    assert!(
        !run_scenario(&shrunk.scenario).violations.is_empty(),
        "shrunk scenario must still fail"
    );
    assert!(
        shrunk.scenario.ops.len() <= sc.ops.len() && shrunk.ops.1 < shrunk.ops.0,
        "shrinking made no progress: {:?}",
        shrunk.ops
    );
    let repro = render_repro(&shrunk.scenario);
    assert!(repro.contains("seed: 0"), "reproducer must name the seed");
    assert!(repro.contains("run_scenario"), "{repro}");
}
