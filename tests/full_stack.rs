//! Integration: the complete Figure 6 architecture in one test — a
//! Presto-like engine whose workers carry local caches, reading through a
//! distributed cache tier, which reads from the object-store data lake.

use std::sync::Arc;

use edgecache::common::clock::SimClock;
use edgecache::common::ByteSize;
use edgecache::distcache::{DistCacheTier, TierConfig, WorkerCacheConfig};
use edgecache::olap::{AggExpr, Engine, EngineConfig, QueryPlan, WorkerConfig};
use edgecache::workload::tpcds::{TpcdsGen, TpcdsScale};

#[test]
fn three_layer_stack_serves_queries_correctly() {
    let clock = SimClock::new();
    let gen = TpcdsGen::new(TpcdsScale::tiny(), 21);
    let (catalog, lake) = gen.build_fresh(Arc::new(clock.clone())).unwrap();

    // The distributed cache tier over the lake, with every table file
    // registered (the catalog's knowledge).
    let tier = Arc::new(
        DistCacheTier::new(
            TierConfig {
                workers: 3,
                max_replicas: 2,
                worker: WorkerCacheConfig {
                    cache_capacity: ByteSize::mib(256).as_u64(),
                    page_size: ByteSize::kib(64),
                    ..Default::default()
                },
                ..Default::default()
            },
            lake.clone(),
            Arc::new(clock.clone()),
        )
        .unwrap(),
    );
    for (schema, table) in catalog.table_names() {
        let def = catalog.table(&schema, &table).unwrap();
        for (_, file) in def.files() {
            tier.register_file(&file.path, file.version, file.length);
        }
    }

    // The engine's remote is the TIER, not the lake.
    let engine = Engine::new(
        Arc::clone(&catalog),
        tier.clone(),
        EngineConfig {
            workers: 2,
            worker: WorkerConfig {
                cache_capacity: ByteSize::mib(8).as_u64(),
                page_size: ByteSize::kib(16),
                ..Default::default()
            },
            ..Default::default()
        },
        Arc::new(clock),
    )
    .unwrap();

    // Correctness through three layers, including a join.
    let q1 = QueryPlan::scan("tpcds", "store_sales", &[]).aggregate(vec![AggExpr::count()]);
    let r1 = engine.execute(&q1).unwrap();
    assert_eq!(r1.rows.len(), 1);
    let q2 = gen.query(13); // A join template.
    let cold = engine.execute(&q2).unwrap();
    let warm = engine.execute(&q2).unwrap();
    assert_eq!(cold.rows, warm.rows);

    // Layering: the tier served compute misses; the lake was touched only
    // by tier misses; once both layers are warm, the lake goes quiet.
    assert!(tier.stats().served_by_tier > 0);
    let lake_requests = lake.request_count();
    engine.execute(&q1).unwrap();
    engine.execute(&q2).unwrap();
    assert_eq!(
        lake.request_count(),
        lake_requests,
        "warm stack bypasses the lake"
    );
    assert!(tier.stats().bytes_cached > 0);
}
