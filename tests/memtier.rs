//! Integration: the three-level hierarchy (DRAM → SSD → remote) end to end
//! over a real disk-backed store. Publishes land in memory, pressure demotes
//! frames to SSD instead of dropping them, SSD hits promote back, pins
//! outrank pressure, and a process restart recovers the SSD tier while DRAM
//! starts empty — all without the conservation books ever going out of
//! balance.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use bytes::Bytes;
use edgecache::common::ByteSize;
use edgecache::core::config::CacheConfig;
use edgecache::core::manager::{CacheManager, RemoteSource, SourceFile};
use edgecache::pagestore::{CacheScope, LocalPageStore, LocalStoreConfig};
use parking_lot::Mutex;

const PAGE: u64 = 4 << 10;
const PAGES: u64 = 8;

struct CountingRemote {
    data: Vec<u8>,
    reads: Mutex<u64>,
}

impl CountingRemote {
    fn new() -> Self {
        Self {
            data: (0..(PAGES * PAGE) as usize)
                .map(|i| (i % 251) as u8)
                .collect(),
            reads: Mutex::new(0),
        }
    }

    fn reads(&self) -> u64 {
        *self.reads.lock()
    }
}

impl RemoteSource for CountingRemote {
    fn read(&self, _path: &str, offset: u64, len: u64) -> edgecache::Result<Bytes> {
        *self.reads.lock() += 1;
        let end = ((offset + len) as usize).min(self.data.len());
        Ok(Bytes::copy_from_slice(&self.data[offset as usize..end]))
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("edgecache-memtier-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Opens a three-tier cache: `mem_pages` DRAM frames over a disk store.
fn open_cache(dir: &PathBuf, mem_pages: u64, recover: bool) -> CacheManager {
    let store = Arc::new(
        LocalPageStore::open(
            dir,
            LocalStoreConfig {
                page_size: PAGE,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let builder = CacheManager::builder(
        CacheConfig::default()
            .with_page_size(ByteSize::new(PAGE))
            .with_memory_tier(ByteSize::new(mem_pages * PAGE)),
    )
    .with_store(store, ByteSize::mib(64).as_u64());
    let builder = if recover {
        builder.with_recovery()
    } else {
        builder
    };
    builder.build().unwrap()
}

fn file() -> SourceFile {
    SourceFile::new("/it/mem0", 1, PAGES * PAGE, CacheScope::Global)
}

/// The cross-tier conservation books: every DRAM entry is resident or left
/// through a counted exit.
fn assert_books_balance(cache: &CacheManager) {
    let mem = cache.memory_dir().expect("tier mounted");
    let m = cache.metrics();
    let entries = m.counter("mem.publishes").get() + m.counter("mem.promotions").get();
    let exits = m.counter("mem.demotions").get()
        + m.counter("mem.evictions").get()
        + m.counter("mem.replaced").get();
    let resident = cache.index().pages_of_dir(mem).len() as u64;
    assert_eq!(
        entries,
        exits + resident,
        "memory tier books out of balance"
    );
    assert_eq!(
        cache.memory_tier().expect("tier mounted").len() as u64,
        resident,
        "store/index residency drift"
    );
    cache.index().check_consistency().expect("index consistent");
    cache.check_policy_coherence().expect("policy coherent");
}

#[test]
fn three_tier_read_demote_promote_restart() {
    let dir = temp_dir("e2e");
    let remote = CountingRemote::new();
    let f = file();

    {
        let cache = open_cache(&dir, 4, false);
        let mem = cache.memory_dir().expect("tier mounted");

        // Cold scan: every page fetched once; the working set (8 pages)
        // overflows the 4-frame DRAM budget, so the oldest frames demote to
        // SSD — nothing leaves the hierarchy.
        let got = cache.read(&f, 0, PAGES * PAGE, &remote).unwrap();
        assert_eq!(got.as_ref(), &remote.data[..]);
        let cold_reads = remote.reads();
        assert!(cold_reads >= 1);
        assert_books_balance(&cache);
        assert_eq!(
            cache.index().len() as u64,
            PAGES,
            "every page stays cached across both tiers"
        );
        assert!(
            cache.metrics().counter("mem.demotions").get() >= PAGES - 4,
            "overflow must demote, not drop"
        );
        assert_eq!(cache.metrics().counter("mem.evictions").get(), 0);

        // Warm re-read: all 8 pages come from the hierarchy (memory or SSD
        // promotion), zero new remote traffic, zero slow-path hits.
        let got = cache.read(&f, 0, PAGES * PAGE, &remote).unwrap();
        assert_eq!(got.as_ref(), &remote.data[..]);
        assert_eq!(remote.reads(), cold_reads, "warm reads must not refetch");
        assert_books_balance(&cache);
        assert!(
            cache.metrics().counter("mem.promotions").get() > 0,
            "SSD hits promote into DRAM"
        );

        // Steady-state memory hits on the promoted pages.
        let mem_hits_before = cache.metrics().counter("mem.hits").get();
        for id in cache.index().pages_of_dir(mem) {
            let offset = id.index * PAGE;
            let got = cache.read(&f, offset, PAGE, &remote).unwrap();
            assert_eq!(
                got.as_ref(),
                &remote.data[offset as usize..(offset + PAGE) as usize]
            );
        }
        assert!(cache.metrics().counter("mem.hits").get() > mem_hits_before);
        assert_eq!(
            cache.metrics().counter("hits.slow_path").get(),
            0,
            "memory hits must stay on the lock-free fast path"
        );

        // Pins outrank pressure: the pinned page survives a shrink-to-zero,
        // everything else demotes; unpinning lets the next shrink drain it.
        let pinned = cache.index().pages_of_dir(mem)[0];
        assert!(cache.pin_page(&f, pinned.index));
        cache.set_memory_capacity(0);
        assert_eq!(
            cache.index().pages_of_dir(mem),
            vec![pinned],
            "only the pinned frame may remain under pressure"
        );
        assert_books_balance(&cache);
        assert!(cache.unpin_page(&f, pinned.index));
        cache.set_memory_capacity(0);
        assert!(cache.index().pages_of_dir(mem).is_empty());
        assert_eq!(cache.metrics().counter("mem.evictions").get(), 0);
        assert_books_balance(&cache);

        // Regrow: promotions resume and the books still balance.
        cache.set_memory_capacity(4 * PAGE);
        let got = cache.read(&f, 0, 2 * PAGE, &remote).unwrap();
        assert_eq!(got.as_ref(), &remote.data[..(2 * PAGE) as usize]);
        assert_eq!(remote.reads(), cold_reads, "still no remote traffic");
        assert!(!cache.index().pages_of_dir(mem).is_empty());
        assert_books_balance(&cache);

        // Graceful shutdown: drain DRAM down to SSD so the restart below
        // recovers the full working set. (Frames still in DRAM at process
        // death are lost — clean and re-fetchable — which the simtest
        // crash epochs exercise; here we test the drain path.)
        cache.set_memory_capacity(0);
        assert!(cache.index().pages_of_dir(mem).is_empty());
        assert_books_balance(&cache);
    }

    // Process restart: DRAM is gone, the SSD tier recovers every page, and
    // warm reads repopulate memory without touching the remote.
    let cache = open_cache(&dir, 4, true);
    let mem = cache.memory_dir().expect("tier mounted");
    assert!(
        cache.index().pages_of_dir(mem).is_empty(),
        "DRAM must not survive a restart"
    );
    assert_eq!(
        cache.index().len() as u64,
        PAGES,
        "recovery restores the SSD tier"
    );
    let before = remote.reads();
    let got = cache.read(&f, 0, PAGES * PAGE, &remote).unwrap();
    assert_eq!(got.as_ref(), &remote.data[..]);
    assert_eq!(
        remote.reads(),
        before,
        "recovered pages serve without remote"
    );
    assert!(
        !cache.index().pages_of_dir(mem).is_empty(),
        "warm traffic repromotes into DRAM"
    );
    assert_books_balance(&cache);

    let _ = fs::remove_dir_all(&dir);
}
