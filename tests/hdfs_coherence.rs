//! Integration: HDFS + local cache coherence under mutation (§6.2.3).
//! Appends, deletes, restarts, and replica reads must never serve stale or
//! mixed data through the cache.

use std::sync::Arc;

use edgecache::common::clock::SimClock;
use edgecache::common::ByteSize;
use edgecache::core::manager::RemoteSource;
use edgecache::storage::hdfs::{DataNodeConfig, HdfsClient, HdfsCluster, HdfsClusterConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn cluster(replication: usize) -> (HdfsCluster, SimClock) {
    let clock = SimClock::new();
    let c = HdfsCluster::new(
        HdfsClusterConfig {
            datanodes: 3,
            block_size: 64 << 10,
            replication,
            datanode: DataNodeConfig {
                cache_capacity: ByteSize::mib(16).as_u64(),
                page_size: ByteSize::kib(4),
                admission_window: None, // Cache aggressively for coherence tests.
                ..Default::default()
            },
        },
        Arc::new(clock.clone()),
    )
    .unwrap();
    (c, clock)
}

fn payload(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random()).collect()
}

#[test]
fn repeated_appends_stay_coherent_through_the_cache() {
    let (c, _) = cluster(1);
    let mut expected = payload(100_000, 1);
    c.write_file("/f", &expected).unwrap();

    for round in 0..8u64 {
        // Warm the cache with the current content.
        let got = c.read("/f", 0, expected.len() as u64).unwrap();
        assert_eq!(got.as_ref(), &expected[..], "pre-append round {round}");
        // Append crosses block boundaries on some rounds.
        let extra = payload(37_000, round + 2);
        c.append_file("/f", &extra).unwrap();
        expected.extend_from_slice(&extra);
        let got = c.read("/f", 0, expected.len() as u64).unwrap();
        assert_eq!(got.as_ref(), &expected[..], "post-append round {round}");
    }
}

#[test]
fn random_ranged_reads_match_ground_truth() {
    let (c, _) = cluster(2);
    let data = payload(400_000, 7);
    c.write_file("/data", &data).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..300 {
        let offset = rng.random_range(0..data.len() as u64);
        let len = rng.random_range(1..64_000u64);
        let got = c.read("/data", offset, len).unwrap();
        let end = (offset + len).min(data.len() as u64) as usize;
        assert_eq!(got.as_ref(), &data[offset as usize..end]);
    }
    // A healthy share of those reads was served from the caches.
    let cached: u64 = c.datanodes().iter().map(|d| d.cache_bytes()).sum();
    assert!(cached > 0, "cache never engaged");
}

#[test]
fn delete_then_recreate_serves_new_content() {
    let (c, _) = cluster(1);
    let old = payload(80_000, 11);
    c.write_file("/x", &old).unwrap();
    c.read("/x", 0, 80_000).unwrap(); // Cached.
    c.delete_file("/x").unwrap();

    let new = payload(80_000, 12);
    c.write_file("/x", &new).unwrap();
    let got = c.read("/x", 0, 80_000).unwrap();
    assert_eq!(got.as_ref(), &new[..], "must not resurrect deleted blocks");
}

#[test]
fn datanode_restart_preserves_correctness() {
    let (c, _) = cluster(1);
    let data = payload(200_000, 21);
    c.write_file("/f", &data).unwrap();
    c.read("/f", 0, 200_000).unwrap();
    for dn in c.datanodes() {
        dn.restart();
    }
    let got = c.read("/f", 50_000, 100_000).unwrap();
    assert_eq!(got.as_ref(), &data[50_000..150_000]);
}

#[test]
fn hdfs_client_is_a_remote_source_for_compute_caches() {
    // The paper's layering: a Presto worker's local cache reads *through*
    // HDFS, whose DataNodes have their own local caches underneath.
    use edgecache::core::config::CacheConfig;
    use edgecache::core::manager::{CacheManager, SourceFile};
    use edgecache::pagestore::{CacheScope, MemoryPageStore};

    let (c, _) = cluster(1);
    let data = payload(150_000, 31);
    c.write_file("/warehouse/t/f", &data).unwrap();
    let client = HdfsClient::new(Arc::new(c));

    let compute_cache =
        CacheManager::builder(CacheConfig::default().with_page_size(ByteSize::kib(16)))
            .with_store(Arc::new(MemoryPageStore::new()), ByteSize::mib(64).as_u64())
            .build()
            .unwrap();
    let file = SourceFile::new("/warehouse/t/f", 1, 150_000, CacheScope::Global);
    let a = compute_cache.read(&file, 10_000, 30_000, &client).unwrap();
    assert_eq!(a.as_ref(), &data[10_000..40_000]);
    let b = compute_cache.read(&file, 10_000, 30_000, &client).unwrap();
    assert_eq!(a, b);
    // The 30 000-byte range spans three 16 KB pages: three page-level hits.
    assert_eq!(
        compute_cache.stats().hits,
        3,
        "second read is a compute-layer hit"
    );
    // Direct client read still fine.
    assert_eq!(
        client.read("/warehouse/t/f", 0, 10).unwrap().as_ref(),
        &data[..10]
    );
}

#[test]
fn truncated_cluster_read_clamps_at_eof() {
    let (c, _) = cluster(1);
    c.write_file("/small", &payload(1000, 41)).unwrap();
    assert_eq!(c.read("/small", 900, 500).unwrap().len(), 100);
    assert!(c.read("/small", 5000, 10).unwrap().is_empty());
}
