//! End-to-end integration: OLAP engine + local cache + columnar format +
//! simulated object store. Verifies correctness invariants the paper's
//! deployment depends on: caching never changes results, affinity warms the
//! right workers, invalidation works, and bulk scope deletes purge exactly
//! the right pages.

use std::sync::Arc;

use edgecache::columnar::{ColfWriter, ColumnType, Predicate, Schema, Value};
use edgecache::common::clock::SimClock;
use edgecache::common::ByteSize;
use edgecache::olap::{
    AggExpr, Catalog, DataFile, Engine, EngineConfig, PartitionDef, QueryPlan, TableDef,
    WorkerConfig,
};
use edgecache::storage::ObjectStore;
use edgecache::workload::tpcds::{TpcdsGen, TpcdsScale};

fn tpcds_engine(workers: usize) -> (TpcdsGen, Engine, Arc<ObjectStore>) {
    let clock = SimClock::new();
    let gen = TpcdsGen::new(TpcdsScale::tiny(), 3);
    let (catalog, store) = gen.build_fresh(Arc::new(clock.clone())).unwrap();
    let engine = Engine::new(
        catalog,
        store.clone(),
        EngineConfig {
            workers,
            worker: WorkerConfig {
                page_size: ByteSize::kib(8),
                cache_capacity: ByteSize::mib(64).as_u64(),
                ..Default::default()
            },
            ..Default::default()
        },
        Arc::new(clock),
    )
    .unwrap();
    (gen, engine, store)
}

#[test]
fn all_queries_warm_equals_cold_across_worker_counts() {
    for workers in [1, 2, 5] {
        let (gen, engine, _) = tpcds_engine(workers);
        for q in (1..=99).step_by(7) {
            let plan = gen.query(q);
            let cold = engine.execute(&plan).unwrap();
            let warm = engine.execute(&plan).unwrap();
            assert_eq!(
                cold.rows, warm.rows,
                "q{q} with {workers} workers: warm result differs"
            );
        }
    }
}

#[test]
fn cluster_cache_stops_remote_traffic_once_warm() {
    let (gen, engine, store) = tpcds_engine(3);
    let plan = gen.query(3);
    engine.execute(&plan).unwrap();
    engine.execute(&plan).unwrap();
    let requests_after_warm = store.request_count();
    for _ in 0..5 {
        engine.execute(&plan).unwrap();
    }
    assert_eq!(
        store.request_count(),
        requests_after_warm,
        "warm cluster must not touch the object store"
    );
}

#[test]
fn file_version_bump_invalidates_across_cluster() {
    let clock = SimClock::new();
    let store = Arc::new(ObjectStore::new(Arc::new(clock.clone())));
    let catalog = Arc::new(Catalog::new());
    let schema = Schema::new(vec![("v", ColumnType::Int64)]);

    let build_file = |value: i64| {
        let mut w = ColfWriter::new(schema.clone(), 10);
        for _ in 0..10 {
            w.push_row(vec![Value::Int64(value)]).unwrap();
        }
        w.finish().unwrap()
    };

    let v1 = build_file(1);
    let version = store.put_object("/t/f", v1.clone());
    catalog.register(TableDef {
        schema_name: "s".into(),
        table_name: "t".into(),
        columns: schema.clone(),
        partitions: vec![PartitionDef {
            name: "p".into(),
            files: vec![DataFile {
                path: "/t/f".into(),
                version,
                length: v1.len() as u64,
            }],
        }],
    });

    let engine = Engine::new(
        Arc::clone(&catalog),
        store.clone(),
        EngineConfig {
            workers: 2,
            ..Default::default()
        },
        Arc::new(clock),
    )
    .unwrap();
    let plan = QueryPlan::scan("s", "t", &[]).aggregate(vec![AggExpr::sum("v")]);
    let r1 = engine.execute(&plan).unwrap();
    assert_eq!(r1.rows, vec![vec![Value::Float64(10.0)]]);

    // Rewrite the file: new etag → new version → new cache identity.
    let v2 = build_file(5);
    let version2 = store.put_object("/t/f", v2.clone());
    assert!(version2 > version);
    catalog
        .add_partition(
            "s",
            "t",
            PartitionDef {
                name: "p".into(),
                files: vec![DataFile {
                    path: "/t/f".into(),
                    version: version2,
                    length: v2.len() as u64,
                }],
            },
        )
        .unwrap();
    let r2 = engine.execute(&plan).unwrap();
    assert_eq!(
        r2.rows,
        vec![vec![Value::Float64(50.0)]],
        "stale cached pages must not serve the old content"
    );
}

#[test]
fn predicate_pushdown_results_match_plain_scan_through_cache() {
    let (gen, engine, _) = tpcds_engine(2);
    // A predicate on the row-group-ordered id column exercises pruning.
    let pushed = QueryPlan::scan("tpcds", "store_sales", &[])
        .filter(Predicate::Between(
            "ss_quantity".into(),
            Value::Int64(10),
            Value::Int64(20),
        ))
        .aggregate(vec![AggExpr::count()]);
    let all = QueryPlan::scan("tpcds", "store_sales", &["ss_quantity"]);
    let pushed_count = match engine.execute(&pushed).unwrap().rows[0][0] {
        Value::Int64(n) => n,
        ref v => panic!("unexpected {v:?}"),
    };
    let manual = engine
        .execute(&all)
        .unwrap()
        .rows
        .iter()
        .filter(|row| matches!(row[0], Value::Int64(q) if (10..=20).contains(&q)))
        .count() as i64;
    assert_eq!(pushed_count, manual);
    let _ = gen;
}

#[test]
fn drop_partition_frees_cache_and_changes_results() {
    let (gen, engine, _) = tpcds_engine(2);
    let count_all = QueryPlan::scan("tpcds", "store_sales", &[]).aggregate(vec![AggExpr::count()]);
    let before = engine.execute(&count_all).unwrap().rows[0][0].clone();
    let total_pages_before: usize = engine
        .worker_names()
        .iter()
        .filter_map(|w| {
            engine
                .worker(w)
                .and_then(|w| w.cache())
                .map(|c| c.index().len())
        })
        .sum();
    assert!(total_pages_before > 0);

    let part = gen.fact_partitions()[0].clone();
    engine
        .drop_partition("tpcds", "store_sales", &part)
        .unwrap();
    let after = engine.execute(&count_all).unwrap().rows[0][0].clone();
    match (before, after) {
        (Value::Int64(b), Value::Int64(a)) => assert!(a < b, "{a} !< {b}"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn worker_outage_is_transparent_with_lazy_seats() {
    let (gen, engine, _) = tpcds_engine(3);
    let plan = gen.query(2);
    let expected = engine.execute(&plan).unwrap().rows;
    // Take one worker offline; queries keep working and stay correct.
    let victim = engine.worker_names()[0].clone();
    engine.scheduler().worker_offline(&victim);
    assert_eq!(engine.execute(&plan).unwrap().rows, expected);
    // It returns within the lazy window; still correct, affinity restored.
    engine.scheduler().worker_online(&victim);
    assert_eq!(engine.execute(&plan).unwrap().rows, expected);
}

#[test]
fn rate_limited_object_store_throttles_cold_scans() {
    let clock = SimClock::new();
    let gen = TpcdsGen::new(TpcdsScale::tiny(), 5);
    let (catalog, store) = gen.build_fresh(Arc::new(clock.clone())).unwrap();
    store.set_rate_limit(2); // Absurdly low API budget.
    let engine = Engine::new(
        catalog,
        store.clone(),
        EngineConfig {
            workers: 2,
            ..Default::default()
        },
        Arc::new(clock),
    )
    .unwrap();
    let err = engine
        .execute(&gen.query(3))
        .expect_err("cold scan must exceed 2 GETs/sec");
    assert!(matches!(err, edgecache::Error::Throttled(_)), "{err}");
    assert!(store.throttled_count() > 0);
}
