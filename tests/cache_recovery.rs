//! Integration: cold-start recovery of a disk-backed cache (§4.3).
//! A "process restart" (dropping and rebuilding the manager over the same
//! directory) must restore hits without touching the remote, discard
//! in-flight writes, and survive on-disk corruption.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use bytes::Bytes;
use edgecache::common::ByteSize;
use edgecache::core::config::CacheConfig;
use edgecache::core::manager::{CacheManager, RemoteSource, SourceFile};
use edgecache::pagestore::{CacheScope, LocalPageStore, LocalStoreConfig, PageStore};
use parking_lot::Mutex;

struct CountingRemote {
    data: Vec<u8>,
    reads: Mutex<u64>,
}

impl CountingRemote {
    fn new(len: usize) -> Self {
        Self {
            data: (0..len).map(|i| (i % 251) as u8).collect(),
            reads: Mutex::new(0),
        }
    }
}

impl RemoteSource for CountingRemote {
    fn read(&self, _path: &str, offset: u64, len: u64) -> edgecache::Result<Bytes> {
        *self.reads.lock() += 1;
        let end = ((offset + len) as usize).min(self.data.len());
        Ok(Bytes::copy_from_slice(&self.data[offset as usize..end]))
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("edgecache-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn open_cache(dir: &PathBuf, recover: bool) -> CacheManager {
    let store = Arc::new(
        LocalPageStore::open(
            dir,
            LocalStoreConfig {
                page_size: 4 << 10,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let builder = CacheManager::builder(CacheConfig::default().with_page_size(ByteSize::kib(4)))
        .with_store(store, ByteSize::mib(64).as_u64());
    if recover {
        builder.with_recovery().build().unwrap()
    } else {
        builder.build().unwrap()
    }
}

#[test]
fn restart_restores_all_pages_without_remote_traffic() {
    let dir = temp_dir("restore");
    let remote = CountingRemote::new(100_000);
    let file = SourceFile::new("/t/f", 1, 100_000, CacheScope::Global);
    {
        let cache = open_cache(&dir, false);
        cache.read(&file, 0, 100_000, &remote).unwrap();
    }
    let reads_before = *remote.reads.lock();
    assert!(reads_before > 0);

    let cache = open_cache(&dir, true);
    let got = cache.read(&file, 0, 100_000, &remote).unwrap();
    assert_eq!(got.as_ref(), &remote.data[..]);
    assert_eq!(
        *remote.reads.lock(),
        reads_before,
        "recovery made remote reads"
    );
    assert_eq!(cache.stats().misses, 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_page_on_disk_is_detected_and_refetched() {
    let dir = temp_dir("corrupt");
    let remote = CountingRemote::new(20_000);
    let file = SourceFile::new("/t/f", 1, 20_000, CacheScope::Global);
    {
        let cache = open_cache(&dir, false);
        cache.read(&file, 0, 20_000, &remote).unwrap();
    }
    // Flip a byte in one page file behind the cache's back.
    let mut flipped = false;
    for entry in walk(&dir) {
        if entry.file_name().and_then(|n| n.to_str()) == Some("2") {
            let mut raw = fs::read(&entry).unwrap();
            raw[10] ^= 0xff;
            fs::write(&entry, raw).unwrap();
            flipped = true;
        }
    }
    assert!(flipped, "expected a page named `2` on disk");

    let cache = open_cache(&dir, true);
    let got = cache.read(&file, 0, 20_000, &remote).unwrap();
    assert_eq!(got.as_ref(), &remote.data[..], "corruption must be masked");
    assert!(
        cache.metrics().counter("evictions.corrupt").get() >= 1,
        "corrupt page must be evicted early"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn leftover_tmp_files_are_discarded_on_recovery() {
    let dir = temp_dir("tmp");
    let remote = CountingRemote::new(10_000);
    let file = SourceFile::new("/t/f", 1, 10_000, CacheScope::Global);
    {
        let cache = open_cache(&dir, false);
        cache.read(&file, 0, 10_000, &remote).unwrap();
    }
    // Simulate a crash mid-write: drop a tmp file next to a real page.
    for entry in walk(&dir) {
        if entry.file_name().and_then(|n| n.to_str()) == Some("0") {
            fs::write(entry.parent().unwrap().join(".9.tmp3"), b"half a page").unwrap();
        }
    }
    let cache = open_cache(&dir, true);
    assert_eq!(cache.metrics().counter("recovered_pages").get(), 3);
    assert!(
        !walk(&dir)
            .iter()
            .any(|p| p.to_string_lossy().contains(".tmp")),
        "tmp files must be cleaned"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn page_size_change_invalidates_the_cache_directory() {
    let dir = temp_dir("resize");
    {
        let store = Arc::new(
            LocalPageStore::open(
                &dir,
                LocalStoreConfig {
                    page_size: 4 << 10,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        store
            .put(
                edgecache::pagestore::PageId::new(edgecache::pagestore::FileId(1), 0),
                &[1; 64],
            )
            .unwrap();
    }
    // Re-open with a different page size: the old layout is wiped.
    let store = LocalPageStore::open(
        &dir,
        LocalStoreConfig {
            page_size: 8 << 10,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(store.recover().unwrap().len(), 0);
    let _ = fs::remove_dir_all(&dir);
}

/// Recursively lists files under `dir`.
fn walk(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        if let Ok(entries) = fs::read_dir(&d) {
            for entry in entries.flatten() {
                let p = entry.path();
                if p.is_dir() {
                    stack.push(p);
                } else {
                    out.push(p);
                }
            }
        }
    }
    out
}

fn open_crash_cache(
    dir: &PathBuf,
    plan: &Arc<edgecache::pagestore::CrashPlan>,
    capacity: u64,
) -> CacheManager {
    let store = Arc::new(
        LocalPageStore::open(
            dir,
            LocalStoreConfig {
                page_size: 4 << 10,
                verify_on_recovery: true,
                crash_plan: Some(Arc::clone(plan)),
                ..Default::default()
            },
        )
        .unwrap(),
    );
    CacheManager::builder(CacheConfig::default().with_page_size(ByteSize::kib(4)))
        .with_store(store, capacity)
        .with_recovery()
        .build()
        .unwrap()
}

#[test]
fn crash_during_eviction_recovers_without_torn_pages() {
    use edgecache::pagestore::{CrashPlan, CrashSite};

    let dir = temp_dir("crash-evict");
    let plan = CrashPlan::new();
    let remote = CountingRemote::new(32 << 10);
    let a = SourceFile::new("/t/a", 1, 32 << 10, CacheScope::Global);
    let b = SourceFile::new("/t/b", 2, 16 << 10, CacheScope::Global);
    {
        // Capacity equals /t/a exactly, so caching /t/b forces evictions.
        let cache = open_crash_cache(&dir, &plan, 32 << 10);
        cache.read(&a, 0, 32 << 10, &remote).unwrap();
        // Arm the crash point: the next page delete — an eviction under
        // capacity pressure — tears the page file's tail and dies before
        // the unlink, leaving a full-length but unreadable page on disk.
        plan.arm(CrashSite::DeleteTornTail);
        let got = cache.read(&b, 0, 16 << 10, &remote).unwrap();
        assert_eq!(got.as_ref(), &remote.data[..16 << 10]);
        assert_eq!(plan.fired(), 1, "eviction must hit the armed crash point");
        // The process "dies" here: the manager drops with the torn page
        // file still present in the directory.
    }

    let cache = open_crash_cache(&dir, &plan, 32 << 10);
    assert!(
        cache.metrics().counter("recovered_pages").get() >= 1,
        "surviving pages must be re-indexed"
    );
    // Recovery must have discarded the torn page rather than re-indexing
    // it: every read after restart returns ground-truth bytes.
    for (file, len) in [(&a, 32usize << 10), (&b, 16 << 10)] {
        let got = cache.read(file, 0, len as u64, &remote).unwrap();
        assert_eq!(
            got.as_ref(),
            &remote.data[..len],
            "recovery served a torn page of {}",
            file.path
        );
    }
    assert_eq!(plan.fired(), 1, "recovery must not re-trigger the crash");
    cache.index().check_consistency().unwrap();
    let _ = fs::remove_dir_all(&dir);
}
