//! Integration: the §8 failure cases driven through the full cache manager —
//! read hangs, corrupted pages, and a device that fills up early — plus
//! combinations of them under concurrent traffic.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use edgecache::common::ByteSize;
use edgecache::core::config::CacheConfig;
use edgecache::core::manager::{CacheManager, RemoteSource, SourceFile};
use edgecache::pagestore::{CacheScope, FaultPlan, FaultyStore, MemoryPageStore, PageId};

struct PatternRemote;

impl RemoteSource for PatternRemote {
    fn read(&self, _path: &str, offset: u64, len: u64) -> edgecache::Result<Bytes> {
        Ok(Bytes::from(
            (offset..offset + len)
                .map(|i| (i % 241) as u8)
                .collect::<Vec<u8>>(),
        ))
    }
}

fn expected(offset: u64, len: u64) -> Vec<u8> {
    (offset..offset + len).map(|i| (i % 241) as u8).collect()
}

fn faulty_cache(plan: &Arc<FaultPlan>, timeout: Option<Duration>) -> CacheManager {
    let store = Arc::new(FaultyStore::new(MemoryPageStore::new(), Arc::clone(plan)));
    let mut config = CacheConfig::default().with_page_size(ByteSize::kib(4));
    if let Some(t) = timeout {
        config = config.with_read_timeout(t);
    }
    CacheManager::builder(config)
        .with_store(store, ByteSize::mib(32).as_u64())
        .build()
        .unwrap()
}

#[test]
fn hanging_reads_fall_back_within_deadline() {
    let plan = FaultPlan::none();
    let cache = faulty_cache(&plan, Some(Duration::from_millis(25)));
    let file = SourceFile::new("/f", 1, 64 << 10, CacheScope::Global);
    cache.read(&file, 0, 4096, &PatternRemote).unwrap();

    // Every local read now hangs for 300 ms, far past the 25 ms deadline.
    plan.set_read_hang(Duration::from_millis(300), 1);
    let start = std::time::Instant::now();
    let got = cache.read(&file, 0, 4096, &PatternRemote).unwrap();
    assert_eq!(got.as_ref(), &expected(0, 4096)[..]);
    assert!(
        start.elapsed() < Duration::from_millis(200),
        "fallback must not wait out the hang"
    );
    assert!(cache.metrics().counter("fallbacks.timeout").get() >= 1);
    // The cached page was kept; once the hang clears, hits resume.
    plan.set_read_hang(Duration::ZERO, 0);
    let hits_before = cache.stats().hits;
    cache.read(&file, 0, 4096, &PatternRemote).unwrap();
    assert_eq!(cache.stats().hits, hits_before + 1);
}

#[test]
fn corruption_storm_is_survivable() {
    let plan = FaultPlan::none();
    let cache = faulty_cache(&plan, None);
    let file = SourceFile::new("/f", 1, 256 << 10, CacheScope::Global);
    cache.read(&file, 0, 256 << 10, &PatternRemote).unwrap();
    // Corrupt every cached page at once.
    for page in cache.index().pages_of_file(file.file_id()) {
        plan.corrupt_page(page);
    }
    let got = cache.read(&file, 0, 256 << 10, &PatternRemote).unwrap();
    assert_eq!(got.as_ref(), &expected(0, 256 << 10)[..]);
    assert!(cache.metrics().counter("evictions.corrupt").get() >= 1);
    // And the refilled pages serve hits again.
    let hits_before = cache.stats().hits;
    cache.read(&file, 0, 4 << 10, &PatternRemote).unwrap();
    assert!(cache.stats().hits > hits_before);
}

#[test]
fn shrinking_device_keeps_reads_working() {
    let plan = FaultPlan::none();
    let cache = faulty_cache(&plan, None);
    let file = SourceFile::new("/f", 1, 1 << 20, CacheScope::Global);
    cache.read(&file, 0, 1 << 20, &PatternRemote).unwrap();
    // The device "loses" capacity below what is already cached: new puts
    // ENOSPC until early eviction frees room.
    plan.set_device_capacity(64 << 10);
    let other = SourceFile::new("/g", 1, 512 << 10, CacheScope::Global);
    let got = cache.read(&other, 0, 512 << 10, &PatternRemote).unwrap();
    assert_eq!(got.len(), 512 << 10);
    assert!(cache.metrics().counter("evictions.no_space").get() >= 1);
}

#[test]
fn concurrent_traffic_with_mixed_faults_is_correct() {
    let plan = FaultPlan::none();
    plan.set_read_hang(Duration::from_millis(5), 17); // Occasional slow read.
    let cache = Arc::new(faulty_cache(&plan, Some(Duration::from_millis(2))));
    let corrupt_target = PageId::new(
        SourceFile::new("/f0", 1, 64 << 10, CacheScope::Global).file_id(),
        1,
    );
    plan.corrupt_page(corrupt_target);

    let mut handles = Vec::new();
    for t in 0..6u64 {
        let cache = Arc::clone(&cache);
        handles.push(std::thread::spawn(move || {
            for i in 0..60u64 {
                let f = SourceFile::new(format!("/f{}", t % 3), 1, 64 << 10, CacheScope::Global);
                let offset = (i * 1013) % (60 << 10);
                let len = 2048.min((64 << 10) - offset);
                let got = cache.read(&f, offset, len, &PatternRemote).unwrap();
                assert_eq!(got.as_ref(), &expected(offset, len)[..]);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    cache.index().check_consistency().unwrap();
}

#[test]
fn error_breakdown_metrics_are_populated() {
    // §7: error counts per operation and error kind are the key debugging
    // signal; make sure the faults above actually surface there.
    let plan = FaultPlan::none();
    let cache = faulty_cache(&plan, None);
    let file = SourceFile::new("/f", 1, 8 << 10, CacheScope::Global);
    cache.read(&file, 0, 8 << 10, &PatternRemote).unwrap();
    plan.corrupt_page(PageId::new(file.file_id(), 0));
    cache.read(&file, 0, 1024, &PatternRemote).unwrap();
    let snapshot = cache.metrics().snapshot();
    assert_eq!(snapshot.counter("errors.get.corrupted"), 1);
    assert!(cache.metrics().error_count("get") >= 1);
}
