//! Integration: the §8 failure cases driven through the full cache manager —
//! read hangs, corrupted pages, and a device that fills up early — plus
//! combinations of them under concurrent traffic.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use edgecache::common::ByteSize;
use edgecache::core::config::CacheConfig;
use edgecache::core::manager::{CacheManager, RemoteSource, SourceFile};
use edgecache::pagestore::{CacheScope, FaultPlan, FaultyStore, MemoryPageStore, PageId};

struct PatternRemote;

impl RemoteSource for PatternRemote {
    fn read(&self, _path: &str, offset: u64, len: u64) -> edgecache::Result<Bytes> {
        Ok(Bytes::from(
            (offset..offset + len)
                .map(|i| (i % 241) as u8)
                .collect::<Vec<u8>>(),
        ))
    }
}

fn expected(offset: u64, len: u64) -> Vec<u8> {
    (offset..offset + len).map(|i| (i % 241) as u8).collect()
}

fn faulty_cache(plan: &Arc<FaultPlan>, timeout: Option<Duration>) -> CacheManager {
    let store = Arc::new(FaultyStore::new(MemoryPageStore::new(), Arc::clone(plan)));
    let mut config = CacheConfig::default().with_page_size(ByteSize::kib(4));
    if let Some(t) = timeout {
        config = config.with_read_timeout(t);
    }
    CacheManager::builder(config)
        .with_store(store, ByteSize::mib(32).as_u64())
        .build()
        .unwrap()
}

#[test]
fn hanging_reads_fall_back_within_deadline() {
    let plan = FaultPlan::none();
    let cache = faulty_cache(&plan, Some(Duration::from_millis(25)));
    let file = SourceFile::new("/f", 1, 64 << 10, CacheScope::Global);
    cache.read(&file, 0, 4096, &PatternRemote).unwrap();

    // Every local read now hangs for 300 ms, far past the 25 ms deadline.
    plan.set_read_hang(Duration::from_millis(300), 1);
    let start = std::time::Instant::now();
    let got = cache.read(&file, 0, 4096, &PatternRemote).unwrap();
    assert_eq!(got.as_ref(), &expected(0, 4096)[..]);
    assert!(
        start.elapsed() < Duration::from_millis(200),
        "fallback must not wait out the hang"
    );
    assert!(cache.metrics().counter("fallbacks.timeout").get() >= 1);
    // The cached page was kept; once the hang clears, hits resume.
    plan.set_read_hang(Duration::ZERO, 0);
    let hits_before = cache.stats().hits;
    cache.read(&file, 0, 4096, &PatternRemote).unwrap();
    assert_eq!(cache.stats().hits, hits_before + 1);
}

#[test]
fn corruption_storm_is_survivable() {
    let plan = FaultPlan::none();
    let cache = faulty_cache(&plan, None);
    let file = SourceFile::new("/f", 1, 256 << 10, CacheScope::Global);
    cache.read(&file, 0, 256 << 10, &PatternRemote).unwrap();
    // Corrupt every cached page at once.
    for page in cache.index().pages_of_file(file.file_id()) {
        plan.corrupt_page(page);
    }
    let got = cache.read(&file, 0, 256 << 10, &PatternRemote).unwrap();
    assert_eq!(got.as_ref(), &expected(0, 256 << 10)[..]);
    assert!(cache.metrics().counter("evictions.corrupt").get() >= 1);
    // And the refilled pages serve hits again.
    let hits_before = cache.stats().hits;
    cache.read(&file, 0, 4 << 10, &PatternRemote).unwrap();
    assert!(cache.stats().hits > hits_before);
}

#[test]
fn shrinking_device_keeps_reads_working() {
    let plan = FaultPlan::none();
    let cache = faulty_cache(&plan, None);
    let file = SourceFile::new("/f", 1, 1 << 20, CacheScope::Global);
    cache.read(&file, 0, 1 << 20, &PatternRemote).unwrap();
    // The device "loses" capacity below what is already cached: new puts
    // ENOSPC until early eviction frees room.
    plan.set_device_capacity(64 << 10);
    let other = SourceFile::new("/g", 1, 512 << 10, CacheScope::Global);
    let got = cache.read(&other, 0, 512 << 10, &PatternRemote).unwrap();
    assert_eq!(got.len(), 512 << 10);
    assert!(cache.metrics().counter("evictions.no_space").get() >= 1);
}

#[test]
fn concurrent_traffic_with_mixed_faults_is_correct() {
    let plan = FaultPlan::none();
    plan.set_read_hang(Duration::from_millis(5), 17); // Occasional slow read.
    let cache = Arc::new(faulty_cache(&plan, Some(Duration::from_millis(2))));
    let corrupt_target = PageId::new(
        SourceFile::new("/f0", 1, 64 << 10, CacheScope::Global).file_id(),
        1,
    );
    plan.corrupt_page(corrupt_target);

    let mut handles = Vec::new();
    for t in 0..6u64 {
        let cache = Arc::clone(&cache);
        handles.push(std::thread::spawn(move || {
            for i in 0..60u64 {
                let f = SourceFile::new(format!("/f{}", t % 3), 1, 64 << 10, CacheScope::Global);
                let offset = (i * 1013) % (60 << 10);
                let len = 2048.min((64 << 10) - offset);
                let got = cache.read(&f, offset, len, &PatternRemote).unwrap();
                assert_eq!(got.as_ref(), &expected(offset, len)[..]);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    cache.index().check_consistency().unwrap();
}

#[test]
fn error_breakdown_metrics_are_populated() {
    // §7: error counts per operation and error kind are the key debugging
    // signal; make sure the faults above actually surface there.
    let plan = FaultPlan::none();
    let cache = faulty_cache(&plan, None);
    let file = SourceFile::new("/f", 1, 8 << 10, CacheScope::Global);
    cache.read(&file, 0, 8 << 10, &PatternRemote).unwrap();
    plan.corrupt_page(PageId::new(file.file_id(), 0));
    cache.read(&file, 0, 1024, &PatternRemote).unwrap();
    let snapshot = cache.metrics().snapshot();
    assert_eq!(snapshot.counter("errors.get.corrupted"), 1);
    assert!(cache.metrics().error_count("get") >= 1);
}

/// Remote that serves the §8 byte pattern but fails any ranged request
/// starting at a configured offset, recording every request it sees.
struct PartialFailRemote {
    fail_at: parking_lot::Mutex<Option<u64>>,
    requests: parking_lot::Mutex<Vec<(u64, u64)>>,
}

impl PartialFailRemote {
    fn new() -> Self {
        Self {
            fail_at: parking_lot::Mutex::new(None),
            requests: parking_lot::Mutex::new(Vec::new()),
        }
    }
}

impl RemoteSource for PartialFailRemote {
    fn read(&self, _path: &str, offset: u64, len: u64) -> edgecache::Result<Bytes> {
        self.requests.lock().push((offset, len));
        if *self.fail_at.lock() == Some(offset) {
            return Err(edgecache::Error::Other("injected range failure".into()));
        }
        Ok(Bytes::from(expected(offset, len)))
    }
}

#[test]
fn ranged_fetch_partial_failure_fails_only_affected_pages() {
    // Regression: when a multi-page read coalesces into several ranged
    // requests and one of them errors, the pages of the *other* runs must
    // still be cached and every single-flight latch released, so a retry
    // after the fault clears only refetches the failed range.
    let plan = FaultPlan::none();
    let cache = faulty_cache(&plan, None);
    let page = 4096u64;
    let file = SourceFile::new("/f", 1, 5 * page, CacheScope::Global);
    let remote = PartialFailRemote::new();

    // Pre-seed page 2 so a read of pages 0..=4 splits into two coalesced
    // runs: [pages 0-1] at offset 0 and [pages 3-4] at offset 3*page.
    cache.read(&file, 2 * page, page, &remote).unwrap();

    // Fail exactly the second run's ranged request.
    *remote.fail_at.lock() = Some(3 * page);
    let err = cache.read(&file, 0, 5 * page, &remote).unwrap_err();
    assert!(err.to_string().contains("injected range failure"), "{err}");

    // Only the failed run's pages are missing; the healthy run was
    // published and cached despite the overall read erroring.
    assert!(cache.contains(&file, 0), "page 0 from the healthy run");
    assert!(cache.contains(&file, 1), "page 1 from the healthy run");
    assert!(cache.contains(&file, 2), "pre-seeded page survives");
    assert!(!cache.contains(&file, 3), "failed run must not cache");
    assert!(!cache.contains(&file, 4), "failed run must not cache");
    assert_eq!(
        cache.inflight_fetches(),
        0,
        "failed fetch must clean up its single-flight latches"
    );

    // Heal the remote: the retry succeeds and refetches only the range the
    // failed run covered.
    *remote.fail_at.lock() = None;
    let before = remote.requests.lock().len();
    let got = cache.read(&file, 0, 5 * page, &remote).unwrap();
    assert_eq!(got.as_ref(), &expected(0, 5 * page)[..]);
    let after: Vec<(u64, u64)> = remote.requests.lock()[before..].to_vec();
    assert_eq!(
        after,
        vec![(3 * page, 2 * page)],
        "retry must only refetch the failed run"
    );
}

#[test]
fn failed_fetch_releases_waiters_for_retry() {
    // Two threads race onto the same cold page while the remote is failing:
    // whichever becomes the owner publishes the error, the waiter sees it
    // as an error (not a hang), and once the fault clears a fresh read
    // succeeds with no leaked latches.
    let plan = FaultPlan::none();
    let cache = Arc::new(faulty_cache(&plan, None));
    let file = SourceFile::new("/f", 1, 64 << 10, CacheScope::Global);
    let remote = Arc::new(PartialFailRemote::new());
    *remote.fail_at.lock() = Some(0);

    let mut handles = Vec::new();
    for _ in 0..2 {
        let cache = Arc::clone(&cache);
        let remote = Arc::clone(&remote);
        let file = file.clone();
        handles.push(std::thread::spawn(move || {
            cache.read(&file, 0, 4096, remote.as_ref()).map(|_| ())
        }));
    }
    for h in handles {
        // Both attempts raced a failing remote; each must return promptly
        // with an error rather than deadlock on an orphaned latch.
        let result = h.join().unwrap();
        assert!(result.is_err(), "read during the fault must error");
    }
    assert_eq!(
        cache.inflight_fetches(),
        0,
        "no latch may outlive the error"
    );

    *remote.fail_at.lock() = None;
    let got = cache.read(&file, 0, 4096, remote.as_ref()).unwrap();
    assert_eq!(got.as_ref(), &expected(0, 4096)[..]);
}
