//! Property-based tests (proptest) on cross-crate invariants.

use std::sync::Arc;

use bytes::Bytes;
use edgecache::columnar::{ColfReader, ColfWriter, ColumnType, Predicate, Schema, Value};
use edgecache::common::hash::hash_str;
use edgecache::common::ByteSize;
use edgecache::core::config::{CacheConfig, EvictionPolicyKind};
use edgecache::core::manager::{CacheManager, RemoteSource, SourceFile};
use edgecache::metrics::Histogram;
use edgecache::pagestore::{CacheScope, MemoryPageStore};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct SeededRemote {
    len: u64,
    seed: u64,
}

impl SeededRemote {
    fn byte_at(&self, i: u64) -> u8 {
        (hash_str(&format!("{}:{}", self.seed, i / 256)) >> (i % 8)) as u8 ^ (i % 251) as u8
    }
}

impl RemoteSource for SeededRemote {
    fn read(&self, _path: &str, offset: u64, len: u64) -> edgecache::Result<Bytes> {
        let end = (offset + len).min(self.len);
        Ok(Bytes::from(
            (offset..end).map(|i| self.byte_at(i)).collect::<Vec<u8>>(),
        ))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever sequence of ranged reads is issued, with any page size and
    /// any (possibly tiny) capacity, the cache returns exactly the remote's
    /// bytes.
    #[test]
    fn cache_reads_equal_remote_reads(
        page_size_kb in 1u64..64,
        capacity_pages in 1u64..32,
        file_len in 1u64..200_000,
        seed in 0u64..1000,
        ops in proptest::collection::vec((0u64..220_000, 1u64..50_000), 1..30),
    ) {
        let remote = SeededRemote { len: file_len, seed };
        let page_size = page_size_kb << 10;
        let cache = CacheManager::builder(
            CacheConfig::default().with_page_size(ByteSize::new(page_size)),
        )
        .with_store(Arc::new(MemoryPageStore::new()), page_size * capacity_pages)
        .build()
        .unwrap();
        let file = SourceFile::new("/f", seed, file_len, CacheScope::Global);
        for (offset, len) in ops {
            let got = cache.read(&file, offset, len, &remote).unwrap();
            let end = offset.saturating_add(len).min(file_len);
            let want: Vec<u8> = (offset.min(end)..end).map(|i| remote.byte_at(i)).collect();
            prop_assert_eq!(got.as_ref(), &want[..]);
        }
        cache.index().check_consistency().unwrap();
    }

    /// The cache never holds more bytes than its configured capacity, under
    /// any eviction policy.
    #[test]
    fn capacity_is_never_exceeded(
        policy in prop_oneof![
            Just(EvictionPolicyKind::Lru),
            Just(EvictionPolicyKind::Fifo),
            Just(EvictionPolicyKind::Random { seed: 9 }),
        ],
        capacity_pages in 1u64..16,
        ops in proptest::collection::vec((0u64..40, 0u64..200_000), 1..60),
    ) {
        const PAGE: u64 = 4 << 10;
        let remote = SeededRemote { len: 1 << 20, seed: 5 };
        let cache = CacheManager::builder(
            CacheConfig::default()
                .with_page_size(ByteSize::new(PAGE))
                .with_eviction(policy),
        )
        .with_store(Arc::new(MemoryPageStore::new()), PAGE * capacity_pages)
        .build()
        .unwrap();
        for (file_idx, offset) in ops {
            let file = SourceFile::new(format!("/f{file_idx}"), 1, 1 << 20, CacheScope::Global);
            cache.read(&file, offset, 1000, &remote).unwrap();
            prop_assert!(cache.index().total_bytes() <= PAGE * capacity_pages);
        }
        cache.index().check_consistency().unwrap();
    }

    /// colf round trip: arbitrary typed rows written and read back are
    /// identical, for any row-group size.
    #[test]
    fn colf_round_trips(
        rows in proptest::collection::vec(
            (any::<i64>(), any::<bool>(), "[a-z]{0,8}", -1e9f64..1e9),
            0..200,
        ),
        per_group in 1usize..50,
    ) {
        let schema = Schema::new(vec![
            ("a", ColumnType::Int64),
            ("b", ColumnType::Bool),
            ("c", ColumnType::Utf8),
            ("d", ColumnType::Float64),
        ]);
        let mut w = ColfWriter::new(schema, per_group);
        for (a, b, c, d) in &rows {
            w.push_row(vec![
                Value::Int64(*a),
                Value::Bool(*b),
                Value::Utf8(c.clone()),
                Value::Float64(*d),
            ])
            .unwrap();
        }
        let file = w.finish().unwrap();
        let r = ColfReader::open(file).unwrap();
        prop_assert_eq!(r.metadata().total_rows, rows.len() as u64);
        let mut row_idx = 0usize;
        for rg in 0..r.row_groups() {
            let cols = r.read_row_group(rg, &[0, 1, 2, 3]).unwrap();
            for i in 0..cols[0].len() {
                let (a, b, c, d) = &rows[row_idx];
                prop_assert_eq!(cols[0].value(i), Value::Int64(*a));
                prop_assert_eq!(cols[1].value(i), Value::Bool(*b));
                prop_assert_eq!(cols[2].value(i), Value::Utf8(c.clone()));
                prop_assert_eq!(cols[3].value(i), Value::Float64(*d));
                row_idx += 1;
            }
        }
        prop_assert_eq!(row_idx, rows.len());
    }

    /// Predicate pushdown never changes results: pruned row groups contain
    /// no matching rows.
    #[test]
    fn pushdown_is_sound(
        values in proptest::collection::vec(-1000i64..1000, 1..300),
        per_group in 1usize..40,
        lo in -1000i64..1000,
        width in 0i64..500,
    ) {
        let schema = Schema::new(vec![("x", ColumnType::Int64)]);
        let mut w = ColfWriter::new(schema, per_group);
        for v in &values {
            w.push_row(vec![Value::Int64(*v)]).unwrap();
        }
        let r = ColfReader::open(w.finish().unwrap()).unwrap();
        let pred = Predicate::Between("x".into(), Value::Int64(lo), Value::Int64(lo + width));
        let kept = r.prune(Some(&pred));
        // Rows matching in pruned-away groups would be a soundness bug.
        for rg in 0..r.row_groups() {
            if kept.contains(&rg) {
                continue;
            }
            let col = r.read_column(rg, 0).unwrap();
            let matches = pred.matching_rows(&[("x", &col)], col.len());
            prop_assert!(matches.is_empty(), "pruned group {rg} had matches");
        }
    }

    /// Histogram quantiles are bounded by min/max and monotone in q.
    #[test]
    fn histogram_quantiles_are_sane(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..500),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        let mut last = 0u64;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let est = h.quantile(q).unwrap();
            prop_assert!(est >= min && est <= max, "q{q}: {est} not in [{min},{max}]");
            prop_assert!(est >= last, "quantiles must be monotone");
            last = est;
        }
    }

    /// ByteSize display → parse is the identity.
    #[test]
    fn bytesize_display_parse_round_trip(bytes in 0u64..u64::MAX / 2) {
        let b = ByteSize::new(bytes);
        let reparsed: ByteSize = b.to_string().parse().unwrap();
        // Display rounds to 0.1 units; the round trip must stay within that.
        let tolerance = (bytes / 512).max(1);
        prop_assert!(reparsed.as_u64().abs_diff(bytes) <= tolerance,
            "{} -> {} -> {}", bytes, b, reparsed.as_u64());
    }
}
