//! # edgecache
//!
//! An embeddable, SSD-backed, page-oriented local cache for petabyte-scale
//! OLAP — a from-scratch Rust implementation of the system described in
//! *"Data Caching for Enterprise-Grade Petabyte-Scale OLAP"* (USENIX ATC
//! 2024, the Alluxio local cache), together with every substrate its
//! evaluation depends on.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `edgecache-core` | the cache manager: admission, quota, eviction, index, allocation |
//! | [`pagestore`] | `edgecache-pagestore` | page identity and SSD/memory page stores with recovery |
//! | [`storage`] | `edgecache-storage` | simulated HDFS (NameNode/DataNode), object store, device models |
//! | [`columnar`] | `edgecache-columnar` | `colf`, a Parquet-like columnar format |
//! | [`olap`] | `edgecache-olap` | a Presto-like engine with soft-affinity scheduling |
//! | [`workload`] | `edgecache-workload` | Zipf/fragmented-read/TPC-DS-like workload synthesis |
//! | [`metrics`] | `edgecache-metrics` | counters, histograms, cluster aggregation |
//! | [`common`] | `edgecache-common` | clocks, hashing, consistent-hash ring |
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use edgecache::core::config::CacheConfig;
//! use edgecache::core::manager::{CacheManager, RemoteSource, SourceFile};
//! use edgecache::pagestore::{CacheScope, MemoryPageStore};
//! use bytes::Bytes;
//!
//! struct MyStorage;
//! impl RemoteSource for MyStorage {
//!     fn read(&self, _path: &str, offset: u64, len: u64) -> edgecache::Result<Bytes> {
//!         let end = (offset + len).min(1 << 20);
//!         Ok(Bytes::from(vec![7u8; end.saturating_sub(offset) as usize]))
//!     }
//! }
//!
//! let cache = CacheManager::builder(CacheConfig::default())
//!     .with_store(Arc::new(MemoryPageStore::new()), 1 << 30)
//!     .build()?;
//! let file = SourceFile::new("/lake/t/part-0", 1, 1 << 20, CacheScope::Global);
//! let bytes = cache.read(&file, 4096, 1024, &MyStorage)?; // miss → read-through
//! let again = cache.read(&file, 4096, 1024, &MyStorage)?; // hit → local page
//! assert_eq!(bytes, again);
//! # edgecache::Result::Ok(())
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios (Presto-style query
//! caching, the HDFS DataNode cache, trace replay) and `crates/bench` for
//! the harnesses that regenerate every table and figure of the paper.

pub use edgecache_columnar as columnar;
pub use edgecache_common as common;
pub use edgecache_core as core;
pub use edgecache_distcache as distcache;
pub use edgecache_kvstore as kvstore;
pub use edgecache_metrics as metrics;
pub use edgecache_olap as olap;
pub use edgecache_pagestore as pagestore;
pub use edgecache_storage as storage;
pub use edgecache_workload as workload;

pub use edgecache_common::{Error, Result};
