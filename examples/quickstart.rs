//! Quickstart: an SSD-backed local cache in front of a (mock) remote store.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Demonstrates the embeddable cache exactly as an application would use it:
//! open a page store on local disk, wrap it in a `CacheManager`, and issue
//! file reads that are served read-through — first from the remote, then
//! from local pages.

use std::sync::Arc;

use bytes::Bytes;
use edgecache::common::ByteSize;
use edgecache::core::config::CacheConfig;
use edgecache::core::manager::{CacheManager, RemoteSource, SourceFile};
use edgecache::pagestore::{CacheScope, LocalPageStore, LocalStoreConfig};

/// A stand-in for HDFS/S3: serves deterministic bytes with a simulated
/// "slow" accounting so the speedup is visible.
struct SlowRemote;

impl RemoteSource for SlowRemote {
    fn read(&self, path: &str, offset: u64, len: u64) -> edgecache::Result<Bytes> {
        println!("  remote read: {path} [{offset}..{}]", offset + len);
        let data: Vec<u8> = (offset..offset + len).map(|i| (i % 251) as u8).collect();
        Ok(Bytes::from(data))
    }
}

fn main() -> edgecache::Result<()> {
    // 1. A page store on local disk (the "SSD"), 64 KB pages for the demo.
    let dir = std::env::temp_dir().join("edgecache-quickstart");
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(LocalPageStore::open(
        &dir,
        LocalStoreConfig {
            page_size: 64 << 10,
            ..Default::default()
        },
    )?);

    // 2. The cache manager: 1 GB capacity, LRU, 64 KB pages.
    let cache = CacheManager::builder(CacheConfig::default().with_page_size(ByteSize::kib(64)))
        .with_store(store, ByteSize::gib(1).as_u64())
        .build()?;

    // 3. Describe the remote file (path + version + length + scope).
    let file = SourceFile::new(
        "/warehouse/sales/orders/2024-01-01/part-0.parquet",
        1,
        ByteSize::mib(4).as_u64(),
        CacheScope::partition("sales", "orders", "2024-01-01"),
    );

    println!("cold read (miss → read-through):");
    let first = cache.read(&file, 100_000, 4_096, &SlowRemote)?;

    println!("warm read (hit → local SSD page, no remote line below):");
    let second = cache.read(&file, 100_000, 4_096, &SlowRemote)?;
    assert_eq!(first, second);

    println!("another range of the same page (still a hit):");
    let _ = cache.read(&file, 90_000, 1_000, &SlowRemote)?;

    let stats = cache.stats();
    println!(
        "\nstats: {} pages, {} cached, hits={}, misses={}, hit rate {:.0}%",
        stats.pages,
        ByteSize::new(stats.bytes),
        stats.hits,
        stats.misses,
        stats.hit_rate * 100.0
    );
    println!(
        "\nmetrics snapshot:\n{}",
        cache.metrics().snapshot().to_json()
    );

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
