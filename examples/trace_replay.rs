//! Trace replay: drive a DataNode from a synthetic Zipfian block trace and
//! watch I/O throttling appear the moment the cache is disabled — a
//! miniature of the paper's Figure 14 experiment.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use std::sync::Arc;

use edgecache::common::clock::SimClock;
use edgecache::common::ByteSize;
use edgecache::storage::hdfs::{DataNode, DataNodeConfig};
use edgecache::workload::hdfs_trace::{HdfsTraceConfig, HdfsTraceGen};
use edgecache::workload::replay::DataNodeReplay;

fn main() -> edgecache::Result<()> {
    let minutes = 20u64;
    let disable_at = 10u64;
    let blocks = 200usize;
    let block_size: u64 = 64 << 10;

    let clock = SimClock::new();
    let node = DataNode::new(
        "dn0",
        DataNodeConfig {
            cache_capacity: blocks as u64 * block_size / 2,
            page_size: ByteSize::kib(64),
            admission_window: Some((10, 2)),
            ..Default::default()
        },
        Arc::new(clock.clone()),
    )?;
    let mut replay = DataNodeReplay::new(Arc::new(node), clock);
    replay.prepare_blocks(blocks, block_size)?;

    let trace = HdfsTraceGen::new(HdfsTraceConfig {
        blocks,
        block_size,
        reads: 12_000 * minutes,
        writes: 0,
        zipf_s: 1.3,
        duration_ms: minutes * 60_000,
        seed: 99,
    });

    println!("replaying {minutes} minutes of trace; cache disabled at minute {disable_at}\n");
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>8}",
        "minute", "cache MB/s", "disk MB/s", "blocked", "util"
    );
    let stats = replay.run(trace, |minute, node| {
        if minute == disable_at {
            node.set_cache_enabled(false);
        }
    })?;
    for s in &stats {
        let marker = if s.minute == disable_at {
            "  <- cache disabled"
        } else {
            ""
        };
        println!(
            "{:<8} {:>12.2} {:>12.2} {:>10} {:>8.2}{marker}",
            s.minute,
            s.cache_bytes as f64 / 60.0 / 1e6,
            s.hdd_bytes as f64 / 60.0 / 1e6,
            s.blocked_processes,
            s.utilization,
        );
    }

    let with: f64 = stats[..disable_at as usize]
        .iter()
        .map(|s| s.blocked_processes as f64)
        .sum::<f64>()
        / disable_at as f64;
    let without: f64 = stats[disable_at as usize..]
        .iter()
        .map(|s| s.blocked_processes as f64)
        .sum::<f64>()
        / (stats.len() as u64 - disable_at) as f64;
    println!(
        "\navg blocked processes: {with:.0} with cache vs {without:.0} without \
         ({:.0}% reduction; the paper reports 86%)",
        (1.0 - with / without.max(1.0)) * 100.0
    );
    Ok(())
}
