//! The three-layer architecture of Figure 6: compute-layer local caches on
//! top of a distributed cache tier, on top of the data lake.
//!
//! ```text
//! cargo run --release --example distributed_tier
//! ```

use std::sync::Arc;

use edgecache::common::clock::SimClock;
use edgecache::common::ByteSize;
use edgecache::core::config::CacheConfig;
use edgecache::core::manager::{CacheManager, SourceFile};
use edgecache::distcache::{DistCacheTier, TierConfig, WorkerCacheConfig};
use edgecache::pagestore::{CacheScope, MemoryPageStore};
use edgecache::storage::ObjectStore;

fn main() -> edgecache::Result<()> {
    let clock = SimClock::new();

    // Layer 3: the data lake.
    let lake = Arc::new(ObjectStore::new(Arc::new(clock.clone())));
    let payload: Vec<u8> = (0..4_000_000u32).map(|i| (i % 247) as u8).collect();
    let version = lake.put_object("/wh/events/part-0", payload.clone());

    // Layer 2: the distributed cache tier (4 workers, ≤2 replicas per file,
    // origin fallback — the §7 configuration).
    let tier = DistCacheTier::new(
        TierConfig {
            workers: 4,
            max_replicas: 2,
            worker: WorkerCacheConfig {
                cache_capacity: ByteSize::mib(128).as_u64(),
                page_size: ByteSize::kib(256),
                ..Default::default()
            },
            ..Default::default()
        },
        lake.clone(),
        Arc::new(clock.clone()),
    )?;
    tier.register_file("/wh/events/part-0", version, payload.len() as u64);

    // Layer 1: a compute node's local cache, reading through the tier.
    let compute = CacheManager::builder(CacheConfig::default().with_page_size(ByteSize::kib(64)))
        .with_store(Arc::new(MemoryPageStore::new()), ByteSize::mib(32).as_u64())
        .build()?;
    let file = SourceFile::new(
        "/wh/events/part-0",
        version,
        payload.len() as u64,
        CacheScope::table("wh", "events"),
    );

    println!("reading the same ranges three times through three layers...");
    for round in 1..=3 {
        for chunk in 0..8u64 {
            let offset = chunk * 300_000;
            let got = compute.read(&file, offset, 10_000, &tier)?;
            assert_eq!(
                got.as_ref(),
                &payload[offset as usize..offset as usize + 10_000]
            );
        }
        println!(
            "round {round}: compute hits={}, tier served={}, lake GETs={}",
            compute.stats().hits,
            tier.stats().served_by_tier,
            lake.request_count(),
        );
    }

    // A cache-worker container bounces; the seat is kept (lazy movement)
    // and its cached pages are still valid when it returns.
    let victim = tier.worker_names()[0].clone();
    tier.worker_offline(&victim);
    println!("\n{victim} went offline (keeps its ring seat)...");
    compute.clear();
    for chunk in 0..8u64 {
        compute.read(&file, chunk * 300_000, 10_000, &tier)?;
    }
    tier.worker_online(&victim);
    println!("{victim} returned within the grace window; no data moved");
    println!(
        "final: tier cached {}, origin fallbacks {}",
        ByteSize::new(tier.stats().bytes_cached),
        tier.stats().origin_fallbacks
    );
    Ok(())
}
