//! The ML-training use case of Figure 6: "in the realm of machine learning,
//! particularly in training phases, Filesystem in Userspace (FUSE) utilizes
//! the local cache to help improve training performance and GPU
//! utilization."
//!
//! A training job reads the same dataset shards epoch after epoch, in a
//! shuffled order, through a FUSE-like read path backed by the local cache.
//! Epoch 1 pays the remote transfer; later epochs stream from local SSD,
//! keeping the (simulated) GPU fed.
//!
//! ```text
//! cargo run --release --example ml_training
//! ```

use std::sync::Arc;
use std::time::Duration;

use edgecache::common::clock::SimClock;
use edgecache::common::ByteSize;
use edgecache::core::config::CacheConfig;
use edgecache::core::manager::{CacheManager, SourceFile};
use edgecache::pagestore::{CacheScope, MemoryPageStore};
use edgecache::storage::{DeviceModel, ObjectStore};

fn main() -> edgecache::Result<()> {
    let clock = SimClock::new();
    let lake = Arc::new(ObjectStore::new(Arc::new(clock.clone())));

    // A dataset of 64 shards, 1 MB each.
    const SHARDS: usize = 64;
    const SHARD: usize = 1 << 20;
    let mut files = Vec::new();
    for s in 0..SHARDS {
        let path = format!("/datasets/imagenet-mini/shard-{s:04}.rec");
        let payload = vec![(s % 251) as u8; SHARD];
        lake.put_object(&path, payload);
        files.push(SourceFile::new(
            path,
            1,
            SHARD as u64,
            CacheScope::table("datasets", "imagenet-mini"),
        ));
    }

    // The FUSE daemon's local cache.
    let cache = CacheManager::builder(CacheConfig::default().with_page_size(ByteSize::mib(1)))
        .with_store(Arc::new(MemoryPageStore::new()), ByteSize::gib(1).as_u64())
        .build()?;

    let ssd = DeviceModel::local_ssd();
    let remote = lake.network();
    println!(
        "{:<8} {:>14} {:>14} {:>12}",
        "epoch", "io time (ms)", "from cache", "GPU util"
    );
    for epoch in 1..=4 {
        let m = cache.metrics();
        let (h0, bc0, br0, rr0) = (
            m.counter("hits").get(),
            m.counter("bytes_from_cache").get(),
            m.counter("bytes_from_remote").get(),
            m.counter("remote_requests").get(),
        );
        // Shuffled full pass: each shard read in 256 KB training batches.
        for i in 0..SHARDS {
            let shard = (i * 29 + epoch * 13) % SHARDS; // Epoch-dependent order.
            for chunk in 0..4u64 {
                cache.read(
                    &files[shard],
                    chunk * (SHARD as u64 / 4),
                    SHARD as u64 / 4,
                    lake.as_ref(),
                )?;
            }
        }
        let hits = m.counter("hits").get() - h0;
        let cache_bytes = m.counter("bytes_from_cache").get() - bc0;
        let remote_bytes = m.counter("bytes_from_remote").get() - br0;
        let remote_reqs = m.counter("remote_requests").get() - rr0;
        let io = ssd.batch_read_time(hits, cache_bytes)
            + remote.batch_read_time(remote_reqs, remote_bytes);
        // GPU utilization model: compute per epoch is fixed; I/O stalls eat
        // the rest.
        let compute = Duration::from_millis(400);
        let util = compute.as_secs_f64() / (compute + io).as_secs_f64();
        println!(
            "{epoch:<8} {:>14.1} {:>13.0}% {:>11.0}%",
            io.as_secs_f64() * 1e3,
            cache_bytes as f64 / (cache_bytes + remote_bytes) as f64 * 100.0,
            util * 100.0
        );
    }
    println!(
        "\nepoch 1 filled the cache; epochs 2+ train at SSD speed \
         ({} cached)",
        ByteSize::new(cache.index().total_bytes())
    );
    Ok(())
}
