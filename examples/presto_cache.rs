//! The Presto-local-cache scenario (§6.1): a coordinator + 4 workers with
//! embedded local caches, soft-affinity split scheduling, and a metadata
//! cache, querying a TPC-DS-like warehouse on a simulated object store.
//!
//! ```text
//! cargo run --release --example presto_cache
//! ```

use std::sync::Arc;

use edgecache::common::clock::SimClock;
use edgecache::common::ByteSize;
use edgecache::olap::{Engine, EngineConfig, WorkerConfig};
use edgecache::workload::tpcds::{TpcdsGen, TpcdsScale};

fn main() -> edgecache::Result<()> {
    println!("building the TPC-DS-like warehouse on the simulated object store...");
    let clock = SimClock::new();
    let gen = TpcdsGen::new(TpcdsScale::tiny(), 42);
    let (catalog, store) = gen.build_fresh(Arc::new(clock.clone()))?;

    let engine = Engine::new(
        catalog,
        store.clone(),
        EngineConfig {
            workers: 4,
            worker: WorkerConfig {
                cache_capacity: ByteSize::mib(256).as_u64(),
                page_size: ByteSize::kib(64),
                ..Default::default()
            },
            ..Default::default()
        },
        Arc::new(clock),
    )?;

    println!("running queries q81..q85 cold, then warm:\n");
    println!(
        "{:<6} {:>14} {:>14} {:>10}",
        "query", "cold (ms)", "warm (ms)", "saving"
    );
    for q in 81..=85 {
        let plan = gen.query(q);
        let cold = engine.execute(&plan)?;
        let warm = engine.execute(&plan)?;
        assert_eq!(cold.rows, warm.rows, "cache must never change results");
        let cold_ms = cold.stats.wall_time.as_secs_f64() * 1e3;
        let warm_ms = warm.stats.wall_time.as_secs_f64() * 1e3;
        println!(
            "q{q:<5} {cold_ms:>14.2} {warm_ms:>14.2} {:>9.0}%",
            (1.0 - warm_ms / cold_ms) * 100.0
        );
    }

    // Per-query metrics aggregate into table-level insights (§6.1.3).
    let insights = engine
        .stats_collector()
        .table_insights("tpcds.store_sales")
        .expect("queries ran");
    println!(
        "\ntable insights for tpcds.store_sales: {} queries, hit rate {:.0}%, \
         P50 inputWall {:.2} ms, {} from cache / {} from remote",
        insights.queries,
        insights.hit_rate.unwrap_or(0.0) * 100.0,
        insights.input_wall_us.p50 as f64 / 1e3,
        ByteSize::new(insights.bytes_from_cache),
        ByteSize::new(insights.bytes_from_remote),
    );
    println!(
        "object store served {} GET requests, {}",
        store.request_count(),
        ByteSize::new(store.bytes_served())
    );

    // Dropping an outdated partition purges every worker's cached pages for
    // that scope in one bulk operation (§4.4).
    let dropped = engine.drop_partition("tpcds", "store_sales", "date=2450000")?;
    println!("dropped partition date=2450000: {dropped} cached pages purged across workers");
    Ok(())
}
