//! The HDFS-local-cache scenario (§6.2): DataNodes embedding the cache with
//! the BucketTimeRateLimit admission window, snapshot-isolated appends, and
//! restart semantics.
//!
//! ```text
//! cargo run --release --example hdfs_cache
//! ```

use std::sync::Arc;

use edgecache::common::clock::SimClock;
use edgecache::common::ByteSize;
use edgecache::storage::hdfs::{DataNodeConfig, HdfsCluster, HdfsClusterConfig};

fn main() -> edgecache::Result<()> {
    let clock = SimClock::new();
    let cluster = HdfsCluster::new(
        HdfsClusterConfig {
            datanodes: 3,
            block_size: 1 << 20,
            replication: 1,
            datanode: DataNodeConfig {
                cache_capacity: ByteSize::mib(64).as_u64(),
                page_size: ByteSize::kib(64),
                // The cache rate limiter: a block earns its slot after 3
                // accesses within 10 minutes (§6.2.2).
                admission_window: Some((10, 3)),
                ..Default::default()
            },
        },
        Arc::new(clock.clone()),
    )?;

    // Write a file of several blocks.
    let data: Vec<u8> = (0..3_500_000u32).map(|i| (i % 249) as u8).collect();
    cluster.write_file("/logs/events.log", &data)?;
    println!(
        "wrote /logs/events.log: {} across blocks",
        ByteSize::new(data.len() as u64)
    );

    // Hot traffic: repeated reads of the same range. The first reads are
    // denied by the rate limiter; once the block proves hot it is cached.
    for round in 1..=5 {
        let got = cluster.read("/logs/events.log", 1_000_000, 64 << 10)?;
        assert_eq!(got.as_ref(), &data[1_000_000..1_000_000 + (64 << 10)]);
        let (hdd, cached): (u64, u64) = cluster
            .datanodes()
            .iter()
            .map(|d| (d.hdd_bytes(), d.cache_bytes()))
            .fold((0, 0), |acc, x| (acc.0 + x.0, acc.1 + x.1));
        println!(
            "round {round}: {} from disk, {} from cache",
            ByteSize::new(hdd),
            ByteSize::new(cached)
        );
    }

    // Append: the grown block gets a new generation stamp; readers see the
    // new content, never a stale-cache mix (§6.2.3).
    let extra = vec![7u8; 500_000];
    cluster.append_file("/logs/events.log", &extra)?;
    let tail = cluster.read("/logs/events.log", data.len() as u64, 500_000)?;
    assert_eq!(tail.as_ref(), &extra[..]);
    println!("appended 500000 bytes; read-after-append is coherent");

    // Restart one DataNode: its in-memory block map is gone, so its cache
    // is wiped and rebuilt from scratch.
    let dn = cluster.datanodes()[0].clone();
    let before = dn.hdd_bytes();
    dn.restart();
    cluster.read("/logs/events.log", 1_000_000, 64 << 10)?;
    println!(
        "restarted {}: post-restart reads hit the disk again ({} new disk bytes on it)",
        dn.name(),
        dn.hdd_bytes() - before
    );

    // Delete: blocks and their cache pages disappear everywhere.
    cluster.delete_file("/logs/events.log")?;
    assert!(cluster.read("/logs/events.log", 0, 10).is_err());
    println!("deleted /logs/events.log: blocks and cache entries purged");
    Ok(())
}
