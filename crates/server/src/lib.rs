//! Network front-end: the cache served over the memcached text protocol.
//!
//! Everything before this crate runs the cache embedded in one process.
//! The paper's deployment is the opposite shape: Presto workers and
//! Alluxio/HDFS clients reach the cache **over the network**, and the
//! protocol edge is where admission control, tenant quotas, and
//! backpressure actually bite. This crate adds that edge:
//!
//! * [`protocol`] — an incremental memcached text-protocol parser.
//!   Commands may arrive split at arbitrary TCP boundaries or pipelined
//!   many-per-segment; the parser buffers only bounded prefixes before
//!   committing to a command, and rejects oversized keys/values without
//!   ballooning memory.
//! * [`object`] — maps memcached objects onto the page cache: a key is a
//!   versioned [`SourceFile`](edgecache_pagestore::SourceFile), its value
//!   chunked into pages, with complete-old-or-complete-new visibility.
//!   The key's `namespace:` prefix selects the tenant scope, so the
//!   quota ledger binds remote traffic exactly like embedded callers.
//! * [`server`] — the TCP front-end: a connection semaphore, per-
//!   connection read/write deadlines, and a graceful shutdown that
//!   drains in-flight requests before severing sockets and joining every
//!   thread.
//! * [`loadgen`] — a closed-loop driver (shared by the `loadgen` binary,
//!   the e2e tests, and the `server` bench) that verifies
//!   one-response-per-request ordering and byte-exact values.
//!
//! ## Why threads, not tokio
//!
//! The workspace is offline and dependency-free by policy (see
//! `shims/`); there is no async runtime to link. The front-end therefore
//! uses a blocking reactor — one thread per connection behind an
//! accept-side semaphore — which at OLAP-cache fan-in (tens to hundreds
//! of worker connections, not C10K) measures within noise of an async
//! reactor while keeping the hot path allocation- and syscall-minimal.
//! The protocol layer is transport-agnostic (`&[u8]` in, `Vec<u8>` out),
//! so an async transport can replace [`server`] without touching it.

pub mod loadgen;
pub mod object;
pub mod protocol;
pub mod server;

#[cfg(test)]
mod proptests;

pub use loadgen::{LoadgenOptions, LoadgenReport};
pub use object::{ObjectStore, ObjectValue, SetOutcome};
pub use protocol::{Command, ParserLimits, RequestParser};
pub use server::{serve, ServerConfig, ServerHandle};
