//! `loadgen` — closed-loop memcached load driver for the edgecache server.
//!
//! ```text
//! loadgen [--addr <host:port>] [--spawn] [--conns N] [--pipeline N]
//!         [--requests N] [--value-bytes N] [--keys N] [--zipf S]
//!         [--set-ratio F] [--seed N] [--shutdown]
//! ```
//!
//! `--spawn` starts an in-process server over an in-memory cache and
//! drives that (self-contained smoke runs); otherwise the target at
//! `--addr` is driven. `--shutdown` sends the `shutdown` protocol command
//! after the run (the target must allow it). Exits nonzero if the run
//! violates the protocol contract: a request without a response, a
//! connection reset, or a corrupted value.

use std::io::Write;
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use edgecache_common::clock::system_clock;
use edgecache_common::ByteSize;
use edgecache_core::config::CacheConfig;
use edgecache_core::manager::CacheManager;
use edgecache_pagestore::MemoryPageStore;
use edgecache_server::loadgen::{run, LoadgenOptions};
use edgecache_server::server::{serve, ServerConfig, ServerHandle};

fn usage() -> ExitCode {
    eprintln!(
        "usage: loadgen [--addr <host:port>] [--spawn] [--conns N] [--pipeline N]\n  \
         [--requests N] [--value-bytes N] [--keys N] [--zipf S] [--set-ratio F]\n  \
         [--seed N] [--shutdown]"
    );
    ExitCode::from(2)
}

struct Args {
    opts: LoadgenOptions,
    spawn: bool,
    shutdown: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut opts = LoadgenOptions::default();
    let mut spawn = false;
    let mut shutdown = false;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--spawn" => spawn = true,
            "--shutdown" => shutdown = true,
            "--no-verify" => opts.verify_values = false,
            "--conns" => opts.conns = parse(value("--conns")?)?,
            "--pipeline" => opts.pipeline_depth = parse(value("--pipeline")?)?,
            "--requests" => opts.requests_per_conn = parse(value("--requests")?)?,
            "--value-bytes" => opts.mix.value_len = parse(value("--value-bytes")?)?,
            "--keys" => opts.mix.keys = parse(value("--keys")?)?,
            "--zipf" => opts.mix.zipf_s = parse(value("--zipf")?)?,
            "--set-ratio" => opts.mix.set_ratio = parse(value("--set-ratio")?)?,
            "--seed" => opts.mix.seed = parse(value("--seed")?)?,
            // Same bug class the CLI audit fixed: an unrecognized flag must
            // fail the run, not silently drive the wrong load.
            other => return Err(format!("unrecognized argument {other:?}")),
        }
    }
    if opts.conns == 0 || opts.requests_per_conn == 0 {
        return Err("--conns and --requests must be positive".into());
    }
    Ok(Args {
        opts,
        spawn,
        shutdown,
    })
}

fn parse<T: std::str::FromStr>(s: String) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad value {s:?}"))
}

fn spawn_server() -> ServerHandle {
    let clock = system_clock();
    let cache = Arc::new(
        CacheManager::builder(CacheConfig::default().with_page_size(ByteSize::kib(64)))
            .with_store(
                Arc::new(MemoryPageStore::new()),
                ByteSize::mib(256).as_u64(),
            )
            .with_clock(clock.clone())
            .build()
            .expect("build cache"),
    );
    serve(
        cache,
        clock,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            allow_shutdown_command: true,
            ..Default::default()
        },
    )
    .expect("start server")
}

fn send_shutdown(addr: &str) -> std::io::Result<()> {
    let mut s = TcpStream::connect(addr)?;
    s.set_write_timeout(Some(Duration::from_secs(5)))?;
    s.write_all(b"shutdown\r\n")
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let spawned = args.spawn.then(spawn_server);
    if let Some(handle) = &spawned {
        args.opts.addr = handle.local_addr().to_string();
        eprintln!("spawned in-process server on {}", args.opts.addr);
    }

    let report = run(&args.opts);
    println!(
        "requests={} responses={} hits={} misses={} stored={} not_stored={} deleted={} \
         errors={} resets={} mismatches={}",
        report.requests,
        report.responses,
        report.hits,
        report.misses,
        report.stored,
        report.not_stored,
        report.deleted,
        report.errors,
        report.resets,
        report.value_mismatches,
    );
    println!(
        "elapsed={:.3}s throughput={:.0} req/s p50={}us p99={}us bytes_in={} bytes_out={}",
        report.elapsed.as_secs_f64(),
        report.req_per_sec(),
        report.p50_us,
        report.p99_us,
        report.bytes_received,
        report.bytes_sent,
    );

    let mut code = ExitCode::SUCCESS;
    if let Err(e) = report.conserved() {
        eprintln!("FAIL: {e}");
        code = ExitCode::FAILURE;
    }

    if args.shutdown {
        if let Err(e) = send_shutdown(&args.opts.addr) {
            eprintln!("FAIL: shutdown command: {e}");
            code = ExitCode::FAILURE;
        }
    }
    if let Some(handle) = spawned {
        handle.shutdown();
    }
    code
}
