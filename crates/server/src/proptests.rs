//! Framing property tests: the protocol layer must be exact under every
//! adversarial transport behaviour TCP permits.
//!
//! * **Round-trip**: any sequence of valid commands, encoded to wire bytes
//!   and fed to the parser split at arbitrary byte boundaries, parses back
//!   to the identical command sequence — and re-encodes to the identical
//!   bytes. One byte at a time, one segment, or random fragments: same
//!   result.
//! * **Malformed input**: arbitrary garbage never panics the parser, never
//!   yields a command that violates the configured limits, and every
//!   rejection carries a protocol-legal error line.

#![cfg(test)]

use bytes::Bytes;
use proptest::prelude::*;

use crate::protocol::{Command, Parsed, ParserLimits, RequestParser};

fn cases() -> u32 {
    std::env::var("EDGECACHE_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Keys the protocol accepts: printable, no spaces, bounded. The class
/// includes `:` and `.` so namespaced tenant keys are exercised.
fn key_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_.:-]{1,32}"
}

fn command_strategy() -> impl Strategy<Value = Command> {
    prop_oneof![
        4 => (
            proptest::collection::vec(key_strategy(), 1..4),
            any::<bool>(),
        )
            .prop_map(|(keys, with_cas)| Command::Get { keys, with_cas }),
        4 => (
            key_strategy(),
            any::<u32>(),
            (0i64..100_000),
            any::<bool>(),
            proptest::collection::vec(any::<u8>(), 0..300),
        )
            .prop_map(|(key, flags, exptime, noreply, data)| Command::Set {
                key,
                flags,
                exptime,
                noreply,
                data: Bytes::from(data),
            }),
        2 => (key_strategy(), any::<bool>())
            .prop_map(|(key, noreply)| Command::Delete { key, noreply }),
        1 => Just(Command::Stats),
        1 => Just(Command::Version),
        1 => Just(Command::Quit),
    ]
}

/// Feeds `wire` to a fresh parser in fragments chosen by `cuts` (positions
/// mod the buffer length), draining after every fragment — exactly how a
/// connection loop consumes a socket.
fn parse_fragmented(wire: &[u8], cuts: &[u16]) -> Vec<Parsed> {
    let mut positions: Vec<usize> = cuts
        .iter()
        .map(|&c| c as usize % (wire.len() + 1))
        .collect();
    positions.push(0);
    positions.push(wire.len());
    positions.sort_unstable();
    let mut parser = RequestParser::new(ParserLimits::default());
    let mut out = Vec::new();
    for pair in positions.windows(2) {
        parser.feed(&wire[pair[0]..pair[1]]);
        while let Some(p) = parser.next() {
            out.push(p);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// encode → fragment → parse → re-encode is the identity, for any
    /// command sequence and any fragmentation of the byte stream.
    #[test]
    fn fragmented_roundtrip_is_byte_identical(
        cmds in proptest::collection::vec(command_strategy(), 1..10),
        cuts in proptest::collection::vec(any::<u16>(), 0..12),
    ) {
        let mut wire = Vec::new();
        for c in &cmds {
            c.encode(&mut wire);
        }
        let parsed = parse_fragmented(&wire, &cuts);
        prop_assert_eq!(parsed.len(), cmds.len(), "command count");
        let mut rewire = Vec::new();
        for (got, want) in parsed.iter().zip(&cmds) {
            match got {
                Parsed::Cmd(c) => {
                    prop_assert_eq!(c, want);
                    c.encode(&mut rewire);
                }
                Parsed::Bad(b) => prop_assert!(false, "valid command rejected: {:?}", b),
            }
        }
        prop_assert_eq!(rewire, wire, "re-encoding diverged");
    }

    /// Byte-at-a-time delivery equals whole-buffer delivery.
    #[test]
    fn drip_feed_equals_bulk_feed(
        cmds in proptest::collection::vec(command_strategy(), 1..6),
    ) {
        let mut wire = Vec::new();
        for c in &cmds {
            c.encode(&mut wire);
        }
        let mut bulk = RequestParser::new(ParserLimits::default());
        bulk.feed(&wire);
        let mut bulk_out = Vec::new();
        while let Some(p) = bulk.next() {
            bulk_out.push(p);
        }
        let mut drip = RequestParser::new(ParserLimits::default());
        let mut drip_out = Vec::new();
        for &b in &wire {
            drip.feed(&[b]);
            while let Some(p) = drip.next() {
                drip_out.push(p);
            }
        }
        prop_assert_eq!(&bulk_out, &drip_out);
        prop_assert_eq!(bulk_out.len(), cmds.len());
    }

    /// Arbitrary garbage: no panic, no over-limit value smuggled through,
    /// every reply line is protocol-legal, and the parser keeps making
    /// progress (drains to quiescence on every feed).
    #[test]
    fn garbage_never_panics_or_exceeds_limits(
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 1..8),
    ) {
        let limits = ParserLimits {
            max_key_len: 16,
            max_value_len: 64,
            max_line_len: 128,
        };
        let mut parser = RequestParser::new(limits.clone());
        for chunk in &chunks {
            parser.feed(chunk);
            while let Some(p) = parser.next() {
                match p {
                    Parsed::Cmd(Command::Set { key, data, .. }) => {
                        prop_assert!(key.len() <= limits.max_key_len);
                        prop_assert!(data.len() <= limits.max_value_len);
                    }
                    Parsed::Cmd(Command::Get { keys, .. }) => {
                        for k in keys {
                            prop_assert!(k.len() <= limits.max_key_len);
                        }
                    }
                    Parsed::Cmd(_) => {}
                    Parsed::Bad(bad) => {
                        prop_assert!(
                            bad.reply.starts_with("ERROR")
                                || bad.reply.starts_with("CLIENT_ERROR")
                                || bad.reply.starts_with("SERVER_ERROR"),
                            "illegal error line {:?}",
                            bad.reply
                        );
                        prop_assert!(bad.reply.ends_with("\r\n"));
                    }
                }
            }
        }
        // Whatever is left buffered is bounded: one partial frame, not the
        // whole garbage history.
        prop_assert!(
            parser.pending_bytes()
                <= limits.max_line_len + limits.max_value_len + 2 + 64,
            "parser ballooned: {} bytes pending",
            parser.pending_bytes()
        );
    }
}
