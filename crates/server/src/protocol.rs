//! Incremental memcached text-protocol framing.
//!
//! The parser is the part of a network cache that real traffic breaks: TCP
//! delivers bytes, not lines, so a command may arrive split at *any* byte
//! boundary — including inside the `\r\n` terminator or in the middle of a
//! `set` data block — and a pipelining client packs many commands into one
//! segment. [`RequestParser`] therefore consumes arbitrary byte chunks via
//! [`RequestParser::feed`] and yields complete [`Command`]s via
//! [`RequestParser::next`], carrying its state across reads.
//!
//! Hardening at this layer (the edge the server exposes to untrusted
//! clients) follows the memcached protocol spec:
//!
//! * keys are limited to [`ParserLimits::max_key_len`] bytes (250 in the
//!   spec) and must be printable ASCII with no whitespace or control
//!   characters;
//! * `set` data blocks are bounded by [`ParserLimits::max_value_len`]; the
//!   declared byte count is validated *before* any buffering is committed,
//!   so a hostile `set k 0 0 99999999999` cannot balloon memory;
//! * command lines are bounded by [`ParserLimits::max_line_len`]; a longer
//!   line without a terminator is a fatal framing error (the connection
//!   must close, since resynchronization is impossible);
//! * a data block whose trailing `\r\n` is missing consumes exactly the
//!   declared bytes and reports `CLIENT_ERROR bad data chunk`, exactly as
//!   memcached does, keeping the stream synchronized.
//!
//! Responses are encoded by the free functions at the bottom; commands are
//! re-encodable via [`Command::encode`], which the framing proptest uses to
//! round-trip random pipelined buffers byte-identically.

use bytes::Bytes;

/// The spec's key-length limit.
pub const SPEC_MAX_KEY_LEN: usize = 250;

/// Size limits the parser enforces at the frame boundary.
#[derive(Debug, Clone)]
pub struct ParserLimits {
    /// Longest accepted key, in bytes (≤ 250 per the memcached spec).
    pub max_key_len: usize,
    /// Largest accepted `set` data block, in bytes.
    pub max_value_len: usize,
    /// Longest accepted command line (everything up to `\r\n`).
    pub max_line_len: usize,
}

impl Default for ParserLimits {
    fn default() -> Self {
        Self {
            max_key_len: SPEC_MAX_KEY_LEN,
            max_value_len: 8 << 20,
            max_line_len: 8192,
        }
    }
}

/// One complete client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `get`/`gets` with one or more keys. `with_cas` selects the `gets`
    /// response shape (VALUE lines carry the cas unique).
    Get { keys: Vec<String>, with_cas: bool },
    /// `set <key> <flags> <exptime> <bytes> [noreply]` plus its data block.
    Set {
        key: String,
        flags: u32,
        exptime: i64,
        noreply: bool,
        data: Bytes,
    },
    /// `delete <key> [noreply]`.
    Delete { key: String, noreply: bool },
    /// `stats`.
    Stats,
    /// `version`.
    Version,
    /// `quit` — close the connection.
    Quit,
    /// `shutdown` — ask the server to stop (accepted only when the server
    /// is configured to allow it).
    Shutdown,
}

impl Command {
    /// Whether the client asked for the reply to be suppressed.
    pub fn noreply(&self) -> bool {
        match self {
            Command::Set { noreply, .. } | Command::Delete { noreply, .. } => *noreply,
            _ => false,
        }
    }

    /// Encodes the command exactly as a client would send it (the inverse
    /// of parsing; the framing proptest round-trips through this).
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Command::Get { keys, with_cas } => {
                out.extend_from_slice(if *with_cas { b"gets" } else { b"get" });
                for k in keys {
                    out.push(b' ');
                    out.extend_from_slice(k.as_bytes());
                }
                out.extend_from_slice(b"\r\n");
            }
            Command::Set {
                key,
                flags,
                exptime,
                noreply,
                data,
            } => {
                out.extend_from_slice(
                    format!("set {key} {flags} {exptime} {}", data.len()).as_bytes(),
                );
                if *noreply {
                    out.extend_from_slice(b" noreply");
                }
                out.extend_from_slice(b"\r\n");
                out.extend_from_slice(data);
                out.extend_from_slice(b"\r\n");
            }
            Command::Delete { key, noreply } => {
                out.extend_from_slice(format!("delete {key}").as_bytes());
                if *noreply {
                    out.extend_from_slice(b" noreply");
                }
                out.extend_from_slice(b"\r\n");
            }
            Command::Stats => out.extend_from_slice(b"stats\r\n"),
            Command::Version => out.extend_from_slice(b"version\r\n"),
            Command::Quit => out.extend_from_slice(b"quit\r\n"),
            Command::Shutdown => out.extend_from_slice(b"shutdown\r\n"),
        }
    }
}

/// A request the parser rejected. `reply` is the full protocol error line;
/// `fatal` means framing synchronization is lost and the connection must
/// close after the reply is sent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadRequest {
    pub reply: String,
    pub fatal: bool,
}

impl BadRequest {
    fn client(msg: &str) -> Self {
        Self {
            reply: format!("CLIENT_ERROR {msg}\r\n"),
            fatal: false,
        }
    }

    fn fatal(msg: &str) -> Self {
        Self {
            reply: format!("CLIENT_ERROR {msg}\r\n"),
            fatal: true,
        }
    }

    fn unknown() -> Self {
        Self {
            reply: "ERROR\r\n".to_string(),
            fatal: false,
        }
    }
}

/// One parsing outcome: a command, or a rejection to report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed {
    Cmd(Command),
    Bad(BadRequest),
}

/// A `set` whose command line has been accepted and whose data block is
/// still streaming in.
#[derive(Debug)]
struct PendingSet {
    key: String,
    flags: u32,
    exptime: i64,
    noreply: bool,
    bytes: usize,
}

#[derive(Debug)]
enum State {
    /// Waiting for a complete `\r\n`-terminated command line.
    Line,
    /// Waiting for `pending.bytes + 2` bytes of data block (value + CRLF).
    Data(PendingSet),
}

/// Incremental parser: feed bytes, drain commands. Carries partial lines
/// and partial data blocks across feeds, so it is correct for any split of
/// the input stream — the framing proptest feeds every byte one at a time.
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed (compacted lazily to amortize).
    consumed: usize,
    state: State,
    limits: ParserLimits,
}

impl RequestParser {
    /// Creates a parser with the given limits.
    pub fn new(limits: ParserLimits) -> Self {
        Self {
            buf: Vec::with_capacity(4096),
            consumed: 0,
            state: State::Line,
            limits,
        }
    }

    /// Appends raw bytes from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: keeps the buffer bounded by one in-flight
        // frame plus one read, not the whole connection history.
        if self.consumed > 0 && (self.consumed >= 4096 || self.consumed == self.buf.len()) {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame. Non-zero
    /// after draining means a partial command is in flight.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Returns the next complete command (or rejection), or `None` if more
    /// bytes are needed. Call in a loop to drain pipelined input.
    #[allow(clippy::should_implement_trait)] // iterator-style by design
    pub fn next(&mut self) -> Option<Parsed> {
        match &self.state {
            State::Line => self.next_line(),
            State::Data(_) => self.next_data(),
        }
    }

    fn next_line(&mut self) -> Option<Parsed> {
        let start = self.consumed;
        let rel = self.buf[start..].iter().position(|&b| b == b'\n');
        let Some(rel) = rel else {
            // No terminator yet: an over-long line can never become valid,
            // and waiting for its end would buffer attacker-controlled
            // bytes without bound.
            if self.buf.len() - start > self.limits.max_line_len {
                self.consumed = self.buf.len();
                return Some(Parsed::Bad(BadRequest::fatal("command line too long")));
            }
            return None;
        };
        let end = start + rel; // index of b'\n'
        self.consumed = end + 1;
        if end - start > self.limits.max_line_len {
            return Some(Parsed::Bad(BadRequest::fatal("command line too long")));
        }
        // The spec terminates lines with \r\n; a bare \n is a framing error
        // (but a recoverable one — the stream is still line-synchronized).
        if end == start || self.buf[end - 1] != b'\r' {
            return Some(Parsed::Bad(BadRequest::client(
                "line not \\r\\n terminated",
            )));
        }
        let line = &self.buf[start..end - 1];
        // Split on single spaces; empty tokens (doubled/leading/trailing
        // spaces) are malformed.
        let mut tokens = Vec::new();
        for tok in line.split(|&b| b == b' ') {
            if tok.is_empty() {
                return Some(Parsed::Bad(BadRequest::client("malformed spacing")));
            }
            tokens.push(tok);
        }
        if tokens.is_empty() {
            return Some(Parsed::Bad(BadRequest::unknown()));
        }
        match parse_line(&tokens, &self.limits) {
            Ok(Line::Cmd(cmd)) => Some(Parsed::Cmd(cmd)),
            Ok(Line::SetHeader(pending)) => {
                self.state = State::Data(pending);
                self.next_data()
            }
            Err(bad) => Some(Parsed::Bad(bad)),
        }
    }

    fn next_data(&mut self) -> Option<Parsed> {
        let State::Data(pending) = &self.state else {
            unreachable!("next_data called outside Data state");
        };
        let need = pending.bytes + 2; // value + \r\n
        if self.buf.len() - self.consumed < need {
            return None;
        }
        let start = self.consumed;
        let data_end = start + pending.bytes;
        self.consumed = start + need;
        let terminated = &self.buf[data_end..data_end + 2] == b"\r\n";
        let State::Data(pending) = std::mem::replace(&mut self.state, State::Line) else {
            unreachable!();
        };
        if !terminated {
            // Consume the declared bytes to stay synchronized, then report —
            // memcached's "bad data chunk" behaviour. The stream position
            // after the declared length is unknowable, so this is fatal.
            return Some(Parsed::Bad(BadRequest::fatal("bad data chunk")));
        }
        let data = Bytes::from(self.buf[start..data_end].to_vec());
        Some(Parsed::Cmd(Command::Set {
            key: pending.key,
            flags: pending.flags,
            exptime: pending.exptime,
            noreply: pending.noreply,
            data,
        }))
    }
}

/// Validates a key: bounded length, printable ASCII, no space/control
/// characters (the spec's definition, and what keeps keys safe to echo
/// into VALUE lines and stats output).
fn valid_key(key: &[u8], limits: &ParserLimits) -> Result<(), BadRequest> {
    if key.is_empty() {
        return Err(BadRequest::client("empty key"));
    }
    if key.len() > limits.max_key_len {
        return Err(BadRequest::client("key too long"));
    }
    if key.iter().any(|&b| !(0x21..=0x7e).contains(&b)) {
        return Err(BadRequest::client("key contains invalid characters"));
    }
    Ok(())
}

fn parse_u32(tok: &[u8]) -> Option<u32> {
    std::str::from_utf8(tok).ok()?.parse().ok()
}

fn parse_i64(tok: &[u8]) -> Option<i64> {
    std::str::from_utf8(tok).ok()?.parse().ok()
}

/// A parsed command line: either a complete command, or a `set` header
/// whose data block is still to come.
enum Line {
    Cmd(Command),
    SetHeader(PendingSet),
}

/// Parses one command line.
fn parse_line(tokens: &[&[u8]], limits: &ParserLimits) -> Result<Line, BadRequest> {
    let cmd = tokens[0];
    let args = &tokens[1..];
    match cmd {
        b"get" | b"gets" => {
            if args.is_empty() {
                return Err(BadRequest::unknown());
            }
            let mut keys = Vec::with_capacity(args.len());
            for k in args {
                valid_key(k, limits)?;
                keys.push(String::from_utf8(k.to_vec()).expect("validated ASCII"));
            }
            Ok(Line::Cmd(Command::Get {
                keys,
                with_cas: cmd == b"gets",
            }))
        }
        b"set" => {
            if args.len() != 4 && args.len() != 5 {
                return Err(BadRequest::unknown());
            }
            valid_key(args[0], limits)?;
            let key = String::from_utf8(args[0].to_vec()).expect("validated ASCII");
            let flags = parse_u32(args[1]).ok_or_else(|| BadRequest::client("bad flags value"))?;
            let exptime =
                parse_i64(args[2]).ok_or_else(|| BadRequest::client("bad exptime value"))?;
            let bytes: usize = std::str::from_utf8(args[3])
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| BadRequest::client("bad byte count"))?;
            if bytes > limits.max_value_len {
                // Reject before buffering: the connection stays synchronized
                // only if we *don't* enter data state, so this is fatal —
                // exactly how memcached treats an over-limit object
                // ("SERVER_ERROR object too large for cache", then close).
                return Err(BadRequest {
                    reply: "SERVER_ERROR object too large for cache\r\n".to_string(),
                    fatal: true,
                });
            }
            let noreply = match args.get(4) {
                None => false,
                Some(&b"noreply") => true,
                Some(_) => return Err(BadRequest::client("expected noreply")),
            };
            Ok(Line::SetHeader(PendingSet {
                key,
                flags,
                exptime,
                noreply,
                bytes,
            }))
        }
        b"delete" => {
            if args.is_empty() || args.len() > 2 {
                return Err(BadRequest::unknown());
            }
            valid_key(args[0], limits)?;
            let key = String::from_utf8(args[0].to_vec()).expect("validated ASCII");
            let noreply = match args.get(1) {
                None => false,
                Some(&b"noreply") => true,
                Some(_) => return Err(BadRequest::client("expected noreply")),
            };
            Ok(Line::Cmd(Command::Delete { key, noreply }))
        }
        // Admin commands take no arguments; stray arguments are the same
        // bug class the CLI audit fixed — reject, don't ignore.
        b"stats" if args.is_empty() => Ok(Line::Cmd(Command::Stats)),
        b"version" if args.is_empty() => Ok(Line::Cmd(Command::Version)),
        b"quit" if args.is_empty() => Ok(Line::Cmd(Command::Quit)),
        b"shutdown" if args.is_empty() => Ok(Line::Cmd(Command::Shutdown)),
        b"stats" | b"version" | b"quit" | b"shutdown" => {
            Err(BadRequest::client("unexpected arguments"))
        }
        _ => Err(BadRequest::unknown()),
    }
}

// ---------------------------------------------------------------------------
// Response encoding.
// ---------------------------------------------------------------------------

/// One `VALUE` line plus data block (`gets` responses carry `cas`).
pub fn encode_value(out: &mut Vec<u8>, key: &str, flags: u32, data: &[u8], cas: Option<u64>) {
    match cas {
        Some(c) => {
            out.extend_from_slice(format!("VALUE {key} {flags} {} {c}\r\n", data.len()).as_bytes())
        }
        None => out.extend_from_slice(format!("VALUE {key} {flags} {}\r\n", data.len()).as_bytes()),
    }
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}

/// Terminates a `get`/`gets`/`stats` response.
pub fn encode_end(out: &mut Vec<u8>) {
    out.extend_from_slice(b"END\r\n");
}

/// One `STAT` line.
pub fn encode_stat(out: &mut Vec<u8>, name: &str, value: impl std::fmt::Display) {
    out.extend_from_slice(format!("STAT {name} {value}\r\n").as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parser() -> RequestParser {
        RequestParser::new(ParserLimits::default())
    }

    fn drain(p: &mut RequestParser) -> Vec<Parsed> {
        let mut out = Vec::new();
        while let Some(x) = p.next() {
            out.push(x);
        }
        out
    }

    #[test]
    fn get_set_delete_roundtrip() {
        let mut p = parser();
        p.feed(b"set k1 7 0 5\r\nhello\r\nget k1 k2\r\ndelete k1 noreply\r\n");
        let cmds = drain(&mut p);
        assert_eq!(
            cmds,
            vec![
                Parsed::Cmd(Command::Set {
                    key: "k1".into(),
                    flags: 7,
                    exptime: 0,
                    noreply: false,
                    data: Bytes::from_static(b"hello"),
                }),
                Parsed::Cmd(Command::Get {
                    keys: vec!["k1".into(), "k2".into()],
                    with_cas: false,
                }),
                Parsed::Cmd(Command::Delete {
                    key: "k1".into(),
                    noreply: true,
                }),
            ]
        );
        assert_eq!(p.pending_bytes(), 0);
    }

    #[test]
    fn split_at_every_boundary() {
        let stream = b"set key 1 0 3\r\nabc\r\ngets key\r\nquit\r\n";
        for split in 0..stream.len() {
            let mut p = parser();
            p.feed(&stream[..split]);
            let mut got = drain(&mut p);
            p.feed(&stream[split..]);
            got.extend(drain(&mut p));
            assert_eq!(got.len(), 3, "split at {split}");
            assert!(
                matches!(&got[0], Parsed::Cmd(Command::Set { data, .. }) if data.as_ref() == b"abc"),
                "split at {split}"
            );
        }
    }

    #[test]
    fn binary_data_block_may_contain_crlf() {
        let mut p = parser();
        p.feed(b"set k 0 0 4\r\n\r\n\r\n\r\n");
        let cmds = drain(&mut p);
        assert_eq!(cmds.len(), 1);
        assert!(
            matches!(&cmds[0], Parsed::Cmd(Command::Set { data, .. }) if data.as_ref() == b"\r\n\r\n")
        );
    }

    #[test]
    fn unterminated_data_chunk_is_fatal() {
        let mut p = parser();
        p.feed(b"set k 0 0 3\r\nabcXYget k\r\n");
        let cmds = drain(&mut p);
        assert!(
            matches!(&cmds[0], Parsed::Bad(b) if b.fatal && b.reply.contains("bad data chunk"))
        );
    }

    #[test]
    fn oversized_declared_value_is_rejected_before_buffering() {
        let mut p = RequestParser::new(ParserLimits {
            max_value_len: 16,
            ..Default::default()
        });
        p.feed(b"set k 0 0 17\r\n");
        let cmds = drain(&mut p);
        assert!(
            matches!(&cmds[0], Parsed::Bad(b) if b.fatal && b.reply.starts_with("SERVER_ERROR object too large"))
        );
    }

    #[test]
    fn oversized_key_and_bad_characters_rejected() {
        let mut p = parser();
        let long = "k".repeat(SPEC_MAX_KEY_LEN + 1);
        p.feed(format!("get {long}\r\n").as_bytes());
        p.feed(b"get ok\x01key\r\n");
        let cmds = drain(&mut p);
        assert!(matches!(&cmds[0], Parsed::Bad(b) if b.reply.contains("key too long")));
        assert!(matches!(&cmds[1], Parsed::Bad(b) if b.reply.contains("invalid characters")));
    }

    #[test]
    fn overlong_line_without_terminator_is_fatal() {
        let mut p = RequestParser::new(ParserLimits {
            max_line_len: 32,
            ..Default::default()
        });
        p.feed(&[b'a'; 64]);
        let cmds = drain(&mut p);
        assert!(matches!(&cmds[0], Parsed::Bad(b) if b.fatal));
    }

    #[test]
    fn bare_newline_and_bad_spacing_are_recoverable_errors() {
        let mut p = parser();
        p.feed(b"get k\nget  k\r\nversion\r\n");
        let cmds = drain(&mut p);
        assert!(matches!(&cmds[0], Parsed::Bad(b) if !b.fatal));
        assert!(matches!(&cmds[1], Parsed::Bad(b) if !b.fatal));
        assert_eq!(cmds[2], Parsed::Cmd(Command::Version));
    }

    #[test]
    fn admin_commands_reject_stray_arguments() {
        let mut p = parser();
        p.feed(b"stats\r\nstats extra\r\nversion now\r\nquit fast\r\nshutdown x\r\n");
        let cmds = drain(&mut p);
        assert_eq!(cmds[0], Parsed::Cmd(Command::Stats));
        for c in &cmds[1..] {
            assert!(matches!(c, Parsed::Bad(b) if b.reply.contains("unexpected arguments")));
        }
    }

    #[test]
    fn unknown_command_is_error_not_close() {
        let mut p = parser();
        p.feed(b"incr k 1\r\nversion\r\n");
        let cmds = drain(&mut p);
        assert_eq!(
            cmds[0],
            Parsed::Bad(BadRequest {
                reply: "ERROR\r\n".into(),
                fatal: false
            })
        );
        assert_eq!(cmds[1], Parsed::Cmd(Command::Version));
    }

    #[test]
    fn zero_length_value_roundtrips() {
        let mut p = parser();
        p.feed(b"set empty 0 0 0\r\n\r\n");
        let cmds = drain(&mut p);
        assert!(matches!(&cmds[0], Parsed::Cmd(Command::Set { data, .. }) if data.is_empty()));
    }

    #[test]
    fn encode_parses_back() {
        let cmds = vec![
            Command::Set {
                key: "ns:k".into(),
                flags: 42,
                exptime: 100,
                noreply: true,
                data: Bytes::from_static(b"\x00\xffbinary"),
            },
            Command::Get {
                keys: vec!["a".into(), "b".into()],
                with_cas: true,
            },
            Command::Delete {
                key: "a".into(),
                noreply: false,
            },
            Command::Stats,
            Command::Version,
            Command::Quit,
        ];
        let mut wire = Vec::new();
        for c in &cmds {
            c.encode(&mut wire);
        }
        let mut p = parser();
        p.feed(&wire);
        let parsed = drain(&mut p);
        assert_eq!(
            parsed,
            cmds.into_iter().map(Parsed::Cmd).collect::<Vec<_>>()
        );
    }
}
