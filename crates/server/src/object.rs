//! Key/value objects mapped onto the page cache.
//!
//! The memcached protocol speaks opaque keys and whole values; the cache
//! underneath speaks `SourceFile`s, pages, and byte ranges. This layer is
//! the adapter: each key becomes a `SourceFile` whose path is the key and
//! whose pages hold the value split at the cache's page size, so every
//! byte a remote client stores flows through the same admission, quota,
//! scope-ledger, eviction, and (optionally) DRAM/SSD tier machinery as the
//! embedded read path — `stats` on the wire surfaces the very same
//! registry the conservation laws audit.
//!
//! ## Tenant namespaces
//!
//! A key of the form `<namespace>:<rest>` is accounted under the cache
//! scope parsed from the dotted namespace (`sales.orders:frag7` → the
//! `sales.orders` table scope), so per-tenant quotas configured on the
//! manager — the PR 5 scope ledger — bind remote clients with no extra
//! bookkeeping. Keys without a namespace land in the global scope.
//!
//! ## Consistency
//!
//! Every `set` writes a *new* file version (a fresh `FileId`), publishes
//! all pages, and only then swaps the key's metadata and deletes the old
//! version — a reader that raced the swap served the complete old value,
//! never a torn mix. A `get` that finds any page missing (evicted, or a
//! version swept mid-read) treats the whole object as a miss and drops the
//! stale metadata, mirroring cache semantics: eviction may shed partial
//! objects, the protocol never serves them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::{Bytes, BytesMut};
use edgecache_common::clock::SharedClock;
use edgecache_common::error::Error;
use edgecache_core::manager::{CacheManager, SourceFile};
use edgecache_pagestore::{CacheScope, FileId};
use parking_lot::RwLock;

/// Seconds-threshold above which a memcached exptime is an absolute Unix
/// timestamp rather than a relative offset (30 days, per the spec).
const EXPTIME_ABSOLUTE_CUTOFF: i64 = 60 * 60 * 24 * 30;

const SHARDS: usize = 64;

/// Everything the protocol needs to answer a hit.
#[derive(Debug, Clone)]
pub struct ObjectValue {
    pub flags: u32,
    pub cas: u64,
    pub data: Bytes,
}

/// Per-key metadata: which file version holds the value and how to serve it.
#[derive(Debug, Clone)]
struct ObjMeta {
    version: u64,
    length: u64,
    flags: u32,
    cas: u64,
    /// Absolute expiry on the manager's clock, `None` = never.
    expires_ms: Option<u64>,
}

/// The outcome of a `set`.
#[derive(Debug, PartialEq, Eq)]
pub enum SetOutcome {
    /// Value cached; `STORED`.
    Stored,
    /// Admission or quota declined the value; `NOT_STORED`. The cache is
    /// allowed to refuse — the client treats it like an instant eviction.
    NotStored,
    /// An internal error (I/O, store) — `SERVER_ERROR` with the message.
    Error(String),
}

/// Key table + page-cache adapter shared by every connection.
pub struct ObjectStore {
    cache: Arc<CacheManager>,
    shards: Vec<RwLock<HashMap<String, ObjMeta>>>,
    /// Monotonic source of both cas uniques and file versions.
    cas: AtomicU64,
    clock: SharedClock,
}

impl ObjectStore {
    /// Wraps a cache manager. The manager's clock drives expiry.
    pub fn new(cache: Arc<CacheManager>, clock: SharedClock) -> Self {
        Self {
            cache,
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            cas: AtomicU64::new(1),
            clock,
        }
    }

    /// The wrapped manager (stats, metrics, quota wiring).
    pub fn cache(&self) -> &Arc<CacheManager> {
        &self.cache
    }

    /// Number of live keys (drifts under races; for stats only).
    pub fn keys(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    fn shard(&self, key: &str) -> &RwLock<HashMap<String, ObjMeta>> {
        &self.shards[edgecache_common::hash::hash_str(key) as usize % SHARDS]
    }

    /// The cache scope a key is accounted under: the dotted namespace
    /// before the first `:`, or the global scope. This is what makes
    /// per-tenant quotas on the manager bind remote traffic.
    pub fn scope_of(key: &str) -> CacheScope {
        match key.split_once(':') {
            Some((ns, _)) if !ns.is_empty() => CacheScope::parse(ns),
            _ => CacheScope::Global,
        }
    }

    fn source(&self, key: &str, version: u64, length: u64) -> SourceFile {
        SourceFile::new(key, version, length, Self::scope_of(key))
    }

    /// Converts a protocol exptime to an absolute clock deadline.
    fn deadline_of(&self, exptime: i64) -> Option<Option<u64>> {
        match exptime {
            0 => Some(None),
            t if t < 0 => None, // already expired
            t if t <= EXPTIME_ABSOLUTE_CUTOFF => {
                Some(Some(self.clock.now_millis() + (t as u64) * 1000))
            }
            t => Some(Some((t as u64) * 1000)), // absolute Unix seconds
        }
    }

    /// Stores a value under a key.
    pub fn set(&self, key: &str, flags: u32, exptime: i64, data: &[u8]) -> SetOutcome {
        let expires_ms = match self.deadline_of(exptime) {
            Some(deadline) => deadline,
            None => {
                // Negative exptime: memcached stores-then-expires; the
                // observable effect is simply that the key is gone.
                self.delete(key);
                return SetOutcome::Stored;
            }
        };
        let version = self.cas.fetch_add(1, Ordering::Relaxed);
        let file = self.source(key, version, data.len() as u64);
        let page = self.cache.page_size() as usize;
        for (i, chunk) in data.chunks(page.max(1)).enumerate() {
            match self.cache.put_page(&file, i as u64, chunk) {
                Ok(()) => {}
                Err(Error::NotAdmitted(_)) | Err(Error::QuotaExceeded(_)) => {
                    // Roll the partial publish back; the old version (if
                    // any) stays live and intact.
                    self.cache.delete_file(file.file_id());
                    return SetOutcome::NotStored;
                }
                Err(e) => {
                    self.cache.delete_file(file.file_id());
                    return SetOutcome::Error(e.to_string());
                }
            }
        }
        // Zero-length values publish no pages; the metadata alone carries
        // them (length 0 reassembles to an empty buffer).
        let meta = ObjMeta {
            version,
            length: data.len() as u64,
            flags,
            cas: version,
            expires_ms,
        };
        let old = self.shard(key).write().insert(key.to_string(), meta);
        if let Some(old) = old {
            // The new version is visible; the old version's pages are dead
            // weight. Delete outside the shard lock — it takes stripe locks.
            self.cache
                .delete_file(FileId::from_path_version(key, old.version));
        }
        SetOutcome::Stored
    }

    /// Fetches a value. `None` is a miss (never-stored, expired, or
    /// partially evicted).
    pub fn get(&self, key: &str) -> Option<ObjectValue> {
        // Clone the metadata out of the shard lock: page reads do I/O and
        // must not serialize other keys in the shard.
        let meta = self.shard(key).read().get(key).cloned()?;
        if let Some(deadline) = meta.expires_ms {
            if self.clock.now_millis() >= deadline {
                self.drop_version(key, &meta);
                return None;
            }
        }
        if meta.length == 0 {
            return Some(ObjectValue {
                flags: meta.flags,
                cas: meta.cas,
                data: Bytes::new(),
            });
        }
        let file = self.source(key, meta.version, meta.length);
        let page = self.cache.page_size();
        let pages = meta.length.div_ceil(page);
        let mut parts = Vec::with_capacity(pages as usize);
        for i in 0..pages {
            let len = (meta.length - i * page).min(page);
            match self.cache.get_page(&file, i, 0, len) {
                Ok(bytes) if bytes.len() as u64 == len => parts.push(bytes),
                // Any missing/short/corrupt page voids the whole object:
                // partial values are never served.
                _ => {
                    self.drop_version(key, &meta);
                    return None;
                }
            }
        }
        let data = if parts.len() == 1 {
            parts.pop().expect("one part") // zero-copy single-page hit
        } else {
            let mut out = BytesMut::with_capacity(meta.length as usize);
            for p in &parts {
                out.extend_from_slice(p);
            }
            out.freeze()
        };
        Some(ObjectValue {
            flags: meta.flags,
            cas: meta.cas,
            data,
        })
    }

    /// Deletes a key. Returns whether it existed.
    pub fn delete(&self, key: &str) -> bool {
        let meta = self.shard(key).write().remove(key);
        match meta {
            Some(meta) => {
                self.cache
                    .delete_file(FileId::from_path_version(key, meta.version));
                true
            }
            None => false,
        }
    }

    /// Drops a key's entry *only if* it still maps to `meta`'s version (a
    /// concurrent `set` may have replaced it), then deletes that version's
    /// pages. Used by the miss/expiry cleanup paths.
    fn drop_version(&self, key: &str, meta: &ObjMeta) {
        let mut shard = self.shard(key).write();
        if shard.get(key).is_some_and(|m| m.version == meta.version) {
            shard.remove(key);
        }
        drop(shard);
        self.cache
            .delete_file(FileId::from_path_version(key, meta.version));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgecache_common::{ByteSize, SimClock};
    use edgecache_core::config::CacheConfig;
    use edgecache_pagestore::MemoryPageStore;
    use std::time::Duration;

    fn store_with(page: u64, capacity: u64) -> (ObjectStore, Arc<SimClock>) {
        let clock = Arc::new(SimClock::new());
        let cache = Arc::new(
            CacheManager::builder(CacheConfig::default().with_page_size(ByteSize::new(page)))
                .with_store(Arc::new(MemoryPageStore::new()), capacity)
                .with_clock(clock.clone())
                .build()
                .unwrap(),
        );
        (ObjectStore::new(cache, clock.clone()), clock)
    }

    #[test]
    fn set_get_roundtrip_multi_page() {
        let (s, _) = store_with(8, 1 << 20);
        let value: Vec<u8> = (0..100u8).collect(); // 13 pages of 8
        assert_eq!(s.set("k", 7, 0, &value), SetOutcome::Stored);
        let got = s.get("k").unwrap();
        assert_eq!(got.data.as_ref(), &value[..]);
        assert_eq!(got.flags, 7);
        assert!(s.get("other").is_none());
    }

    #[test]
    fn zero_length_value() {
        let (s, _) = store_with(8, 1 << 20);
        assert_eq!(s.set("empty", 3, 0, b""), SetOutcome::Stored);
        let got = s.get("empty").unwrap();
        assert!(got.data.is_empty());
        assert_eq!(got.flags, 3);
    }

    #[test]
    fn overwrite_bumps_cas_and_frees_old_pages() {
        let (s, _) = store_with(8, 1 << 20);
        s.set("k", 0, 0, b"aaaaaaaaaaaaaaaa");
        let first = s.get("k").unwrap();
        s.set("k", 0, 0, b"bb");
        let second = s.get("k").unwrap();
        assert_eq!(second.data.as_ref(), b"bb");
        assert!(second.cas > first.cas, "cas must advance on overwrite");
        // Old version's pages are deleted: only ceil(2/8)=1 page remains.
        assert_eq!(s.cache().stats().pages, 1);
    }

    #[test]
    fn delete_removes_pages() {
        let (s, _) = store_with(8, 1 << 20);
        s.set("k", 0, 0, b"0123456789");
        assert!(s.delete("k"));
        assert!(!s.delete("k"));
        assert!(s.get("k").is_none());
        assert_eq!(s.cache().stats().pages, 0);
    }

    #[test]
    fn relative_expiry_on_the_clock() {
        let (s, clock) = store_with(64, 1 << 20);
        s.set("k", 0, 5, b"soon");
        assert!(s.get("k").is_some());
        clock.advance(Duration::from_secs(6));
        assert!(s.get("k").is_none(), "expired");
        assert_eq!(s.cache().stats().pages, 0, "expiry frees pages");
    }

    #[test]
    fn negative_expiry_deletes() {
        let (s, _) = store_with(64, 1 << 20);
        s.set("k", 0, 0, b"v");
        assert_eq!(s.set("k", 0, -1, b"x"), SetOutcome::Stored);
        assert!(s.get("k").is_none());
    }

    #[test]
    fn eviction_of_a_page_voids_the_object() {
        // Capacity of 4 pages of 8 bytes; a 32-byte object fills it, the
        // next set evicts some of its pages.
        let (s, _) = store_with(8, 32);
        s.set("big", 0, 0, &[1u8; 32]);
        s.set("other", 0, 0, &[2u8; 16]);
        // "big" lost pages to make room: must be a clean miss, not a torn
        // value, and its leftovers must be reclaimed.
        assert!(s.get("big").is_none());
        let got = s.get("other").unwrap();
        assert_eq!(got.data.as_ref(), &[2u8; 16]);
    }

    #[test]
    fn namespace_maps_to_scope() {
        assert_eq!(
            ObjectStore::scope_of("sales.orders:frag7"),
            CacheScope::table("sales", "orders")
        );
        assert_eq!(
            ObjectStore::scope_of("sales.orders.p1:frag7"),
            CacheScope::partition("sales", "orders", "p1")
        );
        assert_eq!(ObjectStore::scope_of("plain-key"), CacheScope::Global);
        assert_eq!(ObjectStore::scope_of(":weird"), CacheScope::Global);
    }

    #[test]
    fn tenant_quota_binds_remote_sets() {
        let clock = Arc::new(SimClock::new());
        let cache = Arc::new(
            CacheManager::builder(CacheConfig::default().with_page_size(ByteSize::new(8)))
                .with_store(Arc::new(MemoryPageStore::new()), 1 << 20)
                .with_quota(CacheScope::table("t", "small"), ByteSize::new(16))
                .with_clock(clock.clone())
                .build()
                .unwrap(),
        );
        let s = ObjectStore::new(cache, clock);
        // Within quota: two pages.
        assert_eq!(s.set("t.small:a", 0, 0, &[0u8; 16]), SetOutcome::Stored);
        // A second object pushes the tenant over quota. The manager evicts
        // within the scope to make room, so the *first* object goes — the
        // quota binds, one way or the other.
        s.set("t.small:b", 0, 0, &[0u8; 16]);
        let used = s
            .cache()
            .index()
            .bytes_of_scope(&CacheScope::table("t", "small"));
        assert!(used <= 16, "tenant holds {used} bytes, quota 16");
        // An unnamespaced key is untouched by the tenant quota.
        assert_eq!(s.set("free", 0, 0, &[0u8; 64]), SetOutcome::Stored);
    }
}
