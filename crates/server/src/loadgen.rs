//! Closed-loop load generator for the memcached front-end.
//!
//! N client connections drive Zipf-skewed KV traffic (reusing
//! `edgecache-workload`'s key distributions) against a server, serially or
//! pipelined, and verify the protocol contract as they go:
//!
//! * every request gets exactly one response, in order (`responses ==
//!   requests` is checked per connection — a dropped or reordered reply
//!   fails the run);
//! * `get` hits are compared byte-for-byte against the deterministic
//!   value every `set` of that key must have written;
//! * connection resets and short reads are counted and fail the run.
//!
//! The same driver serves three callers: the `loadgen` binary (manual runs
//! and the CI smoke job), the server e2e tests, and the `server` bench
//! experiment's per-cell measurement loop.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use edgecache_metrics::Histogram;
use edgecache_workload::kv::{fill_value, KeyMix, KeyMixConfig, KvOp};

use crate::protocol::Command;

/// Load-run options.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Server address, e.g. `127.0.0.1:11211`.
    pub addr: String,
    /// Concurrent client connections.
    pub conns: usize,
    /// Requests in flight per connection (1 = serial request/response).
    pub pipeline_depth: usize,
    /// Requests each connection issues.
    pub requests_per_conn: usize,
    /// Key/op distribution (each connection derives its own seed).
    pub mix: KeyMixConfig,
    /// Verify `get` hit payloads byte-for-byte.
    pub verify_values: bool,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:11211".to_string(),
            conns: 4,
            pipeline_depth: 16,
            requests_per_conn: 10_000,
            mix: KeyMixConfig::default(),
            verify_values: true,
        }
    }
}

/// Aggregated outcome of a run.
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    pub requests: u64,
    pub responses: u64,
    pub hits: u64,
    pub misses: u64,
    pub stored: u64,
    pub not_stored: u64,
    pub deleted: u64,
    pub errors: u64,
    /// Connection-level failures: resets, short reads, connect errors.
    pub resets: u64,
    /// `get` payloads that did not match the deterministic expectation.
    pub value_mismatches: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub elapsed: Duration,
    pub p50_us: u64,
    pub p99_us: u64,
}

impl LoadgenReport {
    /// Requests per second over the whole run.
    pub fn req_per_sec(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// The protocol contract the CI smoke job asserts: every request
    /// answered, no transport failures, no corrupted values.
    pub fn conserved(&self) -> Result<(), String> {
        if self.responses != self.requests {
            return Err(format!(
                "response conservation violated: {} responses for {} requests",
                self.responses, self.requests
            ));
        }
        if self.resets > 0 {
            return Err(format!("{} connection resets", self.resets));
        }
        if self.value_mismatches > 0 {
            return Err(format!("{} corrupted get payloads", self.value_mismatches));
        }
        Ok(())
    }
}

/// One decoded response frame, as much as the client cares about it.
#[derive(Debug, PartialEq, Eq)]
enum Reply {
    /// `END` after zero or more values; carries (key, data) pairs.
    GetResult(Vec<(String, Vec<u8>)>),
    Stored,
    NotStored,
    Deleted,
    NotFound,
    /// ERROR / CLIENT_ERROR / SERVER_ERROR / other terminal line.
    Error(String),
    Other,
}

/// Client-side incremental response decoder (the mirror of the server's
/// request parser; also exercised by the e2e tests).
#[derive(Debug, Default)]
struct ReplyReader {
    buf: Vec<u8>,
    consumed: usize,
    /// Values of the in-progress get response.
    values: Vec<(String, Vec<u8>)>,
    /// Bytes of data block pending for the current VALUE line.
    pending_value: Option<(String, usize)>,
}

impl ReplyReader {
    fn feed(&mut self, bytes: &[u8]) {
        if self.consumed > 0 && (self.consumed >= 4096 || self.consumed == self.buf.len()) {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    fn next(&mut self) -> Option<Reply> {
        loop {
            if let Some((key, len)) = self.pending_value.take() {
                if self.buf.len() - self.consumed < len + 2 {
                    self.pending_value = Some((key, len));
                    return None;
                }
                let start = self.consumed;
                let data = self.buf[start..start + len].to_vec();
                self.consumed = start + len + 2; // data + \r\n
                self.values.push((key, data));
                continue;
            }
            let start = self.consumed;
            let rel = self.buf[start..].iter().position(|&b| b == b'\n')?;
            let end = start + rel;
            self.consumed = end + 1;
            let line = if end > start && self.buf[end - 1] == b'\r' {
                &self.buf[start..end - 1]
            } else {
                &self.buf[start..end]
            };
            let text = String::from_utf8_lossy(line).to_string();
            if let Some(rest) = text.strip_prefix("VALUE ") {
                let mut toks = rest.split(' ');
                let key = toks.next().unwrap_or("").to_string();
                let _flags = toks.next();
                let len: usize = toks.next().and_then(|t| t.parse().ok()).unwrap_or(0);
                self.pending_value = Some((key, len));
                continue;
            }
            if text.starts_with("STAT ") {
                continue; // swallowed into the terminating END
            }
            return Some(match text.as_str() {
                "END" => Reply::GetResult(std::mem::take(&mut self.values)),
                "STORED" => Reply::Stored,
                "NOT_STORED" => Reply::NotStored,
                "DELETED" => Reply::Deleted,
                "NOT_FOUND" => Reply::NotFound,
                t if t.starts_with("ERROR")
                    || t.starts_with("CLIENT_ERROR")
                    || t.starts_with("SERVER_ERROR") =>
                {
                    Reply::Error(t.to_string())
                }
                _ => Reply::Other, // VERSION, OK, ...
            });
        }
    }
}

/// Runs one connection's share of the load; returns its partial report.
fn run_conn(
    opts: &LoadgenOptions,
    conn_id: usize,
    latency: &Histogram,
) -> Result<LoadgenReport, String> {
    let mut report = LoadgenReport::default();
    let mut stream = TcpStream::connect(&opts.addr).map_err(|e| format!("connect: {e}"))?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let mut mix = KeyMix::new(KeyMixConfig {
        seed: opts.mix.seed.wrapping_add(conn_id as u64 * 0x9e37),
        ..opts.mix.clone()
    });
    let mut reader = ReplyReader::default();
    let mut rx_buf = vec![0u8; 64 * 1024];
    let depth = opts.pipeline_depth.max(1);
    let mut issued = 0usize;

    while issued < opts.requests_per_conn {
        let batch = depth.min(opts.requests_per_conn - issued);
        let mut wire = Vec::with_capacity(batch * 64);
        let mut expected: Vec<KvOp> = Vec::with_capacity(batch);
        for _ in 0..batch {
            let op = mix.next_op();
            let cmd = match &op {
                KvOp::Get { key } => Command::Get {
                    keys: vec![key.clone()],
                    with_cas: false,
                },
                KvOp::Set { key, value_len } => Command::Set {
                    key: key.clone(),
                    flags: 0,
                    exptime: 0,
                    noreply: false,
                    data: bytes::Bytes::from(fill_value(key, *value_len)),
                },
                KvOp::Delete { key } => Command::Delete {
                    key: key.clone(),
                    noreply: false,
                },
            };
            cmd.encode(&mut wire);
            expected.push(op);
        }
        let batch_start = Instant::now();
        stream.write_all(&wire).map_err(|e| format!("write: {e}"))?;
        report.bytes_sent += wire.len() as u64;
        report.requests += batch as u64;
        issued += batch;

        // Collect exactly `batch` replies, in order.
        let mut got = 0usize;
        while got < batch {
            match reader.next() {
                Some(reply) => {
                    report.responses += 1;
                    match (&reply, &expected[got]) {
                        (Reply::GetResult(values), KvOp::Get { key }) => {
                            if values.is_empty() {
                                report.misses += 1;
                            } else {
                                report.hits += 1;
                                if opts.verify_values {
                                    for (k, data) in values {
                                        if k != key || data != &fill_value(key, opts.mix.value_len)
                                        {
                                            report.value_mismatches += 1;
                                        }
                                    }
                                }
                            }
                        }
                        (Reply::Stored, _) => report.stored += 1,
                        (Reply::NotStored, _) => report.not_stored += 1,
                        (Reply::Deleted, _) => report.deleted += 1,
                        (Reply::NotFound, _) => {}
                        (Reply::Error(e), _) => {
                            report.errors += 1;
                            if report.errors <= 3 {
                                eprintln!("loadgen: server error: {e}");
                            }
                        }
                        _ => {}
                    }
                    got += 1;
                }
                None => {
                    let n = stream.read(&mut rx_buf).map_err(|e| format!("read: {e}"))?;
                    if n == 0 {
                        report.resets += 1;
                        return Ok(report);
                    }
                    report.bytes_received += n as u64;
                    reader.feed(&rx_buf[..n]);
                }
            }
        }
        let us = batch_start.elapsed().as_micros() as u64;
        // Attribute the batch latency to each request in it (the standard
        // closed-loop pipelining convention).
        latency.record_n(us, batch as u64);
    }
    Ok(report)
}

/// Runs the full load: `opts.conns` threads, each issuing
/// `opts.requests_per_conn` requests.
pub fn run(opts: &LoadgenOptions) -> LoadgenReport {
    let latency = Arc::new(Histogram::new());
    let start = Instant::now();
    let partials: Vec<Result<LoadgenReport, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.conns)
            .map(|c| {
                let latency = Arc::clone(&latency);
                let opts = opts.clone();
                scope.spawn(move || run_conn(&opts, c, &latency))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("conn thread"))
            .collect()
    });
    let mut total = LoadgenReport::default();
    for partial in partials {
        match partial {
            Ok(p) => {
                total.requests += p.requests;
                total.responses += p.responses;
                total.hits += p.hits;
                total.misses += p.misses;
                total.stored += p.stored;
                total.not_stored += p.not_stored;
                total.deleted += p.deleted;
                total.errors += p.errors;
                total.resets += p.resets;
                total.value_mismatches += p.value_mismatches;
                total.bytes_sent += p.bytes_sent;
                total.bytes_received += p.bytes_received;
            }
            Err(e) => {
                eprintln!("loadgen: connection failed: {e}");
                total.resets += 1;
            }
        }
    }
    total.elapsed = start.elapsed();
    total.p50_us = latency.quantile(0.50).unwrap_or(0);
    total.p99_us = latency.quantile(0.99).unwrap_or(0);
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_reader_decodes_split_frames() {
        let wire = b"VALUE k 0 3\r\nabc\r\nEND\r\nSTORED\r\nNOT_FOUND\r\nSERVER_ERROR boom\r\n";
        for split in 0..wire.len() {
            let mut r = ReplyReader::default();
            r.feed(&wire[..split]);
            let mut got = Vec::new();
            while let Some(x) = r.next() {
                got.push(x);
            }
            r.feed(&wire[split..]);
            while let Some(x) = r.next() {
                got.push(x);
            }
            assert_eq!(got.len(), 4, "split at {split}");
            assert_eq!(
                got[0],
                Reply::GetResult(vec![("k".to_string(), b"abc".to_vec())])
            );
            assert_eq!(got[1], Reply::Stored);
            assert_eq!(got[2], Reply::NotFound);
            assert!(matches!(&got[3], Reply::Error(e) if e.contains("boom")));
        }
    }

    #[test]
    fn reply_reader_swallows_stats_into_end() {
        let mut r = ReplyReader::default();
        r.feed(b"STAT a 1\r\nSTAT b 2\r\nEND\r\n");
        assert_eq!(r.next(), Some(Reply::GetResult(vec![])));
        assert_eq!(r.next(), None);
    }
}
