//! The TCP front-end: accept loop, connection handling, and shutdown.
//!
//! Threading model: this build environment vendors no async runtime, so the
//! server runs a blocking reactor — one acceptor thread plus one thread per
//! connection, bounded by [`ServerConfig::max_connections`] (the same
//! semaphore shape a tokio implementation would use; the protocol layer is
//! transport-agnostic, so an async runtime can replace this file without
//! touching framing or command execution). Per-connection OS read/write
//! timeouts bound how long a dead or stalled peer can pin a thread.
//!
//! Hardening on the accept edge:
//!
//! * over-limit connections receive `SERVER_ERROR too many connections`
//!   and are closed immediately — they never reach the parser;
//! * every socket gets read *and* write timeouts before its first byte is
//!   parsed, so a peer that stops reading cannot wedge a writer thread
//!   (slow-loris in either direction);
//! * a read timeout mid-request (partial frame buffered) closes the
//!   connection — a client that half-sends a command and stalls is
//!   indistinguishable from an attack and loses its slot.
//!
//! Graceful shutdown ([`ServerHandle::shutdown`]) stops the acceptor, lets
//! every connection finish the requests already buffered (pipelined bursts
//! drain completely), waits up to [`ServerConfig::drain_timeout`], then
//! severs the stragglers' sockets and joins every thread — the process
//! ends with zero server threads alive, which the start/stop-loop
//! regression test pins.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use edgecache_common::clock::SharedClock;
use edgecache_common::error::{Error, Result};
use edgecache_core::manager::CacheManager;
use edgecache_metrics::{Counter, Gauge, MetricRegistry};
use parking_lot::{Condvar, Mutex};

use crate::object::{ObjectStore, SetOutcome};
use crate::protocol::{
    encode_end, encode_stat, encode_value, Command, Parsed, ParserLimits, RequestParser,
};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:11211`. Port 0 picks an ephemeral
    /// port (reported by [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Connection semaphore: accepts beyond this are refused with
    /// `SERVER_ERROR too many connections`.
    pub max_connections: usize,
    /// Per-connection read timeout (idle or stalled peers are dropped).
    pub read_timeout: Duration,
    /// Per-connection write timeout (peers that stop reading are dropped).
    pub write_timeout: Duration,
    /// How long a graceful shutdown waits for in-flight requests before
    /// severing connections.
    pub drain_timeout: Duration,
    /// Frame-level limits enforced by the parser.
    pub limits: ParserLimits,
    /// Whether the `shutdown` protocol command is honoured (used by
    /// operational tooling and CI; off by default — a remote peer must not
    /// be able to stop the server unless explicitly allowed).
    pub allow_shutdown_command: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:11211".to_string(),
            max_connections: 1024,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(5),
            limits: ParserLimits::default(),
            allow_shutdown_command: false,
        }
    }
}

/// Cached handles for the server's counters (the hot path must not take
/// the registry's name-lookup lock per request — same discipline as the
/// manager's `HotMetrics`).
pub struct ServerMetrics {
    pub conns_accepted: Arc<Counter>,
    pub conns_rejected: Arc<Counter>,
    pub conns_closed: Arc<Counter>,
    pub conns_active: Arc<Gauge>,
    pub requests: Arc<Counter>,
    pub responses: Arc<Counter>,
    pub noreply_acks: Arc<Counter>,
    pub get_keys: Arc<Counter>,
    pub get_hits: Arc<Counter>,
    pub get_misses: Arc<Counter>,
    pub sets: Arc<Counter>,
    pub deletes: Arc<Counter>,
    pub parse_errors: Arc<Counter>,
    pub timeouts: Arc<Counter>,
    pub bytes_in: Arc<Counter>,
    pub bytes_out: Arc<Counter>,
}

impl ServerMetrics {
    fn new(registry: &MetricRegistry) -> Self {
        Self {
            conns_accepted: registry.counter("server.conns_accepted"),
            conns_rejected: registry.counter("server.conns_rejected"),
            conns_closed: registry.counter("server.conns_closed"),
            conns_active: registry.gauge("server.conns_active"),
            requests: registry.counter("server.requests"),
            responses: registry.counter("server.responses"),
            noreply_acks: registry.counter("server.noreply_acks"),
            get_keys: registry.counter("server.get_keys"),
            get_hits: registry.counter("server.get_hits"),
            get_misses: registry.counter("server.get_misses"),
            sets: registry.counter("server.sets"),
            deletes: registry.counter("server.deletes"),
            parse_errors: registry.counter("server.parse_errors"),
            timeouts: registry.counter("server.timeouts"),
            bytes_in: registry.counter("server.bytes_in"),
            bytes_out: registry.counter("server.bytes_out"),
        }
    }
}

/// State shared between the acceptor, the connections, and the handle.
struct Shared {
    store: ObjectStore,
    metrics: ServerMetrics,
    config: ServerConfig,
    /// Set once; connections stop picking up new requests, the acceptor
    /// stops accepting.
    stop: AtomicBool,
    /// Signalled when `stop` is set (wakes `ServerHandle::wait`).
    stop_signal: (Mutex<bool>, Condvar),
    /// Live connection count — the semaphore's permit counter.
    active: AtomicUsize,
    /// Clones of live connection sockets, for severing stragglers at the
    /// drain deadline.
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Joinable finished/live connection threads.
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Shared {
    fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
        let (flag, cvar) = &self.stop_signal;
        *flag.lock() = true;
        cvar.notify_all();
    }
}

/// A running server. Dropping the handle shuts the server down gracefully.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

/// Starts a server over `cache`. `clock` drives object expiry (pass the
/// manager's clock).
pub fn serve(
    cache: Arc<CacheManager>,
    clock: SharedClock,
    config: ServerConfig,
) -> Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)
        .map_err(|e| Error::InvalidArgument(format!("bind {}: {e}", config.addr)))?;
    let addr = listener.local_addr().map_err(Error::Io)?;
    let metrics = ServerMetrics::new(cache.metrics());
    let shared = Arc::new(Shared {
        store: ObjectStore::new(cache, clock),
        metrics,
        config,
        stop: AtomicBool::new(false),
        stop_signal: (Mutex::new(false), Condvar::new()),
        active: AtomicUsize::new(0),
        conns: Mutex::new(HashMap::new()),
        threads: Mutex::new(Vec::new()),
    });
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("edgecache-acceptor".into())
            .spawn(move || accept_loop(listener, shared))
            .expect("spawn acceptor")
    };
    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
    })
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a shutdown is requested (the `shutdown` protocol
    /// command, or [`Self::shutdown`] from another thread).
    pub fn wait(&self) {
        let (flag, cvar) = &self.shared.stop_signal;
        let mut stopped = flag.lock();
        while !*stopped {
            cvar.wait(&mut stopped);
        }
    }

    /// Whether a stop has been requested.
    pub fn stop_requested(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests, sever
    /// stragglers at the drain deadline, join every thread. Idempotent.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.request_stop();
        // Wake the acceptor out of `accept` with a no-op connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
        // Unblock readers without touching the write side: a thread parked
        // in `read` wakes with EOF immediately, while a thread mid-batch
        // keeps its socket writable and flushes the responses it owes.
        for (_, sock) in self.shared.conns.lock().iter() {
            let _ = sock.shutdown(Shutdown::Read);
        }
        // Drain: connections notice `stop` after finishing the requests
        // already buffered; give them the configured grace.
        let deadline = std::time::Instant::now() + self.shared.config.drain_timeout;
        while self.shared.active.load(Ordering::Acquire) > 0 && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Sever whoever is left (blocked in read, or mid-burst past the
        // deadline): socket shutdown makes their next read return 0.
        for (_, sock) in self.shared.conns.lock().iter() {
            let _ = sock.shutdown(Shutdown::Both);
        }
        let threads: Vec<_> = self.shared.threads.lock().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    static CONN_IDS: AtomicU64 = AtomicU64::new(0);
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Semaphore: claim a permit; refuse the connection if over limit.
        let prev = shared.active.fetch_add(1, Ordering::AcqRel);
        if prev >= shared.config.max_connections {
            shared.active.fetch_sub(1, Ordering::AcqRel);
            shared.metrics.conns_rejected.inc();
            let mut s = stream;
            let _ = s.set_write_timeout(Some(shared.config.write_timeout));
            let _ = s.write_all(b"SERVER_ERROR too many connections\r\n");
            let _ = s.shutdown(Shutdown::Both);
            continue;
        }
        shared.metrics.conns_accepted.inc();
        shared.metrics.conns_active.add(1);
        let id = CONN_IDS.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().insert(id, clone);
        }
        let conn_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name(format!("edgecache-conn-{id}"))
            .spawn(move || {
                connection_loop(stream, &conn_shared);
                conn_shared.conns.lock().remove(&id);
                conn_shared.active.fetch_sub(1, Ordering::AcqRel);
                conn_shared.metrics.conns_active.add(-1);
                conn_shared.metrics.conns_closed.inc();
            })
            .expect("spawn connection thread");
        shared.threads.lock().push(handle);
        // Opportunistically reap finished threads so a long-lived server
        // with connection churn doesn't accumulate handles.
        let mut threads = shared.threads.lock();
        if threads.len() > shared.config.max_connections.saturating_mul(2).max(64) {
            let (done, live): (Vec<_>, Vec<_>) = threads.drain(..).partition(|t| t.is_finished());
            *threads = live;
            drop(threads);
            for t in done {
                let _ = t.join();
            }
        }
    }
}

/// Why the per-connection loop ended.
enum CloseReason {
    Quit,
    PeerClosed,
    Timeout,
    FatalProtocol,
    IoError,
    Drained,
}

fn connection_loop(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut parser = RequestParser::new(shared.config.limits.clone());
    let mut read_buf = vec![0u8; 16 * 1024];
    let mut out = Vec::with_capacity(4096);

    let reason = loop {
        // Stop picking up new requests once shutdown begins. Anything
        // already buffered (a pipelined burst) was answered below before
        // this check — in-flight requests drain, new ones don't start.
        if shared.stop.load(Ordering::Acquire) {
            break CloseReason::Drained;
        }
        let n = match stream.read(&mut read_buf) {
            Ok(0) => break CloseReason::PeerClosed,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                shared.metrics.timeouts.inc();
                break CloseReason::Timeout;
            }
            Err(_) => break CloseReason::IoError,
        };
        shared.metrics.bytes_in.add(n as u64);
        parser.feed(&read_buf[..n]);

        // Answer the whole pipelined batch with one write.
        out.clear();
        let mut close = None;
        while let Some(parsed) = parser.next() {
            match parsed {
                Parsed::Cmd(cmd) => {
                    if let Some(reason) = execute(&cmd, shared, &mut out) {
                        close = Some(reason);
                        break;
                    }
                }
                Parsed::Bad(bad) => {
                    shared.metrics.requests.inc();
                    shared.metrics.parse_errors.inc();
                    shared.metrics.responses.inc();
                    out.extend_from_slice(bad.reply.as_bytes());
                    if bad.fatal {
                        close = Some(CloseReason::FatalProtocol);
                        break;
                    }
                }
            }
        }
        if !out.is_empty() {
            shared.metrics.bytes_out.add(out.len() as u64);
            if stream.write_all(&out).is_err() {
                break CloseReason::IoError;
            }
        }
        if let Some(reason) = close {
            break reason;
        }
    };

    match reason {
        CloseReason::Quit
        | CloseReason::PeerClosed
        | CloseReason::Drained
        | CloseReason::FatalProtocol => {}
        CloseReason::Timeout | CloseReason::IoError => {}
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Executes one command, appending its response to `out`. Returns a close
/// reason when the connection must end.
fn execute(cmd: &Command, shared: &Shared, out: &mut Vec<u8>) -> Option<CloseReason> {
    let m = &shared.metrics;
    m.requests.inc();
    match cmd {
        Command::Get { keys, with_cas } => {
            for key in keys {
                m.get_keys.inc();
                match shared.store.get(key) {
                    Some(v) => {
                        m.get_hits.inc();
                        encode_value(out, key, v.flags, &v.data, with_cas.then_some(v.cas));
                    }
                    None => m.get_misses.inc(),
                }
            }
            encode_end(out);
            m.responses.inc();
        }
        Command::Set {
            key,
            flags,
            exptime,
            noreply,
            data,
        } => {
            m.sets.inc();
            let reply: &[u8] = match shared.store.set(key, *flags, *exptime, data) {
                SetOutcome::Stored => b"STORED\r\n",
                SetOutcome::NotStored => b"NOT_STORED\r\n",
                SetOutcome::Error(e) => {
                    let line = format!("SERVER_ERROR {e}\r\n");
                    if *noreply {
                        m.noreply_acks.inc();
                    } else {
                        m.responses.inc();
                        out.extend_from_slice(line.as_bytes());
                    }
                    return None;
                }
            };
            if *noreply {
                m.noreply_acks.inc();
            } else {
                m.responses.inc();
                out.extend_from_slice(reply);
            }
        }
        Command::Delete { key, noreply } => {
            m.deletes.inc();
            let reply: &[u8] = if shared.store.delete(key) {
                b"DELETED\r\n"
            } else {
                b"NOT_FOUND\r\n"
            };
            if *noreply {
                m.noreply_acks.inc();
            } else {
                m.responses.inc();
                out.extend_from_slice(reply);
            }
        }
        Command::Stats => {
            append_stats(shared, out);
            m.responses.inc();
        }
        Command::Version => {
            out.extend_from_slice(
                format!("VERSION edgecache {}\r\n", env!("CARGO_PKG_VERSION")).as_bytes(),
            );
            m.responses.inc();
        }
        Command::Quit => {
            // No reply, per the spec; the close is the acknowledgement.
            m.responses.inc();
            return Some(CloseReason::Quit);
        }
        Command::Shutdown => {
            if shared.config.allow_shutdown_command {
                m.responses.inc();
                out.extend_from_slice(b"OK\r\n");
                shared.request_stop();
                return Some(CloseReason::Quit);
            }
            m.responses.inc();
            out.extend_from_slice(b"CLIENT_ERROR shutdown not permitted\r\n");
        }
    }
    None
}

/// `stats`: the server's own counters plus the cache manager's headline
/// numbers — the same registry the conservation laws audit, surfaced over
/// the wire.
fn append_stats(shared: &Shared, out: &mut Vec<u8>) {
    let stats = shared.store.cache().stats();
    encode_stat(out, "curr_items", stats.pages);
    encode_stat(out, "bytes", stats.bytes);
    encode_stat(out, "get_hits", shared.metrics.get_hits.get());
    encode_stat(out, "get_misses", shared.metrics.get_misses.get());
    encode_stat(out, "cmd_get", shared.metrics.get_keys.get());
    encode_stat(out, "cmd_set", shared.metrics.sets.get());
    encode_stat(out, "curr_connections", shared.metrics.conns_active.get());
    encode_stat(
        out,
        "total_connections",
        shared.metrics.conns_accepted.get(),
    );
    encode_stat(
        out,
        "rejected_connections",
        shared.metrics.conns_rejected.get(),
    );
    encode_stat(out, "keys", shared.store.keys());
    // Every counter in the registry, namespaced: remote observability of
    // the full conservation-law surface.
    let snapshot = shared.store.cache().metrics().snapshot();
    for (name, value) in &snapshot.counters {
        encode_stat(out, name, value);
    }
    encode_end(out);
}
