//! End-to-end tests over real TCP sockets: a server on an ephemeral port,
//! raw byte-level clients, and the ISSUE's acceptance criteria — set then
//! get returns the value byte-identical, pipelined bursts are answered in
//! order, the semaphore refuses over-limit connections, stalled peers are
//! dropped, shutdown drains and joins every thread, and the request
//! accounting obeys the server conservation laws.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use edgecache_common::clock::system_clock;
use edgecache_common::ByteSize;
use edgecache_core::config::CacheConfig;
use edgecache_core::manager::CacheManager;
use edgecache_metrics::{assert_conserved, server_laws, SnapshotDiff};
use edgecache_pagestore::{CacheScope, MemoryPageStore};
use edgecache_server::loadgen::{self, LoadgenOptions};
use edgecache_server::server::{serve, ServerConfig, ServerHandle};
use edgecache_workload::kv::KeyMixConfig;

fn start_server(config: ServerConfig) -> (ServerHandle, Arc<CacheManager>) {
    let clock = system_clock();
    let cache = Arc::new(
        CacheManager::builder(CacheConfig::default().with_page_size(ByteSize::kib(4)))
            .with_store(Arc::new(MemoryPageStore::new()), ByteSize::mib(64).as_u64())
            .with_clock(clock.clone())
            .build()
            .unwrap(),
    );
    let handle = serve(Arc::clone(&cache), clock, config).unwrap();
    (handle, cache)
}

fn ephemeral() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..Default::default()
    }
}

fn connect(handle: &ServerHandle) -> TcpStream {
    let s = TcpStream::connect(handle.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_nodelay(true).unwrap();
    s
}

/// Reads until `stream` has delivered `n` bytes (responses are
/// deterministic byte strings, so tests know exactly what to expect).
fn read_exact_bytes(stream: &mut TcpStream, n: usize) -> Vec<u8> {
    let mut buf = vec![0u8; n];
    stream.read_exact(&mut buf).unwrap();
    buf
}

/// Reads to EOF.
fn read_to_end(stream: &mut TcpStream) -> Vec<u8> {
    let mut buf = Vec::new();
    let _ = stream.read_to_end(&mut buf);
    buf
}

/// Reads until the buffer ends with `suffix` (responses may arrive split
/// across reads like any TCP payload).
fn read_until(stream: &mut TcpStream, suffix: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    while !buf.ends_with(suffix) {
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "peer closed before {suffix:?} arrived");
        buf.extend_from_slice(&chunk[..n]);
    }
    buf
}

#[test]
fn set_then_get_returns_value_byte_identical() {
    let (handle, _cache) = start_server(ephemeral());
    let mut c = connect(&handle);
    // A value spanning multiple 4 KiB pages, with arbitrary binary bytes
    // including CRLF sequences.
    let value: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
    let mut req = format!("set k1 42 0 {}\r\n", value.len()).into_bytes();
    req.extend_from_slice(&value);
    req.extend_from_slice(b"\r\n");
    c.write_all(&req).unwrap();
    assert_eq!(read_exact_bytes(&mut c, 8), b"STORED\r\n");

    c.write_all(b"get k1\r\n").unwrap();
    let header = format!("VALUE k1 42 {}\r\n", value.len());
    let expect_len = header.len() + value.len() + 2 + 5; // + \r\n + END\r\n
    let reply = read_exact_bytes(&mut c, expect_len);
    assert_eq!(&reply[..header.len()], header.as_bytes());
    assert_eq!(
        &reply[header.len()..header.len() + value.len()],
        &value[..],
        "payload must round-trip byte-identical"
    );
    assert_eq!(&reply[header.len() + value.len()..], b"\r\nEND\r\n");
    handle.shutdown();
}

#[test]
fn pipelined_burst_is_answered_in_order() {
    let (handle, cache) = start_server(ephemeral());
    let before = cache.metrics().snapshot();
    let mut c = connect(&handle);
    // One write: three sets (one noreply), a multi-key get, a miss, a
    // delete, and a version — the whole batch answered in request order.
    let mut req = Vec::new();
    req.extend_from_slice(b"set a 0 0 2\r\naa\r\n");
    req.extend_from_slice(b"set b 0 0 2 noreply\r\nbb\r\n");
    req.extend_from_slice(b"set c 0 0 2\r\ncc\r\n");
    req.extend_from_slice(b"get a b c\r\n");
    req.extend_from_slice(b"get nope\r\n");
    req.extend_from_slice(b"delete b\r\n");
    req.extend_from_slice(b"version\r\n");
    c.write_all(&req).unwrap();

    let expected = b"STORED\r\nSTORED\r\n\
        VALUE a 0 2\r\naa\r\nVALUE b 0 2\r\nbb\r\nVALUE c 0 2\r\ncc\r\nEND\r\n\
        END\r\nDELETED\r\n";
    let reply = read_exact_bytes(&mut c, expected.len());
    assert_eq!(
        std::str::from_utf8(&reply).unwrap(),
        std::str::from_utf8(expected).unwrap()
    );
    let version = read_exact_bytes(&mut c, "VERSION edgecache ".len());
    assert_eq!(&version, b"VERSION edgecache ");
    drop(c);
    handle.shutdown();

    // Quiesced: the server conservation laws must hold over the window.
    let diff = SnapshotDiff::between(&before, &cache.metrics().snapshot());
    assert_conserved(&diff, &server_laws()).unwrap();
    assert_eq!(diff.counter("server.requests"), 7);
    assert_eq!(diff.counter("server.noreply_acks"), 1);
    assert_eq!(diff.counter("server.get_keys"), 4);
    assert_eq!(diff.counter("server.get_hits"), 3);
    assert_eq!(diff.counter("server.get_misses"), 1);
}

#[test]
fn gets_carries_cas_and_cas_advances_on_overwrite() {
    let (handle, _cache) = start_server(ephemeral());
    let mut c = connect(&handle);
    c.write_all(b"set k 0 0 1\r\nx\r\ngets k\r\n").unwrap();
    let reply = read_until(&mut c, b"END\r\n");
    let text = String::from_utf8_lossy(&reply).to_string();
    let cas1: u64 = text
        .lines()
        .find(|l| l.starts_with("VALUE"))
        .and_then(|l| l.split(' ').nth(4))
        .and_then(|t| t.parse().ok())
        .expect("gets VALUE line carries cas");

    c.write_all(b"set k 0 0 1\r\ny\r\ngets k\r\n").unwrap();
    let reply = read_until(&mut c, b"END\r\n");
    let text = String::from_utf8_lossy(&reply).to_string();
    let cas2: u64 = text
        .lines()
        .find(|l| l.starts_with("VALUE"))
        .and_then(|l| l.split(' ').nth(4))
        .and_then(|t| t.parse().ok())
        .expect("second gets VALUE line");
    assert!(
        cas2 > cas1,
        "cas must advance on overwrite: {cas1} -> {cas2}"
    );
    handle.shutdown();
}

#[test]
fn connection_semaphore_refuses_over_limit() {
    let (handle, _cache) = start_server(ServerConfig {
        max_connections: 2,
        ..ephemeral()
    });
    let c1 = connect(&handle);
    let c2 = connect(&handle);
    // Wait for both permits to be claimed (accept loop is asynchronous).
    std::thread::sleep(Duration::from_millis(100));
    let mut c3 = connect(&handle);
    let reply = read_to_end(&mut c3);
    assert_eq!(reply, b"SERVER_ERROR too many connections\r\n");
    drop(c3);
    // Releasing a permit readmits new clients.
    drop(c1);
    std::thread::sleep(Duration::from_millis(100));
    let mut c4 = connect(&handle);
    c4.write_all(b"version\r\n").unwrap();
    let v = read_exact_bytes(&mut c4, 8);
    assert_eq!(&v, b"VERSION ");
    drop(c2);
    drop(c4);
    handle.shutdown();
}

#[test]
fn stalled_peer_with_partial_frame_is_dropped() {
    let (handle, cache) = start_server(ServerConfig {
        read_timeout: Duration::from_millis(100),
        ..ephemeral()
    });
    let mut c = connect(&handle);
    // Half a command, then silence: the read deadline must reclaim the
    // thread and close the socket.
    c.write_all(b"set k 0 0 10\r\npart").unwrap();
    let rest = read_to_end(&mut c);
    assert!(
        rest.is_empty(),
        "timed-out peer gets no reply, got {rest:?}"
    );
    handle.shutdown();
    assert!(
        cache.metrics().snapshot().counter("server.timeouts") >= 1,
        "timeout must be counted"
    );
}

#[test]
fn fatal_protocol_error_answers_then_closes() {
    let (handle, _cache) = start_server(ServerConfig {
        limits: edgecache_server::ParserLimits {
            max_value_len: 64,
            ..Default::default()
        },
        ..ephemeral()
    });
    let mut c = connect(&handle);
    c.write_all(b"set k 0 0 100000\r\n").unwrap();
    let reply = read_to_end(&mut c); // reply then EOF: connection closed
    assert_eq!(reply, b"SERVER_ERROR object too large for cache\r\n");
    handle.shutdown();
}

#[test]
fn quota_scoped_tenant_is_bounded_over_the_wire() {
    let clock = system_clock();
    let cache = Arc::new(
        CacheManager::builder(CacheConfig::default().with_page_size(ByteSize::new(1024)))
            .with_store(Arc::new(MemoryPageStore::new()), ByteSize::mib(64).as_u64())
            .with_quota(CacheScope::table("t", "small"), ByteSize::new(2048))
            .with_clock(clock.clone())
            .build()
            .unwrap(),
    );
    let handle = serve(Arc::clone(&cache), clock, ephemeral()).unwrap();
    let mut c = connect(&handle);
    for i in 0..8 {
        let req = format!("set t.small:k{i} 0 0 1024\r\n{}\r\n", "x".repeat(1024));
        c.write_all(req.as_bytes()).unwrap();
        // STORED or NOT_STORED, both 8.. read the line.
        let mut one = [0u8; 64];
        let n = c.read(&mut one).unwrap();
        assert!(n > 0);
    }
    let used = cache
        .index()
        .bytes_of_scope(&CacheScope::table("t", "small"));
    assert!(used <= 2048, "tenant quota must bind remote sets: {used}");
    handle.shutdown();
}

#[test]
fn stats_surfaces_registry_counters() {
    let (handle, _cache) = start_server(ephemeral());
    let mut c = connect(&handle);
    c.write_all(b"set s 0 0 1\r\nz\r\nget s\r\nstats\r\n")
        .unwrap();
    // The stats reply is the second END in the stream (the get's END comes
    // first); read past both.
    let mut reply = read_until(&mut c, b"END\r\n");
    if !String::from_utf8_lossy(&reply).contains("STAT") {
        reply.extend_from_slice(&read_until(&mut c, b"END\r\n"));
    }
    let text = String::from_utf8_lossy(&reply).to_string();
    assert!(text.contains("STAT get_hits 1"), "{text}");
    assert!(text.contains("STAT cmd_set 1"), "{text}");
    assert!(
        text.contains("STAT server.requests"),
        "registry counters must be surfaced: {text}"
    );
    assert!(text.trim_end().ends_with("END"), "{text}");
    handle.shutdown();
}

#[test]
fn shutdown_command_honoured_only_when_allowed() {
    // Disallowed (the default): the command is refused, the server lives.
    let (handle, _cache) = start_server(ephemeral());
    let mut c = connect(&handle);
    c.write_all(b"shutdown\r\n").unwrap();
    let mut buf = [0u8; 128];
    let n = c.read(&mut buf).unwrap();
    assert_eq!(&buf[..n], b"CLIENT_ERROR shutdown not permitted\r\n");
    assert!(!handle.stop_requested());
    handle.shutdown();

    // Allowed: OK, then the server stops accepting.
    let (handle, _cache) = start_server(ServerConfig {
        allow_shutdown_command: true,
        ..ephemeral()
    });
    let mut c = connect(&handle);
    c.write_all(b"shutdown\r\n").unwrap();
    let n = c.read(&mut buf).unwrap();
    assert_eq!(&buf[..n], b"OK\r\n");
    handle.wait(); // returns because the command requested the stop
    assert!(handle.stop_requested());
    handle.shutdown();
}

#[test]
fn loadgen_against_live_server_conserves_and_hits() {
    let (handle, cache) = start_server(ephemeral());
    let before = cache.metrics().snapshot();
    let report = loadgen::run(&LoadgenOptions {
        addr: handle.local_addr().to_string(),
        conns: 4,
        pipeline_depth: 8,
        requests_per_conn: 500,
        mix: KeyMixConfig {
            keys: 200,
            set_ratio: 0.3,
            value_len: 512,
            ..Default::default()
        },
        verify_values: true,
    });
    report.conserved().expect("protocol contract");
    assert_eq!(report.requests, 4 * 500);
    assert!(report.hits > 0, "zipf reuse must produce hits");
    assert!(report.stored > 0);
    handle.shutdown();
    let diff = SnapshotDiff::between(&before, &cache.metrics().snapshot());
    assert_conserved(&diff, &server_laws()).unwrap();
    assert_eq!(diff.counter("server.requests"), 4 * 500);
}

/// Counts this process's live threads via /proc (Linux CI target).
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|d| d.count())
        .unwrap_or(0)
}

#[test]
fn start_stop_loop_leaks_no_threads() {
    // Warm up allocator/runtime threads once.
    {
        let (handle, _cache) = start_server(ephemeral());
        let mut c = connect(&handle);
        c.write_all(b"version\r\n").unwrap();
        let _ = read_exact_bytes(&mut c, 8);
        drop(c);
        handle.shutdown();
    }
    let base = thread_count();
    for round in 0..8 {
        {
            let (handle, _cache) = start_server(ephemeral());
            let mut c = connect(&handle);
            c.write_all(b"set k 0 0 1\r\nv\r\nget k\r\n").unwrap();
            let _ = read_exact_bytes(&mut c, 8);
            // One connection left open and idle: shutdown must sever it,
            // not wait out the read timeout.
            let _idle = connect(&handle);
            std::thread::sleep(Duration::from_millis(20));
            handle.shutdown();
            // `_cache` drops here; its pool drops join synchronously.
        }
        let now = thread_count();
        assert!(
            now <= base,
            "server leaked threads after round {round}: {base} before, {now} now"
        );
    }
}
