//! A simulated HDFS: the storage system the paper's HDFS local cache is
//! embedded into (§2.1.2, §6.2).
//!
//! * [`NameNode`] — file → block mapping, block locations, and generation
//!   stamps (the versioning mechanism behind `append` snapshot isolation).
//! * [`DataNode`] — stores block files plus their checksum metadata files on
//!   a modeled HDD, and embeds the local cache exactly as §6.2 describes:
//!   sliding-window admission (the *cache rate limiter*), cache keys of
//!   `(blockId, generationStamp)`, an in-memory `blockId → (cacheId, len)`
//!   map for deletes, and cache wipe on restart.
//! * [`HdfsCluster`] / [`HdfsClient`] — wiring and a
//!   [`RemoteSource`](edgecache_core::manager::RemoteSource) view for
//!   compute engines.

mod client;
mod datanode;
mod namenode;

pub use client::{HdfsClient, HdfsCluster, HdfsClusterConfig};
pub use datanode::{DataNode, DataNodeConfig};
pub use namenode::{AppendPlan, BlockId, BlockInfo, GenBumpListener, NameNode};
