//! The DataNode with the embedded HDFS local cache (§6.2).
//!
//! Each block is stored as a *block file* plus a *metadata file* holding its
//! checksum; "either both the block and metadata files are read from the
//! cache, or both are read from their original non-cache locations, but
//! never any form of the mix" (§6.2.1). We guarantee that by caching the
//! two as one unit: `checksum(8 bytes) ‖ block payload`, keyed by
//! `(blockId, generationStamp)` so that `append` gets snapshot isolation
//! (§6.2.3).
//!
//! The *cache rate limiter* (§6.2.2) is the sliding-window admission policy:
//! a block must be read often enough within the window before it earns a
//! cache slot. Deletes use an in-memory `blockId → (cacheId, unitLength)`
//! map; because that map is volatile, a DataNode restart wipes the cache and
//! rebuilds from scratch (§6.2.3).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::{Bytes, BytesMut};
use edgecache_common::clock::SharedClock;
use edgecache_common::error::{Error, Result};
use edgecache_common::hash::fnv1a64;
use edgecache_common::ByteSize;
use edgecache_core::admission::{AdmitAll, SlidingWindowAdmission};
use edgecache_core::config::CacheConfig;
use edgecache_core::manager::{CacheManager, RemoteSource, SourceFile};
use edgecache_metrics::MetricRegistry;
use edgecache_pagestore::{CacheScope, FileId, LocalPageStore, LocalStoreConfig, MemoryPageStore};
use parking_lot::RwLock;

use super::namenode::BlockId;
use crate::simdev::DeviceModel;

/// Size of the checksum-metadata prefix of a cached unit.
const META_LEN: u64 = 8;

/// Configuration for a [`DataNode`].
#[derive(Debug, Clone)]
pub struct DataNodeConfig {
    /// Local-cache capacity in bytes (`0` disables the cache entirely).
    pub cache_capacity: u64,
    /// Cache page size.
    pub page_size: ByteSize,
    /// Sliding-window admission: `(window_minutes, threshold)`. `None`
    /// admits every block (no rate limiter).
    pub admission_window: Option<(usize, u64)>,
    /// Cache pages on disk at this path instead of in memory.
    pub cache_dir: Option<PathBuf>,
    /// HDD model for non-cache reads.
    pub hdd: DeviceModel,
    /// SSD model for cache reads.
    pub ssd: DeviceModel,
}

impl Default for DataNodeConfig {
    fn default() -> Self {
        Self {
            cache_capacity: ByteSize::gib(1).as_u64(),
            page_size: ByteSize::mib(1),
            admission_window: Some((60, 15)),
            cache_dir: None,
            hdd: DeviceModel::hdd(),
            ssd: DeviceModel::local_ssd(),
        }
    }
}

/// Disk-side read counters, shared with the cache's miss path.
#[derive(Debug, Default)]
struct DiskCounters {
    requests: AtomicU64,
    bytes: AtomicU64,
}

/// The DataNode's "HDD": block + metadata files, addressed by
/// `blk_<id>@<gen>` paths so a stale generation can never silently read
/// fresh data.
struct DiskStore {
    /// `(block, gen)` → payload.
    blocks: RwLock<HashMap<(u64, u64), Bytes>>,
    /// `(block, gen)` → checksum metadata (8 bytes).
    metas: RwLock<HashMap<(u64, u64), [u8; 8]>>,
    counters: DiskCounters,
}

impl DiskStore {
    fn unit_key(path: &str) -> Result<(u64, u64)> {
        let rest = path
            .strip_prefix("blk_")
            .ok_or_else(|| Error::InvalidArgument(format!("bad block path `{path}`")))?;
        let (id, gen) = rest
            .split_once('@')
            .ok_or_else(|| Error::InvalidArgument(format!("bad block path `{path}`")))?;
        Ok((
            id.parse()
                .map_err(|_| Error::InvalidArgument(path.into()))?,
            gen.parse()
                .map_err(|_| Error::InvalidArgument(path.into()))?,
        ))
    }
}

impl DiskStore {
    /// Resolves and checksum-verifies a block unit (§6.2.1) once, so a
    /// batch of ranges pays for the verification a single time.
    fn unit_view(&self, path: &str) -> Result<([u8; 8], Bytes)> {
        let key = Self::unit_key(path)?;
        let data = self
            .blocks
            .read()
            .get(&key)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("block `{path}`")))?;
        let meta = *self
            .metas
            .read()
            .get(&key)
            .ok_or_else(|| Error::Corrupted(format!("missing meta for `{path}`")))?;
        if fnv1a64(&data) != u64::from_le_bytes(meta) {
            return Err(Error::Corrupted(format!("checksum mismatch for `{path}`")));
        }
        Ok((meta, data))
    }

    /// Serves one range of the *unit* view (`meta ‖ payload`).
    fn slice_unit(meta: &[u8; 8], data: &Bytes, offset: u64, len: u64) -> Bytes {
        let unit_len = META_LEN + data.len() as u64;
        let start = offset.min(unit_len);
        let end = offset.saturating_add(len).min(unit_len);
        let mut out = BytesMut::with_capacity((end - start) as usize);
        for i in start..end {
            if i < META_LEN {
                out.extend_from_slice(&meta[i as usize..i as usize + 1]);
            } else {
                let d = (i - META_LEN) as usize;
                out.extend_from_slice(&data[d..d + 1]);
                // Copy the rest of the payload range in one go.
                let remaining = (end - i - 1) as usize;
                out.extend_from_slice(&data[d + 1..d + 1 + remaining]);
                break;
            }
        }
        out.freeze()
    }
}

impl RemoteSource for DiskStore {
    /// Serves a range of the cached *unit* (`meta ‖ payload`) from the block
    /// and metadata files, verifying that they match (§6.2.1).
    fn read(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        self.read_ranges(path, &[(offset, len)])
            .map(|mut v| v.pop().expect("one range in, one buffer out"))
    }

    /// Batched disk reads: the unit is resolved and checksum-verified once;
    /// each range (one coalesced run of missing cache pages) still counts
    /// as one disk request.
    fn read_ranges(&self, path: &str, ranges: &[(u64, u64)]) -> Result<Vec<Bytes>> {
        let (meta, data) = self.unit_view(path)?;
        let mut out = Vec::with_capacity(ranges.len());
        for &(offset, len) in ranges {
            let body = Self::slice_unit(&meta, &data, offset, len);
            self.counters.requests.fetch_add(1, Ordering::Relaxed);
            self.counters
                .bytes
                .fetch_add(body.len() as u64, Ordering::Relaxed);
            out.push(body);
        }
        Ok(out)
    }
}

/// A simulated HDFS DataNode with the embedded local cache.
pub struct DataNode {
    name: String,
    disk: Arc<DiskStore>,
    /// Current generation stamp and length per block.
    current: RwLock<HashMap<u64, (u64, u64)>>,
    cache: Option<CacheManager>,
    cache_enabled: AtomicBool,
    /// The §6.2.3 in-memory mapping: blockId → (cacheId, unit length).
    block_map: RwLock<HashMap<u64, (FileId, u64)>>,
    config: DataNodeConfig,
}

impl DataNode {
    /// Creates a DataNode.
    pub fn new(name: &str, config: DataNodeConfig, clock: SharedClock) -> Result<Self> {
        let cache = if config.cache_capacity > 0 {
            let cache_config = CacheConfig::default().with_page_size(config.page_size);
            let mut builder = CacheManager::builder(cache_config)
                .with_clock(clock)
                .with_metrics(MetricRegistry::new(format!("{name}-cache")));
            builder = match &config.cache_dir {
                Some(dir) => builder.with_store(
                    Arc::new(LocalPageStore::open(
                        dir,
                        LocalStoreConfig {
                            page_size: config.page_size.as_u64(),
                            ..Default::default()
                        },
                    )?),
                    config.cache_capacity,
                ),
                None => builder.with_store(Arc::new(MemoryPageStore::new()), config.cache_capacity),
            };
            builder = match config.admission_window {
                Some((minutes, threshold)) => builder.with_admission(Arc::new(
                    SlidingWindowAdmission::per_minute(minutes, threshold),
                )),
                None => builder.with_admission(Arc::new(AdmitAll)),
            };
            Some(builder.build()?)
        } else {
            None
        };
        Ok(Self {
            name: name.to_string(),
            disk: Arc::new(DiskStore {
                blocks: RwLock::new(HashMap::new()),
                metas: RwLock::new(HashMap::new()),
                counters: DiskCounters::default(),
            }),
            current: RwLock::new(HashMap::new()),
            cache,
            cache_enabled: AtomicBool::new(true),
            block_map: RwLock::new(HashMap::new()),
            config,
        })
    }

    /// The node's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Enables or disables the local cache at runtime (the Figure 14
    /// experiment toggles this mid-run).
    pub fn set_cache_enabled(&self, enabled: bool) {
        self.cache_enabled.store(enabled, Ordering::SeqCst);
    }

    /// Whether the cache is active.
    pub fn cache_active(&self) -> bool {
        self.cache.is_some() && self.cache_enabled.load(Ordering::SeqCst)
    }

    fn unit_path(block: BlockId, gen: u64) -> String {
        format!("{block}@{gen}")
    }

    /// Stores a finalized block replica (payload + checksum metadata).
    pub fn store_block(&self, block: BlockId, gen: u64, data: impl Into<Bytes>) {
        let data = data.into();
        let meta = fnv1a64(&data).to_le_bytes();
        let len = data.len() as u64;
        self.disk.blocks.write().insert((block.0, gen), data);
        self.disk.metas.write().insert((block.0, gen), meta);
        self.current.write().insert(block.0, (gen, len));
    }

    /// Applies an append: replaces the `(block, old_gen)` replica with
    /// `(block, new_gen)` holding `data`, and drops the now-stale cache
    /// entry — "the updated block, identifiable by its new generation stamp,
    /// is considered a distinct cache entry" (§6.2.3).
    pub fn apply_append(&self, block: BlockId, old_gen: u64, new_gen: u64, data: impl Into<Bytes>) {
        self.store_block(block, new_gen, data);
        self.disk.blocks.write().remove(&(block.0, old_gen));
        self.disk.metas.write().remove(&(block.0, old_gen));
        if let Some(cache) = self.active_cache() {
            let stale = FileId::from_path_version(&Self::unit_path(block, old_gen), old_gen);
            cache.delete_file(stale);
        }
        self.block_map.write().remove(&block.0);
    }

    /// Deletes all replicas of a block and the matching cache pages, via the
    /// in-memory mapping (§6.2.3 "Delete a block").
    pub fn delete_block(&self, block: BlockId) {
        let gens: Vec<u64> = self
            .disk
            .blocks
            .read()
            .keys()
            .filter(|(b, _)| *b == block.0)
            .map(|(_, g)| *g)
            .collect();
        for g in gens {
            self.disk.blocks.write().remove(&(block.0, g));
            self.disk.metas.write().remove(&(block.0, g));
        }
        self.current.write().remove(&block.0);
        if let Some((cache_id, _len)) = self.block_map.write().remove(&block.0) {
            if let Some(cache) = self.cache.as_ref() {
                cache.delete_file(cache_id);
            }
        }
    }

    /// Whether this node holds a replica of the block.
    pub fn has_block(&self, block: BlockId) -> bool {
        self.current.read().contains_key(&block.0)
    }

    /// Reads `len` bytes at `offset` within a block's payload, through the
    /// local cache when it is enabled and the rate limiter admits the block.
    pub fn read_block(&self, block: BlockId, offset: u64, len: u64) -> Result<Bytes> {
        let (gen, block_len) = *self
            .current
            .read()
            .get(&block.0)
            .ok_or_else(|| Error::NotFound(format!("{block} on {}", self.name)))?;
        let path = Self::unit_path(block, gen);
        match self.active_cache() {
            Some(cache) => {
                let unit_len = META_LEN + block_len;
                let file = SourceFile::new(&path, gen, unit_len, CacheScope::Global);
                self.block_map
                    .write()
                    .insert(block.0, (file.file_id(), unit_len));
                cache.read(&file, META_LEN + offset, len, self.disk.as_ref())
            }
            None => self.disk.read(&path, META_LEN + offset, len),
        }
    }

    /// Direct disk read of a `(block, gen)` unit, bypassing the cache
    /// (crate-internal: used by the append path).
    pub(crate) fn disk_read_unit(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        self.disk.read(path, offset, len)
    }

    fn active_cache(&self) -> Option<&CacheManager> {
        if self.cache_enabled.load(Ordering::SeqCst) {
            self.cache.as_ref()
        } else {
            None
        }
    }

    /// Restarts the node: the in-memory block map is lost, so "the DataNode
    /// clears all local cached contents and rebuilds the cache from the
    /// ground up" (§6.2.3).
    pub fn restart(&self) {
        self.block_map.write().clear();
        if let Some(cache) = self.cache.as_ref() {
            cache.clear();
        }
    }

    /// HDD read requests served (non-cache path + cache misses).
    pub fn hdd_requests(&self) -> u64 {
        self.disk.counters.requests.load(Ordering::Relaxed)
    }

    /// HDD bytes served.
    pub fn hdd_bytes(&self) -> u64 {
        self.disk.counters.bytes.load(Ordering::Relaxed)
    }

    /// Bytes served from the local cache.
    pub fn cache_bytes(&self) -> u64 {
        self.cache
            .as_ref()
            .map(|c| c.metrics().counter("bytes_from_cache").get())
            .unwrap_or(0)
    }

    /// The embedded cache's metrics, if the cache exists.
    pub fn cache_metrics(&self) -> Option<&MetricRegistry> {
        self.cache.as_ref().map(|c| c.metrics())
    }

    /// The HDD device model (harnesses feed it into a queue model).
    pub fn hdd_model(&self) -> DeviceModel {
        self.config.hdd
    }

    /// The SSD device model.
    pub fn ssd_model(&self) -> DeviceModel {
        self.config.ssd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgecache_common::clock::SimClock;
    use std::time::Duration;

    fn node(admission: Option<(usize, u64)>) -> (DataNode, SimClock) {
        let clock = SimClock::new();
        let config = DataNodeConfig {
            cache_capacity: 1 << 20,
            page_size: ByteSize::kib(4),
            admission_window: admission,
            ..Default::default()
        };
        (
            DataNode::new("dn0", config, Arc::new(clock.clone())).unwrap(),
            clock,
        )
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 241) as u8).collect()
    }

    #[test]
    fn read_block_round_trip() {
        let (dn, _) = node(None);
        let data = payload(10_000);
        dn.store_block(BlockId(1), 100, data.clone());
        let got = dn.read_block(BlockId(1), 500, 1000).unwrap();
        assert_eq!(got.as_ref(), &data[500..1500]);
        assert!(dn.has_block(BlockId(1)));
    }

    #[test]
    fn second_read_is_served_by_cache() {
        let (dn, _) = node(None);
        dn.store_block(BlockId(1), 100, payload(4096));
        dn.read_block(BlockId(1), 0, 4096).unwrap();
        let disk_before = dn.hdd_bytes();
        dn.read_block(BlockId(1), 0, 4096).unwrap();
        assert_eq!(dn.hdd_bytes(), disk_before, "no further disk reads");
        assert!(dn.cache_bytes() >= 4096);
    }

    #[test]
    fn rate_limiter_delays_admission() {
        let (dn, _) = node(Some((60, 3)));
        dn.store_block(BlockId(1), 100, payload(1000));
        // First two reads are below the threshold: always from disk.
        dn.read_block(BlockId(1), 0, 1000).unwrap();
        dn.read_block(BlockId(1), 0, 1000).unwrap();
        assert_eq!(dn.cache_bytes(), 0);
        // Third read crosses the threshold and caches; fourth hits.
        dn.read_block(BlockId(1), 0, 1000).unwrap();
        dn.read_block(BlockId(1), 0, 1000).unwrap();
        assert!(dn.cache_bytes() > 0);
    }

    #[test]
    fn disabled_cache_reads_disk_only() {
        let (dn, _) = node(None);
        dn.store_block(BlockId(1), 100, payload(1000));
        dn.set_cache_enabled(false);
        assert!(!dn.cache_active());
        dn.read_block(BlockId(1), 0, 1000).unwrap();
        dn.read_block(BlockId(1), 0, 1000).unwrap();
        assert_eq!(dn.cache_bytes(), 0);
        assert_eq!(dn.hdd_requests(), 2);
    }

    #[test]
    fn append_isolates_generations() {
        let (dn, _) = node(None);
        let v1 = payload(1000);
        dn.store_block(BlockId(1), 100, v1.clone());
        dn.read_block(BlockId(1), 0, 1000).unwrap(); // Cache v1.
        let mut v2 = v1.clone();
        v2.extend_from_slice(&payload(500));
        dn.apply_append(BlockId(1), 100, 101, v2.clone());
        // Reads now see v2, and the appended range is correct.
        let got = dn.read_block(BlockId(1), 0, 1500).unwrap();
        assert_eq!(got.as_ref(), &v2[..]);
        let got = dn.read_block(BlockId(1), 1200, 100).unwrap();
        assert_eq!(got.as_ref(), &v2[1200..1300]);
    }

    #[test]
    fn delete_block_purges_cache() {
        let (dn, _) = node(None);
        dn.store_block(BlockId(1), 100, payload(1000));
        dn.read_block(BlockId(1), 0, 1000).unwrap();
        dn.delete_block(BlockId(1));
        assert!(!dn.has_block(BlockId(1)));
        assert!(dn.read_block(BlockId(1), 0, 10).is_err());
        let m = dn.cache_metrics().unwrap();
        assert!(
            m.counter("evictions.delete").get() > 0,
            "cache pages removed"
        );
    }

    #[test]
    fn restart_wipes_cache() {
        let (dn, _) = node(None);
        dn.store_block(BlockId(1), 100, payload(1000));
        dn.read_block(BlockId(1), 0, 1000).unwrap();
        let hdd_before = dn.hdd_bytes();
        dn.restart();
        // The block itself survives (it is on disk) but the cache is cold.
        dn.read_block(BlockId(1), 0, 1000).unwrap();
        assert!(
            dn.hdd_bytes() > hdd_before,
            "post-restart read went to disk"
        );
    }

    #[test]
    fn checksum_mismatch_is_detected() {
        let (dn, _) = node(None);
        dn.store_block(BlockId(1), 100, payload(100));
        // Corrupt the block file behind the metadata's back.
        dn.disk
            .blocks
            .write()
            .insert((1, 100), Bytes::from(payload(99)));
        assert!(matches!(
            dn.read_block(BlockId(1), 0, 10),
            Err(Error::Corrupted(_))
        ));
    }

    #[test]
    fn admission_window_cools_down_with_sim_clock() {
        let (dn, clock) = node(Some((2, 3)));
        dn.store_block(BlockId(1), 100, payload(100));
        dn.read_block(BlockId(1), 0, 100).unwrap();
        dn.read_block(BlockId(1), 0, 100).unwrap();
        // Window slides past: the earlier accesses no longer count.
        clock.advance(Duration::from_secs(180));
        dn.read_block(BlockId(1), 0, 100).unwrap();
        assert_eq!(dn.cache_bytes(), 0, "heat reset by window expiry");
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let clock = SimClock::new();
        let dn = DataNode::new(
            "dn0",
            DataNodeConfig {
                cache_capacity: 0,
                ..Default::default()
            },
            Arc::new(clock),
        )
        .unwrap();
        dn.store_block(BlockId(1), 1, payload(10));
        dn.read_block(BlockId(1), 0, 10).unwrap();
        assert!(!dn.cache_active());
        assert!(dn.cache_metrics().is_none());
    }
}
