//! Cluster wiring and the client-side view of the simulated HDFS.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::{Bytes, BytesMut};
use edgecache_common::clock::SharedClock;
use edgecache_common::error::{Error, Result};
use edgecache_core::manager::RemoteSource;
use parking_lot::RwLock;

use super::datanode::{DataNode, DataNodeConfig};
use super::namenode::{BlockId, NameNode};

/// Configuration for a [`HdfsCluster`].
#[derive(Debug, Clone)]
pub struct HdfsClusterConfig {
    /// Number of DataNodes.
    pub datanodes: usize,
    /// HDFS block size.
    pub block_size: u64,
    /// Replication factor.
    pub replication: usize,
    /// Per-DataNode configuration.
    pub datanode: DataNodeConfig,
}

impl Default for HdfsClusterConfig {
    fn default() -> Self {
        Self {
            datanodes: 4,
            block_size: 64 << 20,
            replication: 1,
            datanode: DataNodeConfig::default(),
        }
    }
}

/// A simulated HDFS cluster: one NameNode plus DataNodes.
pub struct HdfsCluster {
    namenode: NameNode,
    datanodes: HashMap<String, Arc<DataNode>>,
    /// File payloads retained for append bookkeeping (HDFS clients resend
    /// the grown tail block; we reconstruct it from the stored replicas).
    node_order: Vec<String>,
    /// Round-robin cursor for picking among replicas on read.
    read_cursor: RwLock<usize>,
}

impl HdfsCluster {
    /// Builds a cluster.
    pub fn new(config: HdfsClusterConfig, clock: SharedClock) -> Result<Self> {
        let namenode = NameNode::new(config.block_size, config.replication);
        let mut datanodes = HashMap::new();
        let mut node_order = Vec::new();
        for i in 0..config.datanodes {
            let name = format!("dn{i}");
            let mut dn_config = config.datanode.clone();
            if let Some(dir) = dn_config.cache_dir.take() {
                dn_config.cache_dir = Some(dir.join(&name));
            }
            let node = DataNode::new(&name, dn_config, clock.clone())?;
            namenode.register_datanode(&name);
            datanodes.insert(name.clone(), Arc::new(node));
            node_order.push(name);
        }
        Ok(Self {
            namenode,
            datanodes,
            node_order,
            read_cursor: RwLock::new(0),
        })
    }

    /// The NameNode.
    pub fn namenode(&self) -> &NameNode {
        &self.namenode
    }

    /// A DataNode by name.
    pub fn datanode(&self, name: &str) -> Option<&Arc<DataNode>> {
        self.datanodes.get(name)
    }

    /// All DataNodes, in registration order.
    pub fn datanodes(&self) -> Vec<&Arc<DataNode>> {
        self.node_order
            .iter()
            .map(|n| self.datanodes.get(n).expect("registered node"))
            .collect()
    }

    /// Writes a new file, placing block replicas on DataNodes.
    pub fn write_file(&self, path: &str, data: &[u8]) -> Result<()> {
        let blocks = self.namenode.create_file(path, data.len() as u64)?;
        let mut offset = 0usize;
        for block in blocks {
            let end = offset + block.len as usize;
            let payload = Bytes::copy_from_slice(&data[offset..end]);
            for location in &block.locations {
                let node = self.datanodes.get(location).expect("placed on known node");
                node.store_block(block.id, block.gen_stamp, payload.clone());
            }
            offset = end;
        }
        Ok(())
    }

    /// Appends to an existing file (§6.2.3): the tail block grows under a
    /// new generation stamp; any remainder lands in fresh blocks.
    pub fn append_file(&self, path: &str, data: &[u8]) -> Result<()> {
        let plan = self.namenode.append_file(path, data.len() as u64)?;
        let mut offset = 0usize;
        if let Some((block, old_gen, new_gen, added)) = plan.grown_tail {
            // Reconstruct the grown tail from any replica holding the old
            // generation, then apply the append to all replicas.
            let info = self
                .namenode
                .file_blocks(path)?
                .into_iter()
                .find(|b| b.id == block)
                .expect("tail block listed");
            let old_len = info.len - added;
            let holder = info
                .locations
                .iter()
                .find_map(|l| self.datanodes.get(l))
                .ok_or_else(|| Error::NotFound(format!("replica of {block}")))?;
            // The old-generation replica is still addressable pre-append.
            let mut grown =
                BytesMut::from(holder.read_with_gen(block, old_gen, 0, old_len)?.as_ref());
            grown.extend_from_slice(&data[..added as usize]);
            let grown = grown.freeze();
            for location in &info.locations {
                let node = self.datanodes.get(location).expect("known node");
                node.apply_append(block, old_gen, new_gen, grown.clone());
            }
            offset += added as usize;
        }
        for block in plan.new_blocks {
            let end = offset + block.len as usize;
            let payload = Bytes::copy_from_slice(&data[offset..end]);
            for location in &block.locations {
                let node = self.datanodes.get(location).expect("known node");
                node.store_block(block.id, block.gen_stamp, payload.clone());
            }
            offset = end;
        }
        Ok(())
    }

    /// Deletes a file: the NameNode drops the mapping and every DataNode
    /// holding a replica removes the block and its cache entries.
    pub fn delete_file(&self, path: &str) -> Result<()> {
        for block in self.namenode.delete_file(path)? {
            for location in &block.locations {
                if let Some(node) = self.datanodes.get(location) {
                    node.delete_block(block.id);
                }
            }
        }
        Ok(())
    }

    /// Reads a byte range of a file, fanning out to the DataNodes that hold
    /// the covered blocks.
    pub fn read(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        let blocks = self.namenode.file_blocks(path)?;
        let total: u64 = blocks.iter().map(|b| b.len).sum();
        let end = offset.saturating_add(len).min(total);
        if offset >= end {
            return Ok(Bytes::new());
        }
        let mut out = BytesMut::with_capacity((end - offset) as usize);
        let mut block_start = 0u64;
        for block in &blocks {
            let block_end = block_start + block.len;
            if block_end > offset && block_start < end {
                let from = offset.max(block_start) - block_start;
                let to = end.min(block_end) - block_start;
                let node = self.pick_replica(block.id, &block.locations)?;
                out.extend_from_slice(&node.read_block(block.id, from, to - from)?);
            }
            block_start = block_end;
            if block_start >= end {
                break;
            }
        }
        Ok(out.freeze())
    }

    /// File length.
    pub fn file_len(&self, path: &str) -> Result<u64> {
        self.namenode.file_len(path)
    }

    fn pick_replica(&self, _block: BlockId, locations: &[String]) -> Result<Arc<DataNode>> {
        let mut cursor = self.read_cursor.write();
        *cursor = cursor.wrapping_add(1);
        let start = *cursor;
        drop(cursor);
        locations
            .iter()
            .cycle()
            .skip(start % locations.len().max(1))
            .take(locations.len())
            .find_map(|l| self.datanodes.get(l).cloned())
            .ok_or_else(|| Error::NotFound("no live replica".into()))
    }
}

impl DataNode {
    /// Reads a specific generation of a block directly from the block files
    /// (used by the append path to reconstruct the grown tail).
    pub(crate) fn read_with_gen(
        &self,
        block: BlockId,
        gen: u64,
        offset: u64,
        len: u64,
    ) -> Result<Bytes> {
        // Route through the disk unit view, skipping the checksum prefix.
        self.disk_read_unit(&format!("{block}@{gen}"), 8 + offset, len)
    }
}

/// A client handle implementing [`RemoteSource`], so OLAP engines can read
/// HDFS through their local cache.
#[derive(Clone)]
pub struct HdfsClient {
    cluster: Arc<HdfsCluster>,
}

impl HdfsClient {
    /// Wraps a cluster.
    pub fn new(cluster: Arc<HdfsCluster>) -> Self {
        Self { cluster }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Arc<HdfsCluster> {
        &self.cluster
    }
}

impl RemoteSource for HdfsClient {
    fn read(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        self.cluster.read(path, offset, len)
    }

    /// Each range (one coalesced run of missing pages) becomes one client
    /// read, which the cluster pipelines across the blocks and replicas the
    /// range spans.
    fn read_ranges(&self, path: &str, ranges: &[(u64, u64)]) -> Result<Vec<Bytes>> {
        ranges
            .iter()
            .map(|&(offset, len)| self.cluster.read(path, offset, len))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgecache_common::clock::SimClock;
    use edgecache_common::ByteSize;

    fn cluster(block_size: u64, replication: usize) -> HdfsCluster {
        let config = HdfsClusterConfig {
            datanodes: 3,
            block_size,
            replication,
            datanode: DataNodeConfig {
                cache_capacity: 1 << 20,
                page_size: ByteSize::kib(4),
                admission_window: None,
                ..Default::default()
            },
        };
        HdfsCluster::new(config, Arc::new(SimClock::new())).unwrap()
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 239) as u8).collect()
    }

    #[test]
    fn write_read_round_trip_across_blocks() {
        let c = cluster(100, 1);
        let data = payload(350);
        c.write_file("/f", &data).unwrap();
        assert_eq!(c.file_len("/f").unwrap(), 350);
        let got = c.read("/f", 0, 350).unwrap();
        assert_eq!(got.as_ref(), &data[..]);
        // A range crossing block boundaries.
        let got = c.read("/f", 80, 150).unwrap();
        assert_eq!(got.as_ref(), &data[80..230]);
    }

    #[test]
    fn read_clamps_at_eof() {
        let c = cluster(100, 1);
        c.write_file("/f", &payload(120)).unwrap();
        assert_eq!(c.read("/f", 100, 500).unwrap().len(), 20);
        assert!(c.read("/f", 500, 10).unwrap().is_empty());
    }

    #[test]
    fn replication_places_copies() {
        let c = cluster(100, 2);
        c.write_file("/f", &payload(100)).unwrap();
        let blocks = c.namenode().file_blocks("/f").unwrap();
        assert_eq!(blocks[0].locations.len(), 2);
        let holders = c
            .datanodes()
            .iter()
            .filter(|d| d.has_block(blocks[0].id))
            .count();
        assert_eq!(holders, 2);
    }

    #[test]
    fn append_grows_and_stays_readable() {
        let c = cluster(100, 1);
        let mut data = payload(80);
        c.write_file("/f", &data).unwrap();
        // Warm the cache with the old generation.
        c.read("/f", 0, 80).unwrap();
        let extra = payload(150);
        c.append_file("/f", &extra).unwrap();
        data.extend_from_slice(&extra);
        assert_eq!(c.file_len("/f").unwrap(), 230);
        let got = c.read("/f", 0, 230).unwrap();
        assert_eq!(got.as_ref(), &data[..], "append is visible and coherent");
    }

    #[test]
    fn append_twice_keeps_coherence() {
        let c = cluster(100, 1);
        let mut data = payload(50);
        c.write_file("/f", &data).unwrap();
        for round in 0..2 {
            let extra = vec![round as u8 + 1; 70];
            c.read("/f", 0, data.len() as u64).unwrap(); // Cache current.
            c.append_file("/f", &extra).unwrap();
            data.extend_from_slice(&extra);
            let got = c.read("/f", 0, data.len() as u64).unwrap();
            assert_eq!(got.as_ref(), &data[..], "round {round}");
        }
    }

    #[test]
    fn delete_removes_everywhere() {
        let c = cluster(100, 2);
        c.write_file("/f", &payload(200)).unwrap();
        let blocks = c.namenode().file_blocks("/f").unwrap();
        c.read("/f", 0, 200).unwrap(); // Populate caches.
        c.delete_file("/f").unwrap();
        assert!(c.read("/f", 0, 10).is_err());
        for d in c.datanodes() {
            for b in &blocks {
                assert!(!d.has_block(b.id));
            }
        }
    }

    #[test]
    fn client_remote_source_view() {
        let c = Arc::new(cluster(100, 1));
        let data = payload(150);
        c.write_file("/f", &data).unwrap();
        let client = HdfsClient::new(Arc::clone(&c));
        let got = client.read("/f", 30, 60).unwrap();
        assert_eq!(got.as_ref(), &data[30..90]);
    }

    #[test]
    fn reads_with_replication_spread_over_replicas() {
        let c = cluster(100, 2);
        c.write_file("/f", &payload(100)).unwrap();
        for _ in 0..20 {
            c.read("/f", 0, 100).unwrap();
        }
        // Both replicas served traffic (round-robin read cursor).
        let served: Vec<u64> = c
            .datanodes()
            .iter()
            .map(|d| d.hdd_bytes() + d.cache_bytes())
            .collect();
        assert!(served.iter().filter(|&&b| b > 0).count() >= 2, "{served:?}");
    }
}
