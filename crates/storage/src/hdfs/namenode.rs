//! The NameNode: file-system namespace, block mapping, and generation
//! stamps.
//!
//! "HDFS employs a versioning system where each block is assigned a
//! *generation stamp*. Each invocation of the append operation increments
//! the block's generation stamp, signaling a new version of the block"
//! (§6.2.3).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use edgecache_common::error::{Error, Result};
use parking_lot::RwLock;

/// A block identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blk_{}", self.0)
    }
}

/// Metadata for one block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInfo {
    pub id: BlockId,
    /// The current generation stamp.
    pub gen_stamp: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// DataNode names holding replicas.
    pub locations: Vec<String>,
}

/// The plan the NameNode returns for an append: which existing block grows
/// (with its old and new generation stamps) and which fresh blocks are
/// allocated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppendPlan {
    /// `(block, old_gen, new_gen, added_bytes)` when the tail block grows.
    pub grown_tail: Option<(BlockId, u64, u64, u64)>,
    /// Newly allocated blocks, in order.
    pub new_blocks: Vec<BlockInfo>,
}

/// Notified when an append bumps a file's tail-block generation stamp:
/// `(path, old_gen, new_gen)`. This is the storage-side trigger of the
/// shared invalidation path — the integration layer forwards bumps into
/// `Catalog::notify_stale`, which purges the footer metadata caches and
/// the query-result cache alike.
pub type GenBumpListener = Arc<dyn Fn(&str, u64, u64) + Send + Sync>;

/// The simulated NameNode.
pub struct NameNode {
    files: RwLock<HashMap<String, Vec<BlockId>>>,
    blocks: RwLock<HashMap<BlockId, BlockInfo>>,
    datanodes: RwLock<Vec<String>>,
    gen_listeners: RwLock<Vec<GenBumpListener>>,
    next_block: AtomicU64,
    next_gen: AtomicU64,
    next_placement: AtomicU64,
    block_size: u64,
    replication: usize,
}

impl std::fmt::Debug for NameNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NameNode")
            .field("files", &self.files)
            .field("blocks", &self.blocks)
            .field("datanodes", &self.datanodes)
            .field("gen_listeners", &self.gen_listeners.read().len())
            .field("block_size", &self.block_size)
            .field("replication", &self.replication)
            .finish()
    }
}

impl NameNode {
    /// Creates a NameNode with the given block size and replication factor.
    pub fn new(block_size: u64, replication: usize) -> Self {
        assert!(block_size > 0 && replication > 0);
        Self {
            files: RwLock::new(HashMap::new()),
            blocks: RwLock::new(HashMap::new()),
            datanodes: RwLock::new(Vec::new()),
            gen_listeners: RwLock::new(Vec::new()),
            next_block: AtomicU64::new(1),
            next_gen: AtomicU64::new(1000),
            next_placement: AtomicU64::new(0),
            block_size,
            replication,
        }
    }

    /// The configured block size.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Registers a DataNode for block placement.
    pub fn register_datanode(&self, name: &str) {
        self.datanodes.write().push(name.to_string());
    }

    /// Registers a generation-bump listener, fired (outside the block lock)
    /// whenever an append advances a tail block's generation stamp.
    pub fn on_generation_bump(&self, listener: GenBumpListener) {
        self.gen_listeners.write().push(listener);
    }

    fn pick_locations(&self) -> Vec<String> {
        let nodes = self.datanodes.read();
        assert!(!nodes.is_empty(), "no DataNodes registered");
        let r = self.replication.min(nodes.len());
        let start = self.next_placement.fetch_add(1, Ordering::Relaxed) as usize;
        (0..r)
            .map(|i| nodes[(start + i) % nodes.len()].clone())
            .collect()
    }

    fn fresh_block(&self, len: u64) -> BlockInfo {
        BlockInfo {
            id: BlockId(self.next_block.fetch_add(1, Ordering::Relaxed)),
            gen_stamp: self.next_gen.fetch_add(1, Ordering::Relaxed),
            len,
            locations: self.pick_locations(),
        }
    }

    /// Creates a file of `len` bytes, allocating blocks. Fails if the path
    /// exists.
    pub fn create_file(&self, path: &str, len: u64) -> Result<Vec<BlockInfo>> {
        let mut files = self.files.write();
        if files.contains_key(path) {
            return Err(Error::InvalidArgument(format!("`{path}` already exists")));
        }
        let mut out = Vec::new();
        let mut remaining = len;
        loop {
            let this = remaining.min(self.block_size);
            let info = self.fresh_block(this);
            out.push(info.clone());
            self.blocks.write().insert(info.id, info);
            remaining -= this;
            if remaining == 0 {
                break;
            }
        }
        files.insert(path.to_string(), out.iter().map(|b| b.id).collect());
        Ok(out)
    }

    /// Plans an append of `len` bytes: grows the tail block (incrementing
    /// its generation stamp) and allocates new blocks for any remainder.
    pub fn append_file(&self, path: &str, len: u64) -> Result<AppendPlan> {
        let files = self.files.write();
        let block_ids = files
            .get(path)
            .ok_or_else(|| Error::NotFound(format!("file `{path}`")))?
            .clone();
        drop(files);

        let mut blocks = self.blocks.write();
        let mut remaining = len;
        let mut grown_tail = None;
        if let Some(&tail_id) = block_ids.last() {
            let tail = blocks.get_mut(&tail_id).expect("tail block exists");
            let room = self.block_size - tail.len;
            if room > 0 && remaining > 0 {
                let add = remaining.min(room);
                let old_gen = tail.gen_stamp;
                tail.gen_stamp = self.next_gen.fetch_add(1, Ordering::Relaxed);
                tail.len += add;
                grown_tail = Some((tail_id, old_gen, tail.gen_stamp, add));
                remaining -= add;
            }
        }
        let mut new_blocks = Vec::new();
        while remaining > 0 {
            let this = remaining.min(self.block_size);
            let info = self.fresh_block(this);
            blocks.insert(info.id, info.clone());
            new_blocks.push(info);
            remaining -= this;
        }
        drop(blocks);
        if !new_blocks.is_empty() {
            let mut files = self.files.write();
            let ids = files.get_mut(path).expect("checked above");
            ids.extend(new_blocks.iter().map(|b| b.id));
        }
        if let Some((_, old_gen, new_gen, _)) = grown_tail {
            let listeners = self.gen_listeners.read().clone();
            for listener in &listeners {
                listener(path, old_gen, new_gen);
            }
        }
        Ok(AppendPlan {
            grown_tail,
            new_blocks,
        })
    }

    /// Deletes a file, returning its blocks so DataNodes can be told to drop
    /// them (and their cache entries, §6.2.3).
    pub fn delete_file(&self, path: &str) -> Result<Vec<BlockInfo>> {
        let ids = self
            .files
            .write()
            .remove(path)
            .ok_or_else(|| Error::NotFound(format!("file `{path}`")))?;
        let mut blocks = self.blocks.write();
        Ok(ids.iter().filter_map(|id| blocks.remove(id)).collect())
    }

    /// The blocks of a file, in order.
    pub fn file_blocks(&self, path: &str) -> Result<Vec<BlockInfo>> {
        let files = self.files.read();
        let ids = files
            .get(path)
            .ok_or_else(|| Error::NotFound(format!("file `{path}`")))?;
        let blocks = self.blocks.read();
        Ok(ids
            .iter()
            .map(|id| blocks.get(id).expect("block registered").clone())
            .collect())
    }

    /// Total length of a file.
    pub fn file_len(&self, path: &str) -> Result<u64> {
        Ok(self.file_blocks(path)?.iter().map(|b| b.len).sum())
    }

    /// Whether a path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    /// Number of files in the namespace.
    pub fn file_count(&self) -> usize {
        self.files.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn namenode() -> NameNode {
        let nn = NameNode::new(100, 2);
        for n in ["dn0", "dn1", "dn2"] {
            nn.register_datanode(n);
        }
        nn
    }

    #[test]
    fn create_splits_into_blocks() {
        let nn = namenode();
        let blocks = nn.create_file("/f", 250).unwrap();
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].len, 100);
        assert_eq!(blocks[2].len, 50);
        assert_eq!(nn.file_len("/f").unwrap(), 250);
        for b in &blocks {
            assert_eq!(b.locations.len(), 2, "replication factor honored");
        }
    }

    #[test]
    fn duplicate_create_fails() {
        let nn = namenode();
        nn.create_file("/f", 10).unwrap();
        assert!(nn.create_file("/f", 10).is_err());
    }

    #[test]
    fn zero_length_file_gets_one_empty_block() {
        let nn = namenode();
        let blocks = nn.create_file("/empty", 0).unwrap();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].len, 0);
    }

    #[test]
    fn append_grows_tail_and_bumps_gen_stamp() {
        let nn = namenode();
        let blocks = nn.create_file("/f", 80).unwrap();
        let old_gen = blocks[0].gen_stamp;
        let plan = nn.append_file("/f", 50).unwrap();
        let (id, plan_old, plan_new, added) = plan.grown_tail.unwrap();
        assert_eq!(id, blocks[0].id);
        assert_eq!(plan_old, old_gen);
        assert!(plan_new > old_gen, "generation stamp must increase");
        assert_eq!(added, 20, "tail had 20 bytes of room");
        assert_eq!(plan.new_blocks.len(), 1);
        assert_eq!(plan.new_blocks[0].len, 30);
        assert_eq!(nn.file_len("/f").unwrap(), 130);
    }

    #[test]
    fn append_to_full_tail_only_allocates() {
        let nn = namenode();
        nn.create_file("/f", 100).unwrap();
        let plan = nn.append_file("/f", 100).unwrap();
        assert!(plan.grown_tail.is_none());
        assert_eq!(plan.new_blocks.len(), 1);
    }

    #[test]
    fn delete_returns_blocks_and_removes_file() {
        let nn = namenode();
        nn.create_file("/f", 250).unwrap();
        let dropped = nn.delete_file("/f").unwrap();
        assert_eq!(dropped.len(), 3);
        assert!(!nn.exists("/f"));
        assert!(nn.file_blocks("/f").is_err());
        assert!(nn.delete_file("/f").is_err());
    }

    #[test]
    fn generation_bump_listeners_fire_on_append() {
        use parking_lot::Mutex;
        let nn = namenode();
        nn.create_file("/f", 80).unwrap();
        let seen: Arc<Mutex<Vec<(String, u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        nn.on_generation_bump(Arc::new(move |path: &str, old_gen, new_gen| {
            sink.lock().push((path.to_string(), old_gen, new_gen));
        }));
        // Tail grows: one bump, old < new.
        let plan = nn.append_file("/f", 10).unwrap();
        let (_, old_gen, new_gen, _) = plan.grown_tail.unwrap();
        assert_eq!(
            seen.lock().as_slice(),
            [("/f".to_string(), old_gen, new_gen)]
        );
        assert!(new_gen > old_gen);
        // Fill the tail, then append again: the tail is full, only fresh
        // blocks are allocated — no generation bump, no notification.
        nn.append_file("/f", 10).unwrap(); // 100 now: tail full
        seen.lock().clear();
        let plan = nn.append_file("/f", 30).unwrap();
        assert!(plan.grown_tail.is_none());
        assert!(seen.lock().is_empty(), "no bump without a grown tail");
    }

    #[test]
    fn placement_round_robins() {
        let nn = namenode();
        let mut firsts = std::collections::HashSet::new();
        for i in 0..3 {
            let blocks = nn.create_file(&format!("/f{i}"), 10).unwrap();
            firsts.insert(blocks[0].locations[0].clone());
        }
        assert_eq!(firsts.len(), 3, "primaries rotate across DataNodes");
    }
}
