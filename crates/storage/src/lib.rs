//! Storage substrate for edgecache: the systems the paper's evaluation runs
//! against, rebuilt as deterministic simulations.
//!
//! * [`simdev`] — cost models for storage devices and networks
//!   ([`DeviceModel`]) and a fluid queueing model ([`FluidQueue`]) that
//!   reproduces I/O throttling: the "blocked processes" signal of §2.2 and
//!   Figure 14.
//! * [`object`] — an S3-like object store ([`ObjectStore`]) with network
//!   cost accounting and API-rate throttling, standing in for the paper's
//!   AWS S3 / GCS data lake.
//! * [`hdfs`] — a simulated HDFS: [`NameNode`](hdfs::NameNode) (file → block
//!   mapping, generation stamps), [`DataNode`](hdfs::DataNode) (block +
//!   checksum-metadata files on a modeled HDD, with the embedded Alluxio-style
//!   local cache of §6.2), and a [`HdfsClient`](hdfs::HdfsClient).
//!
//! The *functional* behaviour (what bytes are returned, what is cached,
//! what is invalidated) is real; only device *time* is simulated, via cost
//! models the experiment harnesses consult.

pub mod hdfs;
pub mod object;
pub mod simdev;

pub use object::ObjectStore;
pub use simdev::{DeviceModel, FluidQueue, StallSchedule, StallWindow};
