//! Device and queue cost models.
//!
//! Experiments need to compare "read from local SSD" with "read from a
//! loaded HDD" or "fetch over the network from the data lake" without the
//! paper's production hardware. [`DeviceModel`] charges a simulated duration
//! per operation from public device characteristics; [`FluidQueue`] models a
//! device under sustained load and reports *blocked processes* — the
//! throttling signal Uber monitors (§2.2: "the count of blocked processes
//! can reach up to several thousand within just one minute"; Figure 14).

use std::time::Duration;

/// A storage or network device characterized by per-request latency,
/// sustained bandwidth, and how many in-flight requests a reader keeps
/// pipelined.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceModel {
    /// Fixed cost per request (seek / rotation / RTT / API overhead).
    pub request_latency: Duration,
    /// Sustained transfer bandwidth in bytes per second.
    pub bandwidth: u64,
    /// Concurrent in-flight requests a client keeps against this device;
    /// per-request latency amortizes across the pipeline in batch reads.
    /// Query engines issue many ranged reads concurrently (Presto's S3
    /// readers pipeline aggressively), so the object-store preset uses a
    /// deep pipeline while a local SSD read is effectively synchronous.
    pub pipeline_depth: u32,
}

impl DeviceModel {
    /// A local NVMe/SATA SSD: ~100 µs access, ~2 GB/s.
    pub fn local_ssd() -> Self {
        Self {
            request_latency: Duration::from_micros(100),
            bandwidth: 2 * (1 << 30),
            pipeline_depth: 1,
        }
    }

    /// A high-density HDD (the 16+ TB SKUs of §2.1.2): ~8 ms random access,
    /// ~180 MB/s sequential.
    pub fn hdd() -> Self {
        Self {
            request_latency: Duration::from_millis(8),
            bandwidth: 180 * (1 << 20),
            pipeline_depth: 1,
        }
    }

    /// Cloud object storage over the network: ~30 ms first-byte latency,
    /// ~100 MB/s effective per-stream throughput, 8 pipelined range GETs.
    pub fn object_store() -> Self {
        Self {
            request_latency: Duration::from_millis(30),
            bandwidth: 100 * (1 << 20),
            pipeline_depth: 8,
        }
    }

    /// Intra-datacenter network hop: ~0.5 ms, ~1.2 GB/s.
    pub fn datacenter_network() -> Self {
        Self {
            request_latency: Duration::from_micros(500),
            bandwidth: (12 * (1u64 << 30)) / 10,
            pipeline_depth: 4,
        }
    }

    /// Time to serve one read of `bytes`.
    pub fn read_time(&self, bytes: u64) -> Duration {
        self.request_latency
            + Duration::from_nanos(bytes.saturating_mul(1_000_000_000) / self.bandwidth)
    }

    /// Time to serve `requests` reads totalling `bytes`, with per-request
    /// latency amortized over the pipeline depth.
    pub fn batch_read_time(&self, requests: u64, bytes: u64) -> Duration {
        let effective = requests.div_ceil(self.pipeline_depth.max(1) as u64);
        self.request_latency * effective as u32
            + Duration::from_nanos(bytes.saturating_mul(1_000_000_000) / self.bandwidth)
    }

    /// Requests per second this device sustains at a mean request size.
    pub fn iops_at(&self, mean_request_bytes: u64) -> f64 {
        1.0 / self.read_time(mean_request_bytes).as_secs_f64()
    }

    /// The same device degraded by `factor`: request latency multiplied,
    /// bandwidth divided. Models a transient brown-out (GC pause on a
    /// storage node, a saturated ToR link) without changing the preset.
    pub fn degraded(&self, factor: u32) -> Self {
        let factor = factor.max(1);
        Self {
            request_latency: self.request_latency * factor,
            bandwidth: (self.bandwidth / factor as u64).max(1),
            pipeline_depth: self.pipeline_depth,
        }
    }
}

/// One window of degraded service: between `start` and `end` of simulated
/// time, the device runs `factor`× slower.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallWindow {
    /// Window start (inclusive), in simulated time since run start.
    pub start: Duration,
    /// Window end (exclusive).
    pub end: Duration,
    /// Slowdown factor applied inside the window (≥ 1).
    pub factor: u32,
}

/// A schedule of [`StallWindow`]s over simulated time.
///
/// Torture scenarios layer stalls onto a [`DeviceModel`]: a read that lands
/// inside a window is charged the degraded device's time. Windows may
/// overlap; the largest factor wins.
#[derive(Debug, Clone, Default)]
pub struct StallSchedule {
    windows: Vec<StallWindow>,
}

impl StallSchedule {
    /// A schedule with no stalls.
    pub fn none() -> Self {
        Self::default()
    }

    /// A schedule from explicit windows.
    pub fn new(windows: Vec<StallWindow>) -> Self {
        Self { windows }
    }

    /// Adds one window.
    pub fn add(&mut self, window: StallWindow) {
        self.windows.push(window);
    }

    /// The slowdown factor in effect at `now` (1 outside every window).
    pub fn factor_at(&self, now: Duration) -> u32 {
        self.windows
            .iter()
            .filter(|w| w.start <= now && now < w.end)
            .map(|w| w.factor.max(1))
            .max()
            .unwrap_or(1)
    }

    /// `device` as seen at `now`: degraded inside a stall window, pristine
    /// outside.
    pub fn apply(&self, device: &DeviceModel, now: Duration) -> DeviceModel {
        match self.factor_at(now) {
            1 => *device,
            f => device.degraded(f),
        }
    }
}

/// Outcome of offering one window of load to a [`FluidQueue`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueWindow {
    /// Requests completed during the window.
    pub completed: u64,
    /// Requests still queued at window end.
    pub backlog: u64,
    /// Processes blocked on I/O at window end (the Figure 14 metric):
    /// the backlog capped at the offered concurrency.
    pub blocked_processes: u64,
    /// Device utilization during the window, in `[0, 1]`.
    pub utilization: f64,
}

/// A fluid (deterministic) queueing model of a device under load.
///
/// Work arrives in windows (e.g. one minute of trace); the device drains at
/// the rate implied by its [`DeviceModel`]. Excess work accumulates as
/// backlog, and the backlog *is* the population of blocked processes — when
/// an HDD DataNode cannot keep up, reader threads pile up in `D` state,
/// which is exactly what Uber's blocked-process counter measures.
#[derive(Debug, Clone)]
pub struct FluidQueue {
    device: DeviceModel,
    backlog_requests: f64,
    backlog_bytes: f64,
}

impl FluidQueue {
    /// A queue over the given device, initially idle.
    pub fn new(device: DeviceModel) -> Self {
        Self {
            device,
            backlog_requests: 0.0,
            backlog_bytes: 0.0,
        }
    }

    /// The device model.
    pub fn device(&self) -> DeviceModel {
        self.device
    }

    /// Offers `requests` totalling `bytes` arriving uniformly during a
    /// window of `window` duration, and drains what the device can serve.
    pub fn offer(&mut self, requests: u64, bytes: u64, window: Duration) -> QueueWindow {
        let demand_requests = self.backlog_requests + requests as f64;
        let demand_bytes = self.backlog_bytes + bytes as f64;
        // Service requirement for the whole demand.
        let mean_size = if demand_requests > 0.0 {
            demand_bytes / demand_requests
        } else {
            0.0
        };
        let per_request =
            self.device.request_latency.as_secs_f64() + mean_size / self.device.bandwidth as f64;
        let capacity = if per_request > 0.0 {
            window.as_secs_f64() / per_request
        } else {
            f64::INFINITY
        };
        let completed = demand_requests.min(capacity);
        let utilization = if capacity.is_finite() && capacity > 0.0 {
            (demand_requests / capacity).min(1.0)
        } else {
            0.0
        };
        self.backlog_requests = (demand_requests - completed).max(0.0);
        self.backlog_bytes = (demand_bytes - completed * mean_size).max(0.0);
        QueueWindow {
            completed: completed as u64,
            backlog: self.backlog_requests as u64,
            blocked_processes: self.backlog_requests as u64,
            utilization,
        }
    }

    /// Clears any accumulated backlog.
    pub fn reset(&mut self) {
        self.backlog_requests = 0.0;
        self.backlog_bytes = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssd_is_much_faster_than_hdd_for_small_reads() {
        let ssd = DeviceModel::local_ssd().read_time(4096);
        let hdd = DeviceModel::hdd().read_time(4096);
        assert!(hdd.as_secs_f64() / ssd.as_secs_f64() > 50.0);
    }

    #[test]
    fn read_time_scales_with_bytes() {
        let d = DeviceModel::local_ssd();
        let small = d.read_time(1 << 10);
        let big = d.read_time(1 << 30);
        assert!(big > small);
        // 1 GiB at 2 GiB/s ≈ 0.5 s.
        assert!((big.as_secs_f64() - 0.5).abs() < 0.01);
    }

    #[test]
    fn batch_amortizes_against_per_request_latency() {
        let d = DeviceModel::object_store();
        let many_small = d.batch_read_time(1000, 1 << 20);
        let one_big = d.batch_read_time(1, 1 << 20);
        // Fragmentation still hurts badly, but the pipeline (depth 8)
        // amortizes the per-request latency across in-flight GETs.
        assert!(many_small > one_big * 50);
        let expected = d.request_latency * (1000 / 8)
            + Duration::from_nanos(((1u64 << 20) * 1_000_000_000) / d.bandwidth);
        assert_eq!(many_small, expected);
    }

    #[test]
    fn pipeline_depth_one_serializes_requests() {
        let d = DeviceModel::hdd();
        assert_eq!(
            d.batch_read_time(10, 0),
            d.request_latency * 10,
            "HDD reads do not pipeline"
        );
    }

    #[test]
    fn underloaded_queue_has_no_backlog() {
        let mut q = FluidQueue::new(DeviceModel::hdd());
        // 10 requests of 1 MB in a minute is far below HDD capacity.
        let w = q.offer(10, 10 << 20, Duration::from_secs(60));
        assert_eq!(w.completed, 10);
        assert_eq!(w.backlog, 0);
        assert_eq!(w.blocked_processes, 0);
        assert!(w.utilization < 0.1);
    }

    #[test]
    fn overloaded_queue_accumulates_blocked_processes() {
        let mut q = FluidQueue::new(DeviceModel::hdd());
        // 50k random 64 KB reads per minute: far beyond one HDD.
        let mut last = 0;
        for _ in 0..5 {
            let w = q.offer(50_000, 50_000 * (64 << 10), Duration::from_secs(60));
            assert!(w.blocked_processes >= last, "backlog grows");
            last = w.blocked_processes;
            assert!((w.utilization - 1.0).abs() < 1e-9);
        }
        assert!(last > 1000, "sustained overload piles up thousands: {last}");
    }

    #[test]
    fn backlog_drains_when_load_stops() {
        let mut q = FluidQueue::new(DeviceModel::hdd());
        q.offer(50_000, 50_000 * (64 << 10), Duration::from_secs(60));
        let mut w = q.offer(0, 0, Duration::from_secs(60));
        // With zero new arrivals the backlog shrinks window over window.
        for _ in 0..20 {
            let next = q.offer(0, 0, Duration::from_secs(60));
            assert!(next.backlog <= w.backlog);
            w = next;
        }
        assert_eq!(w.backlog, 0);
    }

    #[test]
    fn reset_clears_backlog() {
        let mut q = FluidQueue::new(DeviceModel::hdd());
        q.offer(1_000_000, 1 << 40, Duration::from_secs(1));
        q.reset();
        let w = q.offer(1, 1024, Duration::from_secs(60));
        assert_eq!(w.backlog, 0);
    }

    #[test]
    fn iops_sanity() {
        // HDD ≈ 1/8 ms ≈ 125 IOPS at tiny request sizes.
        let iops = DeviceModel::hdd().iops_at(512);
        assert!((100.0..130.0).contains(&iops), "{iops}");
    }

    #[test]
    fn degraded_device_is_slower() {
        let d = DeviceModel::object_store();
        let slow = d.degraded(10);
        assert_eq!(slow.request_latency, d.request_latency * 10);
        assert_eq!(slow.bandwidth, d.bandwidth / 10);
        assert!(slow.read_time(1 << 20) > d.read_time(1 << 20) * 9);
        assert_eq!(d.degraded(0), d.degraded(1), "factor clamps to 1");
    }

    #[test]
    fn stall_schedule_applies_inside_windows_only() {
        let sched = StallSchedule::new(vec![
            StallWindow {
                start: Duration::from_secs(10),
                end: Duration::from_secs(20),
                factor: 4,
            },
            StallWindow {
                start: Duration::from_secs(15),
                end: Duration::from_secs(30),
                factor: 8,
            },
        ]);
        assert_eq!(sched.factor_at(Duration::from_secs(5)), 1);
        assert_eq!(
            sched.factor_at(Duration::from_secs(10)),
            4,
            "inclusive start"
        );
        assert_eq!(
            sched.factor_at(Duration::from_secs(17)),
            8,
            "overlap: max wins"
        );
        assert_eq!(sched.factor_at(Duration::from_secs(20)), 8, "exclusive end");
        assert_eq!(sched.factor_at(Duration::from_secs(30)), 1);

        let d = DeviceModel::object_store();
        assert_eq!(sched.apply(&d, Duration::from_secs(5)), d);
        assert_eq!(sched.apply(&d, Duration::from_secs(12)), d.degraded(4));
        assert!(StallSchedule::none().factor_at(Duration::ZERO) == 1);
    }
}
