//! An S3-like object store: the simulated data lake beneath the compute
//! layer (the paper's TPC-DS evaluation reads Parquet from AWS S3).
//!
//! Functionally a versioned key → bytes map with ranged GETs. Each request
//! is accounted (count + bytes) and charged a simulated network duration
//! from a [`DeviceModel`]; an optional API rate limit makes excess requests
//! fail with [`Error::Throttled`], reproducing the "API throughput" strain
//! of §1.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use edgecache_common::clock::SharedClock;
use edgecache_common::error::{Error, Result};
use edgecache_core::manager::RemoteSource;
use parking_lot::RwLock;

use crate::simdev::DeviceModel;

/// A stored object: payload plus a version (etag analog).
#[derive(Debug, Clone)]
struct StoredObject {
    data: Bytes,
    version: u64,
}

/// The simulated object store.
pub struct ObjectStore {
    objects: RwLock<HashMap<String, StoredObject>>,
    network: DeviceModel,
    clock: SharedClock,
    /// GET requests served.
    get_requests: AtomicU64,
    /// Bytes served by GETs.
    bytes_served: AtomicU64,
    /// Cumulative simulated time spent serving GETs (nanoseconds).
    sim_nanos: AtomicU64,
    /// Requests allowed per second (0 = unlimited).
    rate_limit_per_sec: AtomicU64,
    /// Requests observed in the current one-second window.
    window_start_ms: AtomicU64,
    window_count: AtomicU64,
    throttled: AtomicU64,
}

impl ObjectStore {
    /// Creates an empty store with the default object-store network model.
    pub fn new(clock: SharedClock) -> Self {
        Self::with_network(clock, DeviceModel::object_store())
    }

    /// Creates a store with a custom network model.
    pub fn with_network(clock: SharedClock, network: DeviceModel) -> Self {
        Self {
            objects: RwLock::new(HashMap::new()),
            network,
            clock,
            get_requests: AtomicU64::new(0),
            bytes_served: AtomicU64::new(0),
            sim_nanos: AtomicU64::new(0),
            rate_limit_per_sec: AtomicU64::new(0),
            window_start_ms: AtomicU64::new(0),
            window_count: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
        }
    }

    /// Sets an API rate limit in GETs per second (0 disables).
    pub fn set_rate_limit(&self, per_sec: u64) {
        self.rate_limit_per_sec.store(per_sec, Ordering::SeqCst);
    }

    /// Uploads an object; returns its new version.
    pub fn put_object(&self, key: &str, data: impl Into<Bytes>) -> u64 {
        let mut objects = self.objects.write();
        let version = objects.get(key).map(|o| o.version + 1).unwrap_or(1);
        objects.insert(
            key.to_string(),
            StoredObject {
                data: data.into(),
                version,
            },
        );
        version
    }

    /// Deletes an object; returns whether it existed.
    pub fn delete_object(&self, key: &str) -> bool {
        self.objects.write().remove(key).is_some()
    }

    /// Object length and version, if present (a HEAD request; not charged).
    pub fn head_object(&self, key: &str) -> Option<(u64, u64)> {
        self.objects
            .read()
            .get(key)
            .map(|o| (o.data.len() as u64, o.version))
    }

    /// Ranged GET. Clamped at end of object.
    pub fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Bytes> {
        self.check_rate_limit()?;
        let objects = self.objects.read();
        let obj = objects
            .get(key)
            .ok_or_else(|| Error::NotFound(format!("object `{key}`")))?;
        let total = obj.data.len() as u64;
        let start = offset.min(total);
        let end = offset.saturating_add(len).min(total);
        let body = obj.data.slice(start as usize..end as usize);
        self.get_requests.fetch_add(1, Ordering::Relaxed);
        self.bytes_served
            .fetch_add(body.len() as u64, Ordering::Relaxed);
        self.sim_nanos.fetch_add(
            self.network.read_time(body.len() as u64).as_nanos() as u64,
            Ordering::Relaxed,
        );
        Ok(body)
    }

    fn check_rate_limit(&self) -> Result<()> {
        let limit = self.rate_limit_per_sec.load(Ordering::SeqCst);
        if limit == 0 {
            return Ok(());
        }
        let now_s = self.clock.now_millis() / 1000;
        let window = self.window_start_ms.load(Ordering::SeqCst);
        if window != now_s {
            self.window_start_ms.store(now_s, Ordering::SeqCst);
            self.window_count.store(0, Ordering::SeqCst);
        }
        if self.window_count.fetch_add(1, Ordering::SeqCst) >= limit {
            self.throttled.fetch_add(1, Ordering::Relaxed);
            return Err(Error::Throttled(format!("rate limit {limit}/s exceeded")));
        }
        Ok(())
    }

    /// GET requests served so far.
    pub fn request_count(&self) -> u64 {
        self.get_requests.load(Ordering::Relaxed)
    }

    /// Bytes served so far.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served.load(Ordering::Relaxed)
    }

    /// Requests rejected by the rate limit.
    pub fn throttled_count(&self) -> u64 {
        self.throttled.load(Ordering::Relaxed)
    }

    /// Cumulative simulated network time spent on GETs.
    pub fn sim_time(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.sim_nanos.load(Ordering::Relaxed))
    }

    /// The network model (for harnesses computing per-request cost).
    pub fn network(&self) -> DeviceModel {
        self.network
    }

    /// Resets the accounting counters (not the objects).
    pub fn reset_counters(&self) {
        self.get_requests.store(0, Ordering::SeqCst);
        self.bytes_served.store(0, Ordering::SeqCst);
        self.sim_nanos.store(0, Ordering::SeqCst);
        self.throttled.store(0, Ordering::SeqCst);
    }
}

impl RemoteSource for ObjectStore {
    fn read(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        self.get_range(path, offset, len)
    }

    /// Batched ranged GETs: the object is resolved once, then each range is
    /// served (and accounted, including against the rate limit) as one GET —
    /// the cache passes one range per coalesced run of missing pages.
    fn read_ranges(&self, path: &str, ranges: &[(u64, u64)]) -> Result<Vec<Bytes>> {
        let objects = self.objects.read();
        let obj = objects
            .get(path)
            .ok_or_else(|| Error::NotFound(format!("object `{path}`")))?;
        let total = obj.data.len() as u64;
        let mut out = Vec::with_capacity(ranges.len());
        for &(offset, len) in ranges {
            self.check_rate_limit()?;
            let start = offset.min(total);
            let end = offset.saturating_add(len).min(total);
            let body = obj.data.slice(start as usize..end as usize);
            self.get_requests.fetch_add(1, Ordering::Relaxed);
            self.bytes_served
                .fetch_add(body.len() as u64, Ordering::Relaxed);
            self.sim_nanos.fetch_add(
                self.network.read_time(body.len() as u64).as_nanos() as u64,
                Ordering::Relaxed,
            );
            out.push(body);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgecache_common::clock::SimClock;
    use std::sync::Arc;
    use std::time::Duration;

    fn store() -> (ObjectStore, SimClock) {
        let clock = SimClock::new();
        (ObjectStore::new(Arc::new(clock.clone())), clock)
    }

    #[test]
    fn put_get_round_trip() {
        let (s, _) = store();
        let v = s.put_object("a/b", vec![1u8, 2, 3, 4]);
        assert_eq!(v, 1);
        assert_eq!(s.get_range("a/b", 0, 10).unwrap().as_ref(), &[1, 2, 3, 4]);
        assert_eq!(s.get_range("a/b", 1, 2).unwrap().as_ref(), &[2, 3]);
        assert_eq!(s.head_object("a/b"), Some((4, 1)));
    }

    #[test]
    fn versions_bump_on_overwrite() {
        let (s, _) = store();
        s.put_object("k", vec![0]);
        let v2 = s.put_object("k", vec![1]);
        assert_eq!(v2, 2);
        assert_eq!(s.head_object("k"), Some((1, 2)));
    }

    #[test]
    fn missing_object_is_not_found() {
        let (s, _) = store();
        assert!(matches!(s.get_range("nope", 0, 1), Err(Error::NotFound(_))));
        assert!(!s.delete_object("nope"));
        assert_eq!(s.head_object("nope"), None);
    }

    #[test]
    fn accounting_tracks_requests_and_bytes() {
        let (s, _) = store();
        s.put_object("k", vec![9u8; 1000]);
        s.get_range("k", 0, 400).unwrap();
        s.get_range("k", 400, 600).unwrap();
        assert_eq!(s.request_count(), 2);
        assert_eq!(s.bytes_served(), 1000);
        assert!(s.sim_time() >= Duration::from_millis(60), "2 RTTs charged");
        s.reset_counters();
        assert_eq!(s.request_count(), 0);
    }

    #[test]
    fn rate_limit_throttles_excess() {
        let (s, clock) = store();
        s.put_object("k", vec![0u8; 10]);
        s.set_rate_limit(5);
        let mut ok = 0;
        let mut throttled = 0;
        for _ in 0..10 {
            match s.get_range("k", 0, 1) {
                Ok(_) => ok += 1,
                Err(Error::Throttled(_)) => throttled += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(ok, 5);
        assert_eq!(throttled, 5);
        assert_eq!(s.throttled_count(), 5);
        // The next second opens a fresh window.
        clock.advance(Duration::from_secs(1));
        assert!(s.get_range("k", 0, 1).is_ok());
    }

    #[test]
    fn remote_source_impl_reads() {
        let (s, _) = store();
        s.put_object("p", vec![7u8; 100]);
        let src: &dyn RemoteSource = &s;
        assert_eq!(src.read("p", 10, 5).unwrap().len(), 5);
    }
}
