//! Model-based property tests for [`crate::ring::ConsistentRing`]: random
//! membership-churn sequences (add/remove/offline/online/advance/sweep)
//! against a plain membership model, checking the invariants the
//! distributed tier's failover is built on — candidate distinctness,
//! only-owned-keys-move on removal, and grace-period revert.

#![cfg(test)]

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use crate::clock::{Clock, SimClock};
use crate::ring::{ConsistentRing, RingConfig};

const TIMEOUT_SECS: u64 = 100;
const POOL: [&str; 6] = ["n0", "n1", "n2", "n3", "n4", "n5"];

#[derive(Debug, Clone)]
enum Op {
    Add(usize),
    Remove(usize),
    Offline(usize),
    Online(usize),
    Advance(u64),
    Sweep,
}

/// Nightly CI bumps the case count via this env var; local runs stay quick.
fn cases() -> u32 {
    std::env::var("EDGECACHE_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let idx = 0..POOL.len();
    prop_oneof![
        3 => idx.clone().prop_map(Op::Add),
        2 => idx.clone().prop_map(Op::Remove),
        3 => idx.clone().prop_map(Op::Offline),
        3 => idx.prop_map(Op::Online),
        3 => (1u64..TIMEOUT_SECS * 2).prop_map(Op::Advance),
        2 => Just(Op::Sweep),
    ]
}

/// Plain membership mirror: node → `Some(offline_at_nanos)` while offline.
#[derive(Default)]
struct Model {
    nodes: HashMap<&'static str, Option<u64>>,
    now: u64,
}

impl Model {
    fn online(&self) -> Vec<&'static str> {
        let mut v: Vec<_> = self
            .nodes
            .iter()
            .filter(|(_, off)| off.is_none())
            .map(|(n, _)| *n)
            .collect();
        v.sort();
        v
    }

    fn expired(&self) -> Vec<&'static str> {
        let timeout = Duration::from_secs(TIMEOUT_SECS).as_nanos() as u64;
        let mut v: Vec<_> = self
            .nodes
            .iter()
            .filter(|(_, off)| off.is_some_and(|at| self.now.saturating_sub(at) >= timeout))
            .map(|(n, _)| *n)
            .collect();
        v.sort();
        v
    }
}

fn probe_keys() -> Vec<String> {
    (0..40).map(|i| format!("file/{i}")).collect()
}

/// Asserts the per-step invariants that hold in *every* reachable state.
fn check_state(ring: &ConsistentRing, model: &Model, keys: &[String]) {
    let online = model.online();
    let mut ring_nodes = ring.nodes();
    ring_nodes.sort();
    let mut model_nodes: Vec<_> = model.nodes.keys().map(|n| n.to_string()).collect();
    model_nodes.sort();
    assert_eq!(ring_nodes, model_nodes, "membership mismatch");
    assert_eq!(ring.len(), model.nodes.len());
    for n in &POOL {
        assert_eq!(
            ring.is_online(n),
            online.contains(n),
            "online status of {n} diverged from model"
        );
    }
    for key in keys {
        let c = ring.candidates(key, 3);
        // Distinct...
        for i in 0..c.len() {
            for j in (i + 1)..c.len() {
                assert_ne!(c[i], c[j], "duplicate candidate for {key}: {c:?}");
            }
        }
        // ...all online...
        for n in &c {
            assert!(online.contains(&n.as_str()), "offline candidate {n}");
        }
        // ...and as many as the online population allows.
        assert_eq!(c.len(), online.len().min(3), "candidate count for {key}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    #[test]
    fn ring_matches_membership_model_under_churn(
        ops in proptest::collection::vec(op_strategy(), 1..80),
    ) {
        let clock = SimClock::new();
        let ring = ConsistentRing::new(
            RingConfig {
                vnodes_per_node: 32,
                offline_timeout: Duration::from_secs(TIMEOUT_SECS),
            },
            Arc::new(clock.clone()),
        );
        let mut model = Model::default();
        let keys = probe_keys();

        for op in ops {
            match op {
                Op::Add(i) => {
                    let n = POOL[i];
                    ring.add_node(n);
                    // Idempotent; re-adding an offline node revives it.
                    model.nodes.insert(n, None);
                }
                Op::Remove(i) => {
                    let n = POOL[i];
                    // Only-owned-keys-move: record primaries before the
                    // removal, then check that keys not owned by `n` keep
                    // their primary.
                    let before: Vec<Option<String>> = keys
                        .iter()
                        .map(|k| ring.candidates(k, 1).into_iter().next())
                        .collect();
                    ring.remove_node(n);
                    model.nodes.remove(n);
                    for (k, old) in keys.iter().zip(&before) {
                        if let Some(old) = old {
                            if old != n {
                                let new = ring.candidates(k, 1).into_iter().next();
                                assert_eq!(
                                    new.as_ref(),
                                    Some(old),
                                    "removing {n} moved {k} off {old}"
                                );
                            }
                        }
                    }
                }
                Op::Offline(i) => {
                    let n = POOL[i];
                    // Grace-period revert: offline skips the node but keeps
                    // its seat, so an immediate online restores every
                    // pre-offline primary exactly.
                    let before: Vec<Option<String>> = keys
                        .iter()
                        .map(|k| ring.candidates(k, 1).into_iter().next())
                        .collect();
                    let was_online = ring.is_online(n);
                    ring.mark_offline(n);
                    if let Some(off) = model.nodes.get_mut(n) {
                        // Idempotent: an already-offline node keeps its
                        // original timestamp.
                        off.get_or_insert(clock.now_nanos());
                    }
                    if was_online {
                        ring.mark_online(n);
                        if let Some(off) = model.nodes.get_mut(n) {
                            *off = None;
                        }
                        let after: Vec<Option<String>> = keys
                            .iter()
                            .map(|k| ring.candidates(k, 1).into_iter().next())
                            .collect();
                        assert_eq!(before, after, "offline+online round trip moved keys");
                    }
                }
                Op::Online(i) => {
                    let n = POOL[i];
                    ring.mark_online(n);
                    if let Some(off) = model.nodes.get_mut(n) {
                        *off = None;
                    }
                }
                Op::Advance(secs) => {
                    clock.advance(Duration::from_secs(secs));
                    model.now = clock.now_nanos();
                }
                Op::Sweep => {
                    let swept = ring.sweep_expired();
                    let expected = model.expired();
                    assert_eq!(
                        swept,
                        expected.iter().map(|n| n.to_string()).collect::<Vec<_>>(),
                        "sweep diverged from model"
                    );
                    for n in expected {
                        model.nodes.remove(n);
                    }
                }
            }
            model.now = clock.now_nanos();
            check_state(&ring, &model, &keys);
        }
    }
}
