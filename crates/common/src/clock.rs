//! Clock abstraction: wall-clock time for production, virtual time for
//! deterministic experiments.
//!
//! The paper's evaluation reports behaviour over time windows (minute-bucket
//! admission windows in §6.2.2, the one-hour timelines of Figures 13 and 14,
//! TTL-based eviction in §4.1). To reproduce those deterministically on a
//! laptop, every time-dependent component takes a [`Clock`] and experiments
//! drive a [`SimClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// A source of monotonically non-decreasing time.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since an arbitrary epoch (the Unix epoch for
    /// [`SystemClock`], zero for a fresh [`SimClock`]).
    fn now_nanos(&self) -> u64;

    /// Current time as a [`Duration`] since the clock's epoch.
    fn now(&self) -> Duration {
        Duration::from_nanos(self.now_nanos())
    }

    /// Milliseconds since the clock's epoch.
    fn now_millis(&self) -> u64 {
        self.now_nanos() / 1_000_000
    }

    /// Blocks the caller for `duration` of *this clock's* time. The wall
    /// clock really sleeps; a [`SimClock`] just advances, so injected
    /// delays (device stalls, read hangs) cost virtual time only and stay
    /// deterministic.
    fn sleep(&self, duration: Duration) {
        std::thread::sleep(duration);
    }
}

/// The real wall clock.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_nanos(&self) -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .expect("system time before Unix epoch")
            .as_nanos() as u64
    }
}

/// A deterministic, manually advanced clock.
///
/// Cloning a `SimClock` yields a handle to the *same* underlying instant, so
/// a whole simulated cluster can share one timeline.
///
/// # Examples
///
/// ```
/// use edgecache_common::clock::{Clock, SimClock};
/// use std::time::Duration;
///
/// let clock = SimClock::new();
/// assert_eq!(clock.now_nanos(), 0);
/// clock.advance(Duration::from_secs(60));
/// assert_eq!(clock.now_millis(), 60_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    nanos: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock starting at the given offset.
    pub fn starting_at(start: Duration) -> Self {
        let clock = Self::new();
        clock.advance(start);
        clock
    }

    /// Advances the clock by `delta`.
    pub fn advance(&self, delta: Duration) {
        self.nanos
            .fetch_add(delta.as_nanos() as u64, Ordering::SeqCst);
    }

    /// Advances the clock to `target` if `target` is in the future;
    /// otherwise leaves it unchanged. Returns the (possibly unchanged)
    /// current time.
    pub fn advance_to(&self, target: Duration) -> Duration {
        let target_nanos = target.as_nanos() as u64;
        let mut cur = self.nanos.load(Ordering::SeqCst);
        while cur < target_nanos {
            match self
                .nanos
                .compare_exchange(cur, target_nanos, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return target,
                Err(actual) => cur = actual,
            }
        }
        Duration::from_nanos(cur)
    }
}

impl Clock for SimClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }

    fn sleep(&self, duration: Duration) {
        self.advance(duration);
    }
}

/// A shared, dynamically dispatched clock handle.
pub type SharedClock = Arc<dyn Clock>;

/// Convenience constructor for a shared [`SystemClock`].
pub fn system_clock() -> SharedClock {
    Arc::new(SystemClock)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_starts_at_zero_and_advances() {
        let c = SimClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.advance(Duration::from_millis(1500));
        assert_eq!(c.now_millis(), 1500);
        assert_eq!(c.now(), Duration::from_millis(1500));
    }

    #[test]
    fn sim_clock_clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(Duration::from_secs(5));
        assert_eq!(b.now_millis(), 5000);
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let c = SimClock::new();
        c.advance(Duration::from_secs(10));
        let now = c.advance_to(Duration::from_secs(5));
        assert_eq!(now, Duration::from_secs(10));
        let now = c.advance_to(Duration::from_secs(20));
        assert_eq!(now, Duration::from_secs(20));
    }

    #[test]
    fn system_clock_is_recent() {
        let c = SystemClock;
        // After 2020-01-01 in nanoseconds.
        assert!(c.now_nanos() > 1_577_836_800_000_000_000);
    }

    #[test]
    fn starting_at_offsets() {
        let c = SimClock::starting_at(Duration::from_secs(3600));
        assert_eq!(c.now_millis(), 3_600_000);
    }

    #[test]
    fn sim_clock_sleep_is_virtual() {
        let c = SimClock::new();
        let wall = std::time::Instant::now();
        c.sleep(Duration::from_secs(3600));
        assert_eq!(c.now_millis(), 3_600_000, "sleep advanced virtual time");
        assert!(
            wall.elapsed() < Duration::from_secs(5),
            "no wall time was spent"
        );
    }
}
