//! Human-readable byte sizes.
//!
//! Cache capacities, quotas, and page sizes throughout the workspace are
//! expressed as [`ByteSize`] values so that configuration (`"1MB"`, `"800GB"`)
//! and reporting stay readable.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A byte count with binary-unit parsing/formatting.
///
/// Units are binary (KB = 1024 bytes) to match storage-system convention.
///
/// # Examples
///
/// ```
/// use edgecache_common::ByteSize;
/// assert_eq!("1MB".parse::<ByteSize>().unwrap().as_u64(), 1 << 20);
/// assert_eq!(ByteSize::mib(2).to_string(), "2MB");
/// assert_eq!(ByteSize::new(1536).to_string(), "1.5KB");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(pub u64);

// Serialized transparently as the inner byte count.
impl Serialize for ByteSize {
    fn to_value(&self) -> serde::Value {
        self.0.to_value()
    }
}

impl Deserialize for ByteSize {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        u64::from_value(value).map(Self)
    }
}

pub const KIB: u64 = 1 << 10;
pub const MIB: u64 = 1 << 20;
pub const GIB: u64 = 1 << 30;
pub const TIB: u64 = 1 << 40;

impl ByteSize {
    /// Creates a size of exactly `bytes` bytes.
    pub const fn new(bytes: u64) -> Self {
        Self(bytes)
    }

    /// `n` kibibytes.
    pub const fn kib(n: u64) -> Self {
        Self(n * KIB)
    }

    /// `n` mebibytes.
    pub const fn mib(n: u64) -> Self {
        Self(n * MIB)
    }

    /// `n` gibibytes.
    pub const fn gib(n: u64) -> Self {
        Self(n * GIB)
    }

    /// `n` tebibytes.
    pub const fn tib(n: u64) -> Self {
        Self(n * TIB)
    }

    /// The raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Self) -> Self {
        Self(self.0.saturating_sub(other.0))
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        let (value, unit) = if b >= TIB {
            (b as f64 / TIB as f64, "TB")
        } else if b >= GIB {
            (b as f64 / GIB as f64, "GB")
        } else if b >= MIB {
            (b as f64 / MIB as f64, "MB")
        } else if b >= KIB {
            (b as f64 / KIB as f64, "KB")
        } else {
            return write!(f, "{b}B");
        };
        if (value - value.round()).abs() < 1e-9 {
            write!(f, "{}{unit}", value.round() as u64)
        } else {
            write!(f, "{value:.1}{unit}")
        }
    }
}

impl FromStr for ByteSize {
    type Err = crate::error::Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let split = s
            .find(|c: char| !(c.is_ascii_digit() || c == '.'))
            .unwrap_or(s.len());
        let (num, unit) = s.split_at(split);
        let value: f64 = num
            .parse()
            .map_err(|_| crate::error::Error::InvalidArgument(format!("bad byte size `{s}`")))?;
        let mult = match unit.trim().to_ascii_uppercase().as_str() {
            "" | "B" => 1,
            "K" | "KB" | "KIB" => KIB,
            "M" | "MB" | "MIB" => MIB,
            "G" | "GB" | "GIB" => GIB,
            "T" | "TB" | "TIB" => TIB,
            other => {
                return Err(crate::error::Error::InvalidArgument(format!(
                    "unknown byte unit `{other}`"
                )))
            }
        };
        Ok(Self((value * mult as f64).round() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        for s in ["0B", "512B", "1KB", "1MB", "64MB", "1GB", "800GB", "1TB"] {
            let v: ByteSize = s.parse().unwrap();
            assert_eq!(v.to_string(), s, "round trip of {s}");
        }
    }

    #[test]
    fn parse_fractional_and_lowercase() {
        assert_eq!("1.5kb".parse::<ByteSize>().unwrap().as_u64(), 1536);
        assert_eq!("2m".parse::<ByteSize>().unwrap().as_u64(), 2 * MIB);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<ByteSize>().is_err());
        assert!("12XB".parse::<ByteSize>().is_err());
        assert!("abc".parse::<ByteSize>().is_err());
    }

    #[test]
    fn arithmetic() {
        let a = ByteSize::mib(3);
        let b = ByteSize::mib(1);
        assert_eq!((a + b).as_u64(), 4 * MIB);
        assert_eq!((a - b).as_u64(), 2 * MIB);
        assert_eq!(b.saturating_sub(a).as_u64(), 0);
    }

    #[test]
    fn display_fractional() {
        assert_eq!(ByteSize::new(MIB + MIB / 2).to_string(), "1.5MB");
    }
}
