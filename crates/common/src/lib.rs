//! Shared primitives for the `edgecache` workspace.
//!
//! This crate holds the small, dependency-light building blocks used by every
//! other crate in the workspace:
//!
//! * [`clock`] — a [`Clock`] abstraction with a wall-clock
//!   implementation and a deterministic simulated clock for experiments.
//! * [`hash`] — stable 64-bit hash functions (FNV-1a and a splitmix-based
//!   mixer) used for page placement and consistent hashing.
//! * [`ring`] — a consistent-hash ring with virtual nodes, bounded replica
//!   lookup, and the paper's "lazy data movement" node-timeout behaviour
//!   (§7 of the paper).
//! * [`bytesize`] — parsing and formatting of human-readable byte sizes.
//! * [`error`] — the shared [`Error`] type.

pub mod bytesize;
pub mod clock;
pub mod error;
pub mod hash;
pub mod ring;
mod ring_proptests;

pub use bytesize::ByteSize;
pub use clock::{Clock, SharedClock, SimClock, SystemClock};
pub use error::{Error, Result};
pub use ring::ConsistentRing;
