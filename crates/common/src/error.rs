//! The shared error type for the `edgecache` workspace.

use std::fmt;
use std::io;

/// A specialized `Result` whose error type is [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors that can occur anywhere in the cache stack.
///
/// The variants mirror the error breakdown the paper recommends exporting as
/// metrics (§7, "error-related metrics, including error counts of different
/// operations and breakdowns of concrete types of errors").
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O error from the operating system.
    Io(io::Error),
    /// The storage device reported that no space is left.
    ///
    /// Surfaced separately from [`Error::Io`] because the cache reacts to it
    /// with early eviction (§8, "Insufficient disk capacity").
    NoSpace,
    /// A cached page or block failed its checksum verification.
    Corrupted(String),
    /// An operation exceeded its deadline (e.g. the 10-second `read_file`
    /// timeout in §8, "File read hanging").
    Timeout { op: &'static str, waited_ms: u64 },
    /// The requested entity (page, file, block, object) does not exist.
    NotFound(String),
    /// The caller supplied an invalid argument or configuration.
    InvalidArgument(String),
    /// A cache admission policy rejected the entity.
    NotAdmitted(String),
    /// A quota rule would be violated and could not be restored by eviction.
    QuotaExceeded(String),
    /// The remote storage service throttled the request (e.g. HTTP 503).
    Throttled(String),
    /// A concurrent writer holds the entity; the operation cannot proceed.
    Busy(String),
    /// A format-level decoding failure (columnar footer, page header, ...).
    Decode(String),
    /// Any other error, carrying a human-readable description.
    Other(String),
}

impl Error {
    /// A short, stable label for this error kind, used as a metrics dimension.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Io(_) => "io",
            Error::NoSpace => "no_space",
            Error::Corrupted(_) => "corrupted",
            Error::Timeout { .. } => "timeout",
            Error::NotFound(_) => "not_found",
            Error::InvalidArgument(_) => "invalid_argument",
            Error::NotAdmitted(_) => "not_admitted",
            Error::QuotaExceeded(_) => "quota_exceeded",
            Error::Throttled(_) => "throttled",
            Error::Busy(_) => "busy",
            Error::Decode(_) => "decode",
            Error::Other(_) => "other",
        }
    }

    /// Returns `true` for failures that a read path should mask by falling
    /// back to the remote source (rather than failing the query).
    pub fn is_fallback_worthy(&self) -> bool {
        matches!(
            self,
            Error::Corrupted(_) | Error::Timeout { .. } | Error::NoSpace | Error::Io(_)
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::NoSpace => write!(f, "no space left on device"),
            Error::Corrupted(what) => write!(f, "corrupted data: {what}"),
            Error::Timeout { op, waited_ms } => {
                write!(f, "operation `{op}` timed out after {waited_ms} ms")
            }
            Error::NotFound(what) => write!(f, "not found: {what}"),
            Error::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
            Error::NotAdmitted(what) => write!(f, "not admitted to cache: {what}"),
            Error::QuotaExceeded(what) => write!(f, "quota exceeded: {what}"),
            Error::Throttled(what) => write!(f, "throttled by storage service: {what}"),
            Error::Busy(what) => write!(f, "resource busy: {what}"),
            Error::Decode(what) => write!(f, "decode error: {what}"),
            Error::Other(what) => write!(f, "{what}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        // Map ENOSPC onto the dedicated variant so that the early-eviction
        // path (§8) can match on it without inspecting raw OS errors.
        if e.raw_os_error() == Some(28) || e.kind() == io::ErrorKind::StorageFull {
            Error::NoSpace
        } else {
            Error::Io(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        assert_eq!(Error::NoSpace.kind(), "no_space");
        assert_eq!(Error::Corrupted("x".into()).kind(), "corrupted");
        assert_eq!(
            Error::Timeout {
                op: "get",
                waited_ms: 10_000
            }
            .kind(),
            "timeout"
        );
    }

    #[test]
    fn enospc_maps_to_no_space() {
        let e = io::Error::from_raw_os_error(28);
        assert!(matches!(Error::from(e), Error::NoSpace));
    }

    #[test]
    fn generic_io_stays_io() {
        let e = io::Error::new(io::ErrorKind::PermissionDenied, "nope");
        assert!(matches!(Error::from(e), Error::Io(_)));
    }

    #[test]
    fn fallback_worthiness() {
        assert!(Error::Corrupted("p".into()).is_fallback_worthy());
        assert!(Error::Timeout {
            op: "get",
            waited_ms: 1
        }
        .is_fallback_worthy());
        assert!(!Error::NotAdmitted("f".into()).is_fallback_worthy());
        assert!(!Error::NotFound("f".into()).is_fallback_worthy());
    }

    #[test]
    fn display_is_informative() {
        let s = Error::Timeout {
            op: "read_file",
            waited_ms: 10_000,
        }
        .to_string();
        assert!(s.contains("read_file"));
        assert!(s.contains("10000"));
    }
}
