//! A consistent-hash ring with virtual nodes, bounded replica lookup, and
//! "lazy data movement".
//!
//! The ring implements three behaviours the paper calls out:
//!
//! * **Soft-affinity lookup** (§6.1.2): the preferred node for a key is found
//!   by consistent hashing; a *secondary* node (the next distinct node
//!   clockwise) is used when the primary is busy.
//! * **Bounded replicas with fallback** (§7): at most a small number of
//!   candidate cache nodes per key (the paper settled on two); when all are
//!   unavailable the caller falls back to remote storage.
//! * **Lazy data movement** (§7): when a node goes offline (container
//!   restart, maintenance), its ring points are *kept* for a configurable
//!   timeout. Lookups skip the offline node, but if it returns within the
//!   timeout, no key moves between the surviving nodes. Only after the
//!   timeout expires are the points removed for good.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

use crate::clock::SharedClock;
use crate::error::{Error, Result};
use crate::hash::{combine, hash_str, mix64};

/// Per-node bookkeeping.
#[derive(Debug, Clone)]
struct NodeState {
    /// `None` while online; `Some(instant)` records when the node went
    /// offline (clock nanos).
    offline_since: Option<u64>,
}

/// Configuration for [`ConsistentRing`].
#[derive(Debug, Clone)]
pub struct RingConfig {
    /// Virtual nodes (points) per physical node. More points smooth the load
    /// distribution at the cost of memory and lookup constants.
    pub vnodes_per_node: usize,
    /// How long an offline node keeps its seat before its points are removed
    /// (the "lazy data movement" timeout).
    pub offline_timeout: Duration,
}

impl Default for RingConfig {
    fn default() -> Self {
        Self {
            vnodes_per_node: 128,
            offline_timeout: Duration::from_secs(10 * 60),
        }
    }
}

#[derive(Debug)]
struct RingInner {
    /// Point on the circle → node id.
    points: BTreeMap<u64, Arc<str>>,
    nodes: HashMap<Arc<str>, NodeState>,
}

/// A consistent-hash ring. Cheap to share (`Clone` shares state).
#[derive(Debug, Clone)]
pub struct ConsistentRing {
    inner: Arc<RwLock<RingInner>>,
    config: RingConfig,
    clock: SharedClock,
}

impl ConsistentRing {
    /// Creates an empty ring.
    pub fn new(config: RingConfig, clock: SharedClock) -> Self {
        Self {
            inner: Arc::new(RwLock::new(RingInner {
                points: BTreeMap::new(),
                nodes: HashMap::new(),
            })),
            config,
            clock,
        }
    }

    /// Creates a ring with default configuration and the system clock.
    pub fn with_defaults() -> Self {
        Self::new(RingConfig::default(), crate::clock::system_clock())
    }

    fn node_points(&self, node: &str) -> impl Iterator<Item = u64> + '_ {
        let base = hash_str(node);
        (0..self.config.vnodes_per_node as u64).map(move |i| combine(base, mix64(i)))
    }

    /// Adds a node (idempotent; re-adding an offline node brings it online).
    pub fn add_node(&self, node: &str) {
        let mut inner = self.inner.write();
        let id: Arc<str> = Arc::from(node);
        if inner.nodes.contains_key(&id) {
            inner
                .nodes
                .get_mut(&id)
                .expect("checked contains_key")
                .offline_since = None;
            return;
        }
        for p in self.node_points(node) {
            inner.points.insert(p, id.clone());
        }
        inner.nodes.insert(
            id,
            NodeState {
                offline_since: None,
            },
        );
    }

    /// Removes a node immediately (no lazy timeout). Keys mapped to it move
    /// to their clockwise successors right away.
    pub fn remove_node(&self, node: &str) {
        let mut inner = self.inner.write();
        let id: Arc<str> = Arc::from(node);
        if inner.nodes.remove(&id).is_some() {
            let doomed: Vec<u64> = self.node_points(node).collect();
            for p in doomed {
                inner.points.remove(&p);
            }
        }
    }

    /// Marks a node offline. Its ring points are kept for the configured
    /// timeout ("keeping the seat", §7). Idempotent: a node already offline
    /// keeps its original offline timestamp.
    pub fn mark_offline(&self, node: &str) {
        let mut inner = self.inner.write();
        let now = self.clock.now_nanos();
        if let Some(state) = inner.nodes.get_mut(node) {
            state.offline_since.get_or_insert(now);
        }
    }

    /// Marks a node online again. If it returned within the lazy timeout no
    /// data has moved; the node simply resumes serving its old key range.
    pub fn mark_online(&self, node: &str) {
        let mut inner = self.inner.write();
        if let Some(state) = inner.nodes.get_mut(node) {
            state.offline_since = None;
        }
    }

    /// Removes nodes that have been offline longer than the lazy timeout.
    /// Returns the ids of removed nodes. Call periodically (the paper runs
    /// this from a background job).
    ///
    /// The whole pass runs under one write lock: `offline_since` is
    /// re-checked at removal time, so a concurrent `mark_online` can never
    /// land between "snapshot expired" and "remove" and lose a live node.
    pub fn sweep_expired(&self) -> Vec<String> {
        let now = self.clock.now_nanos();
        let timeout = self.config.offline_timeout.as_nanos() as u64;
        let mut inner = self.inner.write();
        let expired: Vec<Arc<str>> = inner
            .nodes
            .iter()
            .filter_map(|(id, st)| {
                st.offline_since
                    .filter(|&since| now.saturating_sub(since) >= timeout)
                    .map(|_| id.clone())
            })
            .collect();
        let mut removed = Vec::with_capacity(expired.len());
        for id in expired {
            if inner.nodes.remove(&id).is_some() {
                for p in self.node_points(&id) {
                    inner.points.remove(&p);
                }
                removed.push(id.to_string());
            }
        }
        removed.sort();
        removed
    }

    /// Returns whether `node` is currently online.
    pub fn is_online(&self, node: &str) -> bool {
        let inner = self.inner.read();
        inner
            .nodes
            .get(node)
            .is_some_and(|st| st.offline_since.is_none())
    }

    /// Number of nodes (online or in their offline grace period).
    pub fn len(&self) -> usize {
        self.inner.read().nodes.len()
    }

    /// Returns `true` if the ring holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.inner.read().nodes.is_empty()
    }

    /// All node ids currently on the ring.
    pub fn nodes(&self) -> Vec<String> {
        self.inner
            .read()
            .nodes
            .keys()
            .map(|k| k.to_string())
            .collect()
    }

    /// The first `max` *distinct, online* nodes clockwise from `key`'s point.
    ///
    /// Offline nodes in their grace period are skipped but keep their seats,
    /// so a key's candidate list reverts as soon as the node returns.
    pub fn candidates(&self, key: &str, max: usize) -> Vec<String> {
        let inner = self.inner.read();
        if inner.points.is_empty() || max == 0 {
            return Vec::new();
        }
        let point = hash_str(key);
        let mut out: Vec<String> = Vec::with_capacity(max);
        let mut seen: Vec<&Arc<str>> = Vec::with_capacity(max);
        // Walk clockwise starting at `point`, wrapping around once.
        for (_, node) in inner
            .points
            .range(point..)
            .chain(inner.points.range(..point))
        {
            if seen.contains(&node) {
                continue;
            }
            seen.push(node);
            let online = inner
                .nodes
                .get(node)
                .is_some_and(|st| st.offline_since.is_none());
            if online {
                out.push(node.to_string());
                if out.len() == max {
                    break;
                }
            }
            if seen.len() == inner.nodes.len() {
                break;
            }
        }
        out
    }

    /// The preferred (primary) online node for `key`.
    pub fn primary(&self, key: &str) -> Result<String> {
        self.candidates(key, 1)
            .into_iter()
            .next()
            .ok_or_else(|| Error::Other(format!("no online node for key `{key}`")))
    }

    /// Primary and secondary for `key` (§6.1.2's two-level preference).
    pub fn primary_and_secondary(&self, key: &str) -> (Option<String>, Option<String>) {
        let mut c = self.candidates(key, 2).into_iter();
        (c.next(), c.next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use std::collections::HashMap as Map;

    fn ring_with(nodes: &[&str], timeout: Duration) -> (ConsistentRing, SimClock) {
        let clock = SimClock::new();
        let ring = ConsistentRing::new(
            RingConfig {
                vnodes_per_node: 64,
                offline_timeout: timeout,
            },
            Arc::new(clock.clone()),
        );
        for n in nodes {
            ring.add_node(n);
        }
        (ring, clock)
    }

    #[test]
    fn empty_ring_has_no_candidates() {
        let (ring, _) = ring_with(&[], Duration::from_secs(60));
        assert!(ring.candidates("k", 2).is_empty());
        assert!(ring.primary("k").is_err());
    }

    #[test]
    fn single_node_serves_everything() {
        let (ring, _) = ring_with(&["w0"], Duration::from_secs(60));
        for i in 0..100 {
            assert_eq!(ring.primary(&format!("key{i}")).unwrap(), "w0");
        }
    }

    #[test]
    fn candidates_are_distinct() {
        let (ring, _) = ring_with(&["w0", "w1", "w2", "w3"], Duration::from_secs(60));
        for i in 0..200 {
            let c = ring.candidates(&format!("file{i}"), 3);
            assert_eq!(c.len(), 3);
            assert_ne!(c[0], c[1]);
            assert_ne!(c[1], c[2]);
            assert_ne!(c[0], c[2]);
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let (ring, _) = ring_with(&["w0", "w1", "w2", "w3", "w4"], Duration::from_secs(60));
        let mut counts: Map<String, usize> = Map::new();
        for i in 0..10_000 {
            *counts
                .entry(ring.primary(&format!("file{i}")).unwrap())
                .or_default() += 1;
        }
        for (_, c) in counts {
            // Perfect balance is 2000 per node; 64 vnodes gives ~±40 %.
            assert!((1000..3200).contains(&c), "imbalanced: {c}");
        }
    }

    #[test]
    fn removing_a_node_only_moves_its_keys() {
        let (ring, _) = ring_with(&["w0", "w1", "w2", "w3"], Duration::from_secs(60));
        let before: Vec<String> = (0..2000)
            .map(|i| ring.primary(&format!("f{i}")).unwrap())
            .collect();
        ring.remove_node("w2");
        let mut moved_from_other = 0;
        for (i, old) in before.iter().enumerate() {
            let new = ring.primary(&format!("f{i}")).unwrap();
            if *old != "w2" && new != *old {
                moved_from_other += 1;
            }
        }
        assert_eq!(moved_from_other, 0, "keys not owned by w2 must not move");
    }

    #[test]
    fn offline_node_is_skipped_but_keeps_seat() {
        let (ring, clock) = ring_with(&["w0", "w1", "w2"], Duration::from_secs(600));
        let owned_by_w1: Vec<String> = (0..3000)
            .map(|i| format!("f{i}"))
            .filter(|k| ring.primary(k).unwrap() == "w1")
            .collect();
        assert!(!owned_by_w1.is_empty());

        ring.mark_offline("w1");
        clock.advance(Duration::from_secs(60)); // Within the grace period.
        assert!(ring.sweep_expired().is_empty());
        for k in &owned_by_w1 {
            assert_ne!(ring.primary(k).unwrap(), "w1");
        }

        // The node returns in time: all its keys revert, nothing moved.
        ring.mark_online("w1");
        for k in &owned_by_w1 {
            assert_eq!(ring.primary(k).unwrap(), "w1");
        }
    }

    #[test]
    fn expired_offline_node_is_swept() {
        let (ring, clock) = ring_with(&["w0", "w1"], Duration::from_secs(600));
        ring.mark_offline("w1");
        clock.advance(Duration::from_secs(601));
        let swept = ring.sweep_expired();
        assert_eq!(swept, vec!["w1".to_string()]);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.primary("anything").unwrap(), "w0");
    }

    #[test]
    fn mark_offline_is_idempotent_for_timestamp() {
        let (ring, clock) = ring_with(&["w0", "w1"], Duration::from_secs(100));
        ring.mark_offline("w1");
        clock.advance(Duration::from_secs(99));
        // A second mark_offline must not refresh the grace period.
        ring.mark_offline("w1");
        clock.advance(Duration::from_secs(1));
        assert_eq!(ring.sweep_expired(), vec!["w1".to_string()]);
    }

    #[test]
    fn sweep_returns_expired_nodes_sorted() {
        let (ring, clock) = ring_with(&["w3", "w0", "w2", "w1"], Duration::from_secs(100));
        for n in ["w3", "w1", "w0"] {
            ring.mark_offline(n);
        }
        clock.advance(Duration::from_secs(101));
        // Multi-node sweeps must return a deterministic (sorted) list, not
        // hash-map iteration order.
        assert_eq!(ring.sweep_expired(), vec!["w0", "w1", "w3"]);
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn mark_online_racing_a_sweep_never_loses_a_live_node() {
        // Regression: sweep_expired used to snapshot expired nodes under a
        // read lock and remove them under a separate write lock, so a
        // mark_online landing between the two permanently removed a node
        // that had just come back. The sweep now re-checks `offline_since`
        // inside one write-locked pass; this hammers the interleaving.
        for _ in 0..200 {
            let (ring, clock) = ring_with(&["w0", "w1"], Duration::from_secs(10));
            ring.mark_offline("w1");
            clock.advance(Duration::from_secs(11));
            let r1 = ring.clone();
            let sweeper = std::thread::spawn(move || r1.sweep_expired());
            ring.mark_online("w1");
            let revived_while_present = ring.is_online("w1");
            let swept = sweeper.join().expect("sweeper");
            if revived_while_present {
                // The node observably came back online while still seated:
                // no sweep may remove it afterwards.
                assert!(
                    ring.nodes().contains(&"w1".to_string()),
                    "live node lost by a racing sweep (swept={swept:?})"
                );
                assert!(ring.is_online("w1"));
            }
        }
    }

    #[test]
    fn all_nodes_offline_yields_no_candidates() {
        let (ring, _) = ring_with(&["w0", "w1"], Duration::from_secs(600));
        ring.mark_offline("w0");
        ring.mark_offline("w1");
        assert!(ring.candidates("k", 2).is_empty());
    }

    #[test]
    fn readding_offline_node_revives_it() {
        let (ring, _) = ring_with(&["w0", "w1"], Duration::from_secs(600));
        ring.mark_offline("w1");
        ring.add_node("w1");
        assert!(ring.is_online("w1"));
    }

    #[test]
    fn primary_and_secondary_differ() {
        let (ring, _) = ring_with(&["w0", "w1", "w2"], Duration::from_secs(60));
        let (p, s) = ring.primary_and_secondary("some-file");
        assert!(p.is_some() && s.is_some());
        assert_ne!(p, s);
    }
}
