//! Stable 64-bit hash functions.
//!
//! Page placement (§4.1's allocator), the soft-affinity hash ring (§6.1.2),
//! and the on-disk bucket fan-out (§4.3) all need hashes that are *stable
//! across process restarts and architectures* — a page written before a crash
//! must land in the same bucket after recovery. `std::hash` makes no such
//! guarantee, so we use FNV-1a plus a splitmix64 finalizer.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with FNV-1a (64-bit).
///
/// # Examples
///
/// ```
/// use edgecache_common::hash::fnv1a64;
/// assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
/// assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
/// ```
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The splitmix64 finalizer: a cheap, high-quality bit mixer.
///
/// Used to derive virtual-node points on the consistent-hash ring and to
/// decorrelate sequential IDs before modulo-based placement.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hashes a string key (FNV-1a followed by a mix round).
pub fn hash_str(s: &str) -> u64 {
    mix64(fnv1a64(s.as_bytes()))
}

/// Combines two hashes into one (order-sensitive).
pub fn combine(a: u64, b: u64) -> u64 {
    mix64(a ^ b.rotate_left(32).wrapping_mul(FNV_PRIME))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn mix64_is_bijective_on_samples() {
        // splitmix64 is a bijection; distinct inputs must give distinct
        // outputs on any sample set.
        let outs: std::collections::HashSet<u64> = (0..10_000u64).map(mix64).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine(1, 2), combine(2, 1));
    }

    #[test]
    fn hash_str_stability() {
        // Guard against accidental algorithm changes: these values are part
        // of the on-disk layout contract.
        assert_eq!(hash_str("hello"), hash_str("hello"));
        assert_ne!(hash_str("hello"), hash_str("hellp"));
    }

    #[test]
    fn distribution_over_buckets_is_roughly_uniform() {
        const BUCKETS: usize = 16;
        let mut counts = [0usize; BUCKETS];
        for i in 0..16_000u64 {
            let key = format!("file-{i}");
            counts[(hash_str(&key) % BUCKETS as u64) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket expects 1000; allow generous slack.
            assert!((700..1300).contains(&c), "skewed bucket count {c}");
        }
    }
}
