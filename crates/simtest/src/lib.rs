//! Deterministic full-stack simulation and torture testing for edgecache.
//!
//! A single `u64` seed expands into a complete scenario — stack shape
//! (page store backend, direct cache or distributed tier), a Zipf/fragmented
//! workload from the `edgecache-workload` samplers, and a layered fault
//! schedule spanning every failure mode of the paper's §8 (remote errors and
//! short reads, device stalls, store corruption, `NoSpace`, read hangs, and
//! mid-operation process crashes with restart recovery). The scenario runs
//! against the real cache stack on a virtual clock, and *invariant oracles*
//! check what must hold regardless of the schedule: every completed read
//! returns ground-truth bytes, metric conservation laws balance, accounting
//! never goes negative or over budget, and recovery never serves a torn
//! page.
//!
//! * [`scenario`] — seed → [`Scenario`](scenario::Scenario) expansion.
//! * [`remote`] — the simulated remote: ground truth, content-hashed fault
//!   decisions, device-model time charged to the sim clock.
//! * [`runner`] — executes a scenario, applies faults, checks oracles,
//!   produces a byte-stable event trace.
//! * [`oracle`] — the invariants: byte correctness, conservation laws,
//!   structural accounting.
//! * [`shrink`] — ddmin-style failure minimizer and reproducer renderer.
//!
//! The `simtest` binary sweeps seeds (`--seeds N`), replays one
//! (`--seed X`), and selects depth with `--profile smoke|torture|quota`; any
//! oracle violation is shrunk to a minimal, copy-pasteable reproducer.

pub mod oracle;
pub mod remote;
pub mod runner;
pub mod scenario;
pub mod shrink;

pub use oracle::Violation;
pub use runner::{run_scenario, RunReport};
pub use scenario::{Profile, Scenario};
pub use shrink::{render_repro, shrink, ShrinkResult};
