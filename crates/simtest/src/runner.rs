//! The scenario runner: executes a [`Scenario`] against a real cache stack
//! with simulated time, applying the fault schedule at op boundaries and
//! checking the invariant oracles as it goes.
//!
//! Determinism contract: ops execute sequentially on the runner thread; all
//! concurrency lives inside the cache's own fetch pool, whose effects are
//! made order-independent by construction — remote fault decisions hash the
//! request content, virtual-time charges are commuting atomic advances, and
//! page publication happens in ascending page order after every fetch slot
//! has joined. Two runs of the same scenario therefore produce
//! byte-identical event traces ([`RunReport::trace_hash`]).
//!
//! A fired crash point (simulated process death inside the page store) is
//! detected at the op boundary; the runner finalizes the epoch's
//! conservation laws, drops the whole cache, and re-opens the same directory
//! with `verify_on_recovery` — the §4.3 restart path — before continuing.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use edgecache_common::bytesize::ByteSize;
use edgecache_common::clock::{Clock, SharedClock, SimClock};
use edgecache_common::hash::{fnv1a64, hash_str};
use edgecache_core::admission::{FilterRule, FilterRuleAdmission, FilterRuleSet};
use edgecache_core::config::CacheConfig;
use edgecache_core::manager::{CacheManager, RemoteSource, SourceFile};
use edgecache_core::AdmissionPolicy;
use edgecache_distcache::tier::{DistCacheTier, TierConfig};
use edgecache_distcache::worker::WorkerCacheConfig;
use edgecache_metrics::{assert_conserved, MetricRegistry, SnapshotDiff, SpanRecord, Tracer};
use edgecache_pagestore::{
    CacheScope, CrashPlan, FaultPlan, FaultyStore, LocalPageStore, LocalStoreConfig,
    MemoryPageStore, PageId, PageStore,
};
use edgecache_storage::{StallSchedule, StallWindow};

use crate::oracle::{cache_epoch_laws, check_accounting, check_read, check_tier_op, Violation};
use crate::remote::SimRemote;
use crate::scenario::{Backend, Fault, Op, Profile, Scenario, Topology};

/// The outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub seed: u64,
    /// One line per op / fault / epoch boundary; byte-identical across runs
    /// of the same scenario.
    pub trace: Vec<String>,
    /// FNV-1a over the joined trace — the determinism fingerprint.
    pub trace_hash: u64,
    pub violations: Vec<Violation>,
    /// Process lifetimes (1 + number of crash restarts).
    pub epochs: usize,
    /// Crash points that fired.
    pub crashes: u64,
    /// Final epoch's metrics snapshot as canonical JSON.
    pub final_metrics_json: String,
    /// Every span the stack recorded, across all epochs, in finish order.
    /// Deterministic for a given scenario (the tracer runs on the sim clock
    /// with concurrent timing pinned to issuing-thread windows).
    pub span_records: Vec<SpanRecord>,
}

impl RunReport {
    /// Whether every oracle held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// The run's spans as Chrome trace-event JSON (`--trace-dump`).
    pub fn chrome_trace_json(&self) -> String {
        edgecache_metrics::trace::chrome_trace_json(&self.span_records)
    }
}

/// Runs a scenario to completion. Never panics on oracle violations — they
/// are collected in the report so the shrinker can re-run candidates.
pub fn run_scenario(sc: &Scenario) -> RunReport {
    if sc.profile == Profile::Resultcache {
        return run_olap(sc);
    }
    match sc.topology {
        Topology::Direct => run_direct(sc),
        Topology::Tier => run_tier(sc),
    }
}

/// A scratch directory for `LocalPageStore` scenarios, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(seed: u64) -> std::io::Result<Self> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "edgecache-simtest-{}-{}-{}",
            std::process::id(),
            seed,
            SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&path)?;
        Ok(Self(path))
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Scope of file `file`: each file is its own partition, alternating
/// between two tables, so table quota, shared-scope eviction, partition
/// lifecycle (enter/exit), and admission-slot recycling are all exercised.
fn scope_of(file: u32) -> CacheScope {
    CacheScope::partition("sim", &format!("t{}", file % 2), &format!("p{file}"))
}

fn source_file(sc: &Scenario, file: u32) -> SourceFile {
    SourceFile::new(Scenario::path_of(file), 1, sc.file_len, scope_of(file))
}

/// Parses a `/sim/fN` path back to its scope (the recovery scope resolver).
fn scope_of_path(path: &str) -> CacheScope {
    path.strip_prefix("/sim/f")
        .and_then(|s| s.parse::<u32>().ok())
        .map(scope_of)
        .unwrap_or(CacheScope::Global)
}

/// Everything the Direct-topology runner rebuilds on a crash restart.
struct DirectStack {
    cache: CacheManager,
    /// Present when the scenario caps `maxCachedPartitions`; the oracle
    /// compares its admitted sets against live residency after every op.
    admission: Option<Arc<FilterRuleAdmission>>,
}

#[allow(clippy::too_many_arguments)]
fn build_direct(
    sc: &Scenario,
    clock: &SharedClock,
    fault_plan: &Arc<FaultPlan>,
    crash_plan: &Arc<CrashPlan>,
    scratch: Option<&ScratchDir>,
    memory_store: Option<&Arc<dyn PageStore>>,
    epoch: usize,
) -> Result<DirectStack, String> {
    let mut config = CacheConfig::default()
        .with_page_size(ByteSize::new(sc.page_size))
        .with_ttl(Duration::from_secs(60))
        .with_max_concurrent_fetches(4);
    if let Some(cap) = sc.memory_capacity {
        // Three-level hierarchy: DRAM frames above the (possibly faulty)
        // backing store. The tier is rebuilt empty on every crash restart —
        // DRAM does not survive process death.
        config = config.with_memory_tier(ByteSize::new(cap));
    }
    // Injected delays pay virtual time; the wall-clock deadline machinery
    // would race against them and break determinism.
    config.enforce_read_timeout = false;

    // One registry + tracer per epoch: span rollups land in the epoch's
    // `trace.*_us` histograms, so the final-metrics determinism check covers
    // stage attribution too. Concurrent timing stays off (the default) so
    // fetch-pool spans are pinned to issuing-thread windows.
    let registry = MetricRegistry::new(format!("simtest-epoch{epoch}"));
    let tracer = Tracer::enabled(Arc::clone(clock)).with_registry(Arc::new(registry.clone()));

    let store: Arc<dyn PageStore> = match sc.backend {
        Backend::Memory => Arc::clone(memory_store.expect("memory store outlives epochs")),
        Backend::Local => {
            let dir = &scratch.expect("local backend has a scratch dir").0;
            let local = LocalPageStore::open(
                dir,
                LocalStoreConfig {
                    page_size: sc.page_size,
                    buckets: 16,
                    // The crash-safe restart mode: recovery drops any page
                    // whose checksum trailer does not verify, so a torn
                    // write can never be served (§4.3, §8).
                    verify_on_recovery: true,
                    crash_plan: Some(Arc::clone(crash_plan)),
                },
            )
            .map_err(|e| format!("open local store: {e}"))?
            .with_tracer(tracer.clone());
            Arc::new(FaultyStore::new(local, Arc::clone(fault_plan)))
        }
    };

    let mut builder = CacheManager::builder(config)
        .with_store(store, sc.cache_capacity)
        .with_clock(Arc::clone(clock))
        .with_metrics(registry)
        .with_tracer(tracer)
        .with_scope_resolver(scope_of_path)
        .with_recovery();
    if let Some(q) = sc.quota {
        builder = builder.with_quota(
            CacheScope::Table {
                schema: "sim".into(),
                table: "t0".into(),
            },
            ByteSize::new(q),
        );
    }
    if let Some(q) = sc.partition_quota {
        builder = builder.with_quota(CacheScope::partition("sim", "t0", "p0"), ByteSize::new(q));
    }
    let admission = sc.max_cached_partitions.map(|cap| {
        Arc::new(FilterRuleAdmission::new(FilterRuleSet {
            rules: vec![FilterRule {
                schema: "sim".into(),
                table: "*".into(),
                max_cached_partitions: Some(cap),
            }],
            default_admit: true,
        }))
    });
    if let Some(a) = &admission {
        builder = builder.with_admission(Arc::clone(a) as Arc<dyn AdmissionPolicy>);
    }
    let cache = builder.build().map_err(|e| format!("build cache: {e}"))?;
    Ok(DirectStack { cache, admission })
}

/// Finalizes an epoch: conservation laws over the epoch's registry, a trace
/// line with every counter (the metrics fingerprint), and the epoch's span
/// records drained into the run-wide list.
fn finish_epoch(
    cache: &CacheManager,
    epoch: usize,
    clean: bool,
    trace: &mut Vec<String>,
    violations: &mut Vec<Violation>,
    spans: &mut Vec<SpanRecord>,
) -> String {
    spans.extend(cache.tracer().take_records());
    let snapshot = cache.metrics().snapshot();
    let diff = SnapshotDiff::from_start(&snapshot);
    if let Err(e) = assert_conserved(&diff, &cache_epoch_laws(clean)) {
        violations.push(Violation {
            op: None,
            kind: "conservation",
            detail: format!("epoch {epoch}: {e}"),
        });
    }
    let counters: Vec<String> = snapshot
        .counters
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    trace.push(format!("epoch {epoch} end: {}", counters.join(" ")));
    snapshot.to_json()
}

fn run_direct(sc: &Scenario) -> RunReport {
    let sim = Arc::new(SimClock::new());
    let clock: SharedClock = sim.clone();
    let remote = SimRemote::new(sc, Arc::clone(&clock));
    let fault_plan = FaultPlan::none();
    fault_plan.set_clock(Arc::clone(&clock));
    let crash_plan = CrashPlan::new();

    let mut trace: Vec<String> = Vec::with_capacity(sc.ops.len() + 8);
    let mut violations: Vec<Violation> = Vec::new();
    let mut span_records: Vec<SpanRecord> = Vec::new();

    let scratch = match sc.backend {
        Backend::Local => match ScratchDir::new(sc.seed) {
            Ok(d) => Some(d),
            Err(e) => {
                return setup_failure(sc, format!("scratch dir: {e}"));
            }
        },
        Backend::Memory => None,
    };
    let memory_store: Option<Arc<dyn PageStore>> = match sc.backend {
        Backend::Memory => Some(Arc::new(FaultyStore::new(
            MemoryPageStore::new(),
            Arc::clone(&fault_plan),
        ))),
        Backend::Local => None,
    };

    let mut epoch = 0usize;
    let mut stack = match build_direct(
        sc,
        &clock,
        &fault_plan,
        &crash_plan,
        scratch.as_ref(),
        memory_store.as_ref(),
        epoch,
    ) {
        Ok(s) => s,
        Err(e) => return setup_failure(sc, e),
    };

    let mut epoch_clean = true;
    let mut crashes_seen = 0u64;
    let mut stalls = StallSchedule::none();
    let mut salt_counter = 0u64;
    let mut err_until = 0usize;
    let mut short_until = 0usize;
    // Open memory-pressure window: (first op past the window, shrunk bytes).
    // Restoring the configured capacity at expiry lets promotions resume, so
    // one scenario exercises shrink → demote → regrow → repromote.
    let mut mem_pressure: Option<(usize, u64)> = None;
    let mut fault_idx = 0usize;
    let mut final_json;

    for (i, op) in sc.ops.iter().enumerate() {
        // Expire remote fault windows that ran out.
        if err_until != 0 && i >= err_until {
            remote.set_error_percent(0, 0);
            err_until = 0;
        }
        if short_until != 0 && i >= short_until {
            remote.set_short_percent(0, 0);
            short_until = 0;
        }
        if let Some((until, _)) = mem_pressure {
            if i >= until {
                stack
                    .cache
                    .set_memory_capacity(sc.memory_capacity.unwrap_or(0));
                mem_pressure = None;
            }
        }
        // Apply faults scheduled at this boundary.
        while fault_idx < sc.faults.len() && sc.faults[fault_idx].at <= i {
            let fault = &sc.faults[fault_idx].fault;
            trace.push(format!("fault@{i} {fault:?}"));
            match fault {
                Fault::CorruptPage { file, page } => {
                    fault_plan.corrupt_page(PageId::new(source_file(sc, *file).file_id(), *page));
                }
                Fault::DeviceCapacity { bytes } => fault_plan.set_device_capacity(*bytes),
                Fault::ReadHang { millis, period } => {
                    fault_plan.set_read_hang(Duration::from_millis(*millis), *period);
                }
                Fault::RemoteErrors { percent, ops } => {
                    salt_counter += 1;
                    remote.set_error_percent(*percent as u32, salt_counter);
                    err_until = i + *ops as usize;
                }
                Fault::RemoteShortReads { percent, ops } => {
                    salt_counter += 1;
                    remote.set_short_percent(*percent as u32, salt_counter);
                    short_until = i + *ops as usize;
                }
                Fault::RemoteStall { millis, factor } => {
                    let now = clock.now();
                    stalls.add(StallWindow {
                        start: now,
                        end: now + Duration::from_millis(*millis),
                        factor: *factor,
                    });
                }
                Fault::ArmCrash { site, skip } => {
                    if sc.backend == Backend::Local {
                        crash_plan.arm_after(*site, *skip);
                    }
                }
                Fault::MemPressure { bytes, ops } => {
                    // Shrinking must demote, never drop: the conservation
                    // oracle re-balances the tier's books after every op of
                    // the window.
                    stack.cache.set_memory_capacity(*bytes);
                    mem_pressure = Some((i + *ops as usize, *bytes));
                }
                // Node lifecycle faults have no seat in the Direct topology.
                Fault::NodeStall { .. }
                | Fault::NodeCrash { .. }
                | Fault::NodeJoin { .. }
                | Fault::NodeDegraded { .. } => {}
            }
            fault_idx += 1;
        }
        remote.set_stall_factor(stalls.factor_at(clock.now()));

        // Execute the op.
        let fired_before = crash_plan.fired();
        let digest = match op {
            Op::Read { file, offset, len } => {
                let sf = source_file(sc, *file);
                match stack.cache.read(&sf, *offset, *len, remote.as_ref()) {
                    Ok(bytes) => {
                        let expected = remote.expected(*file, *offset, *len);
                        if let Some(v) = check_read(i, &bytes, &expected) {
                            violations.push(v);
                        }
                        format!("ok len={} fnv={:016x}", bytes.len(), fnv1a64(&bytes))
                    }
                    Err(e) => {
                        epoch_clean = false;
                        let crashed = crash_plan.fired() > fired_before;
                        if !remote.faults_active() && !crashed {
                            violations.push(Violation {
                                op: Some(i),
                                kind: "unexpected-error",
                                detail: format!("read failed with no fault window open: {e}"),
                            });
                        }
                        format!("err {}", e.kind())
                    }
                }
            }
            Op::ReadMulti { file, ranges } => {
                let sf = source_file(sc, *file);
                match stack.cache.read_multi(&sf, ranges, remote.as_ref()) {
                    Ok(parts) => {
                        if parts.len() != ranges.len() {
                            violations.push(Violation {
                                op: Some(i),
                                kind: "arity-mismatch",
                                detail: format!(
                                    "read_multi returned {} fragments for {} ranges",
                                    parts.len(),
                                    ranges.len()
                                ),
                            });
                        }
                        let mut total = 0usize;
                        let mut fnv = 0xcbf2_9ce4_8422_2325u64;
                        for (frag, &(offset, len)) in parts.iter().zip(ranges.iter()) {
                            let expected = remote.expected(*file, offset, len);
                            if let Some(v) = check_read(i, frag, &expected) {
                                violations.push(v);
                            }
                            total += frag.len();
                            fnv = edgecache_common::hash::combine(fnv, fnv1a64(frag));
                        }
                        format!("ok frags={} len={total} fnv={fnv:016x}", parts.len())
                    }
                    Err(e) => {
                        epoch_clean = false;
                        let crashed = crash_plan.fired() > fired_before;
                        if !remote.faults_active() && !crashed {
                            violations.push(Violation {
                                op: Some(i),
                                kind: "unexpected-error",
                                detail: format!("read_multi failed with no fault window open: {e}"),
                            });
                        }
                        format!("err {}", e.kind())
                    }
                }
            }
            Op::DeleteFile { file } => {
                let n = stack.cache.delete_file(source_file(sc, *file).file_id());
                format!("deleted {n}")
            }
            Op::PurgeScope { file } => {
                let n = stack.cache.delete_scope(&scope_of(*file));
                format!("purged {n}")
            }
            Op::AdvanceClock { millis } => {
                sim.advance(Duration::from_millis(*millis));
                format!("t={}ms", sim.now_millis())
            }
            Op::EvictExpired => format!("expired {}", stack.cache.evict_expired()),
            Op::OlapQuery { .. }
            | Op::OlapAppend { .. }
            | Op::OlapRewrite { .. }
            | Op::OlapDrop { .. } => {
                unreachable!("OLAP ops run under the Resultcache profile only")
            }
            Op::CrashRestart => {
                if sc.backend == Backend::Local {
                    // Simulated kill -9: the process dies with no store
                    // half-effect; everything in memory is lost.
                    "killed".to_string()
                } else {
                    "noop".to_string()
                }
            }
            Op::WorkerOffline { .. } | Op::WorkerOnline { .. } => "noop".to_string(),
        };
        trace.push(format!(
            "op{i:03} {op:?} -> {digest} clock={}ms",
            sim.now_millis()
        ));

        // Process-death handling: a fired crash point (or an explicit kill)
        // ends the epoch; restart over the same directory with recovery.
        let fired_now = crash_plan.fired();
        let crashed = fired_now > fired_before;
        let killed = matches!(op, Op::CrashRestart) && sc.backend == Backend::Local;
        if crashed || killed {
            crashes_seen = fired_now;
            final_json = finish_epoch(
                &stack.cache,
                epoch,
                epoch_clean,
                &mut trace,
                &mut violations,
                &mut span_records,
            );
            drop(stack);
            epoch += 1;
            epoch_clean = true;
            trace.push(format!("restart -> epoch {epoch}"));
            stack = match build_direct(
                sc,
                &clock,
                &fault_plan,
                &crash_plan,
                scratch.as_ref(),
                memory_store.as_ref(),
                epoch,
            ) {
                Ok(s) => {
                    // The rebuilt stack mounted the tier at full configured
                    // capacity; if a pressure window is still open, the
                    // shrunk budget must survive the restart.
                    if let Some((_, bytes)) = mem_pressure {
                        s.cache.set_memory_capacity(bytes);
                    }
                    s
                }
                Err(e) => {
                    violations.push(Violation {
                        op: Some(i),
                        kind: "restart-failed",
                        detail: e,
                    });
                    let trace_hash = hash_trace(&trace);
                    return RunReport {
                        seed: sc.seed,
                        trace,
                        trace_hash,
                        violations,
                        epochs: epoch + 1,
                        crashes: crashes_seen,
                        final_metrics_json: final_json,
                        span_records,
                    };
                }
            };
        }

        // Structural accounting must hold after every completed op (on the
        // freshly recovered stack when a crash just fired).
        violations.extend(check_accounting(
            i,
            &stack.cache,
            true,
            stack.admission.as_deref(),
        ));
    }

    final_json = finish_epoch(
        &stack.cache,
        epoch,
        epoch_clean,
        &mut trace,
        &mut violations,
        &mut span_records,
    );
    let trace_hash = hash_trace(&trace);
    RunReport {
        seed: sc.seed,
        trace,
        trace_hash,
        violations,
        epochs: epoch + 1,
        crashes: crashes_seen,
        final_metrics_json: final_json,
        span_records,
    }
}

fn run_tier(sc: &Scenario) -> RunReport {
    let sim = Arc::new(SimClock::new());
    let clock: SharedClock = sim.clone();
    let remote = SimRemote::new(sc, Arc::clone(&clock));

    let mut trace: Vec<String> = Vec::with_capacity(sc.ops.len() + 8);
    let mut violations: Vec<Violation> = Vec::new();

    let workers = Scenario::tier_workers(sc.profile);
    let tier = match DistCacheTier::new(
        TierConfig {
            workers,
            max_replicas: 2,
            // Cluster seeds warm each key's second candidate deliberately,
            // so failover during churn windows serves warm hits.
            replicate_on_read: sc.profile == Profile::Cluster,
            worker: WorkerCacheConfig {
                cache_capacity: sc.cache_capacity,
                page_size: ByteSize::new(sc.page_size),
                max_inflight: 8,
            },
            ring: if sc.profile == Profile::Cluster {
                // A short lazy window, so stall windows overlapping clock
                // advances actually expire seats and exercise the
                // sweep-driven rebalance (ownership-change re-fetch).
                edgecache_common::ring::RingConfig {
                    offline_timeout: Duration::from_secs(60),
                    ..Default::default()
                }
            } else {
                Default::default()
            },
        },
        Arc::clone(&remote) as Arc<dyn RemoteSource + Send + Sync>,
        Arc::clone(&clock),
    ) {
        Ok(t) => t,
        Err(e) => return setup_failure(sc, format!("build tier: {e}")),
    };
    // Distcache-hop spans roll up into the tier's own registry, so they ride
    // the final-metrics determinism check like the Direct topology's stages.
    let tier = {
        let registry = Arc::new(tier.metrics().clone());
        tier.with_tracer(Tracer::enabled(Arc::clone(&clock)).with_registry(registry))
    };
    for file in 0..sc.files {
        tier.register_file(&Scenario::path_of(file), 1, sc.file_len);
    }

    let mut stalls = StallSchedule::none();
    let mut salt_counter = 0u64;
    let mut err_until = 0usize;
    let mut short_until = 0usize;
    let mut fault_idx = 0usize;
    let mut tier_reads = 0u64;

    // Cluster-health bookkeeping for the per-op tier oracle: which workers
    // the harness itself pushed into a bad state. A name can linger here
    // after a sweep removed the worker outright — that only makes the
    // "fully healthy" oracle more conservative, never wrong.
    let mut offline: std::collections::BTreeSet<String> = Default::default();
    let mut degraded: std::collections::BTreeSet<String> = Default::default();
    let mut awaiting_restart: std::collections::BTreeSet<String> = Default::default();
    /// A scheduled end of a node-fault window, keyed by op index.
    enum NodeEvent {
        StallEnd(String),
        DegradeEnd(String),
        Rejoin(String),
    }
    let mut node_events: Vec<(usize, NodeEvent)> = Vec::new();
    let worker_name = |idx: u32| format!("cw{}", idx as usize % workers);
    let mut prev_stats = tier.stats();

    for (i, op) in sc.ops.iter().enumerate() {
        if err_until != 0 && i >= err_until {
            remote.set_error_percent(0, 0);
            err_until = 0;
        }
        if short_until != 0 && i >= short_until {
            remote.set_short_percent(0, 0);
            short_until = 0;
        }
        // Close node-fault windows that ran out: stalled workers return,
        // degraded workers heal, crashed workers rejoin cold.
        let mut still_open = Vec::with_capacity(node_events.len());
        for (at, ev) in node_events.drain(..) {
            if at > i {
                still_open.push((at, ev));
                continue;
            }
            match ev {
                NodeEvent::StallEnd(name) => {
                    // A no-op if a sweep already expired the seat — the
                    // worker is then gone for good and its keys rehashed.
                    tier.worker_online(&name);
                    offline.remove(&name);
                }
                NodeEvent::DegradeEnd(name) => {
                    if let Some(w) = tier.worker(&name) {
                        w.set_failing(false);
                    }
                    degraded.remove(&name);
                }
                NodeEvent::Rejoin(name) => {
                    if let Err(e) = tier.add_worker(&name) {
                        violations.push(Violation {
                            op: Some(i),
                            kind: "rejoin-failed",
                            detail: format!("crashed worker {name} failed to rejoin: {e}"),
                        });
                    }
                    awaiting_restart.remove(&name);
                }
            }
        }
        node_events = still_open;
        while fault_idx < sc.faults.len() && sc.faults[fault_idx].at <= i {
            let fault = &sc.faults[fault_idx].fault;
            trace.push(format!("fault@{i} {fault:?}"));
            match fault {
                Fault::RemoteErrors { percent, ops } => {
                    salt_counter += 1;
                    remote.set_error_percent(*percent as u32, salt_counter);
                    err_until = i + *ops as usize;
                }
                Fault::RemoteShortReads { percent, ops } => {
                    salt_counter += 1;
                    remote.set_short_percent(*percent as u32, salt_counter);
                    short_until = i + *ops as usize;
                }
                Fault::RemoteStall { millis, factor } => {
                    let now = clock.now();
                    stalls.add(StallWindow {
                        start: now,
                        end: now + Duration::from_millis(*millis),
                        factor: *factor,
                    });
                }
                Fault::NodeStall { idx, ops } => {
                    let name = worker_name(*idx);
                    tier.worker_offline(&name);
                    offline.insert(name.clone());
                    node_events.push((i + *ops as usize, NodeEvent::StallEnd(name)));
                }
                Fault::NodeCrash { idx, restart_ops } => {
                    let name = worker_name(*idx);
                    tier.worker_crash(&name);
                    awaiting_restart.insert(name.clone());
                    node_events.push((i + *restart_ops as usize, NodeEvent::Rejoin(name)));
                }
                Fault::NodeJoin { idx } => {
                    let name = format!("cw{}", workers + *idx as usize);
                    if let Err(e) = tier.add_worker(&name) {
                        violations.push(Violation {
                            op: Some(i),
                            kind: "join-failed",
                            detail: format!("worker {name} failed to join: {e}"),
                        });
                    }
                }
                Fault::NodeDegraded { idx, ops } => {
                    let name = worker_name(*idx);
                    if let Some(w) = tier.worker(&name) {
                        w.set_failing(true);
                        degraded.insert(name.clone());
                        node_events.push((i + *ops as usize, NodeEvent::DegradeEnd(name)));
                    }
                }
                // Store-level and crash faults have no seat in the tier
                // topology (the harness does not own the workers' stores).
                _ => {}
            }
            fault_idx += 1;
        }
        remote.set_stall_factor(stalls.factor_at(clock.now()));

        let digest = match op {
            Op::Read { file, offset, len } => {
                let sf =
                    SourceFile::new(Scenario::path_of(*file), 1, sc.file_len, CacheScope::Global);
                tier_reads += 1;
                match tier.read(&sf, *offset, *len) {
                    Ok(bytes) => {
                        let expected = remote.expected(*file, *offset, *len);
                        if let Some(v) = check_read(i, &bytes, &expected) {
                            violations.push(v);
                        }
                        format!("ok len={} fnv={:016x}", bytes.len(), fnv1a64(&bytes))
                    }
                    Err(e) => {
                        if !remote.faults_active() {
                            violations.push(Violation {
                                op: Some(i),
                                kind: "unexpected-error",
                                detail: format!("tier read failed with no fault window: {e}"),
                            });
                        }
                        format!("err {}", e.kind())
                    }
                }
            }
            Op::ReadMulti { file, ranges } => {
                let sf =
                    SourceFile::new(Scenario::path_of(*file), 1, sc.file_len, CacheScope::Global);
                // One batch is one tier read: it is served by exactly one
                // worker hop or one origin fallback, whatever its arity.
                tier_reads += 1;
                match tier.read_multi(&sf, ranges) {
                    Ok(parts) => {
                        if parts.len() != ranges.len() {
                            violations.push(Violation {
                                op: Some(i),
                                kind: "arity-mismatch",
                                detail: format!(
                                    "tier read_multi returned {} fragments for {} ranges",
                                    parts.len(),
                                    ranges.len()
                                ),
                            });
                        }
                        let mut total = 0usize;
                        let mut fnv = 0xcbf2_9ce4_8422_2325u64;
                        for (frag, &(offset, len)) in parts.iter().zip(ranges.iter()) {
                            let expected = remote.expected(*file, offset, len);
                            if let Some(v) = check_read(i, frag, &expected) {
                                violations.push(v);
                            }
                            total += frag.len();
                            fnv = edgecache_common::hash::combine(fnv, fnv1a64(frag));
                        }
                        format!("ok frags={} len={total} fnv={fnv:016x}", parts.len())
                    }
                    Err(e) => {
                        if !remote.faults_active() {
                            violations.push(Violation {
                                op: Some(i),
                                kind: "unexpected-error",
                                detail: format!("tier read_multi failed with no fault window: {e}"),
                            });
                        }
                        format!("err {}", e.kind())
                    }
                }
            }
            Op::AdvanceClock { millis } => {
                sim.advance(Duration::from_millis(*millis));
                format!("t={}ms", sim.now_millis())
            }
            Op::EvictExpired => {
                let mut swept = tier.sweep_expired();
                swept.sort();
                format!("swept {}", swept.len())
            }
            Op::WorkerOffline { idx } => {
                let name = worker_name(*idx);
                tier.worker_offline(&name);
                offline.insert(name);
                "offline".to_string()
            }
            Op::WorkerOnline { idx } => {
                let name = worker_name(*idx);
                tier.worker_online(&name);
                offline.remove(&name);
                "online".to_string()
            }
            // File deletion, scope purges, and crashes are Direct-topology
            // concerns (the tier does not own scopes or stores).
            Op::DeleteFile { .. } | Op::PurgeScope { .. } | Op::CrashRestart => "noop".to_string(),
            Op::OlapQuery { .. }
            | Op::OlapAppend { .. }
            | Op::OlapRewrite { .. }
            | Op::OlapDrop { .. } => {
                unreachable!("OLAP ops run under the Resultcache profile only")
            }
        };
        trace.push(format!(
            "op{i:03} {op:?} -> {digest} clock={}ms",
            sim.now_millis()
        ));

        // Per-op tier oracles: read-outcome conservation always; the
        // cluster-health (bounded degradation) check whenever the harness
        // has every worker online, undegraded, and rejoined.
        let cur_stats = tier.stats();
        let reads_this_op = matches!(op, Op::Read { .. } | Op::ReadMulti { .. }) as u64;
        let cluster_healthy =
            offline.is_empty() && degraded.is_empty() && awaiting_restart.is_empty();
        violations.extend(check_tier_op(
            i,
            reads_this_op,
            &prev_stats,
            &cur_stats,
            cluster_healthy,
            remote.faults_active(),
        ));
        prev_stats = cur_stats;
    }

    // Tier conservation over the whole run: every tier read ended in
    // exactly one of a worker serve, an origin fallback, or a failure.
    let stats = tier.stats();
    if stats.served_by_tier + stats.origin_fallbacks + stats.failed_reads != tier_reads {
        violations.push(Violation {
            op: None,
            kind: "tier-conservation",
            detail: format!(
                "served_by_tier={} + origin_fallbacks={} + failed_reads={} != tier reads {}",
                stats.served_by_tier, stats.origin_fallbacks, stats.failed_reads, tier_reads
            ),
        });
    }
    let snapshot = tier.metrics().snapshot();
    let counters: Vec<String> = snapshot
        .counters
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    trace.push(format!("tier end: {}", counters.join(" ")));
    let final_json = snapshot.to_json();

    let trace_hash = hash_trace(&trace);
    RunReport {
        seed: sc.seed,
        trace,
        trace_hash,
        violations,
        epochs: 1,
        crashes: 0,
        final_metrics_json: final_json,
        span_records: tier.tracer().take_records(),
    }
}

fn hash_trace(trace: &[String]) -> u64 {
    trace.iter().fold(0xcbf2_9ce4_8422_2325, |acc, line| {
        edgecache_common::hash::combine(acc, hash_str(line))
    })
}

// ---------------------------------------------------------------------------
// Resultcache profile: OLAP result-cache coherence under metadata churn
// ---------------------------------------------------------------------------

/// Deterministic fact-file content for the Resultcache profile: a pure
/// function of `(partition, file, version)`, so a rewrite genuinely changes
/// the answer and any stale cached partial is observable in the rows.
fn olap_file_bytes(partition: usize, file: usize, version: u64) -> bytes::Bytes {
    let mut w = edgecache_columnar::ColfWriter::new(olap_schema(), 16);
    let salt = (partition * 97 + file * 31) as i64 + version as i64 * 7;
    for i in 0..32i64 {
        let id = salt + i;
        w.push_row(vec![
            edgecache_columnar::Value::Int64(id),
            edgecache_columnar::Value::Utf8(format!("r{}", id.rem_euclid(3))),
            edgecache_columnar::Value::Float64(id as f64 * 1.25 + version as f64 * 0.5),
        ])
        .expect("row matches schema");
    }
    w.finish().expect("colf encode")
}

fn olap_schema() -> edgecache_columnar::Schema {
    edgecache_columnar::Schema::new(vec![
        ("id", edgecache_columnar::ColumnType::Int64),
        ("region", edgecache_columnar::ColumnType::Utf8),
        ("amount", edgecache_columnar::ColumnType::Float64),
    ])
}

/// The Resultcache profile's query pool: 8 aggregate shapes, with shape 2 a
/// commuted twin of shape 1 (same fingerprint, different plan order) so the
/// mix exercises cross-plan sharing of cached fragments.
fn olap_plan(q: u8) -> edgecache_olap::QueryPlan {
    use edgecache_columnar::{Predicate, Value};
    use edgecache_olap::{AggExpr, QueryPlan};
    let base = QueryPlan::scan("sim", "fact", &[]);
    match q % 8 {
        0 => base.aggregate(vec![AggExpr::count()]),
        1 => base
            .aggregate(vec![AggExpr::sum("amount"), AggExpr::count()])
            .group("region"),
        2 => base
            .aggregate(vec![AggExpr::count(), AggExpr::sum("amount")])
            .group("region"),
        3 => base
            .filter(
                Predicate::Eq("region".into(), Value::Utf8("r1".into()))
                    .or(Predicate::Eq("region".into(), Value::Utf8("r2".into()))),
            )
            .aggregate(vec![AggExpr::avg("amount"), AggExpr::min("id")]),
        4 => base
            .filter(Predicate::Gt("amount".into(), Value::Float64(20.0)))
            .aggregate(vec![AggExpr::max("amount"), AggExpr::count()])
            .group("region"),
        5 => base.aggregate(vec![
            AggExpr::sum("amount"),
            AggExpr::avg("amount"),
            AggExpr::min("amount"),
            AggExpr::max("amount"),
        ]),
        6 => base
            .filter(Predicate::Lt("id".into(), Value::Int64(120)))
            .aggregate(vec![AggExpr::count(), AggExpr::min("amount")])
            .group("region"),
        _ => base
            .filter(Predicate::Between(
                "amount".into(),
                Value::Float64(5.0),
                Value::Float64(400.0),
            ))
            .aggregate(vec![AggExpr::sum("amount"), AggExpr::max("id")]),
    }
}

/// Runs a Resultcache-profile scenario: a cached engine and an uncached
/// shadow share one catalog/store/clock while the op stream interleaves
/// repeated queries with appends, rewrites, and partition drops. Oracles:
///
/// * **Coherence** — cached rows are bit-identical (`Debug` form) to the
///   shadow's recomputed rows after every query.
/// * **Split partition** — `splits_skipped + splits_scheduled == splits` per
///   query, and the shadow never skips.
/// * **Ledger** — the cache's byte/entry/index accounting stays consistent
///   after every op.
/// * **Reconciliation** — the sum of `splits_scheduled` equals the
///   scheduler's assigned-splits total at end of run.
fn run_olap(sc: &Scenario) -> RunReport {
    use edgecache_olap::{
        Catalog, DataFile, Engine, EngineConfig, PartitionDef, ResultCacheConfig, TableDef,
        WorkerConfig,
    };
    use edgecache_storage::ObjectStore;

    let clock = SimClock::new();
    let store = Arc::new(ObjectStore::new(Arc::new(clock.clone())));
    let catalog = Arc::new(Catalog::new());
    catalog.register(TableDef {
        schema_name: "sim".into(),
        table_name: "fact".into(),
        columns: olap_schema(),
        partitions: vec![],
    });
    let mk = |rc: ResultCacheConfig| {
        Engine::new(
            Arc::clone(&catalog),
            Arc::clone(&store) as _,
            EngineConfig {
                workers: 2,
                worker: WorkerConfig {
                    page_size: ByteSize::kib(1),
                    ..Default::default()
                },
                coordinator_overhead: Duration::ZERO,
                result_cache: rc,
                ..Default::default()
            },
            Arc::new(clock.clone()),
        )
    };
    let cached = match mk(ResultCacheConfig::enabled(ByteSize::new(sc.cache_capacity))) {
        Ok(e) => e,
        Err(e) => return setup_failure(sc, format!("cached engine: {e}")),
    };
    let shadow = match mk(ResultCacheConfig::default()) {
        Ok(e) => e,
        Err(e) => return setup_failure(sc, format!("shadow engine: {e}")),
    };
    let rc = cached
        .result_cache()
        .expect("cached engine has result cache");

    let path_of = |p: usize, f: usize| format!("/sim/olap/p{p}/f{f}.colf");
    // (partition index, next file index, version of file 0)
    let mut partitions: Vec<(usize, usize, u64)> = Vec::new();
    for p in 0..2usize {
        let bytes = olap_file_bytes(p, 0, 1);
        let path = path_of(p, 0);
        store.put_object(&path, bytes.clone());
        catalog
            .add_partition(
                "sim",
                "fact",
                PartitionDef {
                    name: format!("p{p}"),
                    files: vec![DataFile {
                        path,
                        version: 1,
                        length: bytes.len() as u64,
                    }],
                },
            )
            .expect("seed partition");
        partitions.push((p, 1, 1));
    }
    let mut next_partition = partitions.len();

    let mut trace: Vec<String> = Vec::with_capacity(sc.ops.len() + 2);
    let mut violations: Vec<Violation> = Vec::new();
    let mut queries: u64 = 0;
    let mut skipped_total: u64 = 0;
    let mut scheduled_total: u64 = 0;
    let mut scan_bytes_saved: u64 = 0;

    for (i, op) in sc.ops.iter().enumerate() {
        let line = match op {
            Op::OlapQuery { q } => {
                let plan = olap_plan(*q);
                let a = match cached.execute(&plan) {
                    Ok(r) => r,
                    Err(e) => {
                        violations.push(Violation {
                            op: Some(i),
                            kind: "query-failed",
                            detail: format!("cached q{q}: {e}"),
                        });
                        trace.push(format!("op{i} q{q} FAILED"));
                        continue;
                    }
                };
                let b = match shadow.execute(&plan) {
                    Ok(r) => r,
                    Err(e) => {
                        violations.push(Violation {
                            op: Some(i),
                            kind: "query-failed",
                            detail: format!("shadow q{q}: {e}"),
                        });
                        trace.push(format!("op{i} q{q} SHADOW-FAILED"));
                        continue;
                    }
                };
                let rows_a = format!("{:?}", a.rows);
                let rows_b = format!("{:?}", b.rows);
                if rows_a != rows_b {
                    violations.push(Violation {
                        op: Some(i),
                        kind: "resultcache-coherence",
                        detail: format!(
                            "q{q}: cached rows diverged from shadow\ncached: {rows_a}\nshadow: {rows_b}"
                        ),
                    });
                }
                if a.stats.splits_skipped + a.stats.splits_scheduled != a.stats.splits {
                    violations.push(Violation {
                        op: Some(i),
                        kind: "split-partition",
                        detail: format!(
                            "q{q}: skipped {} + scheduled {} != splits {}",
                            a.stats.splits_skipped, a.stats.splits_scheduled, a.stats.splits
                        ),
                    });
                }
                if b.stats.splits_skipped != 0 {
                    violations.push(Violation {
                        op: Some(i),
                        kind: "shadow-skipped",
                        detail: format!(
                            "q{q}: uncached shadow skipped {} splits",
                            b.stats.splits_skipped
                        ),
                    });
                }
                queries += 1;
                skipped_total += a.stats.splits_skipped as u64;
                scheduled_total += a.stats.splits_scheduled as u64;
                scan_bytes_saved += a.stats.scan_bytes_saved;
                format!(
                    "op{i} q{q} rows={} fnv={:016x} splits={} skipped={} scheduled={}",
                    a.rows.len(),
                    fnv1a64(rows_a.as_bytes()),
                    a.stats.splits,
                    a.stats.splits_skipped,
                    a.stats.splits_scheduled
                )
            }
            Op::OlapAppend { p } => {
                let idx = *p as usize % partitions.len();
                let (part, next_file, _) = &mut partitions[idx];
                let (part, f) = (*part, *next_file);
                *next_file += 1;
                let bytes = olap_file_bytes(part, f, 1);
                let path = path_of(part, f);
                store.put_object(&path, bytes.clone());
                let name = format!("p{part}");
                let table = catalog.table("sim", "fact").expect("fact table");
                let mut files = table
                    .partitions
                    .iter()
                    .find(|x| x.name == name)
                    .cloned()
                    .expect("live partition")
                    .files;
                files.push(DataFile {
                    path,
                    version: 1,
                    length: bytes.len() as u64,
                });
                catalog
                    .add_partition("sim", "fact", PartitionDef { name, files })
                    .expect("append file");
                format!("op{i} append p{part} f{f}")
            }
            Op::OlapRewrite { p } => {
                let idx = *p as usize % partitions.len();
                let (part, _, version) = &mut partitions[idx];
                *version += 1;
                let (part, version) = (*part, *version);
                let bytes = olap_file_bytes(part, 0, version);
                let path = path_of(part, 0);
                store.put_object(&path, bytes.clone());
                catalog
                    .rewrite_file(
                        "sim",
                        "fact",
                        &format!("p{part}"),
                        &path,
                        version,
                        bytes.len() as u64,
                    )
                    .expect("rewrite file");
                format!("op{i} rewrite p{part} f0 v{version}")
            }
            Op::OlapDrop { p } => {
                if partitions.len() <= 1 {
                    // Keep at least one partition live; replace the drop with
                    // a compensating add so the scenario keeps making progress.
                    let part = next_partition;
                    next_partition += 1;
                    let bytes = olap_file_bytes(part, 0, 1);
                    let path = path_of(part, 0);
                    store.put_object(&path, bytes.clone());
                    catalog
                        .add_partition(
                            "sim",
                            "fact",
                            PartitionDef {
                                name: format!("p{part}"),
                                files: vec![DataFile {
                                    path,
                                    version: 1,
                                    length: bytes.len() as u64,
                                }],
                            },
                        )
                        .expect("compensating partition");
                    partitions.push((part, 1, 1));
                    format!("op{i} drop->add p{part}")
                } else {
                    let idx = *p as usize % partitions.len();
                    let (part, _, _) = partitions.remove(idx);
                    catalog
                        .drop_partition("sim", "fact", &format!("p{part}"))
                        .expect("drop partition");
                    format!("op{i} drop p{part}")
                }
            }
            Op::AdvanceClock { millis } => {
                clock.advance(Duration::from_millis(*millis));
                format!("op{i} t={}ms", clock.now_millis())
            }
            other => format!("op{i} ignored {other:?}"),
        };
        trace.push(line);
        if let Err(e) = rc.check_consistency() {
            violations.push(Violation {
                op: Some(i),
                kind: "resultcache-ledger",
                detail: format!("{e}"),
            });
        }
    }

    // End-of-run reconciliation: every split the cached engine reported as
    // scheduled was assigned by its scheduler, exactly once.
    let assigned = cached.scheduler().assigned_total();
    if scheduled_total != assigned {
        violations.push(Violation {
            op: None,
            kind: "split-reconcile",
            detail: format!(
                "sum of splits_scheduled {scheduled_total} != scheduler assigned {assigned}"
            ),
        });
    }
    let c = rc.counters();
    trace.push(format!(
        "end queries={queries} skipped={skipped_total} scheduled={scheduled_total} \
         hits={} misses={} inserts={} evictions={} invalidations={} entries={} bytes={}",
        c.hits,
        c.misses,
        c.inserts,
        c.evictions,
        c.invalidations,
        rc.len(),
        rc.bytes()
    ));
    let final_metrics_json = format!(
        "{{\"queries\":{queries},\"splits_skipped\":{skipped_total},\
         \"splits_scheduled\":{scheduled_total},\"scan_bytes_saved\":{scan_bytes_saved},\
         \"hits\":{},\"misses\":{},\"inserts\":{},\"evictions\":{},\"invalidations\":{},\
         \"entries\":{},\"bytes\":{}}}",
        c.hits,
        c.misses,
        c.inserts,
        c.evictions,
        c.invalidations,
        rc.len(),
        rc.bytes()
    );
    let trace_hash = hash_trace(&trace);
    RunReport {
        seed: sc.seed,
        trace,
        trace_hash,
        violations,
        epochs: 1,
        crashes: 0,
        final_metrics_json,
        span_records: Vec::new(),
    }
}

fn setup_failure(sc: &Scenario, detail: String) -> RunReport {
    RunReport {
        seed: sc.seed,
        trace: vec![format!("setup failed: {detail}")],
        trace_hash: hash_str(&detail),
        violations: vec![Violation {
            op: None,
            kind: "setup-failed",
            detail,
        }],
        epochs: 0,
        crashes: 0,
        final_metrics_json: String::new(),
        span_records: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Profile;

    #[test]
    fn smoke_seed_runs_clean() {
        let sc = Scenario::generate(0, Profile::Smoke);
        let report = run_scenario(&sc);
        assert!(
            report.ok(),
            "violations: {:?}\ntrace tail: {:?}",
            report.violations,
            report.trace.iter().rev().take(5).collect::<Vec<_>>()
        );
        assert!(report.trace.len() > sc.ops.len());
    }

    #[test]
    fn same_scenario_same_trace() {
        for seed in [1u64, 2, 3] {
            let sc = Scenario::generate(seed, Profile::Smoke);
            let a = run_scenario(&sc);
            let b = run_scenario(&sc);
            assert_eq!(a.trace, b.trace, "seed {seed} diverged");
            assert_eq!(a.trace_hash, b.trace_hash);
            assert_eq!(a.final_metrics_json, b.final_metrics_json);
            assert_eq!(a.span_records, b.span_records, "seed {seed} spans diverged");
            assert_eq!(a.chrome_trace_json(), b.chrome_trace_json());
        }
    }

    #[test]
    fn resultcache_seeds_run_clean() {
        for seed in 0..6u64 {
            let sc = Scenario::generate(seed, Profile::Resultcache);
            let report = run_scenario(&sc);
            assert!(
                report.ok(),
                "seed {seed} violations: {:?}\ntrace tail: {:?}",
                report.violations,
                report.trace.iter().rev().take(5).collect::<Vec<_>>()
            );
            // The repeated-query mix must actually exercise the cache.
            let end = report.trace.last().expect("end line");
            assert!(end.starts_with("end queries="), "end line: {end}");
            assert!(
                !end.contains("skipped=0 "),
                "no split was ever served from cache: {end}"
            );
            assert!(report.final_metrics_json.contains("\"hits\":"));
        }
    }

    #[test]
    fn resultcache_same_scenario_same_trace() {
        for seed in [1u64, 4, 9] {
            let sc = Scenario::generate(seed, Profile::Resultcache);
            let a = run_scenario(&sc);
            let b = run_scenario(&sc);
            assert_eq!(a.trace, b.trace, "seed {seed} diverged");
            assert_eq!(a.trace_hash, b.trace_hash);
            assert_eq!(a.final_metrics_json, b.final_metrics_json);
        }
    }

    #[test]
    fn runs_record_read_path_spans() {
        let sc = Scenario::generate(0, Profile::Smoke);
        let report = run_scenario(&sc);
        assert!(report.ok(), "violations: {:?}", report.violations);
        let names: Vec<&str> = report.span_records.iter().map(|r| r.name).collect();
        assert!(names.contains(&"cache.read"), "roots missing: {names:?}");
        assert!(
            names.contains(&"cache.read_multi"),
            "vectored roots missing: {names:?}"
        );
        assert!(names.contains(&"remote_fetch"), "stages missing: {names:?}");
        // Stage durations of each root must sum exactly to the root's
        // latency: the sim clock only moves when a stage charges it, so the
        // partition has no gaps or overlaps.
        use std::collections::BTreeMap;
        let mut child_sums: BTreeMap<u64, u64> = BTreeMap::new();
        for r in &report.span_records {
            if r.parent != 0 {
                *child_sums.entry(r.parent).or_default() +=
                    r.end_nanos.saturating_sub(r.start_nanos);
            }
        }
        for root in report
            .span_records
            .iter()
            .filter(|r| r.parent == 0 && (r.name == "cache.read" || r.name == "cache.read_multi"))
        {
            let total = root.end_nanos - root.start_nanos;
            assert_eq!(
                child_sums.get(&root.id).copied().unwrap_or(0),
                total,
                "stages of span {} must partition its {total}ns",
                root.id
            );
        }
        // The export is valid Chrome trace JSON with one event per span.
        let doc = serde_json::parse_value(&report.chrome_trace_json()).expect("valid JSON");
        let stages = edgecache_metrics::trace::summarize_chrome_trace(&doc).expect("summarize");
        assert!(stages.iter().any(|s| s.name == "cache.read"));
    }

    #[test]
    fn tier_seed_runs_clean() {
        // Seed 3 maps to the Tier topology (seed % 7 == 3).
        let sc = Scenario::generate(3, Profile::Smoke);
        assert_eq!(sc.topology, Topology::Tier);
        let report = run_scenario(&sc);
        assert!(report.ok(), "violations: {:?}", report.violations);
    }

    #[test]
    fn cluster_seeds_run_clean_and_deterministic() {
        // Generated membership-churn seeds: node stalls, crashes, joins,
        // and degrade windows over the replicated tier, with the per-op
        // conservation and cluster-health oracles armed. Each seed must
        // also replay byte-identically.
        for seed in 0..4u64 {
            let sc = Scenario::generate(seed, Profile::Cluster);
            assert_eq!(sc.topology, Topology::Tier);
            let a = run_scenario(&sc);
            assert!(a.ok(), "seed {seed} violations: {:?}", a.violations);
            let b = run_scenario(&sc);
            assert_eq!(a.trace, b.trace, "seed {seed} diverged");
            assert_eq!(a.final_metrics_json, b.final_metrics_json);
        }
    }

    #[test]
    fn rolling_restart_keeps_serving_with_bounded_degradation() {
        // A hand-built rolling restart: warm the whole key space (and, via
        // replicate-on-read, every key's second replica), then bounce each
        // of the four workers in turn while reads continue. The bounded-
        // degradation contract is exact here: zero failed reads, zero
        // origin fallbacks — every read through the restart is a worker
        // serve, because the surviving replica is already warm.
        let page = 4096u64;
        let read = |file: u32, idx: u64| Op::Read {
            file,
            offset: idx * page,
            len: page,
        };
        let mut ops = Vec::new();
        for f in 0..6u32 {
            for p in 0..2u64 {
                ops.push(read(f, p));
            }
        }
        for w in 0..4u32 {
            ops.push(Op::WorkerOffline { idx: w });
            for f in 0..6u32 {
                ops.push(read(f, 0));
            }
            ops.push(Op::WorkerOnline { idx: w });
            for f in 0..6u32 {
                ops.push(read(f, 1));
            }
        }
        let total_reads = 12 + 4 * 12;
        let sc = Scenario {
            seed: 777_001,
            profile: Profile::Cluster,
            backend: Backend::Memory,
            topology: Topology::Tier,
            page_size: page,
            cache_capacity: 64 * page,
            files: 6,
            file_len: 4 * page,
            quota: None,
            partition_quota: None,
            max_cached_partitions: None,
            memory_capacity: None,
            sabotage_after: None,
            ops,
            faults: vec![],
        };
        let a = run_scenario(&sc);
        assert!(
            a.ok(),
            "violations: {:?}\ntrace: {:#?}",
            a.violations,
            a.trace
        );
        assert_eq!(epoch_counter(&a.trace, "failed_reads"), 0);
        assert_eq!(
            epoch_counter(&a.trace, "origin_fallbacks"),
            0,
            "warm replicas must absorb the whole rolling restart: {:#?}",
            a.trace
        );
        assert_eq!(
            epoch_counter(&a.trace, "served_by_tier"),
            total_reads as u64
        );
        assert!(
            epoch_counter(&a.trace, "replica_warms") >= 6,
            "replicate-on-read must have warmed the secondaries"
        );
        let b = run_scenario(&sc);
        assert_eq!(a.trace, b.trace, "rolling restart diverged");
        assert_eq!(a.final_metrics_json, b.final_metrics_json);
    }

    #[test]
    fn degraded_primary_fails_over_without_a_failed_read() {
        use crate::scenario::FaultEvent;

        // The headline-bug regression at simtest level: a degrade window on
        // every worker in turn, reads continuing throughout, zero failed
        // reads allowed (origin stays healthy the whole run).
        let page = 4096u64;
        let read = |file: u32| Op::Read {
            file,
            offset: 0,
            len: page,
        };
        let mut ops: Vec<Op> = Vec::new();
        let mut faults = Vec::new();
        for w in 0..4u32 {
            faults.push(FaultEvent {
                at: ops.len(),
                fault: Fault::NodeDegraded { idx: w, ops: 4 },
            });
            for f in 0..4u32 {
                ops.push(read(f));
            }
        }
        let sc = Scenario {
            seed: 777_002,
            profile: Profile::Cluster,
            backend: Backend::Memory,
            topology: Topology::Tier,
            page_size: page,
            cache_capacity: 64 * page,
            files: 4,
            file_len: 4 * page,
            quota: None,
            partition_quota: None,
            max_cached_partitions: None,
            memory_capacity: None,
            sabotage_after: None,
            ops,
            faults,
        };
        let a = run_scenario(&sc);
        assert!(
            a.ok(),
            "violations: {:?}\ntrace: {:#?}",
            a.violations,
            a.trace
        );
        assert_eq!(epoch_counter(&a.trace, "failed_reads"), 0);
        assert!(
            epoch_counter(&a.trace, "worker_errors") > 0,
            "degrade windows must actually exercise the failover path"
        );
        assert!(epoch_counter(&a.trace, "failover_reads") > 0);
    }

    #[test]
    fn sabotage_is_caught_by_the_byte_oracle() {
        let mut sc = Scenario::generate(0, Profile::Smoke);
        sc.sabotage_after = Some(3);
        let report = run_scenario(&sc);
        assert!(
            report.violations.iter().any(|v| v.kind == "byte-mismatch"),
            "sabotaged remote must trip the oracle: {:?}",
            report.violations
        );
    }

    #[test]
    fn quota_profile_seeds_run_clean() {
        // One Memory and one Local seed of the multi-tenant churn profile:
        // every seed carries a table quota, a partition quota, and an
        // admission cap, so the admitted ≡ live-residency oracle is armed
        // after every op. Each seed must also replay byte-identically.
        for seed in [0u64, 1] {
            let sc = Scenario::generate(seed, Profile::Quota);
            assert!(sc.max_cached_partitions.is_some());
            let a = run_scenario(&sc);
            assert!(a.ok(), "seed {seed} violations: {:?}", a.violations);
            let b = run_scenario(&sc);
            assert_eq!(a.trace, b.trace, "seed {seed} diverged");
            assert_eq!(a.final_metrics_json, b.final_metrics_json);
        }
    }

    #[test]
    fn admission_slots_survive_every_exit_path() {
        use crate::scenario::{Fault, FaultEvent};

        // A hand-built scenario that walks a capped table through every
        // scope-exit path in one deterministic run: capacity eviction,
        // quota eviction, TTL expiry, corruption eviction, operator purge,
        // and a crash restart. Files 0/2/4 are partitions p0/p2/p4 of table
        // t0 (cap 2); files 1/3/5 are t1. The admitted ≡ live oracle runs
        // after every op, so any leaked or lost slot fails the run.
        let page = 4096u64;
        let read = |file: u32, idx: u64| Op::Read {
            file,
            offset: idx * page,
            len: page,
        };
        let sc = Scenario {
            seed: 424_242,
            profile: Profile::Quota,
            backend: Backend::Local,
            topology: Topology::Direct,
            page_size: page,
            cache_capacity: 6 * page,
            files: 6,
            file_len: 4 * page,
            quota: Some(4 * page),           // Table t0.
            partition_quota: Some(2 * page), // Partition p0 under it.
            max_cached_partitions: Some(2),
            memory_capacity: None,
            sabotage_after: None,
            ops: vec![
                // Fill p0 to its partition quota, then one page beyond it:
                // quota eviction cycles p0's own pages.
                read(0, 0),
                read(0, 1),
                read(0, 2),
                // p2 takes the second slot; p4 must be bypassed at the cap.
                read(2, 0),
                read(4, 0),
                // Push t0 over its table quota: shared-scope eviction can
                // fully drain a partition (a quota-driven exit).
                read(2, 1),
                read(2, 2),
                // Uncapped-table traffic forces capacity evictions too.
                read(1, 0),
                read(3, 0),
                read(5, 0),
                // Corruption eviction: the fault below marks p0's page 0
                // bad; this read detects, evicts, and refetches it.
                read(0, 0),
                // Operator purge exits p2 outright; p4 can then admit.
                Op::PurgeScope { file: 2 },
                read(4, 0),
                read(4, 1),
                // TTL: everything expires, every slot must come back.
                Op::AdvanceClock { millis: 61_000 },
                Op::EvictExpired,
                read(0, 0),
                read(2, 3),
                // Crash restart: the rebuilt stack re-learns slots from
                // recovered residency, then keeps serving.
                Op::CrashRestart,
                read(4, 2),
                read(0, 1),
                Op::DeleteFile { file: 0 },
                read(2, 0),
            ],
            faults: vec![FaultEvent {
                at: 10,
                fault: Fault::CorruptPage { file: 0, page: 0 },
            }],
        };
        let a = run_scenario(&sc);
        assert!(
            a.ok(),
            "violations: {:?}\ntrace: {:#?}",
            a.violations,
            a.trace
        );
        assert!(a.epochs >= 2, "the crash restart must split epochs");
        assert!(
            a.trace.iter().any(|l| l.contains("purged")),
            "purge op missing from trace"
        );
        // Slots cycled: the ledger observed partition exits and re-entries.
        assert!(
            a.final_metrics_json.contains("ledger.enters"),
            "ledger counters missing from metrics: {}",
            a.final_metrics_json
        );
        let b = run_scenario(&sc);
        assert_eq!(a.trace, b.trace, "hand-built scenario diverged");
        assert_eq!(a.final_metrics_json, b.final_metrics_json);
    }

    /// Last value of counter `name` on an `epoch N end:` trace line.
    fn epoch_counter(trace: &[String], name: &str) -> u64 {
        let needle = format!(" {name}=");
        trace
            .iter()
            .rev()
            .filter(|l| l.contains(" end: "))
            .find_map(|l| {
                let p = l.find(&needle)?;
                l[p + needle.len()..]
                    .split_whitespace()
                    .next()?
                    .parse()
                    .ok()
            })
            .unwrap_or(0)
    }

    #[test]
    fn memory_pressure_window_demotes_and_restores() {
        use crate::scenario::{Fault, FaultEvent};

        // A hand-built three-tier scenario: fill the DRAM tier, serve
        // memory hits, shrink the tier under a pressure window (frames must
        // demote to SSD, never drop), keep reading through the window
        // (SSD hits promote back, churning against the shrunk budget), then
        // let the window expire and verify the tier refills. The
        // conservation oracle re-balances the tier's books after every op.
        let page = 4096u64;
        let read = |file: u32, idx: u64| Op::Read {
            file,
            offset: idx * page,
            len: page,
        };
        let sc = Scenario {
            seed: 777,
            profile: Profile::Smoke,
            backend: Backend::Memory,
            topology: Topology::Direct,
            page_size: page,
            cache_capacity: 64 * page,
            files: 2,
            file_len: 8 * page,
            quota: None,
            partition_quota: None,
            max_cached_partitions: None,
            memory_capacity: Some(4 * page),
            sabotage_after: None,
            ops: vec![
                // Fill the DRAM tier to its 4-page budget.
                read(0, 0),
                read(0, 1),
                read(0, 2),
                read(0, 3),
                // Pure memory hits.
                read(0, 0),
                read(0, 1),
                // The fault below fires here: capacity drops to one page,
                // demoting three frames. Reads through the window hit SSD
                // and promote back against the shrunk budget.
                read(0, 2),
                read(0, 3),
                read(0, 0),
                read(1, 0),
                // Window expired: full budget back, publishes resume.
                read(1, 1),
                read(1, 2),
                read(0, 2),
            ],
            faults: vec![FaultEvent {
                at: 6,
                fault: Fault::MemPressure {
                    bytes: page,
                    ops: 4,
                },
            }],
        };
        let a = run_scenario(&sc);
        assert!(
            a.ok(),
            "violations: {:?}\ntrace: {:#?}",
            a.violations,
            a.trace
        );
        assert!(
            epoch_counter(&a.trace, "mem.publishes") >= 4,
            "publishes missing: {:#?}",
            a.trace
        );
        assert!(
            epoch_counter(&a.trace, "mem.demotions") >= 3,
            "the pressure window must demote: {:#?}",
            a.trace
        );
        assert!(
            epoch_counter(&a.trace, "mem.promotions") >= 1,
            "SSD hits behind the window must promote: {:#?}",
            a.trace
        );
        assert_eq!(
            epoch_counter(&a.trace, "mem.evictions"),
            0,
            "pressure must demote, never drop: {:#?}",
            a.trace
        );
        let b = run_scenario(&sc);
        assert_eq!(a.trace, b.trace, "three-tier scenario diverged");
        assert_eq!(a.final_metrics_json, b.final_metrics_json);
        assert_eq!(a.span_records, b.span_records, "spans diverged");
    }

    #[test]
    fn memory_tier_torture_seeds_stay_conserved() {
        // Generated tiered seeds: every one carries 1-2 pressure windows,
        // and the three-tier conservation oracle runs after every op.
        // Torture seeds add crash restarts (DRAM recovers empty) on top.
        let mut ran = 0usize;
        for seed in 0..48u64 {
            let sc = Scenario::generate(seed, Profile::Torture);
            if sc.memory_capacity.is_none() {
                continue;
            }
            assert!(
                sc.faults
                    .iter()
                    .any(|f| matches!(f.fault, Fault::MemPressure { .. })),
                "seed {seed}: tiered scenario without a pressure window"
            );
            let a = run_scenario(&sc);
            assert!(a.ok(), "seed {seed} violations: {:?}", a.violations);
            let b = run_scenario(&sc);
            assert_eq!(a.trace, b.trace, "seed {seed} diverged");
            ran += 1;
            if ran == 4 {
                break;
            }
        }
        assert!(ran >= 2, "too few tiered Torture seeds in 0..48: {ran}");
    }

    #[test]
    fn torture_seed_with_crashes_recovers() {
        // An odd seed on the torture profile: Local backend, crash points
        // armed. The run must stay oracle-clean through restarts.
        let sc = Scenario::generate(9, Profile::Torture);
        assert_eq!(sc.backend, Backend::Local);
        let report = run_scenario(&sc);
        assert!(report.ok(), "violations: {:?}", report.violations);
    }
}
