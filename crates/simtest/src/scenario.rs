//! Seeded scenario generation: a single `u64` seed expands into a complete
//! torture scenario — stack shape, workload operations, and a layered fault
//! schedule — via the workspace's deterministic RNG and workload samplers.
//!
//! The expansion is a pure function of `(seed, profile)`, so a failing seed
//! printed by the harness is a complete reproducer. The shrinker
//! ([`crate::shrink`]) operates on the expanded [`Scenario`] (op and fault
//! lists), which `Debug`-renders as copy-pasteable Rust literals.

use edgecache_pagestore::CrashSite;
use edgecache_workload::fragread::FragmentedReadSampler;
use edgecache_workload::zipf::ZipfSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sweep profile: how hard the generated scenarios push the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Short runs, light fault schedule; bounded for tier-1 CI.
    Smoke,
    /// Long runs, dense faults, crash/restart cycles; for scheduled sweeps.
    Torture,
    /// Multi-tenant churn: every seed gets a table quota, a partition
    /// quota, and a `maxCachedPartitions` cap, so quota eviction and
    /// admission-slot recycling run constantly. Direct topology only (the
    /// tier does not own scopes), crash/restart cycles on Local backends.
    Quota,
    /// Cluster membership churn: every seed runs the Tier topology with
    /// replicate-on-read, and the fault schedule is dominated by node
    /// stall/crash/join/degrade windows. The tier oracles run after every
    /// op: reads never fail while origin is healthy, a fully healthy
    /// cluster serves every read from a worker, and every read lands in
    /// exactly one outcome bucket.
    Cluster,
    /// Query-fragment result-cache coherence: every seed drives two OLAP
    /// engines sharing one catalog/store/clock — one with the result cache
    /// on, one shadow with it off — through a repeated-query mix
    /// interleaved with appends, rewrites, and partition drops. Oracles:
    /// rows are bit-identical between the engines after every query, the
    /// per-query split accounting partitions exactly, the scheduler's
    /// assignment counter reconciles at the end, and the cache's internal
    /// ledger stays consistent.
    Resultcache,
}

impl Profile {
    /// Parses `"smoke"` / `"torture"` / `"quota"` / `"cluster"` /
    /// `"resultcache"`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "smoke" => Some(Profile::Smoke),
            "torture" => Some(Profile::Torture),
            "quota" => Some(Profile::Quota),
            "cluster" => Some(Profile::Cluster),
            "resultcache" => Some(Profile::Resultcache),
            _ => None,
        }
    }
}

/// Which page-store backend the scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// `FaultyStore<MemoryPageStore>` — fast, supports §8 store faults.
    Memory,
    /// `FaultyStore<LocalPageStore>` on a scratch directory — real on-disk
    /// layout, checksum trailers, crash points, and restart recovery.
    Local,
}

/// Which stack the workload drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// One `CacheManager` reading through the simulated remote.
    Direct,
    /// A `DistCacheTier` (consistent ring of cache workers) over the
    /// simulated remote, with worker outages in the op stream.
    Tier,
}

/// One workload operation. Ops execute sequentially on the harness thread;
/// all concurrency lives inside the cache's own fetch pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Read `len` bytes at `offset` of file `file` through the cache.
    Read { file: u32, offset: u64, len: u64 },
    /// Read several `(offset, len)` fragments of file `file` as one
    /// vectored cache call: misses across all fragments classify,
    /// coalesce, and fetch together. Fragments may overlap or repeat —
    /// the vectored path must serve each one independently.
    ReadMulti { file: u32, ranges: Vec<(u64, u64)> },
    /// Drop every cached page of file `file` (coordinated invalidation).
    DeleteFile { file: u32 },
    /// Purge file `file`'s whole partition scope through the cache manager
    /// (the operator purge path; exercises scope-exit slot release).
    PurgeScope { file: u32 },
    /// Advance the simulated clock (lets TTLs expire, stalls pass).
    AdvanceClock { millis: u64 },
    /// Run the TTL janitor's sweep once.
    EvictExpired,
    /// Kill the process mid-run and restart over the same directory
    /// (Local backend only; a no-op restart elsewhere).
    CrashRestart,
    /// Take a tier worker offline (Tier topology only).
    WorkerOffline { idx: u32 },
    /// Bring a tier worker back online (Tier topology only).
    WorkerOnline { idx: u32 },
    /// Run OLAP query shape `q` on the cached engine and the uncached
    /// shadow, comparing rows bit-for-bit (Resultcache profile only).
    OlapQuery { q: u8 },
    /// Append a fresh data file to a live fact partition.
    OlapAppend { p: u8 },
    /// Rewrite the first file of a live fact partition under a bumped
    /// version (compaction).
    OlapRewrite { p: u8 },
    /// Drop a live fact partition (skipped when only one remains).
    OlapDrop { p: u8 },
}

/// One fault, injected at an op boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Mark a cached page corrupt (checksum failure on next read).
    CorruptPage { file: u32, page: u64 },
    /// Shrink the simulated device capacity (puts fail with `NoSpace`).
    DeviceCapacity { bytes: u64 },
    /// Every `period`-th store read hangs for `millis` of virtual time.
    ReadHang { millis: u64, period: u64 },
    /// Remote requests fail with probability `percent`% for the next `ops`
    /// operations (decided per request content, so retries are stable).
    RemoteErrors { percent: u8, ops: u32 },
    /// Remote requests return truncated buffers with probability
    /// `percent`% for the next `ops` operations.
    RemoteShortReads { percent: u8, ops: u32 },
    /// Degrade the remote device model by `factor` for `millis` of virtual
    /// time (a `StallSchedule` window).
    RemoteStall { millis: u64, factor: u32 },
    /// Arm a crash point: the `skip`+1-th matching store operation leaves
    /// its half-effect on disk and fails as a process death.
    ArmCrash { site: CrashSite, skip: u64 },
    /// Shrink the DRAM tier to `bytes` for the next `ops` operations, then
    /// restore the scenario's configured memory capacity. Pressure must
    /// *demote* resident frames to SSD, never drop them — the three-tier
    /// conservation oracle holds throughout the window.
    MemPressure { bytes: u64, ops: u32 },
    /// Tier worker `idx` goes offline for the next `ops` operations, then
    /// returns (container bounce: its seat and data survive the lazy
    /// window). Tier topology only.
    NodeStall { idx: u32, ops: u32 },
    /// Tier worker `idx` crashes: its cached data is lost and its ring seat
    /// drops with no grace period; it rejoins cold after `restart_ops`
    /// operations. Tier topology only.
    NodeCrash { idx: u32, restart_ops: u32 },
    /// A brand-new worker (`idx` picks its name) joins the ring and warms
    /// lazily. Tier topology only.
    NodeJoin { idx: u32 },
    /// Tier worker `idx` stays online but errors every serve for the next
    /// `ops` operations (bad disk / wedged fetch path) — reads must fail
    /// over to the surviving replica or origin. Tier topology only.
    NodeDegraded { idx: u32, ops: u32 },
}

/// A fault scheduled before op index `at` (clamped to the op count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    pub at: usize,
    pub fault: Fault,
}

/// A fully expanded scenario: everything [`crate::runner::run_scenario`]
/// needs, with no residual randomness.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub seed: u64,
    pub profile: Profile,
    pub backend: Backend,
    pub topology: Topology,
    /// Cache page size in bytes.
    pub page_size: u64,
    /// Local cache capacity in bytes.
    pub cache_capacity: u64,
    /// Number of distinct remote files.
    pub files: u32,
    /// Length of each remote file in bytes.
    pub file_len: u64,
    /// Optional per-table quota in bytes (applied to table `t0`).
    pub quota: Option<u64>,
    /// Optional per-partition quota in bytes (applied to file 0's partition
    /// `p0`, nested under the `t0` table quota when both are set).
    pub partition_quota: Option<u64>,
    /// Optional `maxCachedPartitions` cap applied to every table (a
    /// `schema: sim, table: *` filter rule). Admission slots must recycle
    /// through every exit path for fresh partitions to keep caching.
    pub max_cached_partitions: Option<usize>,
    /// Optional DRAM tier capacity in bytes mounted above the SSD store
    /// (Direct topology only). `None` runs the classic two-level
    /// SSD → remote hierarchy; `Some` makes every read three-level and
    /// arms the cross-tier conservation oracles.
    pub memory_capacity: Option<u64>,
    /// After this many remote reads, the simulated remote starts returning
    /// a flipped byte — a deliberately planted bug that the byte-correctness
    /// oracle must catch (meta-test of the oracle + shrinker).
    pub sabotage_after: Option<u64>,
    pub ops: Vec<Op>,
    pub faults: Vec<FaultEvent>,
}

impl Scenario {
    /// Expands `(seed, profile)` into a scenario. Pure and deterministic.
    pub fn generate(seed: u64, profile: Profile) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x051b_7e57_0001);
        Self::generate_with(seed, profile, &mut rng)
    }

    fn generate_with(seed: u64, profile: Profile, rng: &mut StdRng) -> Self {
        if profile == Profile::Resultcache {
            return Self::generate_resultcache(seed, rng);
        }
        let page_size: u64 = *[2048u64, 4096, 8192]
            .get(rng.random_range(0usize..3))
            .unwrap();
        let pages_per_file: u64 = rng.random_range(8u64..=32);
        let file_len = page_size * pages_per_file - rng.random_range(0u64..page_size / 2);
        let files: u32 = rng.random_range(3u32..=8);
        // Capacity below the working set about half the time, so capacity
        // eviction is exercised; never below four pages.
        let total_pages = pages_per_file * files as u64;
        let cap_pages = rng.random_range((total_pages / 4).max(4)..=total_pages + 8);
        let cache_capacity = cap_pages * page_size;
        let quota = if profile == Profile::Quota {
            Some(rng.random_range(4u64..=8) * page_size)
        } else {
            rng.random_bool(0.5)
                .then(|| rng.random_range(3u64..=8) * page_size)
        };
        // A partition quota nested under the table quota, and an admission
        // cap over distinct partitions: always on for the Quota profile,
        // sampled in for the others so tier-1 sweeps cover them too.
        let partition_quota = if profile == Profile::Quota {
            Some(rng.random_range(2u64..=4) * page_size)
        } else {
            rng.random_bool(0.25)
                .then(|| rng.random_range(2u64..=4) * page_size)
        };
        let max_cached_partitions = if profile == Profile::Quota {
            Some(rng.random_range(1usize..=3))
        } else {
            rng.random_bool(0.4).then(|| rng.random_range(1usize..=3))
        };

        let backend = if seed % 2 == 1 {
            Backend::Local
        } else {
            Backend::Memory
        };
        let topology = if profile == Profile::Cluster
            || (!matches!(profile, Profile::Quota) && seed % 7 == 3)
        {
            Topology::Tier
        } else {
            Topology::Direct
        };
        // Mount a DRAM tier above the SSD store for most Direct seeds
        // (the Tier topology builds its own managers): between two pages
        // and half the SSD capacity, so promotion/demotion churn is
        // constant rather than a corner case.
        let memory_capacity = (topology == Topology::Direct && rng.random_bool(0.7))
            .then(|| rng.random_range(2u64..=(cap_pages / 2).max(2)) * page_size);

        let op_count = match profile {
            Profile::Smoke => 60,
            Profile::Torture => 400,
            Profile::Quota => 120,
            Profile::Cluster => 200,
            Profile::Resultcache => unreachable!("expanded by generate_resultcache"),
        };
        let ops = Self::gen_ops(
            rng, seed, profile, backend, topology, files, file_len, op_count,
        );
        let faults = Self::gen_faults(
            rng,
            profile,
            backend,
            topology,
            files,
            file_len / page_size,
            cache_capacity,
            memory_capacity,
            op_count,
        );

        Scenario {
            seed,
            profile,
            backend,
            topology,
            page_size,
            cache_capacity,
            files,
            file_len,
            quota,
            partition_quota,
            max_cached_partitions,
            memory_capacity,
            sabotage_after: None,
            ops,
            faults,
        }
    }

    /// Expands a Resultcache-profile scenario: a repeated-query mix (the
    /// dashboard shape from `edgecache_workload::repeatq`) interleaved with
    /// catalog churn. The runner owns its own OLAP stack, so the page-store
    /// fields are fixed and the fault schedule is empty.
    fn generate_resultcache(seed: u64, rng: &mut StdRng) -> Self {
        use edgecache_workload::repeatq::{BurstConfig, RepeatedQueryConfig, RepeatedQueryMix};
        let op_count = 120;
        let mut mix = RepeatedQueryMix::new(RepeatedQueryConfig {
            pool: 8,
            working_set: 5,
            rotate_every: 25,
            rotate_step: 1,
            zipf_exponent: 1.2,
            burst: Some(BurstConfig {
                every: 40,
                len: 10,
                hot_fraction: 0.9,
            }),
            seed: seed ^ 0x01a9,
        });
        let mut ops = Vec::with_capacity(op_count);
        for _ in 0..op_count {
            let roll: f64 = rng.random();
            let op = if roll < 0.70 {
                Op::OlapQuery {
                    q: mix.next_query() as u8,
                }
            } else if roll < 0.80 {
                Op::OlapAppend {
                    p: rng.random_range(0u8..4),
                }
            } else if roll < 0.88 {
                Op::OlapRewrite {
                    p: rng.random_range(0u8..4),
                }
            } else if roll < 0.93 {
                Op::OlapDrop {
                    p: rng.random_range(0u8..4),
                }
            } else {
                Op::AdvanceClock {
                    millis: rng.random_range(50u64..5_000),
                }
            };
            ops.push(op);
        }
        Scenario {
            seed,
            profile: Profile::Resultcache,
            backend: Backend::Memory,
            topology: Topology::Direct,
            page_size: 1024,
            cache_capacity: 64 * 1024 * 1024,
            files: 0,
            file_len: 0,
            quota: None,
            partition_quota: None,
            max_cached_partitions: None,
            memory_capacity: None,
            sabotage_after: None,
            ops,
            faults: Vec::new(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn gen_ops(
        rng: &mut StdRng,
        seed: u64,
        profile: Profile,
        backend: Backend,
        topology: Topology,
        files: u32,
        file_len: u64,
        op_count: usize,
    ) -> Vec<Op> {
        // Zipf-popular files, fragmented read sizes: the paper's workload
        // shape (§3), driven by the workload crate's samplers.
        let mut zipf = ZipfSampler::new(files as usize, 1.1, seed ^ 0xf11e);
        let mut frag = FragmentedReadSampler::paper_default(seed ^ 0xf7a6);
        let mut ops = Vec::with_capacity(op_count);
        for _ in 0..op_count {
            let roll: f64 = rng.random();
            let op = if roll < 0.62 {
                let file = zipf.sample() as u32;
                let len = frag.sample().clamp(1, file_len);
                let offset = rng.random_range(0..file_len);
                Op::Read { file, offset, len }
            } else if roll < 0.80 {
                // The vectored scan-path shape: a batch of fragments of one
                // popular file read as a single `read_multi` call.
                let file = zipf.sample() as u32;
                let count = rng.random_range(2usize..=6);
                let ranges = (0..count)
                    .map(|_| {
                        let len = frag.sample().clamp(1, file_len);
                        (rng.random_range(0..file_len), len)
                    })
                    .collect();
                Op::ReadMulti { file, ranges }
            } else if roll < 0.83 {
                Op::DeleteFile {
                    file: rng.random_range(0..files),
                }
            } else if roll < 0.86 {
                Op::PurgeScope {
                    file: rng.random_range(0..files),
                }
            } else if roll < 0.92 {
                Op::AdvanceClock {
                    millis: rng.random_range(50u64..20_000),
                }
            } else if roll < 0.96 {
                Op::EvictExpired
            } else if topology == Topology::Tier {
                let idx = rng.random_range(0u32..Self::tier_workers(profile) as u32);
                if rng.random_bool(0.5) {
                    Op::WorkerOffline { idx }
                } else {
                    Op::WorkerOnline { idx }
                }
            } else if matches!(profile, Profile::Torture | Profile::Quota)
                && backend == Backend::Local
            {
                Op::CrashRestart
            } else {
                Op::EvictExpired
            };
            ops.push(op);
        }
        ops
    }

    #[allow(clippy::too_many_arguments)]
    fn gen_faults(
        rng: &mut StdRng,
        profile: Profile,
        backend: Backend,
        topology: Topology,
        files: u32,
        pages_per_file: u64,
        cache_capacity: u64,
        memory_capacity: Option<u64>,
        op_count: usize,
    ) -> Vec<FaultEvent> {
        let fault_count = match profile {
            Profile::Smoke => rng.random_range(2usize..=4),
            Profile::Torture => rng.random_range(8usize..=16),
            Profile::Quota => rng.random_range(4usize..=8),
            Profile::Cluster => rng.random_range(6usize..=12),
            Profile::Resultcache => unreachable!("expanded by generate_resultcache"),
        };
        let workers = Self::tier_workers(profile) as u32;
        let mut faults = Vec::with_capacity(fault_count);
        for _ in 0..fault_count {
            let at = rng.random_range(0..op_count);
            // Cluster seeds lead with membership churn: stall, crash,
            // join, and degrade windows, with remote-level faults mixed in
            // so origin outages overlap node outages.
            if profile == Profile::Cluster && rng.random_bool(0.65) {
                let fault = match rng.random_range(0u32..100) {
                    0..=34 => Fault::NodeStall {
                        idx: rng.random_range(0..workers),
                        ops: rng.random_range(3u32..=20),
                    },
                    35..=59 => Fault::NodeCrash {
                        idx: rng.random_range(0..workers),
                        restart_ops: rng.random_range(5u32..=25),
                    },
                    60..=74 => Fault::NodeJoin {
                        idx: rng.random_range(0u32..3),
                    },
                    _ => Fault::NodeDegraded {
                        idx: rng.random_range(0..workers),
                        ops: rng.random_range(3u32..=15),
                    },
                };
                faults.push(FaultEvent { at, fault });
                continue;
            }
            let fault = match rng.random_range(0u32..100) {
                // Remote-level faults apply to every topology.
                0..=24 => Fault::RemoteErrors {
                    percent: rng.random_range(10u8..=60),
                    ops: rng.random_range(3u32..=10),
                },
                25..=39 => Fault::RemoteShortReads {
                    percent: rng.random_range(10u8..=50),
                    ops: rng.random_range(3u32..=10),
                },
                40..=59 => Fault::RemoteStall {
                    millis: rng.random_range(1_000u64..=60_000),
                    factor: rng.random_range(2u32..=20),
                },
                // Store-level faults only make sense on the Direct stack,
                // where the harness owns the page store.
                60..=74 if topology == Topology::Direct => Fault::CorruptPage {
                    file: rng.random_range(0..files),
                    page: rng.random_range(0..pages_per_file),
                },
                75..=84 if topology == Topology::Direct => Fault::DeviceCapacity {
                    bytes: rng.random_range(cache_capacity / 4..=cache_capacity),
                },
                85..=94 if topology == Topology::Direct => Fault::ReadHang {
                    millis: rng.random_range(100u64..=600_000),
                    period: rng.random_range(1u64..=5),
                },
                _ if backend == Backend::Local
                    && topology == Topology::Direct
                    && matches!(profile, Profile::Torture | Profile::Quota) =>
                {
                    let site = match rng.random_range(0u32..3) {
                        0 => CrashSite::PutTmpWritten,
                        1 => CrashSite::PutTornTail,
                        _ => CrashSite::DeleteTornTail,
                    };
                    Fault::ArmCrash {
                        site,
                        skip: rng.random_range(0u64..4),
                    }
                }
                _ => Fault::RemoteStall {
                    millis: rng.random_range(1_000u64..=60_000),
                    factor: rng.random_range(2u32..=20),
                },
            };
            faults.push(FaultEvent { at, fault });
        }
        if let Some(mem_cap) = memory_capacity {
            // Every seed with a DRAM tier gets memory-pressure windows:
            // shrink the tier hard for a stretch of ops, then restore. The
            // runner drives `set_memory_capacity`, and the three-tier
            // conservation oracles must hold throughout.
            for _ in 0..rng.random_range(1usize..=2) {
                let at = rng.random_range(0..op_count);
                faults.push(FaultEvent {
                    at,
                    fault: Fault::MemPressure {
                        bytes: rng.random_range(0..=mem_cap / 2),
                        ops: rng.random_range(3u32..=12),
                    },
                });
            }
        }
        faults.sort_by_key(|f| f.at);
        faults
    }

    /// Remote path of file index `i`.
    pub fn path_of(file: u32) -> String {
        format!("/sim/f{file}")
    }

    /// Initial worker count of the Tier topology for `profile` (the runner
    /// names them `cw0..cwN`; joined workers continue the sequence).
    pub fn tier_workers(profile: Profile) -> usize {
        match profile {
            Profile::Cluster => 4,
            _ => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..20 {
            let a = Scenario::generate(seed, Profile::Smoke);
            let b = Scenario::generate(seed, Profile::Smoke);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
        }
    }

    #[test]
    fn profiles_differ_in_scale() {
        let smoke = Scenario::generate(7, Profile::Smoke);
        let torture = Scenario::generate(7, Profile::Torture);
        assert!(torture.ops.len() > smoke.ops.len() * 3);
        assert!(torture.faults.len() >= smoke.faults.len());
    }

    #[test]
    fn seeds_cover_both_backends_and_topologies() {
        let mut memory = 0;
        let mut local = 0;
        let mut tier = 0;
        for seed in 0..32 {
            let s = Scenario::generate(seed, Profile::Torture);
            match s.backend {
                Backend::Memory => memory += 1,
                Backend::Local => local += 1,
            }
            if s.topology == Topology::Tier {
                tier += 1;
            }
        }
        assert!(memory > 0 && local > 0 && tier > 0);
    }

    #[test]
    fn vectored_reads_ride_the_op_stream() {
        let mut batches = 0usize;
        for seed in 0..8 {
            let s = Scenario::generate(seed, Profile::Smoke);
            for op in &s.ops {
                if let Op::ReadMulti { file, ranges } = op {
                    batches += 1;
                    assert!(*file < s.files);
                    assert!((2..=6).contains(&ranges.len()), "{ranges:?}");
                    for &(offset, len) in ranges {
                        assert!(offset < s.file_len);
                        assert!(len >= 1);
                    }
                }
            }
        }
        assert!(batches > 0, "the generator must emit vectored batches");
    }

    #[test]
    fn quota_profile_always_constrains_tenancy() {
        for seed in 0..16 {
            let s = Scenario::generate(seed, Profile::Quota);
            assert_eq!(s.topology, Topology::Direct, "seed {seed}");
            assert!(s.quota.is_some(), "seed {seed} lacks a table quota");
            assert!(
                s.partition_quota.is_some(),
                "seed {seed} lacks a partition quota"
            );
            assert!(
                s.max_cached_partitions.is_some(),
                "seed {seed} lacks an admission cap"
            );
            assert!(
                s.ops
                    .iter()
                    .any(|op| matches!(op, Op::PurgeScope { .. } | Op::DeleteFile { .. })),
                "seed {seed} has no churn ops"
            );
        }
    }

    #[test]
    fn memory_tiers_ride_most_direct_seeds_with_pressure_windows() {
        let mut tiered = 0;
        let mut flat = 0;
        for seed in 0..32 {
            let s = Scenario::generate(seed, Profile::Torture);
            match s.memory_capacity {
                Some(cap) => {
                    tiered += 1;
                    assert_eq!(s.topology, Topology::Direct, "seed {seed}");
                    assert!(cap >= 2 * s.page_size, "seed {seed}: tier below two pages");
                    assert!(
                        s.faults
                            .iter()
                            .any(|f| matches!(f.fault, Fault::MemPressure { .. })),
                        "seed {seed}: tiered scenario lacks a pressure window"
                    );
                    for f in &s.faults {
                        if let Fault::MemPressure { bytes, ops } = f.fault {
                            assert!(bytes <= cap / 2, "seed {seed}: pressure must shrink");
                            assert!(ops >= 1);
                        }
                    }
                }
                None => {
                    flat += 1;
                    assert!(
                        !s.faults
                            .iter()
                            .any(|f| matches!(f.fault, Fault::MemPressure { .. })),
                        "seed {seed}: pressure window without a tier"
                    );
                }
            }
        }
        assert!(tiered > 0, "no seed mounted a DRAM tier");
        assert!(flat > 0, "no seed kept the two-level hierarchy");
    }

    #[test]
    fn cluster_profile_always_churns_the_tier() {
        let mut stalls = 0;
        let mut crashes = 0;
        let mut joins = 0;
        let mut degrades = 0;
        for seed in 0..16 {
            let s = Scenario::generate(seed, Profile::Cluster);
            assert_eq!(s.topology, Topology::Tier, "seed {seed}");
            let node_faults = s
                .faults
                .iter()
                .filter(|f| {
                    matches!(
                        f.fault,
                        Fault::NodeStall { .. }
                            | Fault::NodeCrash { .. }
                            | Fault::NodeJoin { .. }
                            | Fault::NodeDegraded { .. }
                    )
                })
                .count();
            assert!(node_faults > 0, "seed {seed} has no membership churn");
            for f in &s.faults {
                match f.fault {
                    Fault::NodeStall { idx, ops } => {
                        stalls += 1;
                        assert!(idx < 4 && ops >= 1);
                    }
                    Fault::NodeCrash { idx, restart_ops } => {
                        crashes += 1;
                        assert!(idx < 4 && restart_ops >= 1);
                    }
                    Fault::NodeJoin { .. } => joins += 1,
                    Fault::NodeDegraded { idx, ops } => {
                        degrades += 1;
                        assert!(idx < 4 && ops >= 1);
                    }
                    _ => {}
                }
            }
        }
        assert!(
            stalls > 0 && crashes > 0 && joins > 0 && degrades > 0,
            "16 seeds must cover every churn kind: \
             stalls={stalls} crashes={crashes} joins={joins} degrades={degrades}"
        );
    }

    #[test]
    fn node_faults_never_ride_non_cluster_profiles() {
        for profile in [Profile::Smoke, Profile::Torture, Profile::Quota] {
            for seed in 0..12 {
                let s = Scenario::generate(seed, profile);
                assert!(
                    !s.faults.iter().any(|f| matches!(
                        f.fault,
                        Fault::NodeStall { .. }
                            | Fault::NodeCrash { .. }
                            | Fault::NodeJoin { .. }
                            | Fault::NodeDegraded { .. }
                    )),
                    "{profile:?} seed {seed} generated a node fault"
                );
            }
        }
    }

    #[test]
    fn resultcache_profile_mixes_repeats_with_churn() {
        for seed in 0..16 {
            let s = Scenario::generate(seed, Profile::Resultcache);
            assert!(s.faults.is_empty(), "seed {seed}: runner owns its stack");
            assert_eq!(s.ops.len(), 120);
            let queries = s
                .ops
                .iter()
                .filter(|op| matches!(op, Op::OlapQuery { .. }))
                .count();
            let churn = s
                .ops
                .iter()
                .filter(|op| {
                    matches!(
                        op,
                        Op::OlapAppend { .. } | Op::OlapRewrite { .. } | Op::OlapDrop { .. }
                    )
                })
                .count();
            assert!(queries > s.ops.len() / 2, "seed {seed}: queries dominate");
            assert!(churn > 0, "seed {seed}: no churn");
            for op in &s.ops {
                if let Op::OlapQuery { q } = op {
                    assert!(*q < 8, "seed {seed}: query shape out of pool");
                }
            }
            // Repeats exist: far fewer distinct shapes than query draws.
            let distinct: std::collections::HashSet<u8> = s
                .ops
                .iter()
                .filter_map(|op| match op {
                    Op::OlapQuery { q } => Some(*q),
                    _ => None,
                })
                .collect();
            assert!(distinct.len() <= 8 && queries > distinct.len() * 2);
        }
        // Determinism of the expansion.
        let a = Scenario::generate(3, Profile::Resultcache);
        let b = Scenario::generate(3, Profile::Resultcache);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn olap_ops_never_ride_other_profiles() {
        for profile in [
            Profile::Smoke,
            Profile::Torture,
            Profile::Quota,
            Profile::Cluster,
        ] {
            for seed in 0..8 {
                let s = Scenario::generate(seed, profile);
                assert!(
                    !s.ops.iter().any(|op| matches!(
                        op,
                        Op::OlapQuery { .. }
                            | Op::OlapAppend { .. }
                            | Op::OlapRewrite { .. }
                            | Op::OlapDrop { .. }
                    )),
                    "{profile:?} seed {seed} generated an OLAP op"
                );
            }
        }
    }

    #[test]
    fn faults_arrive_sorted_and_in_range() {
        let s = Scenario::generate(11, Profile::Torture);
        let mut last = 0;
        for f in &s.faults {
            assert!(f.at >= last);
            assert!(f.at < s.ops.len());
            last = f.at;
        }
    }
}
