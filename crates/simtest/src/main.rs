//! The `simtest` binary: seeded simulation sweeps over the full cache stack.
//!
//! ```text
//! simtest [--seed X | --seeds N] [--start S]
//!         [--profile smoke|torture|quota|cluster|resultcache]
//!         [--shrink-budget R] [--trace-dump PATH] [--verbose]
//! ```
//!
//! Each seed expands into a deterministic scenario (workload + layered fault
//! schedule), runs twice to assert trace-level determinism, and is checked
//! against the invariant oracles. Any violation is shrunk to a minimal
//! reproducer and printed as a ready-to-paste Rust test. Exit code 0 means
//! every seed passed.

use std::process::ExitCode;

use edgecache_simtest::scenario::{Profile, Scenario};
use edgecache_simtest::shrink::{render_repro, shrink};
use edgecache_simtest::{run_scenario, RunReport};

struct Args {
    seeds: Vec<u64>,
    profile: Profile,
    shrink_budget: usize,
    trace_dump: Option<String>,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut seed: Option<u64> = None;
    let mut count: u64 = 16;
    let mut start: u64 = 0;
    let mut profile = Profile::Smoke;
    let mut shrink_budget = 300usize;
    let mut trace_dump: Option<String> = None;
    let mut verbose = false;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--seed" => {
                seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--seeds" => {
                count = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--start" => {
                start = value("--start")?
                    .parse()
                    .map_err(|e| format!("--start: {e}"))?
            }
            "--profile" => {
                let v = value("--profile")?;
                profile = Profile::parse(&v).ok_or(format!("unknown profile {v:?}"))?;
            }
            "--shrink-budget" => {
                shrink_budget = value("--shrink-budget")?
                    .parse()
                    .map_err(|e| format!("--shrink-budget: {e}"))?;
            }
            "--trace-dump" => trace_dump = Some(value("--trace-dump")?),
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => {
                println!(
                    "usage: simtest [--seed X | --seeds N] [--start S] \
                     [--profile smoke|torture|quota|cluster|resultcache] [--shrink-budget R] \
                     [--trace-dump PATH] [--verbose]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let seeds = match seed {
        Some(s) => vec![s],
        None => (start..start + count).collect(),
    };
    Ok(Args {
        seeds,
        profile,
        shrink_budget,
        trace_dump,
        verbose,
    })
}

fn describe(sc: &Scenario) -> String {
    format!(
        "{:?}/{:?} page={}B cap={}KiB files={} ops={} faults={}",
        sc.backend,
        sc.topology,
        sc.page_size,
        sc.cache_capacity / 1024,
        sc.files,
        sc.ops.len(),
        sc.faults.len()
    )
}

fn report_failure(sc: &Scenario, report: &RunReport, budget: usize) {
    eprintln!(
        "seed {} FAILED with {} violation(s):",
        sc.seed,
        report.violations.len()
    );
    for v in &report.violations {
        eprintln!("  {v}");
    }
    eprintln!("shrinking (budget {budget} runs)...");
    let result = shrink(sc, budget);
    eprintln!(
        "shrunk: ops {} -> {}, faults {} -> {} in {} runs",
        result.ops.0, result.ops.1, result.faults.0, result.faults.1, result.runs
    );
    eprintln!("--- reproducer (seed {}) ---", sc.seed);
    eprintln!("{}", render_repro(&result.scenario));
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simtest: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failed = 0usize;
    let mut trace_dumped = false;
    for &seed in &args.seeds {
        let sc = Scenario::generate(seed, args.profile);
        let report = run_scenario(&sc);
        let replay = run_scenario(&sc);

        // The first seed's first run is the dump: one seed, one trace file.
        if let Some(path) = args.trace_dump.as_deref().filter(|_| !trace_dumped) {
            trace_dumped = true;
            match std::fs::write(path, report.chrome_trace_json()) {
                Ok(()) => println!(
                    "seed {seed}: wrote {} span(s) to {path} (chrome://tracing format)",
                    report.span_records.len()
                ),
                Err(e) => {
                    eprintln!("simtest: --trace-dump {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }

        let deterministic = report.trace_hash == replay.trace_hash
            && report.final_metrics_json == replay.final_metrics_json;
        if !deterministic {
            failed += 1;
            eprintln!("seed {seed} NONDETERMINISTIC: traces diverge across identical runs");
            for (a, b) in report.trace.iter().zip(replay.trace.iter()) {
                if a != b {
                    eprintln!("  first divergence:\n  run1: {a}\n  run2: {b}");
                    break;
                }
            }
            continue;
        }

        if report.ok() {
            println!(
                "seed {seed:>4} OK   [{}] epochs={} crashes={} trace={:016x}",
                describe(&sc),
                report.epochs,
                report.crashes,
                report.trace_hash
            );
            if args.verbose {
                for line in &report.trace {
                    println!("    {line}");
                }
            }
        } else {
            failed += 1;
            report_failure(&sc, &report, args.shrink_budget);
        }
    }

    if failed > 0 {
        eprintln!("{failed} of {} seed(s) failed", args.seeds.len());
        ExitCode::FAILURE
    } else {
        println!("{} seed(s) passed", args.seeds.len());
        ExitCode::SUCCESS
    }
}
