//! Failure minimization: shrink a violating scenario to a minimal
//! reproducer.
//!
//! A ddmin-style pass over the two lists that define a scenario — the fault
//! schedule and the op sequence — repeatedly removes chunks (halves, then
//! quarters, down to single elements) and keeps any candidate that still
//! violates an oracle. Because runs are deterministic, "still fails" is a
//! pure predicate and the loop converges; a run budget bounds worst-case
//! work. The result renders as a copy-pasteable Rust test via
//! [`render_repro`].

use crate::runner::run_scenario;
use crate::scenario::Scenario;

/// Outcome of a shrink: the smallest still-failing scenario found, plus
/// bookkeeping about the effort spent.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    pub scenario: Scenario,
    /// Scenario runs consumed.
    pub runs: usize,
    /// Op count before → after.
    pub ops: (usize, usize),
    /// Fault count before → after.
    pub faults: (usize, usize),
}

/// Shrinks `scenario` (which must already violate an oracle) to a smaller
/// reproducer, spending at most `max_runs` scenario executions.
pub fn shrink(scenario: &Scenario, max_runs: usize) -> ShrinkResult {
    let mut best = scenario.clone();
    let mut runs = 0usize;

    let fails = |sc: &Scenario, runs: &mut usize| -> bool {
        *runs += 1;
        !run_scenario(sc).violations.is_empty()
    };

    // Fixpoint loop: alternate fault-shrinking and op-shrinking until a full
    // round removes nothing (or the budget runs out).
    loop {
        let before = (best.ops.len(), best.faults.len());

        // Shrink the fault schedule first: faults are few and removing one
        // often makes many ops removable.
        let mut chunk = best.faults.len().max(1);
        while chunk >= 1 && runs < max_runs {
            let mut start = 0;
            while start < best.faults.len() && runs < max_runs {
                let mut candidate = best.clone();
                let end = (start + chunk).min(candidate.faults.len());
                candidate.faults.drain(start..end);
                if fails(&candidate, &mut runs) {
                    best = candidate;
                    // Same start now points at fresh elements.
                } else {
                    start = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Shrink the op sequence the same way.
        let mut chunk = (best.ops.len() / 2).max(1);
        while chunk >= 1 && runs < max_runs {
            let mut start = 0;
            while start < best.ops.len() && runs < max_runs {
                let mut candidate = best.clone();
                let end = (start + chunk).min(candidate.ops.len());
                candidate.ops.drain(start..end);
                // Fault `at` indices refer to op positions; pull forward any
                // that now point past the removed window so they still fire.
                let removed = end - start;
                for f in candidate.faults.iter_mut() {
                    if f.at >= end {
                        f.at -= removed;
                    } else if f.at > start {
                        f.at = start;
                    }
                }
                if fails(&candidate, &mut runs) {
                    best = candidate;
                } else {
                    start = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        if (best.ops.len(), best.faults.len()) == before || runs >= max_runs {
            break;
        }
    }

    ShrinkResult {
        ops: (scenario.ops.len(), best.ops.len()),
        faults: (scenario.faults.len(), best.faults.len()),
        scenario: best,
        runs,
    }
}

/// Renders a shrunk scenario as a ready-to-paste Rust test.
pub fn render_repro(sc: &Scenario) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "// Reproducer: seed {} ({:?} profile), {} ops / {} faults after shrinking.\n",
        sc.seed,
        sc.profile,
        sc.ops.len(),
        sc.faults.len()
    ));
    out.push_str("#[test]\nfn shrunk_reproducer() {\n");
    out.push_str("    use edgecache_simtest::scenario::{Backend, Fault, FaultEvent, Op, Profile, Scenario, Topology};\n");
    out.push_str("    use edgecache_simtest::runner::run_scenario;\n");
    out.push_str("    use edgecache_pagestore::CrashSite;\n");
    out.push_str("    use Op::*;\n");
    out.push_str("    use Fault::*;\n");
    out.push_str("    let scenario = Scenario {\n");
    out.push_str(&format!("        seed: {},\n", sc.seed));
    out.push_str(&format!("        profile: Profile::{:?},\n", sc.profile));
    out.push_str(&format!("        backend: Backend::{:?},\n", sc.backend));
    out.push_str(&format!("        topology: Topology::{:?},\n", sc.topology));
    out.push_str(&format!("        page_size: {},\n", sc.page_size));
    out.push_str(&format!("        cache_capacity: {},\n", sc.cache_capacity));
    out.push_str(&format!("        files: {},\n", sc.files));
    out.push_str(&format!("        file_len: {},\n", sc.file_len));
    out.push_str(&format!("        quota: {:?},\n", sc.quota));
    out.push_str(&format!(
        "        partition_quota: {:?},\n",
        sc.partition_quota
    ));
    out.push_str(&format!(
        "        max_cached_partitions: {:?},\n",
        sc.max_cached_partitions
    ));
    out.push_str(&format!(
        "        memory_capacity: {:?},\n",
        sc.memory_capacity
    ));
    out.push_str(&format!(
        "        sabotage_after: {:?},\n",
        sc.sabotage_after
    ));
    out.push_str("        ops: vec![\n");
    for op in &sc.ops {
        out.push_str(&format!("            {op:?},\n"));
    }
    out.push_str("        ],\n");
    out.push_str("        faults: vec![\n");
    for f in &sc.faults {
        out.push_str(&format!(
            "            FaultEvent {{ at: {}, fault: {:?} }},\n",
            f.at, f.fault
        ));
    }
    out.push_str("        ],\n");
    out.push_str("    };\n");
    out.push_str("    let report = run_scenario(&scenario);\n");
    out.push_str("    assert!(report.violations.is_empty(), \"{:#?}\", report.violations);\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Profile;

    #[test]
    fn shrinks_a_sabotaged_scenario() {
        let mut sc = Scenario::generate(0, Profile::Smoke);
        sc.sabotage_after = Some(3);
        let result = shrink(&sc, 200);
        assert!(
            !run_scenario(&result.scenario).violations.is_empty(),
            "shrunk scenario must still fail"
        );
        assert!(
            result.scenario.ops.len() < sc.ops.len(),
            "shrinking removed no ops ({} of {})",
            result.scenario.ops.len(),
            sc.ops.len()
        );
    }

    #[test]
    fn repro_names_the_seed_and_compiles_shapes() {
        use crate::scenario::Op;
        let mut sc = Scenario::generate(4, Profile::Smoke);
        sc.sabotage_after = Some(1);
        sc.ops = vec![
            Op::Read {
                file: 0,
                offset: 0,
                len: 64,
            },
            Op::PurgeScope { file: 0 },
        ];
        let repro = render_repro(&sc);
        assert!(repro.contains("seed: 4"), "{repro}");
        assert!(repro.contains("run_scenario"), "{repro}");
        assert!(repro.contains("Read {"), "{repro}");
        assert!(repro.contains("PurgeScope {"), "{repro}");
        assert!(repro.contains("max_cached_partitions:"), "{repro}");
    }
}
