//! Invariant oracles: what must hold no matter what the fault schedule did.
//!
//! Three families of checks (§8 of the paper is, at heart, a list of ways
//! these were violated in production):
//!
//! * **Byte correctness** — every completed read returns exactly the ground
//!   truth bytes of the simulated remote, whatever mixture of cache hits,
//!   coalesced fetches, fallbacks, and recoveries produced them. Checked
//!   per-op by the runner via [`check_read`].
//! * **Conservation laws** — linear relations between metric counter deltas
//!   ([`cache_epoch_laws`]) checked over each "process lifetime" (epoch).
//! * **Accounting** — the index, the store, the allocator, and the quota
//!   manager must agree: no negative/over-budget usage, no orphaned bytes,
//!   no in-flight latches left behind ([`check_accounting`]).

use std::collections::{BTreeSet, HashSet};

use bytes::Bytes;
use edgecache_core::admission::FilterRuleAdmission;
use edgecache_core::manager::CacheManager;
use edgecache_distcache::tier::TierStats;
use edgecache_metrics::ConservationLaw;
use edgecache_pagestore::CacheScope;

/// One oracle violation, tied to the op that exposed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index of the op during which the violation surfaced, if any.
    pub op: Option<usize>,
    /// Stable category, e.g. `byte-mismatch`, `conservation`, `quota`.
    pub kind: &'static str,
    /// Human-readable description with the values involved.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.op {
            Some(op) => write!(f, "[op {op}] {}: {}", self.kind, self.detail),
            None => write!(f, "[end] {}: {}", self.kind, self.detail),
        }
    }
}

/// The conservation laws of one cache epoch (one process lifetime, measured
/// on a registry that was fresh at epoch start).
///
/// `clean` means no read op returned an error this epoch: then every
/// classified page was fully served and the read balance is an equality.
/// A failed read legitimately abandons pages after they were counted in
/// `page_reads` (classification) but before they were served as a hit, so
/// epochs with errors only bound the balance from above.
pub fn cache_epoch_laws(clean: bool) -> Vec<ConservationLaw> {
    let mut laws = vec![
        ConservationLaw::at_most(
            "single-flight bounds remote requests",
            &["remote_requests"],
            &["misses", "fallbacks.timeout"],
        ),
        ConservationLaw::at_most("every put came from a miss", &["puts"], &["misses"]),
        ConservationLaw::at_most(
            "every eviction had an insertion",
            &["evictions.*"],
            &["puts", "recovered_pages"],
        ),
        ConservationLaw::at_most(
            "assembled bytes are bounded by requested bytes",
            &["bytes_copied"],
            &["bytes_requested"],
        ),
        ConservationLaw::at_most("hits are classified reads", &["hits"], &["page_reads"]),
        // Three-tier flow laws (all trivially 0 = 0 without a DRAM tier).
        // DRAM does not survive a restart, so within one epoch every
        // memory-resident frame entered via a publish or a promotion —
        // demotion can never outrun the entries.
        ConservationLaw::at_most(
            "every demotion had a memory entry",
            &["mem.demotions"],
            &["mem.publishes", "mem.promotions"],
        ),
        ConservationLaw::at_most(
            "every promotion was a served hit",
            &["mem.promotions"],
            &["hits"],
        ),
        ConservationLaw::at_most(
            "every memory publish is a put",
            &["mem.publishes"],
            &["puts"],
        ),
    ];
    if clean {
        laws.push(ConservationLaw::equal(
            "page reads balance",
            &["hits", "misses", "fallbacks.timeout"],
            &["page_reads"],
        ));
    } else {
        laws.push(ConservationLaw::at_most(
            "page reads balance (lossy epoch)",
            &["hits", "misses", "fallbacks.timeout"],
            &["page_reads"],
        ));
    }
    laws
}

/// Byte-correctness check for one completed read.
pub fn check_read(op: usize, got: &Bytes, expected: &Bytes) -> Option<Violation> {
    if got == expected {
        return None;
    }
    let detail = if got.len() != expected.len() {
        format!(
            "read returned {} bytes, ground truth has {}",
            got.len(),
            expected.len()
        )
    } else {
        let first = got
            .iter()
            .zip(expected.iter())
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        format!(
            "read returned wrong bytes: first divergence at offset {first} (got {:#04x}, want {:#04x})",
            got[first], expected[first]
        )
    };
    Some(Violation {
        op: Some(op),
        kind: "byte-mismatch",
        detail,
    })
}

/// Per-op tier oracles, checked against the [`TierStats`] delta of one op.
///
/// * **Read conservation** — every tier read lands in exactly one outcome
///   bucket: `served_by_tier`, `origin_fallbacks`, or `failed_reads`; ops
///   that issue no read move none of them.
/// * **Cluster health (bounded degradation)** — while every known worker is
///   online, undegraded, and not awaiting a crash restart, and no remote
///   fault window is open, a read must be served by a worker: no origin
///   fallback and no failure. Hit-rate degradation is thereby structurally
///   confined to actual churn windows.
///
/// The companion no-failed-read-while-origin-healthy oracle runs inline in
/// the runner (it needs the error value), so a failed read with no remote
/// fault window open is reported there as `unexpected-error`.
pub fn check_tier_op(
    op: usize,
    reads: u64,
    prev: &TierStats,
    cur: &TierStats,
    cluster_healthy: bool,
    remote_faults_active: bool,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let served = cur.served_by_tier - prev.served_by_tier;
    let fallbacks = cur.origin_fallbacks - prev.origin_fallbacks;
    let failed = cur.failed_reads - prev.failed_reads;
    if served + fallbacks + failed != reads {
        out.push(Violation {
            op: Some(op),
            kind: "tier-conservation",
            detail: format!(
                "op issued {reads} read(s) but outcomes moved by \
                 served={served} + fallbacks={fallbacks} + failed={failed}"
            ),
        });
    }
    if cluster_healthy && !remote_faults_active && fallbacks + failed > 0 {
        out.push(Violation {
            op: Some(op),
            kind: "cluster-health",
            detail: format!(
                "fully healthy cluster let a read past the tier: \
                 fallbacks={fallbacks} failed={failed}"
            ),
        });
    }
    out
}

/// Structural accounting checks over a live manager, run after every op.
///
/// `store_index_agree` is false for the op window in which a simulated
/// crash fired: the store and index legitimately disagree until the
/// restart that immediately follows.
///
/// When the stack runs with a `maxCachedPartitions` admission policy,
/// `admission` adds the scope-lifecycle oracle: for every capped table, the
/// admitted-partition set must equal the set of partitions with live pages
/// (slots are neither leaked on eviction/purge/expiry/crash nor lost on
/// re-entry), and must never exceed the cap.
pub fn check_accounting(
    op: usize,
    cache: &CacheManager,
    store_index_agree: bool,
    admission: Option<&FilterRuleAdmission>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mk = |kind, detail| Violation {
        op: Some(op),
        kind,
        detail,
    };

    if cache.inflight_fetches() != 0 {
        out.push(mk(
            "latch-leak",
            format!(
                "{} in-flight fetch latches left after a completed op",
                cache.inflight_fetches()
            ),
        ));
    }
    if let Err(e) = cache.index().check_consistency() {
        out.push(mk("index-inconsistent", e));
    }
    // Batched recency must stay membership-neutral: draining deferred access
    // events (which `check_policy_coherence` does en route) may reorder a
    // policy's queue but never add or lose tracked pages, so policy
    // membership must equal index residency after every op. Because eviction
    // itself stays inline, this also means deferred updates cannot let
    // residency exceed capacity beyond the strict `over-capacity` bound
    // checked below — the batch introduces no extra slack.
    if let Err(e) = cache.check_policy_coherence() {
        out.push(mk("policy-incoherent", e));
    }
    for (dir, (store_bytes, index_bytes, capacity)) in cache.dir_usage().into_iter().enumerate() {
        if index_bytes > capacity {
            out.push(mk(
                "over-capacity",
                format!("dir {dir}: index accounts {index_bytes} B over capacity {capacity} B"),
            ));
        }
        if store_index_agree && store_bytes != index_bytes {
            out.push(mk(
                "store-index-drift",
                format!(
                    "dir {dir}: store holds {store_bytes} B but index accounts {index_bytes} B"
                ),
            ));
        }
    }
    // Three-tier conservation: every frame that ever entered the DRAM tier
    // (publish or promotion) must either still be resident or have left
    // through a *counted* exit (demotion, eviction, refresh replacement).
    // DRAM recovers empty after a crash and each epoch gets a fresh
    // registry, so the books start balanced at every epoch boundary. A
    // silent drop — bytes leaving the hierarchy without demotion or a
    // remote-backed eviction — breaks the equality immediately.
    if let Some(mem) = cache.memory_dir() {
        let m = cache.metrics();
        let entries = m.counter("mem.publishes").get() + m.counter("mem.promotions").get();
        let exits = m.counter("mem.demotions").get()
            + m.counter("mem.evictions").get()
            + m.counter("mem.replaced").get();
        let resident = cache.index().pages_of_dir(mem).len() as u64;
        if entries != exits + resident {
            out.push(mk(
                "mem-conservation",
                format!(
                    "memory tier books don't balance: {entries} entries \
                     (publishes + promotions) vs {exits} counted exits \
                     (demotions + evictions + replaced) + {resident} resident"
                ),
            ));
        }
        // Memory residency must agree frame-for-frame between the store and
        // the index (byte agreement rides the store-index-drift check).
        if store_index_agree {
            if let Some(tier) = cache.memory_tier() {
                if tier.len() as u64 != resident {
                    out.push(mk(
                        "mem-residency-drift",
                        format!(
                            "memory store holds {} frames but the index accounts {resident}",
                            tier.len()
                        ),
                    ));
                }
            }
        }
    }
    for (scope, quota) in cache.quota().snapshot() {
        let used = cache.index().bytes_of_scope(&scope);
        if used > quota.as_u64() {
            out.push(mk(
                "quota-exceeded",
                format!(
                    "scope {scope}: {used} B cached over quota {} B",
                    quota.as_u64()
                ),
            ));
        }
    }
    if let Some(adm) = admission {
        let snapshot = adm.admitted_snapshot();
        // Check every table the policy tracks, plus every table with live
        // pages (a live-but-untracked table is exactly the drift we hunt).
        let mut tables: BTreeSet<(String, String)> = snapshot.keys().cloned().collect();
        for scope in cache.index().ledger().snapshot().into_keys() {
            if let CacheScope::Partition { schema, table, .. } = scope {
                tables.insert((schema, table));
            }
        }
        for (schema, table) in tables {
            let Some(cap) = adm.cap_for(&schema, &table) else {
                continue;
            };
            let admitted = snapshot
                .get(&(schema.clone(), table.clone()))
                .cloned()
                .unwrap_or_default();
            if admitted.len() > cap {
                out.push(mk(
                    "admission-over-cap",
                    format!(
                        "{schema}.{table}: {} admitted partitions over cap {cap}: {admitted:?}",
                        admitted.len()
                    ),
                ));
            }
            let live: HashSet<String> = cache
                .index()
                .partitions_of_table(&schema, &table)
                .into_iter()
                .filter_map(|s| match s {
                    CacheScope::Partition { partition, .. } => Some(partition),
                    _ => None,
                })
                .collect();
            if admitted != live {
                let leaked: Vec<&String> = admitted.difference(&live).collect();
                let lost: Vec<&String> = live.difference(&admitted).collect();
                out.push(mk(
                    "admission-drift",
                    format!(
                        "{schema}.{table}: slots held for evicted partitions {leaked:?}, \
                         live partitions missing slots {lost:?}"
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgecache_metrics::{assert_conserved, MetricRegistry, SnapshotDiff};

    #[test]
    fn clean_epoch_requires_exact_balance() {
        let m = MetricRegistry::new("t");
        m.counter("page_reads").add(10);
        m.counter("hits").add(4);
        m.counter("misses").add(5);
        let diff = SnapshotDiff::from_start(&m.snapshot());
        // One classified page was never served: clean laws reject, lossy
        // laws accept.
        assert!(assert_conserved(&diff, &cache_epoch_laws(true)).is_err());
        assert!(assert_conserved(&diff, &cache_epoch_laws(false)).is_ok());
        m.counter("fallbacks.timeout").inc();
        let diff = SnapshotDiff::from_start(&m.snapshot());
        assert!(assert_conserved(&diff, &cache_epoch_laws(true)).is_ok());
    }

    #[test]
    fn tier_op_oracle_catches_lost_and_leaked_outcomes() {
        let zero = TierStats {
            served_by_tier: 0,
            origin_fallbacks: 0,
            failed_reads: 0,
            worker_errors: 0,
            failover_reads: 0,
            replica_warms: 0,
            bytes_cached: 0,
        };
        let served = TierStats {
            served_by_tier: 1,
            ..zero.clone()
        };
        let fell_back = TierStats {
            origin_fallbacks: 1,
            ..zero.clone()
        };
        // A read that landed in exactly one bucket is clean.
        assert!(check_tier_op(0, 1, &zero, &served, true, false).is_empty());
        // A read with no outcome (the pre-failover bug shape: an error
        // propagated without being counted) violates conservation.
        let v = check_tier_op(1, 1, &zero, &zero, false, false);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, "tier-conservation");
        // A non-read op moving a counter violates conservation too.
        assert!(!check_tier_op(2, 0, &zero, &served, false, false).is_empty());
        // A fully healthy cluster must not fall back to origin...
        let v = check_tier_op(3, 1, &zero, &fell_back, true, false);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, "cluster-health");
        // ...but churn windows and remote fault windows both excuse it.
        assert!(check_tier_op(4, 1, &zero, &fell_back, false, false).is_empty());
        assert!(check_tier_op(5, 1, &zero, &fell_back, true, true).is_empty());
    }

    #[test]
    fn byte_mismatch_reports_first_divergence() {
        let got = Bytes::from_static(b"abcXef");
        let want = Bytes::from_static(b"abcdef");
        let v = check_read(3, &got, &want).expect("mismatch");
        assert_eq!(v.kind, "byte-mismatch");
        assert!(v.detail.contains("offset 3"), "{}", v.detail);
        assert!(check_read(3, &want, &want).is_none());
    }

    #[test]
    fn length_mismatch_is_reported_as_lengths() {
        let got = Bytes::from_static(b"ab");
        let want = Bytes::from_static(b"abcd");
        let v = check_read(0, &got, &want).expect("mismatch");
        assert!(v.detail.contains("2 bytes"), "{}", v.detail);
        assert!(v.detail.contains("4"), "{}", v.detail);
    }
}
