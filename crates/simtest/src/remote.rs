//! The simulated remote: ground truth plus faults plus virtual time.
//!
//! [`SimRemote`] plays the data lake under the cache. Its three jobs:
//!
//! 1. **Ground truth.** Every byte of every file is a pure function of
//!    `(seed, file, position)`, so the byte-correctness oracle can check any
//!    completed read without storing the corpus.
//! 2. **Fault injection.** Error and short-read decisions are pure functions
//!    of the request *content* (path, offset, length) and the active fault
//!    window's salt — never of wall time or arrival order — so concurrent
//!    fetch workers racing inside one `read` call cannot make a run
//!    diverge between executions.
//! 3. **Virtual time.** Each request charges a [`DeviceModel`] cost (scaled
//!    by the active stall factor) to the shared [`SimClock`] via atomic
//!    advances, which commute across threads.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use edgecache_common::clock::SharedClock;
use edgecache_common::error::{Error, Result};
use edgecache_common::hash::{combine, fnv1a64, hash_str};
use edgecache_core::manager::RemoteSource;
use edgecache_storage::DeviceModel;

use crate::scenario::Scenario;

/// Deterministic content byte of `file` at absolute position `i`.
pub fn ground_truth_byte(seed: u64, file: u32, i: u64) -> u8 {
    let x = seed
        ^ (file as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ i.wrapping_mul(0xa076_1d64_78bd_642f);
    let x = (x ^ (x >> 29)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    (x >> 56) as u8
}

/// The expected bytes of a read, EOF-clamped like the real remote.
pub fn expected_bytes(seed: u64, file: u32, file_len: u64, offset: u64, len: u64) -> Bytes {
    if offset >= file_len {
        return Bytes::new();
    }
    let end = (offset + len).min(file_len);
    let mut out = Vec::with_capacity((end - offset) as usize);
    for i in offset..end {
        out.push(ground_truth_byte(seed, file, i));
    }
    Bytes::from(out)
}

/// The simulated remote source (see module docs).
pub struct SimRemote {
    seed: u64,
    file_len: u64,
    files: u32,
    clock: SharedClock,
    device: DeviceModel,
    /// Device degradation factor for the current op (1 = nominal). Set by
    /// the runner at op boundaries from its virtual-time `StallSchedule`.
    stall_factor: AtomicU32,
    /// Percent of requests failing while an error window is active.
    error_percent: AtomicU32,
    /// Percent of requests returning truncated buffers.
    short_percent: AtomicU32,
    /// Per-window salt: distinct fault windows make distinct per-request
    /// decisions, but decisions stay stable *within* a window.
    salt: AtomicU64,
    /// Total remote requests served (including failed ones).
    requests: AtomicU64,
    /// After this many requests, responses carry one flipped byte — the
    /// planted bug the oracle meta-tests against. `u64::MAX` = off.
    sabotage_after: AtomicU64,
}

impl SimRemote {
    /// Builds the remote for a scenario over `clock`.
    pub fn new(sc: &Scenario, clock: SharedClock) -> Arc<Self> {
        Arc::new(Self {
            seed: sc.seed,
            file_len: sc.file_len,
            files: sc.files,
            clock,
            device: DeviceModel::object_store(),
            stall_factor: AtomicU32::new(1),
            error_percent: AtomicU32::new(0),
            short_percent: AtomicU32::new(0),
            salt: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            sabotage_after: AtomicU64::new(sc.sabotage_after.unwrap_or(u64::MAX)),
        })
    }

    /// Ground truth for `(offset, len)` of file index `file`.
    pub fn expected(&self, file: u32, offset: u64, len: u64) -> Bytes {
        expected_bytes(self.seed, file, self.file_len, offset, len)
    }

    /// Total requests served so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::SeqCst)
    }

    /// Sets the device degradation factor for subsequent requests.
    pub fn set_stall_factor(&self, factor: u32) {
        self.stall_factor.store(factor.max(1), Ordering::SeqCst);
    }

    /// Opens (or closes, with 0) an error window.
    pub fn set_error_percent(&self, percent: u32, salt: u64) {
        self.salt.store(salt, Ordering::SeqCst);
        self.error_percent.store(percent, Ordering::SeqCst);
    }

    /// Opens (or closes, with 0) a short-read window.
    pub fn set_short_percent(&self, percent: u32, salt: u64) {
        self.salt.store(salt, Ordering::SeqCst);
        self.short_percent.store(percent, Ordering::SeqCst);
    }

    /// Whether any fault window is currently open (reads may legitimately
    /// fail; the oracle relaxes its completed-read expectations).
    pub fn faults_active(&self) -> bool {
        self.error_percent.load(Ordering::SeqCst) > 0
            || self.short_percent.load(Ordering::SeqCst) > 0
    }

    fn file_index(&self, path: &str) -> Result<u32> {
        let idx: u32 = path
            .strip_prefix("/sim/f")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| Error::NotFound(format!("unknown simulated path {path}")))?;
        if idx >= self.files {
            return Err(Error::NotFound(format!("file {idx} out of range")));
        }
        Ok(idx)
    }

    /// Content-hash fault decision: stable for a given request within a
    /// given fault window, independent of timing and thread interleaving.
    fn decide(&self, path: &str, offset: u64, len: u64, which: u64, percent: u32) -> bool {
        if percent == 0 {
            return false;
        }
        let h = combine(
            combine(hash_str(path), self.salt.load(Ordering::SeqCst) ^ which),
            combine(offset, fnv1a64(&len.to_le_bytes())),
        );
        (h % 100) < percent as u64
    }

    fn charge(&self, requests: u64, bytes: u64) {
        let factor = self.stall_factor.load(Ordering::SeqCst);
        let cost = self
            .device
            .degraded(factor)
            .batch_read_time(requests, bytes);
        self.clock.sleep(cost);
    }

    fn serve(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        let file = self.file_index(path)?;
        let n = self.requests.fetch_add(1, Ordering::SeqCst);
        if self.decide(
            path,
            offset,
            len,
            0xe44,
            self.error_percent.load(Ordering::SeqCst),
        ) {
            return Err(Error::Other(format!(
                "injected remote error for {path}@{offset}+{len}"
            )));
        }
        let mut bytes = self.expected(file, offset, len);
        if n >= self.sabotage_after.load(Ordering::SeqCst) && !bytes.is_empty() {
            // The planted bug: flip the first byte of the response.
            let mut v = bytes.to_vec();
            v[0] ^= 0xff;
            bytes = Bytes::from(v);
        }
        if self.decide(
            path,
            offset,
            len,
            0x5407,
            self.short_percent.load(Ordering::SeqCst),
        ) && bytes.len() > 1
        {
            // Injected short read: drop the final byte mid-file, which the
            // cache must detect (EOF clamping already happened above).
            bytes = bytes.slice(0..bytes.len() - 1);
        }
        Ok(bytes)
    }
}

impl RemoteSource for SimRemote {
    fn read(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        self.charge(1, len);
        self.serve(path, offset, len)
    }

    fn read_ranges(&self, path: &str, ranges: &[(u64, u64)]) -> Result<Vec<Bytes>> {
        let total: u64 = ranges.iter().map(|&(_, l)| l).sum();
        self.charge(ranges.len() as u64, total);
        ranges
            .iter()
            .map(|&(offset, len)| self.serve(path, offset, len))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Profile;
    use edgecache_common::clock::{Clock, SimClock};

    fn remote() -> Arc<SimRemote> {
        let sc = Scenario::generate(5, Profile::Smoke);
        SimRemote::new(&sc, Arc::new(SimClock::new()))
    }

    #[test]
    fn serves_ground_truth_deterministically() {
        let r = remote();
        let a = r.read("/sim/f0", 100, 200).unwrap();
        let b = r.read("/sim/f0", 100, 200).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, r.expected(0, 100, 200));
        // Different files and offsets differ.
        assert_ne!(r.read("/sim/f1", 100, 200).unwrap(), a);
        assert_ne!(r.read("/sim/f0", 101, 200).unwrap(), a);
    }

    #[test]
    fn clamps_at_eof_and_rejects_unknown_paths() {
        let sc = Scenario::generate(5, Profile::Smoke);
        let r = remote();
        let tail = r.read("/sim/f0", sc.file_len - 10, 100).unwrap();
        assert_eq!(tail.len(), 10);
        assert!(r.read("/nope", 0, 10).is_err());
        assert!(r.read("/sim/f99", 0, 10).is_err());
    }

    #[test]
    fn fault_decisions_are_content_stable() {
        let r = remote();
        r.set_error_percent(50, 7);
        let first: Vec<bool> = (0..64)
            .map(|i| r.read("/sim/f0", i * 128, 64).is_err())
            .collect();
        let second: Vec<bool> = (0..64)
            .map(|i| r.read("/sim/f0", i * 128, 64).is_err())
            .collect();
        assert_eq!(first, second, "same window, same request, same outcome");
        assert!(first.iter().any(|&e| e), "50% window fails something");
        assert!(!first.iter().all(|&e| e), "…but not everything");
        // A different salt (new window) reshuffles the decisions.
        r.set_error_percent(50, 8);
        let third: Vec<bool> = (0..64)
            .map(|i| r.read("/sim/f0", i * 128, 64).is_err())
            .collect();
        assert_ne!(first, third);
    }

    #[test]
    fn short_reads_truncate_mid_file() {
        let r = remote();
        r.set_short_percent(100, 1);
        let bytes = r.read("/sim/f0", 0, 256).unwrap();
        assert_eq!(bytes.len(), 255, "one byte short of the request");
    }

    #[test]
    fn requests_charge_virtual_time_only() {
        let sc = Scenario::generate(5, Profile::Smoke);
        let clock = Arc::new(SimClock::new());
        let r = SimRemote::new(&sc, clock.clone());
        r.read("/sim/f0", 0, 1 << 20).unwrap();
        let base = clock.now_millis();
        assert!(base > 0, "object-store model charges real latency");
        r.set_stall_factor(10);
        r.read("/sim/f0", 0, 1 << 20).unwrap();
        assert!(
            clock.now_millis() - base > base,
            "stall degrades the device"
        );
    }

    #[test]
    fn sabotage_flips_a_byte_after_threshold() {
        let mut sc = Scenario::generate(5, Profile::Smoke);
        sc.sabotage_after = Some(2);
        let r = SimRemote::new(&sc, Arc::new(SimClock::new()));
        let good = r.read("/sim/f0", 0, 64).unwrap();
        assert_eq!(good, r.expected(0, 0, 64));
        let _ = r.read("/sim/f0", 0, 64).unwrap();
        let bad = r.read("/sim/f0", 0, 64).unwrap();
        assert_ne!(bad, r.expected(0, 0, 64));
        assert_eq!(&bad[1..], &r.expected(0, 0, 64)[1..]);
    }
}
