//! One cache-worker node of the distributed tier.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use edgecache_common::clock::SharedClock;
use edgecache_common::error::{Error, Result};
use edgecache_common::ByteSize;
use edgecache_core::config::CacheConfig;
use edgecache_core::manager::{CacheManager, RemoteSource, SourceFile};
use edgecache_metrics::MetricRegistry;
use edgecache_pagestore::MemoryPageStore;

/// Configuration for a [`CacheWorker`].
#[derive(Debug, Clone)]
pub struct WorkerCacheConfig {
    /// Local-cache capacity in bytes.
    pub cache_capacity: u64,
    /// Cache page size.
    pub page_size: ByteSize,
    /// Maximum concurrent requests before the worker reports itself
    /// occupied (the tier then tries the next replica or falls back).
    pub max_inflight: u32,
}

impl Default for WorkerCacheConfig {
    fn default() -> Self {
        Self {
            cache_capacity: ByteSize::gib(1).as_u64(),
            page_size: ByteSize::mib(1),
            max_inflight: 64,
        }
    }
}

/// A cache-worker node: a local cache plus an occupancy bound.
pub struct CacheWorker {
    name: String,
    cache: CacheManager,
    inflight: AtomicU32,
    max_inflight: u32,
    /// Fault-injection hook: a failing worker errors every serve, modelling
    /// a degraded node (bad disk, wedged fetch path) that still answers the
    /// admission probe. Drives the tier's error-failover tests and the
    /// simtest `NodeDegraded` fault.
    failing: AtomicBool,
}

/// RAII guard decrementing the worker's in-flight count.
pub(crate) struct InflightGuard<'a>(&'a AtomicU32);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        // Release: the slot hand-off must not be reordered before the
        // request work it concludes; the acquiring CAS pairs with this.
        self.0.fetch_sub(1, Ordering::Release);
    }
}

impl CacheWorker {
    /// Creates a worker with an in-memory page store.
    pub fn new(name: &str, config: WorkerCacheConfig, clock: SharedClock) -> Result<Self> {
        let cache = CacheManager::builder(CacheConfig::default().with_page_size(config.page_size))
            .with_store(Arc::new(MemoryPageStore::new()), config.cache_capacity)
            .with_clock(clock)
            .with_metrics(MetricRegistry::new(format!("{name}-cache")))
            .build()?;
        Ok(Self {
            name: name.to_string(),
            cache,
            inflight: AtomicU32::new(0),
            max_inflight: config.max_inflight,
            failing: AtomicBool::new(false),
        })
    }

    /// The worker's name (its ring identity).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The embedded cache (introspection).
    pub fn cache(&self) -> &CacheManager {
        &self.cache
    }

    /// Current in-flight requests.
    pub fn inflight(&self) -> u32 {
        // Relaxed: a monitoring read of a monotonic-ish gauge; no other
        // memory depends on the value observed.
        self.inflight.load(Ordering::Relaxed)
    }

    /// Makes every serve fail (or recover) — fault injection for failover
    /// tests and the simulation harness.
    pub fn set_failing(&self, failing: bool) {
        // Relaxed: the flag guards no other data; serves observe it on
        // their next load and the exact switchover point is immaterial.
        self.failing.store(failing, Ordering::Relaxed);
    }

    /// Tries to reserve a request slot; `None` when the worker is occupied.
    pub(crate) fn try_acquire(&self) -> Option<InflightGuard<'_>> {
        // Relaxed initial read: the CAS below revalidates it.
        let mut cur = self.inflight.load(Ordering::Relaxed);
        loop {
            if cur >= self.max_inflight {
                return None;
            }
            // AcqRel on success: Acquire pairs with the guard-drop Release
            // so a reused slot observes the prior request's completed work;
            // Release publishes this reservation to the next acquirer.
            // Relaxed on failure: a stale count is just retried.
            match self
                .inflight
                .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return Some(InflightGuard(&self.inflight)),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Serves a ranged read through this worker's local cache.
    pub(crate) fn serve(
        &self,
        file: &SourceFile,
        offset: u64,
        len: u64,
        origin: &dyn RemoteSource,
    ) -> Result<Bytes> {
        if self.failing.load(Ordering::Relaxed) {
            return Err(Error::Other(format!("worker {} is degraded", self.name)));
        }
        self.cache.read(file, offset, len, origin)
    }

    /// Serves a whole fragment batch through this worker's local cache as
    /// one vectored read: misses across all fragments classify, coalesce,
    /// and fetch together.
    pub(crate) fn serve_multi(
        &self,
        file: &SourceFile,
        ranges: &[(u64, u64)],
        origin: &dyn RemoteSource,
    ) -> Result<Vec<Bytes>> {
        if self.failing.load(Ordering::Relaxed) {
            return Err(Error::Other(format!("worker {} is degraded", self.name)));
        }
        self.cache.read_multi(file, ranges, origin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgecache_common::clock::system_clock;
    use edgecache_pagestore::CacheScope;

    struct Zero;
    impl RemoteSource for Zero {
        fn read(&self, _p: &str, _o: u64, len: u64) -> Result<Bytes> {
            Ok(Bytes::from(vec![0u8; len as usize]))
        }
    }

    #[test]
    fn inflight_slots_are_bounded() {
        let w = CacheWorker::new(
            "w0",
            WorkerCacheConfig {
                max_inflight: 2,
                ..Default::default()
            },
            system_clock(),
        )
        .unwrap();
        let g1 = w.try_acquire().unwrap();
        let _g2 = w.try_acquire().unwrap();
        assert!(w.try_acquire().is_none(), "occupied at the bound");
        drop(g1);
        assert!(w.try_acquire().is_some(), "slot released");
    }

    #[test]
    fn failing_worker_errors_until_recovered() {
        let w = CacheWorker::new("w0", WorkerCacheConfig::default(), system_clock()).unwrap();
        let file = SourceFile::new("/f", 1, 1 << 20, CacheScope::Global);
        w.set_failing(true);
        assert!(w.serve(&file, 0, 1024, &Zero).is_err());
        assert!(w.serve_multi(&file, &[(0, 1024)], &Zero).is_err());
        w.set_failing(false);
        assert!(w.serve(&file, 0, 1024, &Zero).is_ok());
    }

    #[test]
    fn serve_caches_locally() {
        let w = CacheWorker::new("w0", WorkerCacheConfig::default(), system_clock()).unwrap();
        let file = SourceFile::new("/f", 1, 1 << 20, CacheScope::Global);
        w.serve(&file, 0, 1024, &Zero).unwrap();
        w.serve(&file, 0, 1024, &Zero).unwrap();
        assert_eq!(w.cache().stats().hits, 1);
    }
}
