//! The distributed cache tier: routing, bounded replicas, remote fallback,
//! lazy node lifecycle.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use edgecache_common::clock::SharedClock;
use edgecache_common::error::{Error, Result};
use edgecache_common::ring::{ConsistentRing, RingConfig};
use edgecache_core::manager::{RemoteSource, SourceFile};
use edgecache_metrics::{MetricRegistry, Tracer};
use edgecache_pagestore::CacheScope;
use parking_lot::RwLock;

use crate::worker::{CacheWorker, WorkerCacheConfig};

/// Tier configuration.
#[derive(Debug, Clone)]
pub struct TierConfig {
    /// Number of cache workers.
    pub workers: usize,
    /// Candidate replicas per file — the paper caps this at two (§7).
    pub max_replicas: usize,
    /// Per-worker cache configuration.
    pub worker: WorkerCacheConfig,
    /// Ring configuration (virtual nodes, lazy-movement timeout).
    pub ring: RingConfig,
}

impl Default for TierConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_replicas: 2,
            worker: WorkerCacheConfig::default(),
            ring: RingConfig::default(),
        }
    }
}

/// Point-in-time tier statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierStats {
    /// Requests served by a cache worker.
    pub served_by_tier: u64,
    /// Requests that bypassed the tier to origin (all candidates occupied
    /// or offline).
    pub origin_fallbacks: u64,
    /// Total bytes currently cached across workers.
    pub bytes_cached: u64,
}

/// The distributed cache tier.
pub struct DistCacheTier {
    workers: HashMap<String, Arc<CacheWorker>>,
    ring: ConsistentRing,
    origin: Arc<dyn RemoteSource + Send + Sync>,
    /// Path → (version, length) resolution for the `RemoteSource` view,
    /// where only a path is available.
    known_files: RwLock<HashMap<String, (u64, u64)>>,
    metrics: MetricRegistry,
    tracer: Tracer,
    max_replicas: usize,
}

impl DistCacheTier {
    /// Builds the tier over `origin` storage.
    pub fn new(
        config: TierConfig,
        origin: Arc<dyn RemoteSource + Send + Sync>,
        clock: SharedClock,
    ) -> Result<Self> {
        if config.workers == 0 {
            return Err(Error::InvalidArgument(
                "tier needs at least one worker".into(),
            ));
        }
        if config.max_replicas == 0 {
            return Err(Error::InvalidArgument("max_replicas must be ≥ 1".into()));
        }
        let ring = ConsistentRing::new(config.ring.clone(), clock.clone());
        let mut workers = HashMap::new();
        for i in 0..config.workers {
            let name = format!("cw{i}");
            ring.add_node(&name);
            workers.insert(
                name.clone(),
                Arc::new(CacheWorker::new(
                    &name,
                    config.worker.clone(),
                    clock.clone(),
                )?),
            );
        }
        Ok(Self {
            workers,
            ring,
            origin,
            known_files: RwLock::new(HashMap::new()),
            metrics: MetricRegistry::new("dist-cache-tier"),
            tracer: Tracer::disabled(),
            max_replicas: config.max_replicas,
        })
    }

    /// Attaches a tracer: each read served by a cache worker records a
    /// `distcache_hop` span. Use the same clock as the tier.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Tier-level metrics.
    pub fn metrics(&self) -> &MetricRegistry {
        &self.metrics
    }

    /// The tier's span tracer (disabled unless one was attached).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// A worker by name (introspection).
    pub fn worker(&self, name: &str) -> Option<&Arc<CacheWorker>> {
        self.workers.get(name)
    }

    /// All worker names, sorted.
    pub fn worker_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.workers.keys().cloned().collect();
        names.sort();
        names
    }

    /// Marks a worker offline; its ring seat is kept for the lazy window.
    pub fn worker_offline(&self, name: &str) {
        self.ring.mark_offline(name);
    }

    /// Brings a worker back online.
    pub fn worker_online(&self, name: &str) {
        self.ring.mark_online(name);
    }

    /// Removes workers whose lazy grace period has expired.
    pub fn sweep_expired(&self) -> Vec<String> {
        self.ring.sweep_expired()
    }

    /// Registers a file so the bare-path [`RemoteSource`] view can resolve
    /// its version and length (a catalog would normally provide these).
    pub fn register_file(&self, path: &str, version: u64, length: u64) {
        self.known_files
            .write()
            .insert(path.to_string(), (version, length));
    }

    /// Point-in-time stats.
    pub fn stats(&self) -> TierStats {
        TierStats {
            served_by_tier: self.metrics.counter("served_by_tier").get(),
            origin_fallbacks: self.metrics.counter("origin_fallbacks").get(),
            bytes_cached: self
                .workers
                .values()
                .map(|w| w.cache().index().total_bytes())
                .sum(),
        }
    }

    /// Reads `len` bytes at `offset` of `file` through the tier: the file's
    /// replica workers are tried in ring order; if every candidate is
    /// occupied or offline, the read goes straight to origin, bypassing the
    /// cache (§7's hybrid fallback).
    pub fn read(&self, file: &SourceFile, offset: u64, len: u64) -> Result<Bytes> {
        // Lazy data movement (§7): purge seats whose offline grace period
        // has expired, so their keys rehash to surviving workers.
        self.ring.sweep_expired();
        let candidates = self.ring.candidates(&file.path, self.max_replicas);
        for name in &candidates {
            let worker = self.workers.get(name).expect("ring nodes are workers");
            let Some(_guard) = worker.try_acquire() else {
                self.metrics.counter("occupied_probes").inc();
                continue;
            };
            self.metrics.counter("served_by_tier").inc();
            let mut hop = self.tracer.span("distcache_hop");
            if hop.is_recording() {
                hop.annotate("worker", name);
                hop.annotate("path", &file.path);
                hop.annotate("len", len);
            }
            let out = worker.serve(file, offset, len, self.origin.as_ref());
            if let Err(e) = &out {
                hop.annotate("status", e.kind());
            }
            hop.finish();
            return out;
        }
        // All candidates occupied (or no worker online): origin fallback.
        self.metrics.counter("origin_fallbacks").inc();
        let bytes = self.origin.read(&file.path, offset, len)?;
        Self::check_origin_len(file, offset, len, &bytes)?;
        Ok(bytes)
    }

    /// The fallback bypasses every cache-layer checksum, so the only guard
    /// against a truncated origin response is the registered file length:
    /// anything but an exact (EOF-clamped) range is an error.
    fn check_origin_len(file: &SourceFile, offset: u64, len: u64, bytes: &Bytes) -> Result<()> {
        let want = offset.saturating_add(len).min(file.length) - offset.min(file.length);
        if bytes.len() as u64 != want {
            return Err(Error::Decode(format!(
                "origin returned {} bytes for a {want}-byte range of {}",
                bytes.len(),
                file.path
            )));
        }
        Ok(())
    }

    /// Reads a whole fragment batch of `file` through the tier as ONE hop:
    /// the batch is routed once, occupies one worker request slot, and the
    /// serving worker classifies and fetches all fragments together via its
    /// cache's vectored read path. If every candidate is occupied or
    /// offline, the whole batch falls back to origin (one `read_ranges`
    /// call, length-guarded per fragment).
    pub fn read_multi(&self, file: &SourceFile, ranges: &[(u64, u64)]) -> Result<Vec<Bytes>> {
        if ranges.is_empty() {
            return Ok(Vec::new());
        }
        self.ring.sweep_expired();
        let candidates = self.ring.candidates(&file.path, self.max_replicas);
        for name in &candidates {
            let worker = self.workers.get(name).expect("ring nodes are workers");
            let Some(_guard) = worker.try_acquire() else {
                self.metrics.counter("occupied_probes").inc();
                continue;
            };
            self.metrics.counter("served_by_tier").inc();
            let mut hop = self.tracer.span("distcache_hop");
            if hop.is_recording() {
                hop.annotate("worker", name);
                hop.annotate("path", &file.path);
                hop.annotate("fragments", ranges.len());
                hop.annotate("len", ranges.iter().map(|&(_, l)| l).sum::<u64>());
            }
            let out = worker.serve_multi(file, ranges, self.origin.as_ref());
            if let Err(e) = &out {
                hop.annotate("status", e.kind());
            }
            hop.finish();
            return out;
        }
        self.metrics.counter("origin_fallbacks").inc();
        let chunks = self.origin.read_ranges(&file.path, ranges)?;
        if chunks.len() != ranges.len() {
            return Err(Error::Decode(format!(
                "origin returned {} chunks for a {}-range batch of {}",
                chunks.len(),
                ranges.len(),
                file.path
            )));
        }
        for (&(offset, len), bytes) in ranges.iter().zip(&chunks) {
            Self::check_origin_len(file, offset, len, bytes)?;
        }
        Ok(chunks)
    }
}

/// The tier is itself a [`RemoteSource`], so compute-layer caches can stack
/// on top (Figure 6's full three-layer architecture). Files must be
/// registered via [`DistCacheTier::register_file`] (or the read falls back
/// to origin directly).
impl RemoteSource for DistCacheTier {
    fn read(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        let known = self.known_files.read().get(path).copied();
        match known {
            Some((version, length)) => {
                let file = SourceFile::new(path, version, length, CacheScope::Global);
                DistCacheTier::read(self, &file, offset, len)
            }
            None => {
                self.metrics.counter("unregistered_reads").inc();
                self.origin.read(path, offset, len)
            }
        }
    }

    /// Batched tier reads: the file is resolved once and the whole batch
    /// (the compute layer's coalesced missing runs) travels as ONE tier hop
    /// — one routing decision, one worker request slot, one vectored read
    /// on the serving worker's cache.
    fn read_ranges(&self, path: &str, ranges: &[(u64, u64)]) -> Result<Vec<Bytes>> {
        let known = self.known_files.read().get(path).copied();
        match known {
            Some((version, length)) => {
                let file = SourceFile::new(path, version, length, CacheScope::Global);
                DistCacheTier::read_multi(self, &file, ranges)
            }
            None => {
                self.metrics.counter("unregistered_reads").inc();
                self.origin.read_ranges(path, ranges)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgecache_common::clock::SimClock;
    use edgecache_common::ByteSize;
    use parking_lot::Mutex;
    use std::time::Duration;

    struct CountingOrigin {
        reads: Mutex<u64>,
    }

    impl CountingOrigin {
        fn new() -> Arc<Self> {
            Arc::new(Self {
                reads: Mutex::new(0),
            })
        }
    }

    impl RemoteSource for CountingOrigin {
        fn read(&self, _p: &str, offset: u64, len: u64) -> Result<Bytes> {
            *self.reads.lock() += 1;
            Ok(Bytes::from(
                (offset..offset + len)
                    .map(|i| (i % 253) as u8)
                    .collect::<Vec<u8>>(),
            ))
        }
    }

    fn tier(workers: usize, max_inflight: u32) -> (DistCacheTier, Arc<CountingOrigin>, SimClock) {
        let clock = SimClock::new();
        let origin = CountingOrigin::new();
        let tier = DistCacheTier::new(
            TierConfig {
                workers,
                max_replicas: 2,
                worker: WorkerCacheConfig {
                    page_size: ByteSize::kib(4),
                    max_inflight,
                    ..Default::default()
                },
                ring: RingConfig::default(),
            },
            origin.clone(),
            Arc::new(clock.clone()),
        )
        .unwrap();
        (tier, origin, clock)
    }

    fn file(path: &str) -> SourceFile {
        SourceFile::new(path, 1, 1 << 20, CacheScope::Global)
    }

    #[test]
    fn repeated_reads_are_served_by_one_worker_cache() {
        let (tier, origin, _) = tier(4, 64);
        let f = file("/hot");
        let a = tier.read(&f, 100, 1000).unwrap();
        let b = tier.read(&f, 100, 1000).unwrap();
        assert_eq!(a, b);
        assert_eq!(*origin.reads.lock(), 1, "page fetched once");
        // Exactly one worker holds the file's pages.
        let holders = tier
            .worker_names()
            .iter()
            .filter(|w| !tier.worker(w).unwrap().cache().index().is_empty())
            .count();
        assert_eq!(holders, 1);
        assert_eq!(tier.stats().served_by_tier, 2);
    }

    #[test]
    fn occupied_primary_spills_to_secondary_then_origin() {
        let (tier, origin, _) = tier(3, 1);
        let f = file("/k");
        let (primary, secondary) = {
            let c = tier.ring.candidates(&f.path, 2);
            (c[0].clone(), c[1].clone())
        };
        // Saturate the primary.
        let p = tier.worker(&primary).unwrap().clone();
        let _hold_primary = p.try_acquire().unwrap();
        tier.read(&f, 0, 100).unwrap();
        assert!(
            !tier.worker(&secondary).unwrap().cache().index().is_empty(),
            "secondary served the spill"
        );
        // Saturate both: origin fallback, nothing cached anywhere new.
        let s = tier.worker(&secondary).unwrap().clone();
        let _hold_secondary = s.try_acquire().unwrap();
        let before = *origin.reads.lock();
        tier.read(&f, 0, 100).unwrap();
        assert_eq!(tier.stats().origin_fallbacks, 1);
        assert_eq!(*origin.reads.lock(), before + 1);
    }

    #[test]
    fn offline_worker_is_skipped_and_recovers_lazily() {
        let (tier, _, clock) = tier(3, 64);
        let f = file("/x");
        tier.read(&f, 0, 100).unwrap();
        let home = tier.ring.candidates(&f.path, 1)[0].clone();
        tier.worker_offline(&home);
        clock.advance(Duration::from_secs(60));
        assert!(
            tier.sweep_expired().is_empty(),
            "grace period holds the seat"
        );
        tier.read(&f, 0, 100).unwrap(); // Served by the next candidate.
        tier.worker_online(&home);
        // The original worker still has its pages: an immediate hit.
        let hits_before = tier.worker(&home).unwrap().cache().stats().hits;
        tier.read(&f, 0, 100).unwrap();
        assert_eq!(
            tier.worker(&home).unwrap().cache().stats().hits,
            hits_before + 1
        );
    }

    #[test]
    fn expired_offline_worker_is_purged_on_read() {
        let (tier, _, clock) = tier(3, 64);
        let f = file("/x");
        tier.read(&f, 0, 100).unwrap();
        let home = tier.ring.candidates(&f.path, 1)[0].clone();
        tier.worker_offline(&home);
        // Past the grace period the read path itself sweeps the seat: the
        // key rehashes to the surviving workers permanently.
        clock.advance(Duration::from_secs(11 * 60));
        tier.read(&f, 0, 100).unwrap();
        assert!(
            !tier.ring.candidates(&f.path, 3).contains(&home),
            "expired seat no longer routes"
        );
        let served = tier
            .worker_names()
            .iter()
            .filter(|w| **w != home && !tier.worker(w).unwrap().cache().index().is_empty())
            .count();
        assert!(served >= 1, "a surviving worker now caches the key");
    }

    #[test]
    fn all_workers_offline_means_origin_only() {
        let (tier, origin, _) = tier(2, 64);
        for w in tier.worker_names() {
            tier.worker_offline(&w);
        }
        tier.read(&file("/y"), 0, 50).unwrap();
        assert_eq!(tier.stats().origin_fallbacks, 1);
        assert_eq!(*origin.reads.lock(), 1);
    }

    #[test]
    fn remote_source_view_stacks_under_a_compute_cache() {
        use edgecache_core::config::CacheConfig;
        use edgecache_core::manager::CacheManager;
        use edgecache_pagestore::MemoryPageStore;

        let (tier, origin, _) = tier(3, 64);
        tier.register_file("/wh/t/f", 1, 1 << 20);
        let compute =
            CacheManager::builder(CacheConfig::default().with_page_size(ByteSize::kib(4)))
                .with_store(Arc::new(MemoryPageStore::new()), ByteSize::mib(64).as_u64())
                .build()
                .unwrap();
        let f = file("/wh/t/f");
        // Three layers: compute cache → tier worker cache → origin.
        let a = compute.read(&f, 0, 2048, &tier).unwrap();
        let b = compute.read(&f, 0, 2048, &tier).unwrap();
        assert_eq!(a, b);
        assert_eq!(*origin.reads.lock(), 1, "origin touched once");
        assert_eq!(compute.stats().hits, 1, "second read hit at compute layer");
        assert_eq!(tier.stats().served_by_tier, 1, "tier served only the miss");
    }

    #[test]
    fn batched_reads_travel_as_one_hop() {
        let (tier, origin, _) = tier(4, 64);
        let f = file("/batch");
        let ranges = [(0u64, 1000u64), (8192, 500), (100_000, 2000)];
        let chunks = tier.read_multi(&f, &ranges).unwrap();
        assert_eq!(chunks.len(), 3);
        for (&(offset, len), chunk) in ranges.iter().zip(&chunks) {
            let expect: Vec<u8> = (offset..offset + len).map(|i| (i % 253) as u8).collect();
            assert_eq!(chunk.as_ref(), expect.as_slice());
        }
        assert_eq!(tier.stats().served_by_tier, 1, "one hop for the batch");
        // Exactly one worker holds every fragment's pages.
        let holders = tier
            .worker_names()
            .iter()
            .filter(|w| !tier.worker(w).unwrap().cache().index().is_empty())
            .count();
        assert_eq!(holders, 1);
        // A second identical batch is all hits on the same worker.
        let again = tier.read_multi(&f, &ranges).unwrap();
        assert_eq!(again, chunks);
        let reads = *origin.reads.lock();
        tier.read_multi(&f, &ranges).unwrap();
        assert_eq!(*origin.reads.lock(), reads, "warm batch never hits origin");
    }

    #[test]
    fn batched_origin_fallback_guards_every_fragment() {
        let (tier, origin, _) = tier(2, 64);
        for w in tier.worker_names() {
            tier.worker_offline(&w);
        }
        let f = file("/fb");
        let ranges = [(0u64, 100u64), (5000, 300)];
        let chunks = tier.read_multi(&f, &ranges).unwrap();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[1].len(), 300);
        assert_eq!(tier.stats().origin_fallbacks, 1, "one fallback per batch");
        assert_eq!(*origin.reads.lock(), 2, "origin read per fragment");
        // This origin never clamps at EOF, so the per-fragment length guard
        // must reject a range extending past the registered length.
        assert!(tier.read_multi(&f, &[(f.length - 10, 100)]).is_err());
    }

    #[test]
    fn stacked_compute_misses_batch_through_the_tier() {
        use edgecache_core::config::CacheConfig;
        use edgecache_core::manager::CacheManager;
        use edgecache_pagestore::MemoryPageStore;

        let (tier, origin, _) = tier(3, 64);
        tier.register_file("/wh/t/v", 1, 1 << 20);
        // One fetch lane so the compute layer's missing runs leave as a
        // single read_ranges call — the tier must serve it as one hop.
        let compute = CacheManager::builder(
            CacheConfig::default()
                .with_page_size(ByteSize::kib(4))
                .with_max_concurrent_fetches(1),
        )
        .with_store(Arc::new(MemoryPageStore::new()), ByteSize::mib(64).as_u64())
        .build()
        .unwrap();
        let f = file("/wh/t/v");
        // A vectored compute-layer read with two far-apart fragments: the
        // misses reach the tier as one read_ranges batch → one hop.
        let out = compute
            .read_multi(&f, &[(0, 2048), (512 * 1024, 2048)], &tier)
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(tier.stats().served_by_tier, 1, "batched hop");
        assert!(*origin.reads.lock() >= 1);
        let warm = compute
            .read_multi(&f, &[(0, 2048), (512 * 1024, 2048)], &tier)
            .unwrap();
        assert_eq!(warm, out);
        assert_eq!(tier.stats().served_by_tier, 1, "warm batch stays local");
    }

    #[test]
    fn unregistered_paths_fall_back_to_origin() {
        let (tier, origin, _) = tier(2, 64);
        let src: &dyn RemoteSource = &tier;
        src.read("/unknown", 0, 10).unwrap();
        assert_eq!(*origin.reads.lock(), 1);
        assert_eq!(tier.metrics().counter("unregistered_reads").get(), 1);
    }

    #[test]
    fn invalid_configs_rejected() {
        let clock: SharedClock = Arc::new(SimClock::new());
        let origin = CountingOrigin::new();
        assert!(DistCacheTier::new(
            TierConfig {
                workers: 0,
                ..Default::default()
            },
            origin.clone(),
            clock.clone(),
        )
        .is_err());
        assert!(DistCacheTier::new(
            TierConfig {
                max_replicas: 0,
                ..Default::default()
            },
            origin,
            clock,
        )
        .is_err());
    }
}
