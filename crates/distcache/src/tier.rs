//! The distributed cache tier: routing, bounded replicas, error failover,
//! remote fallback, and node lifecycle (join/leave/crash) with lazy data
//! movement.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use edgecache_common::clock::SharedClock;
use edgecache_common::error::{Error, Result};
use edgecache_common::ring::{ConsistentRing, RingConfig};
use edgecache_core::manager::{RemoteSource, SourceFile};
use edgecache_metrics::{MetricRegistry, Tracer};
use edgecache_pagestore::CacheScope;
use parking_lot::RwLock;

use crate::worker::{CacheWorker, WorkerCacheConfig};

/// Tier configuration.
#[derive(Debug, Clone)]
pub struct TierConfig {
    /// Number of cache workers at startup (more can join via
    /// [`DistCacheTier::add_worker`]).
    pub workers: usize,
    /// Candidate replicas per file — the paper caps this at two (§7).
    pub max_replicas: usize,
    /// Deliberately warm a key's second candidate after a primary-served
    /// read, so replica failover serves warm hits instead of cold misses.
    /// Off by default: warming costs extra worker work (and an origin fetch
    /// the first time), which only pays off under churn.
    pub replicate_on_read: bool,
    /// Per-worker cache configuration (also used for workers that join
    /// later).
    pub worker: WorkerCacheConfig,
    /// Ring configuration (virtual nodes, lazy-movement timeout).
    pub ring: RingConfig,
}

impl Default for TierConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_replicas: 2,
            replicate_on_read: false,
            worker: WorkerCacheConfig::default(),
            ring: RingConfig::default(),
        }
    }
}

/// Point-in-time tier statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierStats {
    /// Requests served successfully by a cache worker.
    pub served_by_tier: u64,
    /// Requests served successfully by origin (all candidates occupied,
    /// offline, or erroring).
    pub origin_fallbacks: u64,
    /// Requests that failed outright (every candidate *and* origin failed).
    pub failed_reads: u64,
    /// Individual worker serve attempts that returned an error (the read
    /// then failed over to the next candidate or origin).
    pub worker_errors: u64,
    /// Requests that succeeded only after at least one worker error.
    pub failover_reads: u64,
    /// Secondary-replica warm-ups performed by replicate-on-read.
    pub replica_warms: u64,
    /// Total bytes currently cached across workers.
    pub bytes_cached: u64,
}

/// The distributed cache tier.
pub struct DistCacheTier {
    /// Live workers by ring identity. Guarded so nodes can join and leave at
    /// runtime; the ring and this map are updated independently, so the read
    /// path tolerates a candidate that has already left the map.
    workers: RwLock<HashMap<String, Arc<CacheWorker>>>,
    ring: ConsistentRing,
    origin: Arc<dyn RemoteSource + Send + Sync>,
    /// Path → (version, length) resolution for the `RemoteSource` view,
    /// where only a path is available.
    known_files: RwLock<HashMap<String, (u64, u64)>>,
    metrics: MetricRegistry,
    tracer: Tracer,
    max_replicas: usize,
    replicate_on_read: bool,
    /// Config template for workers that join after construction.
    worker_config: WorkerCacheConfig,
    clock: SharedClock,
}

impl DistCacheTier {
    /// Builds the tier over `origin` storage.
    pub fn new(
        config: TierConfig,
        origin: Arc<dyn RemoteSource + Send + Sync>,
        clock: SharedClock,
    ) -> Result<Self> {
        if config.workers == 0 {
            return Err(Error::InvalidArgument(
                "tier needs at least one worker".into(),
            ));
        }
        if config.max_replicas == 0 {
            return Err(Error::InvalidArgument("max_replicas must be ≥ 1".into()));
        }
        let ring = ConsistentRing::new(config.ring.clone(), clock.clone());
        let mut workers = HashMap::new();
        for i in 0..config.workers {
            let name = format!("cw{i}");
            ring.add_node(&name);
            workers.insert(
                name.clone(),
                Arc::new(CacheWorker::new(
                    &name,
                    config.worker.clone(),
                    clock.clone(),
                )?),
            );
        }
        Ok(Self {
            workers: RwLock::new(workers),
            ring,
            origin,
            known_files: RwLock::new(HashMap::new()),
            metrics: MetricRegistry::new("dist-cache-tier"),
            tracer: Tracer::disabled(),
            max_replicas: config.max_replicas,
            replicate_on_read: config.replicate_on_read,
            worker_config: config.worker,
            clock,
        })
    }

    /// Attaches a tracer: each read served by a cache worker records a
    /// `distcache_hop` span. Use the same clock as the tier.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Tier-level metrics.
    pub fn metrics(&self) -> &MetricRegistry {
        &self.metrics
    }

    /// The tier's span tracer (disabled unless one was attached).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// A worker by name (introspection).
    pub fn worker(&self, name: &str) -> Option<Arc<CacheWorker>> {
        self.workers.read().get(name).cloned()
    }

    /// All worker names, sorted.
    pub fn worker_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.workers.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Adds a new worker (cluster scale-out) or re-seats an existing one
    /// (restart after [`DistCacheTier::worker_crash`]). New workers start
    /// with an empty cache; their key range warms lazily as reads arrive
    /// (the §7 "lazy data movement" answer to joins as well as leaves).
    pub fn add_worker(&self, name: &str) -> Result<()> {
        {
            let mut workers = self.workers.write();
            if !workers.contains_key(name) {
                let worker = Arc::new(CacheWorker::new(
                    name,
                    self.worker_config.clone(),
                    self.clock.clone(),
                )?);
                workers.insert(name.to_string(), worker);
            }
        }
        // Seat (or revive) the ring node only once the worker is reachable,
        // so a concurrent read routed to the new seat always finds it.
        self.ring.add_node(name);
        self.metrics.counter("worker_joins").inc();
        Ok(())
    }

    /// Decommissions a worker gracefully: its seat leaves the ring
    /// immediately (keys rehash to successors and re-fetch on next read)
    /// and its cache memory is released.
    pub fn remove_worker(&self, name: &str) -> bool {
        self.ring.remove_node(name);
        let removed = self.workers.write().remove(name).is_some();
        if removed {
            self.metrics.counter("worker_leaves").inc();
        }
        removed
    }

    /// Simulates a hard crash: the worker's cached data is lost and its ring
    /// seat is dropped with **no grace period** — the lazy window only makes
    /// sense when the returning node still has its data. The worker stays
    /// known so [`DistCacheTier::add_worker`] can re-seat it (restart with an
    /// empty cache).
    pub fn worker_crash(&self, name: &str) -> bool {
        let Some(worker) = self.worker(name) else {
            return false;
        };
        self.ring.remove_node(name);
        worker.cache().clear();
        self.metrics.counter("worker_crashes").inc();
        true
    }

    /// Marks a worker offline; its ring seat is kept for the lazy window.
    pub fn worker_offline(&self, name: &str) {
        self.ring.mark_offline(name);
    }

    /// Brings a worker back online.
    pub fn worker_online(&self, name: &str) {
        self.ring.mark_online(name);
    }

    /// Removes workers whose lazy grace period has expired: their seats
    /// leave the ring (keys rehash permanently) and their caches are
    /// dropped. Also called from the read path, so expiry needs no
    /// background job.
    pub fn sweep_expired(&self) -> Vec<String> {
        let swept = self.ring.sweep_expired();
        if !swept.is_empty() {
            let mut workers = self.workers.write();
            for name in &swept {
                workers.remove(name);
            }
        }
        swept
    }

    /// Registers a file so the bare-path [`RemoteSource`] view can resolve
    /// its version and length (a catalog would normally provide these).
    pub fn register_file(&self, path: &str, version: u64, length: u64) {
        self.known_files
            .write()
            .insert(path.to_string(), (version, length));
    }

    /// Point-in-time stats.
    pub fn stats(&self) -> TierStats {
        TierStats {
            served_by_tier: self.metrics.counter("served_by_tier").get(),
            origin_fallbacks: self.metrics.counter("origin_fallbacks").get(),
            failed_reads: self.metrics.counter("failed_reads").get(),
            worker_errors: self.metrics.counter("worker_errors").get(),
            failover_reads: self.metrics.counter("failover_reads").get(),
            replica_warms: self.metrics.counter("replica_warms").get(),
            bytes_cached: self
                .workers
                .read()
                .values()
                .map(|w| w.cache().index().total_bytes())
                .sum(),
        }
    }

    /// Reads `len` bytes at `offset` of `file` through the tier: the file's
    /// replica workers are tried in ring order; a worker that is occupied,
    /// missing, **or errors** fails over to the next candidate; when every
    /// candidate is exhausted the read goes to origin directly, bypassing
    /// the cache (§7's hybrid fallback). A read only fails when origin
    /// itself fails.
    pub fn read(&self, file: &SourceFile, offset: u64, len: u64) -> Result<Bytes> {
        // Lazy data movement (§7): purge seats whose offline grace period
        // has expired, so their keys rehash to surviving workers.
        self.sweep_expired();
        let candidates = self.ring.candidates(&file.path, self.max_replicas);
        let mut errors = 0u64;
        for (rank, name) in candidates.iter().enumerate() {
            let Some(worker) = self.worker(name) else {
                // The worker left the cluster after the candidate snapshot.
                continue;
            };
            let Some(_guard) = worker.try_acquire() else {
                self.metrics.counter("occupied_probes").inc();
                continue;
            };
            let mut hop = self.tracer.span("distcache_hop");
            if hop.is_recording() {
                hop.annotate("worker", name);
                hop.annotate("path", &file.path);
                hop.annotate("len", len);
            }
            let out = worker.serve(file, offset, len, self.origin.as_ref());
            match out {
                Ok(bytes) => {
                    self.record_tier_serve(errors);
                    hop.finish();
                    drop(_guard);
                    if self.replicate_on_read && rank == 0 {
                        self.warm_secondary(&candidates, file, &[(offset, len)]);
                    }
                    return Ok(bytes);
                }
                Err(e) => {
                    // The headline churn bug used to live here: the first
                    // acquired worker's error was returned verbatim even
                    // with a healthy secondary and origin available.
                    errors += 1;
                    self.metrics.counter("worker_errors").inc();
                    hop.annotate("status", e.kind());
                    hop.finish();
                }
            }
        }
        // Every candidate occupied, missing, offline, or erroring: origin.
        let out = self.origin.read(&file.path, offset, len).and_then(|bytes| {
            Self::check_origin_len(file, offset, len, &bytes)?;
            Ok(bytes)
        });
        self.record_origin_outcome(&out.as_ref().map(|_| ()), errors);
        out
    }

    /// Reads a whole fragment batch of `file` through the tier as ONE hop:
    /// the batch is routed once, occupies one worker request slot, and the
    /// serving worker classifies and fetches all fragments together via its
    /// cache's vectored read path. Worker errors fail the batch over to the
    /// next candidate, then to origin (one `read_ranges` call,
    /// length-guarded per fragment).
    pub fn read_multi(&self, file: &SourceFile, ranges: &[(u64, u64)]) -> Result<Vec<Bytes>> {
        if ranges.is_empty() {
            return Ok(Vec::new());
        }
        self.sweep_expired();
        let candidates = self.ring.candidates(&file.path, self.max_replicas);
        let mut errors = 0u64;
        for (rank, name) in candidates.iter().enumerate() {
            let Some(worker) = self.worker(name) else {
                continue;
            };
            let Some(_guard) = worker.try_acquire() else {
                self.metrics.counter("occupied_probes").inc();
                continue;
            };
            let mut hop = self.tracer.span("distcache_hop");
            if hop.is_recording() {
                hop.annotate("worker", name);
                hop.annotate("path", &file.path);
                hop.annotate("fragments", ranges.len());
                hop.annotate("len", ranges.iter().map(|&(_, l)| l).sum::<u64>());
            }
            let out = worker.serve_multi(file, ranges, self.origin.as_ref());
            match out {
                Ok(parts) => {
                    self.record_tier_serve(errors);
                    hop.finish();
                    drop(_guard);
                    if self.replicate_on_read && rank == 0 {
                        self.warm_secondary(&candidates, file, ranges);
                    }
                    return Ok(parts);
                }
                Err(e) => {
                    errors += 1;
                    self.metrics.counter("worker_errors").inc();
                    hop.annotate("status", e.kind());
                    hop.finish();
                }
            }
        }
        let out = self
            .origin
            .read_ranges(&file.path, ranges)
            .and_then(|chunks| {
                if chunks.len() != ranges.len() {
                    return Err(Error::Decode(format!(
                        "origin returned {} chunks for a {}-range batch of {}",
                        chunks.len(),
                        ranges.len(),
                        file.path
                    )));
                }
                for (&(offset, len), bytes) in ranges.iter().zip(&chunks) {
                    Self::check_origin_len(file, offset, len, bytes)?;
                }
                Ok(chunks)
            });
        self.record_origin_outcome(&out.as_ref().map(|_| ()), errors);
        out
    }

    /// Books a successful worker serve (and the failover that led to it).
    fn record_tier_serve(&self, prior_errors: u64) {
        self.metrics.counter("served_by_tier").inc();
        if prior_errors > 0 {
            self.metrics.counter("failover_reads").inc();
        }
    }

    /// Books the outcome of an origin fallback attempt. Every tier read ends
    /// in exactly one of `served_by_tier`, `origin_fallbacks`, or
    /// `failed_reads` — the conservation law the simtest oracle checks.
    fn record_origin_outcome(&self, outcome: &std::result::Result<(), &Error>, prior_errors: u64) {
        match outcome {
            Ok(()) => {
                self.metrics.counter("origin_fallbacks").inc();
                if prior_errors > 0 {
                    self.metrics.counter("failover_reads").inc();
                }
            }
            Err(_) => {
                self.metrics.counter("failed_reads").inc();
            }
        }
    }

    /// Replicate-on-read: after a primary-served read, warm the key's second
    /// candidate by reading the same ranges through its cache (a no-op when
    /// already warm). Best-effort — an occupied or failing secondary is
    /// simply skipped; the next read retries.
    fn warm_secondary(&self, candidates: &[String], file: &SourceFile, ranges: &[(u64, u64)]) {
        let Some(name) = candidates.get(1) else {
            return;
        };
        let Some(worker) = self.worker(name) else {
            return;
        };
        let Some(_guard) = worker.try_acquire() else {
            return;
        };
        let ok = if let [(offset, len)] = ranges {
            worker
                .serve(file, *offset, *len, self.origin.as_ref())
                .is_ok()
        } else {
            worker
                .serve_multi(file, ranges, self.origin.as_ref())
                .is_ok()
        };
        if ok {
            self.metrics.counter("replica_warms").inc();
        }
    }

    /// The fallback bypasses every cache-layer checksum, so the only guard
    /// against a truncated origin response is the registered file length:
    /// anything but an exact (EOF-clamped) range is an error.
    fn check_origin_len(file: &SourceFile, offset: u64, len: u64, bytes: &Bytes) -> Result<()> {
        let want = offset.saturating_add(len).min(file.length) - offset.min(file.length);
        if bytes.len() as u64 != want {
            return Err(Error::Decode(format!(
                "origin returned {} bytes for a {want}-byte range of {}",
                bytes.len(),
                file.path
            )));
        }
        Ok(())
    }
}

/// The tier is itself a [`RemoteSource`], so compute-layer caches can stack
/// on top (Figure 6's full three-layer architecture). Files must be
/// registered via [`DistCacheTier::register_file`] (or the read falls back
/// to origin directly).
impl RemoteSource for DistCacheTier {
    fn read(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        let known = self.known_files.read().get(path).copied();
        match known {
            Some((version, length)) => {
                let file = SourceFile::new(path, version, length, CacheScope::Global);
                DistCacheTier::read(self, &file, offset, len)
            }
            None => {
                self.metrics.counter("unregistered_reads").inc();
                self.origin.read(path, offset, len)
            }
        }
    }

    /// Batched tier reads: the file is resolved once and the whole batch
    /// (the compute layer's coalesced missing runs) travels as ONE tier hop
    /// — one routing decision, one worker request slot, one vectored read
    /// on the serving worker's cache.
    fn read_ranges(&self, path: &str, ranges: &[(u64, u64)]) -> Result<Vec<Bytes>> {
        let known = self.known_files.read().get(path).copied();
        match known {
            Some((version, length)) => {
                let file = SourceFile::new(path, version, length, CacheScope::Global);
                DistCacheTier::read_multi(self, &file, ranges)
            }
            None => {
                self.metrics.counter("unregistered_reads").inc();
                self.origin.read_ranges(path, ranges)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgecache_common::clock::SimClock;
    use edgecache_common::ByteSize;
    use parking_lot::Mutex;
    use std::time::Duration;

    struct CountingOrigin {
        reads: Mutex<u64>,
        fail: Mutex<bool>,
    }

    impl CountingOrigin {
        fn new() -> Arc<Self> {
            Arc::new(Self {
                reads: Mutex::new(0),
                fail: Mutex::new(false),
            })
        }

        fn set_failing(&self, fail: bool) {
            *self.fail.lock() = fail;
        }
    }

    impl RemoteSource for CountingOrigin {
        fn read(&self, p: &str, offset: u64, len: u64) -> Result<Bytes> {
            *self.reads.lock() += 1;
            if *self.fail.lock() {
                return Err(Error::Other(format!("origin down for {p}")));
            }
            Ok(Bytes::from(
                (offset..offset + len)
                    .map(|i| (i % 253) as u8)
                    .collect::<Vec<u8>>(),
            ))
        }
    }

    fn tier(workers: usize, max_inflight: u32) -> (DistCacheTier, Arc<CountingOrigin>, SimClock) {
        tier_with(workers, max_inflight, false)
    }

    fn tier_with(
        workers: usize,
        max_inflight: u32,
        replicate_on_read: bool,
    ) -> (DistCacheTier, Arc<CountingOrigin>, SimClock) {
        let clock = SimClock::new();
        let origin = CountingOrigin::new();
        let tier = DistCacheTier::new(
            TierConfig {
                workers,
                max_replicas: 2,
                replicate_on_read,
                worker: WorkerCacheConfig {
                    page_size: ByteSize::kib(4),
                    max_inflight,
                    ..Default::default()
                },
                ring: RingConfig::default(),
            },
            origin.clone(),
            Arc::new(clock.clone()),
        )
        .unwrap();
        (tier, origin, clock)
    }

    fn file(path: &str) -> SourceFile {
        SourceFile::new(path, 1, 1 << 20, CacheScope::Global)
    }

    #[test]
    fn repeated_reads_are_served_by_one_worker_cache() {
        let (tier, origin, _) = tier(4, 64);
        let f = file("/hot");
        let a = tier.read(&f, 100, 1000).unwrap();
        let b = tier.read(&f, 100, 1000).unwrap();
        assert_eq!(a, b);
        assert_eq!(*origin.reads.lock(), 1, "page fetched once");
        // Exactly one worker holds the file's pages.
        let holders = tier
            .worker_names()
            .iter()
            .filter(|w| !tier.worker(w).unwrap().cache().index().is_empty())
            .count();
        assert_eq!(holders, 1);
        assert_eq!(tier.stats().served_by_tier, 2);
    }

    #[test]
    fn occupied_primary_spills_to_secondary_then_origin() {
        let (tier, origin, _) = tier(3, 1);
        let f = file("/k");
        let (primary, secondary) = {
            let c = tier.ring.candidates(&f.path, 2);
            (c[0].clone(), c[1].clone())
        };
        // Saturate the primary.
        let p = tier.worker(&primary).unwrap();
        let _hold_primary = p.try_acquire().unwrap();
        tier.read(&f, 0, 100).unwrap();
        assert!(
            !tier.worker(&secondary).unwrap().cache().index().is_empty(),
            "secondary served the spill"
        );
        // Saturate both: origin fallback, nothing cached anywhere new.
        let s = tier.worker(&secondary).unwrap();
        let _hold_secondary = s.try_acquire().unwrap();
        let before = *origin.reads.lock();
        tier.read(&f, 0, 100).unwrap();
        assert_eq!(tier.stats().origin_fallbacks, 1);
        assert_eq!(*origin.reads.lock(), before + 1);
    }

    #[test]
    fn worker_error_fails_over_to_secondary() {
        // Regression for the headline churn bug: `read` used to return the
        // first acquired worker's error without trying the remaining replica
        // or origin. Kill the primary's serve path and the read must still
        // succeed via the secondary.
        let (tier, origin, _) = tier(3, 64);
        let f = file("/fo");
        let (primary, secondary) = {
            let c = tier.ring.candidates(&f.path, 2);
            (c[0].clone(), c[1].clone())
        };
        tier.worker(&primary).unwrap().set_failing(true);
        let bytes = tier.read(&f, 0, 100).unwrap();
        assert_eq!(bytes.len(), 100);
        assert!(
            !tier.worker(&secondary).unwrap().cache().index().is_empty(),
            "secondary served the failover"
        );
        let stats = tier.stats();
        assert_eq!(stats.served_by_tier, 1, "counted as a tier serve");
        assert_eq!(stats.worker_errors, 1);
        assert_eq!(stats.failover_reads, 1);
        assert_eq!(stats.origin_fallbacks, 0);
        assert_eq!(*origin.reads.lock(), 1, "secondary fetched the page once");
    }

    #[test]
    fn read_multi_fails_over_to_secondary_then_origin() {
        let (tier, origin, _) = tier(3, 64);
        let f = file("/fom");
        let ranges = [(0u64, 500u64), (10_000, 700)];
        let c = tier.ring.candidates(&f.path, 2);
        tier.worker(&c[0]).unwrap().set_failing(true);
        let parts = tier.read_multi(&f, &ranges).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(tier.stats().worker_errors, 1);
        assert_eq!(tier.stats().failover_reads, 1);
        assert_eq!(tier.stats().served_by_tier, 1);
        // Both candidates failing: the whole batch falls back to origin.
        tier.worker(&c[1]).unwrap().set_failing(true);
        let before = *origin.reads.lock();
        let parts = tier.read_multi(&f, &ranges).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(tier.stats().origin_fallbacks, 1);
        assert_eq!(tier.stats().failover_reads, 2);
        assert_eq!(
            *origin.reads.lock(),
            before + 2,
            "one origin read per fragment"
        );
    }

    #[test]
    fn served_by_tier_counts_only_successful_serves() {
        // Regression: `served_by_tier` used to be incremented before the
        // serve outcome, so failed serves inflated the stat.
        let (tier, _, _) = tier(2, 64);
        let f = file("/cnt");
        for w in tier.worker_names() {
            tier.worker(&w).unwrap().set_failing(true);
        }
        tier.read(&f, 0, 100).unwrap(); // Served by origin.
        let stats = tier.stats();
        assert_eq!(stats.served_by_tier, 0, "no worker served anything");
        assert_eq!(stats.origin_fallbacks, 1);
        assert_eq!(stats.worker_errors, 2);
    }

    #[test]
    fn read_fails_only_when_workers_and_origin_all_fail() {
        let (tier, origin, _) = tier(2, 64);
        let f = file("/dead");
        for w in tier.worker_names() {
            tier.worker(&w).unwrap().set_failing(true);
        }
        origin.set_failing(true);
        assert!(tier.read(&f, 0, 100).is_err());
        assert_eq!(tier.stats().failed_reads, 1);
        // Origin recovers: the same read now succeeds (workers still sick).
        origin.set_failing(false);
        tier.read(&f, 0, 100).unwrap();
        let stats = tier.stats();
        assert_eq!(stats.failed_reads, 1);
        assert_eq!(stats.origin_fallbacks, 1);
        // Conservation: every read ended in exactly one bucket.
        assert_eq!(
            stats.served_by_tier + stats.origin_fallbacks + stats.failed_reads,
            2
        );
    }

    #[test]
    fn workers_join_and_leave_at_runtime() {
        let (tier, _, _) = tier(2, 64);
        assert_eq!(tier.worker_names(), vec!["cw0", "cw1"]);
        tier.add_worker("cw2").unwrap();
        assert_eq!(tier.worker_names(), vec!["cw0", "cw1", "cw2"]);
        assert_eq!(tier.metrics().counter("worker_joins").get(), 1);
        // The new worker owns some keys and serves them.
        let mut served_by_new = 0;
        for i in 0..64 {
            let f = file(&format!("/j{i}"));
            tier.read(&f, 0, 64).unwrap();
            if tier.ring.candidates(&f.path, 1) == vec!["cw2".to_string()] {
                served_by_new += 1;
            }
        }
        assert!(served_by_new > 0, "the joined worker owns no keys");
        assert!(!tier.worker("cw2").unwrap().cache().index().is_empty());
        // Graceful leave: keys rehash immediately, reads keep succeeding.
        assert!(tier.remove_worker("cw2"));
        assert_eq!(tier.worker_names(), vec!["cw0", "cw1"]);
        for i in 0..64 {
            tier.read(&file(&format!("/j{i}")), 0, 64).unwrap();
        }
        let stats = tier.stats();
        assert_eq!(stats.failed_reads, 0);
        assert_eq!(stats.served_by_tier, 128);
        assert!(!tier.remove_worker("cw2"), "double-remove is a no-op");
    }

    #[test]
    fn crash_drops_data_and_seat_then_rejoins_cold() {
        let (tier, origin, _) = tier(3, 64);
        let f = file("/crash");
        tier.read(&f, 0, 100).unwrap();
        let home = tier.ring.candidates(&f.path, 1)[0].clone();
        assert!(tier.worker_crash(&home));
        // The seat is gone immediately (no grace: the data died with it) and
        // the cache was wiped.
        assert!(!tier.ring.candidates(&f.path, 3).contains(&home));
        assert!(tier.worker(&home).unwrap().cache().index().is_empty());
        // Reads keep succeeding: the key rehashes and re-fetches.
        let before = *origin.reads.lock();
        tier.read(&f, 0, 100).unwrap();
        assert_eq!(*origin.reads.lock(), before + 1, "new owner re-fetched");
        // Restart: the worker rejoins with an empty cache and resumes
        // ownership of its range.
        tier.add_worker(&home).unwrap();
        assert!(tier.ring.is_online(&home));
        tier.read(&f, 0, 100).unwrap();
        assert_eq!(tier.stats().failed_reads, 0);
        assert!(!tier.worker_crash("nope"), "unknown worker is a no-op");
    }

    #[test]
    fn replicate_on_read_warms_the_secondary_for_failover_hits() {
        // Two workers: with the primary down there is no third candidate for
        // replicate-on-read to warm, so origin-read counts isolate the
        // failover hit itself.
        let (tier, origin, _) = tier_with(2, 64, true);
        let f = file("/warm");
        let (primary, secondary) = {
            let c = tier.ring.candidates(&f.path, 2);
            (c[0].clone(), c[1].clone())
        };
        tier.read(&f, 0, 100).unwrap();
        assert_eq!(tier.stats().replica_warms, 1);
        assert!(
            !tier.worker(&secondary).unwrap().cache().index().is_empty(),
            "secondary warmed deliberately"
        );
        // Primary goes down: the secondary serves a warm hit — origin is
        // never touched again.
        let before = *origin.reads.lock();
        tier.worker_offline(&primary);
        tier.read(&f, 0, 100).unwrap();
        assert_eq!(*origin.reads.lock(), before, "failover read was a hit");
        // Same story for a hard primary error.
        tier.worker_online(&primary);
        tier.worker(&primary).unwrap().set_failing(true);
        tier.read(&f, 0, 100).unwrap();
        assert_eq!(*origin.reads.lock(), before, "error failover was a hit");
    }

    #[test]
    fn offline_worker_is_skipped_and_recovers_lazily() {
        let (tier, _, clock) = tier(3, 64);
        let f = file("/x");
        tier.read(&f, 0, 100).unwrap();
        let home = tier.ring.candidates(&f.path, 1)[0].clone();
        tier.worker_offline(&home);
        clock.advance(Duration::from_secs(60));
        assert!(
            tier.sweep_expired().is_empty(),
            "grace period holds the seat"
        );
        tier.read(&f, 0, 100).unwrap(); // Served by the next candidate.
        tier.worker_online(&home);
        // The original worker still has its pages: an immediate hit.
        let hits_before = tier.worker(&home).unwrap().cache().stats().hits;
        tier.read(&f, 0, 100).unwrap();
        assert_eq!(
            tier.worker(&home).unwrap().cache().stats().hits,
            hits_before + 1
        );
    }

    #[test]
    fn expired_offline_worker_is_purged_on_read() {
        let (tier, _, clock) = tier(3, 64);
        let f = file("/x");
        tier.read(&f, 0, 100).unwrap();
        let home = tier.ring.candidates(&f.path, 1)[0].clone();
        tier.worker_offline(&home);
        // Past the grace period the read path itself sweeps the seat: the
        // key rehashes to the surviving workers permanently, which re-fetch
        // on the next read (ownership-change re-fetch), and the expired
        // worker's cache is dropped from the map entirely.
        clock.advance(Duration::from_secs(11 * 60));
        tier.read(&f, 0, 100).unwrap();
        assert!(
            !tier.ring.candidates(&f.path, 3).contains(&home),
            "expired seat no longer routes"
        );
        assert!(
            tier.worker(&home).is_none(),
            "expired worker released its cache"
        );
        let served = tier
            .worker_names()
            .iter()
            .filter(|w| **w != home && !tier.worker(w).unwrap().cache().index().is_empty())
            .count();
        assert!(served >= 1, "a surviving worker now caches the key");
    }

    #[test]
    fn all_workers_offline_means_origin_only() {
        let (tier, origin, _) = tier(2, 64);
        for w in tier.worker_names() {
            tier.worker_offline(&w);
        }
        tier.read(&file("/y"), 0, 50).unwrap();
        assert_eq!(tier.stats().origin_fallbacks, 1);
        assert_eq!(*origin.reads.lock(), 1);
    }

    #[test]
    fn remote_source_view_stacks_under_a_compute_cache() {
        use edgecache_core::config::CacheConfig;
        use edgecache_core::manager::CacheManager;
        use edgecache_pagestore::MemoryPageStore;

        let (tier, origin, _) = tier(3, 64);
        tier.register_file("/wh/t/f", 1, 1 << 20);
        let compute =
            CacheManager::builder(CacheConfig::default().with_page_size(ByteSize::kib(4)))
                .with_store(Arc::new(MemoryPageStore::new()), ByteSize::mib(64).as_u64())
                .build()
                .unwrap();
        let f = file("/wh/t/f");
        // Three layers: compute cache → tier worker cache → origin.
        let a = compute.read(&f, 0, 2048, &tier).unwrap();
        let b = compute.read(&f, 0, 2048, &tier).unwrap();
        assert_eq!(a, b);
        assert_eq!(*origin.reads.lock(), 1, "origin touched once");
        assert_eq!(compute.stats().hits, 1, "second read hit at compute layer");
        assert_eq!(tier.stats().served_by_tier, 1, "tier served only the miss");
    }

    #[test]
    fn batched_reads_travel_as_one_hop() {
        let (tier, origin, _) = tier(4, 64);
        let f = file("/batch");
        let ranges = [(0u64, 1000u64), (8192, 500), (100_000, 2000)];
        let chunks = tier.read_multi(&f, &ranges).unwrap();
        assert_eq!(chunks.len(), 3);
        for (&(offset, len), chunk) in ranges.iter().zip(&chunks) {
            let expect: Vec<u8> = (offset..offset + len).map(|i| (i % 253) as u8).collect();
            assert_eq!(chunk.as_ref(), expect.as_slice());
        }
        assert_eq!(tier.stats().served_by_tier, 1, "one hop for the batch");
        // Exactly one worker holds every fragment's pages.
        let holders = tier
            .worker_names()
            .iter()
            .filter(|w| !tier.worker(w).unwrap().cache().index().is_empty())
            .count();
        assert_eq!(holders, 1);
        // A second identical batch is all hits on the same worker.
        let again = tier.read_multi(&f, &ranges).unwrap();
        assert_eq!(again, chunks);
        let reads = *origin.reads.lock();
        tier.read_multi(&f, &ranges).unwrap();
        assert_eq!(*origin.reads.lock(), reads, "warm batch never hits origin");
    }

    #[test]
    fn batched_origin_fallback_guards_every_fragment() {
        let (tier, origin, _) = tier(2, 64);
        for w in tier.worker_names() {
            tier.worker_offline(&w);
        }
        let f = file("/fb");
        let ranges = [(0u64, 100u64), (5000, 300)];
        let chunks = tier.read_multi(&f, &ranges).unwrap();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[1].len(), 300);
        assert_eq!(tier.stats().origin_fallbacks, 1, "one fallback per batch");
        assert_eq!(*origin.reads.lock(), 2, "origin read per fragment");
        // This origin never clamps at EOF, so the per-fragment length guard
        // must reject a range extending past the registered length.
        assert!(tier.read_multi(&f, &[(f.length - 10, 100)]).is_err());
        assert_eq!(
            tier.stats().failed_reads,
            1,
            "a guarded fallback failure is a failed read, not a fallback"
        );
    }

    #[test]
    fn stacked_compute_misses_batch_through_the_tier() {
        use edgecache_core::config::CacheConfig;
        use edgecache_core::manager::CacheManager;
        use edgecache_pagestore::MemoryPageStore;

        let (tier, origin, _) = tier(3, 64);
        tier.register_file("/wh/t/v", 1, 1 << 20);
        // One fetch lane so the compute layer's missing runs leave as a
        // single read_ranges call — the tier must serve it as one hop.
        let compute = CacheManager::builder(
            CacheConfig::default()
                .with_page_size(ByteSize::kib(4))
                .with_max_concurrent_fetches(1),
        )
        .with_store(Arc::new(MemoryPageStore::new()), ByteSize::mib(64).as_u64())
        .build()
        .unwrap();
        let f = file("/wh/t/v");
        // A vectored compute-layer read with two far-apart fragments: the
        // misses reach the tier as one read_ranges batch → one hop.
        let out = compute
            .read_multi(&f, &[(0, 2048), (512 * 1024, 2048)], &tier)
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(tier.stats().served_by_tier, 1, "batched hop");
        assert!(*origin.reads.lock() >= 1);
        let warm = compute
            .read_multi(&f, &[(0, 2048), (512 * 1024, 2048)], &tier)
            .unwrap();
        assert_eq!(warm, out);
        assert_eq!(tier.stats().served_by_tier, 1, "warm batch stays local");
    }

    #[test]
    fn unregistered_paths_fall_back_to_origin() {
        let (tier, origin, _) = tier(2, 64);
        let src: &dyn RemoteSource = &tier;
        src.read("/unknown", 0, 10).unwrap();
        assert_eq!(*origin.reads.lock(), 1);
        assert_eq!(tier.metrics().counter("unregistered_reads").get(), 1);
    }

    #[test]
    fn invalid_configs_rejected() {
        let clock: SharedClock = Arc::new(SimClock::new());
        let origin = CountingOrigin::new();
        assert!(DistCacheTier::new(
            TierConfig {
                workers: 0,
                ..Default::default()
            },
            origin.clone(),
            clock.clone(),
        )
        .is_err());
        assert!(DistCacheTier::new(
            TierConfig {
                max_replicas: 0,
                ..Default::default()
            },
            origin,
            clock,
        )
        .is_err());
    }
}
