//! A distributed cache tier built from edgecache workers.
//!
//! Figure 6 of the paper places a *distributed cache layer* between compute
//! and storage: "Alluxio local cache is integrated into each cache worker
//! node to serve the traffic". This crate is that layer:
//!
//! * [`CacheWorker`] — one cache-worker node: a local cache manager plus an
//!   in-flight-request bound (its "occupied" signal).
//! * [`DistCacheTier`] — the tier: a consistent-hash ring routes each file
//!   to at most [`TierConfig::max_replicas`] candidate workers (the paper
//!   caps this at **two**, §7); when every candidate is occupied or offline
//!   the request **falls back to origin storage directly, bypassing the
//!   cache** — the hybrid the paper found "more robust and lower latency
//!   than simply increasing the number of replicas".
//! * A worker that **errors** mid-serve (degraded node) fails the read over
//!   to the next candidate, then to origin — mcrouter-style failover (§5):
//!   a read only fails when origin itself is down.
//! * Node restarts are handled with **lazy data movement** (§7): an offline
//!   worker keeps its ring seat for a grace period, so a container bounce
//!   moves no data. Membership is dynamic: workers
//!   [join](tier::DistCacheTier::add_worker) (scale-out or restart-after-
//!   crash, warming lazily), [leave](tier::DistCacheTier::remove_worker)
//!   gracefully, or [crash](tier::DistCacheTier::worker_crash) (data lost,
//!   seat dropped with no grace); expired seats are swept on the read path
//!   and keys rehash to survivors.
//! * Optional [replicate-on-read](tier::TierConfig::replicate_on_read)
//!   warms a key's second candidate deliberately, so failover during churn
//!   serves warm hits instead of cold misses.
//!
//! [`DistCacheTier`] itself implements
//! [`RemoteSource`](edgecache_core::manager::RemoteSource), so a
//! compute-layer local cache can stack directly on top of the tier —
//! the full three-layer architecture of Figure 6.

pub mod tier;
pub mod worker;

pub use tier::{DistCacheTier, TierConfig, TierStats};
pub use worker::{CacheWorker, WorkerCacheConfig};
