//! The `colf` writer: rows in, a columnar file out.

use bytes::{BufMut, Bytes, BytesMut};
use edgecache_common::error::{Error, Result};

use crate::encoding::encode_best;
use crate::format::{ChunkMeta, FileMetadata, RowGroupMeta, Schema, MAGIC};
use crate::types::{ColumnData, Value};

/// Writes a `colf` file by accumulating rows into row groups.
///
/// # Examples
///
/// ```
/// use edgecache_columnar::{ColfWriter, ColumnType, Schema, Value};
///
/// let schema = Schema::new(vec![("id", ColumnType::Int64), ("name", ColumnType::Utf8)]);
/// let mut w = ColfWriter::new(schema, 1000);
/// w.push_row(vec![Value::Int64(1), Value::Utf8("a".into())]).unwrap();
/// w.push_row(vec![Value::Int64(2), Value::Utf8("b".into())]).unwrap();
/// let file = w.finish().unwrap();
/// assert!(file.len() > 20);
/// ```
pub struct ColfWriter {
    schema: Schema,
    rows_per_group: usize,
    /// The file body being built (starts with the magic).
    body: BytesMut,
    /// Current row group's column builders.
    current: Vec<ColumnData>,
    current_rows: usize,
    row_groups: Vec<RowGroupMeta>,
    total_rows: u64,
}

impl ColfWriter {
    /// Creates a writer that closes a row group every `rows_per_group` rows.
    pub fn new(schema: Schema, rows_per_group: usize) -> Self {
        assert!(rows_per_group > 0, "row group must hold at least one row");
        let current = schema
            .columns
            .iter()
            .map(|c| ColumnData::empty(c.ty))
            .collect();
        let mut body = BytesMut::new();
        body.put_slice(MAGIC);
        Self {
            schema,
            rows_per_group,
            body,
            current,
            current_rows: 0,
            row_groups: Vec::new(),
            total_rows: 0,
        }
    }

    /// The writer's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Appends one row. Values must match the schema's arity and types.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(Error::InvalidArgument(format!(
                "row has {} values, schema has {} columns",
                row.len(),
                self.schema.len()
            )));
        }
        for (value, (col, schema)) in row
            .into_iter()
            .zip(self.current.iter_mut().zip(&self.schema.columns))
        {
            if value.column_type() != schema.ty {
                return Err(Error::InvalidArgument(format!(
                    "column `{}` expects {}, got {}",
                    schema.name,
                    schema.ty,
                    value.column_type()
                )));
            }
            col.push(value);
        }
        self.current_rows += 1;
        self.total_rows += 1;
        if self.current_rows >= self.rows_per_group {
            self.flush_group();
        }
        Ok(())
    }

    fn flush_group(&mut self) {
        if self.current_rows == 0 {
            return;
        }
        let mut chunks = Vec::with_capacity(self.schema.len());
        for col in &self.current {
            let (min, max) = match col.min_max() {
                Some((a, b)) => (Some(a), Some(b)),
                None => (None, None),
            };
            let (encoding, bytes) = encode_best(col);
            chunks.push(ChunkMeta {
                offset: self.body.len() as u64,
                len: bytes.len() as u64,
                encoding,
                min,
                max,
            });
            self.body.put_slice(&bytes);
        }
        self.row_groups.push(RowGroupMeta {
            rows: self.current_rows as u64,
            chunks,
        });
        for (col, schema) in self.current.iter_mut().zip(&self.schema.columns) {
            *col = ColumnData::empty(schema.ty);
        }
        self.current_rows = 0;
    }

    /// Total rows pushed so far.
    pub fn rows(&self) -> u64 {
        self.total_rows
    }

    /// Finalizes the file: flushes the open row group, writes the footer and
    /// tail, and returns the complete file bytes.
    pub fn finish(mut self) -> Result<Bytes> {
        self.flush_group();
        let meta = FileMetadata {
            schema: self.schema,
            row_groups: self.row_groups,
            total_rows: self.total_rows,
            footer_len: 0,
        };
        let footer = meta.encode();
        let mut body = self.body;
        let footer_len = footer.len() as u64;
        body.put_slice(&footer);
        body.put_u64_le(footer_len);
        body.put_slice(MAGIC);
        Ok(body.freeze())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ColumnType;

    fn schema() -> Schema {
        Schema::new(vec![("id", ColumnType::Int64), ("tag", ColumnType::Utf8)])
    }

    #[test]
    fn file_structure_has_magic_head_and_tail() {
        let mut w = ColfWriter::new(schema(), 10);
        w.push_row(vec![Value::Int64(1), Value::Utf8("x".into())])
            .unwrap();
        let file = w.finish().unwrap();
        assert_eq!(&file[..4], MAGIC);
        assert_eq!(&file[file.len() - 4..], MAGIC);
        let footer_len =
            u64::from_le_bytes(file[file.len() - 12..file.len() - 4].try_into().unwrap());
        assert!(footer_len > 0 && (footer_len as usize) < file.len());
    }

    #[test]
    fn row_groups_split_at_boundary() {
        let mut w = ColfWriter::new(schema(), 3);
        for i in 0..7 {
            w.push_row(vec![Value::Int64(i), Value::Utf8(format!("r{i}"))])
                .unwrap();
        }
        assert_eq!(w.rows(), 7);
        let file = w.finish().unwrap();
        let footer_len =
            u64::from_le_bytes(file[file.len() - 12..file.len() - 4].try_into().unwrap());
        let footer_start = file.len() - 12 - footer_len as usize;
        let meta = FileMetadata::decode(&file[footer_start..file.len() - 12]).unwrap();
        assert_eq!(meta.row_groups.len(), 3); // 3 + 3 + 1
        assert_eq!(meta.row_groups[2].rows, 1);
        assert_eq!(meta.total_rows, 7);
    }

    #[test]
    fn arity_and_type_mismatches_fail() {
        let mut w = ColfWriter::new(schema(), 10);
        assert!(w.push_row(vec![Value::Int64(1)]).is_err());
        assert!(w
            .push_row(vec![Value::Utf8("x".into()), Value::Utf8("y".into())])
            .is_err());
        assert_eq!(w.rows(), 0);
    }

    #[test]
    fn empty_file_is_valid() {
        let w = ColfWriter::new(schema(), 10);
        let file = w.finish().unwrap();
        let footer_len =
            u64::from_le_bytes(file[file.len() - 12..file.len() - 4].try_into().unwrap());
        let footer_start = file.len() - 12 - footer_len as usize;
        let meta = FileMetadata::decode(&file[footer_start..file.len() - 12]).unwrap();
        assert!(meta.row_groups.is_empty());
        assert_eq!(meta.total_rows, 0);
    }

    #[test]
    fn chunk_stats_are_recorded() {
        let mut w = ColfWriter::new(schema(), 100);
        for i in [5i64, -3, 12] {
            w.push_row(vec![Value::Int64(i), Value::Utf8("t".into())])
                .unwrap();
        }
        let file = w.finish().unwrap();
        let footer_len =
            u64::from_le_bytes(file[file.len() - 12..file.len() - 4].try_into().unwrap());
        let footer_start = file.len() - 12 - footer_len as usize;
        let meta = FileMetadata::decode(&file[footer_start..file.len() - 12]).unwrap();
        let id_chunk = &meta.row_groups[0].chunks[0];
        assert_eq!(id_chunk.min, Some(Value::Int64(-3)));
        assert_eq!(id_chunk.max, Some(Value::Int64(12)));
    }
}
