//! `colf` — a Parquet-like columnar file format.
//!
//! The paper's workloads read "columnar formats such as ORC or Parquet"
//! whose row-group organization and footer metadata drive two cache-relevant
//! behaviours (§2.2, §6.1.1, §7):
//!
//! 1. **Fragmented reads** — predicate pushdown and column projection turn
//!    one logical scan into many small ranged reads (>50 % under 10 KB in
//!    Uber's traces), which is exactly what the page-based cache optimizes.
//! 2. **Metadata parse cost** — footers must be read and deserialized before
//!    any data; in production this consumes up to 30 % of CPU, and caching
//!    the *deserialized* objects saves up to 40 % (§7).
//!
//! `colf` reproduces both: files hold typed column chunks (plain /
//! dictionary / run-length encodings) grouped into row groups with per-chunk
//! min/max statistics, described by a binary footer. The reader works over
//! an abstract [`RangeReader`] so the local cache (or a raw device) can sit
//! underneath, prunes row groups by statistics, and can share an explicit
//! [`MetadataCache`].

pub mod encoding;
pub mod format;
pub mod metacache;
pub mod predicate;
pub mod reader;
pub mod types;
pub mod writer;

pub use format::{ChunkMeta, ColumnSchema, FileMetadata, RowGroupMeta, Schema};
pub use metacache::MetadataCache;
pub use predicate::Predicate;
pub use reader::{ColfReader, RangeReader};
pub use types::{ColumnData, ColumnType, Value};
pub use writer::ColfWriter;
