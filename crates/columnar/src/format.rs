//! File metadata: schema, row-group layout, chunk statistics, and the
//! binary footer encoding.
//!
//! Layout of a `colf` file:
//!
//! ```text
//! [4  bytes] magic "COLF"
//! [...     ] column chunks, row group by row group
//! [...     ] footer (this module's binary encoding of FileMetadata)
//! [8  bytes] footer length (LE)
//! [4  bytes] magic "COLF"
//! ```
//!
//! Like Parquet, a reader must fetch the tail, then the footer, before it
//! can locate any data — the two-round-trip metadata cost that §7's
//! metadata caching eliminates.

use bytes::{BufMut, BytesMut};
use edgecache_common::error::{Error, Result};

use crate::encoding::Encoding;
use crate::types::{ColumnType, Value};

/// File magic.
pub const MAGIC: &[u8; 4] = b"COLF";
/// Length of the fixed tail (footer length + magic).
pub const TAIL_LEN: u64 = 12;

/// One column's name and type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSchema {
    pub name: String,
    pub ty: ColumnType,
}

/// An ordered set of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    pub columns: Vec<ColumnSchema>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    pub fn new(columns: Vec<(&str, ColumnType)>) -> Self {
        Self {
            columns: columns
                .into_iter()
                .map(|(name, ty)| ColumnSchema {
                    name: name.to_string(),
                    ty,
                })
                .collect(),
        }
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

/// Location, encoding, and statistics of one column chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkMeta {
    /// Absolute file offset of the chunk.
    pub offset: u64,
    /// Encoded length in bytes.
    pub len: u64,
    pub encoding: Encoding,
    /// Minimum value in the chunk (None for empty chunks).
    pub min: Option<Value>,
    /// Maximum value in the chunk.
    pub max: Option<Value>,
}

/// One row group: a row count plus one chunk per column.
#[derive(Debug, Clone, PartialEq)]
pub struct RowGroupMeta {
    pub rows: u64,
    pub chunks: Vec<ChunkMeta>,
}

/// The deserialized footer.
#[derive(Debug, Clone, PartialEq)]
pub struct FileMetadata {
    pub schema: Schema,
    pub row_groups: Vec<RowGroupMeta>,
    /// Total rows across row groups.
    pub total_rows: u64,
    /// Size of the serialized footer (set on parse; used for CPU-cost
    /// accounting in the metadata-cache ablation).
    pub footer_len: u64,
}

impl FileMetadata {
    /// Serializes the footer body.
    pub fn encode(&self) -> BytesMut {
        let mut buf = BytesMut::new();
        buf.put_u32_le(self.schema.columns.len() as u32);
        for col in &self.schema.columns {
            buf.put_u32_le(col.name.len() as u32);
            buf.put_slice(col.name.as_bytes());
            buf.put_u8(col.ty.tag());
        }
        buf.put_u32_le(self.row_groups.len() as u32);
        for rg in &self.row_groups {
            buf.put_u64_le(rg.rows);
            buf.put_u32_le(rg.chunks.len() as u32);
            for (chunk, col) in rg.chunks.iter().zip(&self.schema.columns) {
                buf.put_u64_le(chunk.offset);
                buf.put_u64_le(chunk.len);
                buf.put_u8(chunk.encoding.tag());
                encode_stat(&mut buf, col.ty, &chunk.min);
                encode_stat(&mut buf, col.ty, &chunk.max);
            }
        }
        buf
    }

    /// Parses a footer body.
    pub fn decode(data: &[u8]) -> Result<Self> {
        let mut cur = Cursor { buf: data, pos: 0 };
        let n_cols = cur.u32()? as usize;
        if n_cols > 1 << 20 {
            return Err(Error::Decode("absurd column count".into()));
        }
        let mut columns = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let name = cur.str()?;
            let ty = ColumnType::from_tag(cur.u8()?)
                .ok_or_else(|| Error::Decode("bad column type tag".into()))?;
            columns.push(ColumnSchema { name, ty });
        }
        let schema = Schema { columns };
        let n_rgs = cur.u32()? as usize;
        if n_rgs > 1 << 24 {
            return Err(Error::Decode("absurd row-group count".into()));
        }
        let mut row_groups = Vec::with_capacity(n_rgs);
        let mut total_rows = 0u64;
        for _ in 0..n_rgs {
            let rows = cur.u64()?;
            total_rows += rows;
            let n_chunks = cur.u32()? as usize;
            if n_chunks != schema.len() {
                return Err(Error::Decode("chunk count != column count".into()));
            }
            let mut chunks = Vec::with_capacity(n_chunks);
            for col in &schema.columns {
                let offset = cur.u64()?;
                let len = cur.u64()?;
                let encoding = Encoding::from_tag(cur.u8()?)
                    .ok_or_else(|| Error::Decode("bad encoding tag".into()))?;
                let min = decode_stat(&mut cur, col.ty)?;
                let max = decode_stat(&mut cur, col.ty)?;
                chunks.push(ChunkMeta {
                    offset,
                    len,
                    encoding,
                    min,
                    max,
                });
            }
            row_groups.push(RowGroupMeta { rows, chunks });
        }
        Ok(Self {
            schema,
            row_groups,
            total_rows,
            footer_len: data.len() as u64,
        })
    }
}

fn encode_stat(buf: &mut BytesMut, ty: ColumnType, v: &Option<Value>) {
    match v {
        None => buf.put_u8(0),
        Some(v) => {
            buf.put_u8(1);
            match (ty, v) {
                (ColumnType::Int64, Value::Int64(x)) => buf.put_i64_le(*x),
                (ColumnType::Float64, Value::Float64(x)) => buf.put_f64_le(*x),
                (ColumnType::Utf8, Value::Utf8(s)) => {
                    buf.put_u32_le(s.len() as u32);
                    buf.put_slice(s.as_bytes());
                }
                (ColumnType::Bool, Value::Bool(b)) => buf.put_u8(*b as u8),
                _ => panic!("stat type mismatch for {ty}"),
            }
        }
    }
}

fn decode_stat(cur: &mut Cursor<'_>, ty: ColumnType) -> Result<Option<Value>> {
    if cur.u8()? == 0 {
        return Ok(None);
    }
    Ok(Some(match ty {
        ColumnType::Int64 => Value::Int64(cur.i64()?),
        ColumnType::Float64 => Value::Float64(cur.f64()?),
        ColumnType::Utf8 => Value::Utf8(cur.str()?),
        ColumnType::Bool => Value::Bool(cur.u8()? != 0),
    }))
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(Error::Decode("footer truncated".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| Error::Decode("invalid utf8".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metadata() -> FileMetadata {
        FileMetadata {
            schema: Schema::new(vec![
                ("id", ColumnType::Int64),
                ("city", ColumnType::Utf8),
                ("price", ColumnType::Float64),
                ("flag", ColumnType::Bool),
            ]),
            row_groups: vec![RowGroupMeta {
                rows: 100,
                chunks: vec![
                    ChunkMeta {
                        offset: 4,
                        len: 800,
                        encoding: Encoding::Plain,
                        min: Some(Value::Int64(1)),
                        max: Some(Value::Int64(100)),
                    },
                    ChunkMeta {
                        offset: 804,
                        len: 300,
                        encoding: Encoding::Dictionary,
                        min: Some(Value::Utf8("amsterdam".into())),
                        max: Some(Value::Utf8("zagreb".into())),
                    },
                    ChunkMeta {
                        offset: 1104,
                        len: 800,
                        encoding: Encoding::Plain,
                        min: Some(Value::Float64(0.5)),
                        max: Some(Value::Float64(99.9)),
                    },
                    ChunkMeta {
                        offset: 1904,
                        len: 100,
                        encoding: Encoding::RunLength,
                        min: None,
                        max: None,
                    },
                ],
            }],
            total_rows: 100,
            footer_len: 0,
        }
    }

    #[test]
    fn footer_round_trip() {
        let meta = sample_metadata();
        let encoded = meta.encode();
        let decoded = FileMetadata::decode(&encoded).unwrap();
        assert_eq!(decoded.schema, meta.schema);
        assert_eq!(decoded.row_groups, meta.row_groups);
        assert_eq!(decoded.total_rows, 100);
        assert_eq!(decoded.footer_len, encoded.len() as u64);
    }

    #[test]
    fn schema_lookup() {
        let s = sample_metadata().schema;
        assert_eq!(s.index_of("city"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn truncated_footer_fails_cleanly() {
        let encoded = sample_metadata().encode();
        for cut in [0, 1, 5, encoded.len() / 2, encoded.len() - 1] {
            assert!(
                FileMetadata::decode(&encoded[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn garbage_footer_fails_cleanly() {
        let garbage = vec![0xffu8; 64];
        assert!(FileMetadata::decode(&garbage).is_err());
    }

    #[test]
    fn chunk_count_mismatch_rejected() {
        let mut meta = sample_metadata();
        meta.row_groups[0].chunks.pop();
        // Manually construct a corrupt footer via encode of a hacked struct:
        // encode writes the actual (now short) chunk count, which decode
        // rejects against the 4-column schema.
        let encoded = meta.encode();
        assert!(FileMetadata::decode(&encoded).is_err());
    }
}
