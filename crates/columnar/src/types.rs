//! Column types, typed values, and in-memory column vectors.

use std::cmp::Ordering;
use std::fmt;

/// The physical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    Int64,
    Float64,
    Utf8,
    Bool,
}

impl ColumnType {
    /// Stable byte tag used in the footer encoding.
    pub(crate) fn tag(self) -> u8 {
        match self {
            ColumnType::Int64 => 0,
            ColumnType::Float64 => 1,
            ColumnType::Utf8 => 2,
            ColumnType::Bool => 3,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => ColumnType::Int64,
            1 => ColumnType::Float64,
            2 => ColumnType::Utf8,
            3 => ColumnType::Bool,
            _ => return None,
        })
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Int64 => "int64",
            ColumnType::Float64 => "float64",
            ColumnType::Utf8 => "utf8",
            ColumnType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// One typed scalar value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int64(i64),
    Float64(f64),
    Utf8(String),
    Bool(bool),
}

impl Value {
    /// The value's type.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Value::Int64(_) => ColumnType::Int64,
            Value::Float64(_) => ColumnType::Float64,
            Value::Utf8(_) => ColumnType::Utf8,
            Value::Bool(_) => ColumnType::Bool,
        }
    }

    /// Total order within a type (used for min/max statistics and
    /// predicates). Cross-type comparisons return `None`.
    pub fn partial_cmp_same_type(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int64(a), Value::Int64(b)) => Some(a.cmp(b)),
            (Value::Float64(a), Value::Float64(b)) => a.partial_cmp(b),
            (Value::Utf8(a), Value::Utf8(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Utf8(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// A decoded column vector.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Int64(Vec<i64>),
    Float64(Vec<f64>),
    Utf8(Vec<String>),
    Bool(Vec<bool>),
}

impl ColumnData {
    /// An empty vector of the given type.
    pub fn empty(ty: ColumnType) -> Self {
        match ty {
            ColumnType::Int64 => ColumnData::Int64(Vec::new()),
            ColumnType::Float64 => ColumnData::Float64(Vec::new()),
            ColumnType::Utf8 => ColumnData::Utf8(Vec::new()),
            ColumnType::Bool => ColumnData::Bool(Vec::new()),
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int64(v) => v.len(),
            ColumnData::Float64(v) => v.len(),
            ColumnData::Utf8(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
        }
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's type.
    pub fn column_type(&self) -> ColumnType {
        match self {
            ColumnData::Int64(_) => ColumnType::Int64,
            ColumnData::Float64(_) => ColumnType::Float64,
            ColumnData::Utf8(_) => ColumnType::Utf8,
            ColumnData::Bool(_) => ColumnType::Bool,
        }
    }

    /// The value at `row`.
    pub fn value(&self, row: usize) -> Value {
        match self {
            ColumnData::Int64(v) => Value::Int64(v[row]),
            ColumnData::Float64(v) => Value::Float64(v[row]),
            ColumnData::Utf8(v) => Value::Utf8(v[row].clone()),
            ColumnData::Bool(v) => Value::Bool(v[row]),
        }
    }

    /// Appends a value; panics on a type mismatch.
    pub fn push(&mut self, value: Value) {
        match (self, value) {
            (ColumnData::Int64(v), Value::Int64(x)) => v.push(x),
            (ColumnData::Float64(v), Value::Float64(x)) => v.push(x),
            (ColumnData::Utf8(v), Value::Utf8(x)) => v.push(x),
            (ColumnData::Bool(v), Value::Bool(x)) => v.push(x),
            (col, value) => panic!(
                "type mismatch: pushing {} into {} column",
                value.column_type(),
                col.column_type()
            ),
        }
    }

    /// Min and max values, or `None` if empty.
    pub fn min_max(&self) -> Option<(Value, Value)> {
        if self.is_empty() {
            return None;
        }
        let mut min = self.value(0);
        let mut max = self.value(0);
        for i in 1..self.len() {
            let v = self.value(i);
            if v.partial_cmp_same_type(&min) == Some(Ordering::Less) {
                min = v.clone();
            }
            if v.partial_cmp_same_type(&max) == Some(Ordering::Greater) {
                max = v;
            }
        }
        Some((min, max))
    }

    /// Keeps only the rows at `keep` (sorted indices).
    pub fn take(&self, keep: &[usize]) -> ColumnData {
        match self {
            ColumnData::Int64(v) => ColumnData::Int64(keep.iter().map(|&i| v[i]).collect()),
            ColumnData::Float64(v) => ColumnData::Float64(keep.iter().map(|&i| v[i]).collect()),
            ColumnData::Utf8(v) => ColumnData::Utf8(keep.iter().map(|&i| v[i].clone()).collect()),
            ColumnData::Bool(v) => ColumnData::Bool(keep.iter().map(|&i| v[i]).collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_tags_round_trip() {
        for ty in [
            ColumnType::Int64,
            ColumnType::Float64,
            ColumnType::Utf8,
            ColumnType::Bool,
        ] {
            assert_eq!(ColumnType::from_tag(ty.tag()), Some(ty));
        }
        assert_eq!(ColumnType::from_tag(99), None);
    }

    #[test]
    fn value_comparisons() {
        assert_eq!(
            Value::Int64(1).partial_cmp_same_type(&Value::Int64(2)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Utf8("b".into()).partial_cmp_same_type(&Value::Utf8("a".into())),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Int64(1).partial_cmp_same_type(&Value::Bool(true)),
            None
        );
    }

    #[test]
    fn column_push_and_value() {
        let mut col = ColumnData::empty(ColumnType::Utf8);
        col.push(Value::Utf8("x".into()));
        col.push(Value::Utf8("y".into()));
        assert_eq!(col.len(), 2);
        assert_eq!(col.value(1), Value::Utf8("y".into()));
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn push_wrong_type_panics() {
        let mut col = ColumnData::empty(ColumnType::Int64);
        col.push(Value::Bool(true));
    }

    #[test]
    fn min_max_over_ints() {
        let col = ColumnData::Int64(vec![5, -2, 9, 0]);
        let (min, max) = col.min_max().unwrap();
        assert_eq!(min, Value::Int64(-2));
        assert_eq!(max, Value::Int64(9));
        assert!(ColumnData::empty(ColumnType::Int64).min_max().is_none());
    }

    #[test]
    fn take_selects_rows() {
        let col = ColumnData::Utf8(vec!["a".into(), "b".into(), "c".into()]);
        assert_eq!(
            col.take(&[0, 2]),
            ColumnData::Utf8(vec!["a".into(), "c".into()])
        );
    }
}
