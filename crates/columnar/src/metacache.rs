//! The file-metadata cache (§6.1.1, §7).
//!
//! "Parsing complex column-oriented data files can consume as much as 30 %
//! of CPU resources. To mitigate the issue, Presto local cache also caches
//! file metadata. ... caching deserialized metadata objects can reduce CPU
//! usage by up to 40 %."
//!
//! Keys are `path@version` strings so a rewritten file never serves a stale
//! footer. The cache stores *deserialized* [`FileMetadata`] objects, and
//! tracks how many footer bytes were actually parsed — the currency of the
//! metadata-caching ablation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use edgecache_common::error::Result;
use parking_lot::RwLock;

use crate::format::FileMetadata;

/// Simulated CPU cost of deserializing one footer byte. Calibrated so that
/// a ~10 KB footer costs ~1 ms, in line with the paper's observation that
/// metadata handling is CPU-bound.
pub const PARSE_NANOS_PER_BYTE: u64 = 100;

/// A shared cache of deserialized footers.
///
/// Optionally backed by a persistent key-value store
/// ([`LogKv`](edgecache_kvstore::LogKv), our RocksDB stand-in): footers
/// survive process restarts, so a warm restart skips the remote footer
/// *read* entirely (only the cheap local decode remains).
#[derive(Debug, Default)]
pub struct MetadataCache {
    entries: RwLock<HashMap<String, Arc<FileMetadata>>>,
    backing: Option<Arc<edgecache_kvstore::LogKv>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Misses served from the persistent backing (no remote footer read).
    backing_hits: AtomicU64,
    bytes_parsed: AtomicU64,
}

impl MetadataCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a cache backed by a persistent key-value store.
    pub fn with_backing(backing: Arc<edgecache_kvstore::LogKv>) -> Self {
        Self {
            backing: Some(backing),
            ..Default::default()
        }
    }

    /// Returns the cached metadata for `key`, or parses it with `parse` and
    /// caches the result.
    pub fn get_or_parse(
        &self,
        key: &str,
        parse: impl FnOnce() -> Result<FileMetadata>,
    ) -> Result<Arc<FileMetadata>> {
        if let Some(meta) = self.entries.read().get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(meta));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Second chance: the persistent backing (a restart-survivor).
        if let Some(kv) = &self.backing {
            if let Ok(Some(encoded)) = kv.get(key.as_bytes()) {
                if let Ok(meta) = FileMetadata::decode(&encoded) {
                    self.backing_hits.fetch_add(1, Ordering::Relaxed);
                    let meta = Arc::new(meta);
                    let mut entries = self.entries.write();
                    return Ok(Arc::clone(entries.entry(key.to_string()).or_insert(meta)));
                }
            }
        }
        let meta = Arc::new(parse()?);
        self.bytes_parsed
            .fetch_add(meta.footer_len, Ordering::Relaxed);
        if let Some(kv) = &self.backing {
            // Best effort: a failed persist only costs a future re-parse.
            let _ = kv.put(key.as_bytes(), &meta.encode());
        }
        let mut entries = self.entries.write();
        // Another thread may have raced us; keep the first entry.
        Ok(Arc::clone(entries.entry(key.to_string()).or_insert(meta)))
    }

    /// Misses that were served from the persistent backing.
    pub fn backing_hits(&self) -> u64 {
        self.backing_hits.load(Ordering::Relaxed)
    }

    /// Invalidates one key (e.g. the file was rewritten).
    pub fn invalidate(&self, key: &str) {
        self.entries.write().remove(key);
    }

    /// Drops everything.
    pub fn clear(&self) {
        self.entries.write().clear();
    }

    /// Cache hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= parses attempted).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Footer bytes actually deserialized.
    pub fn bytes_parsed(&self) -> u64 {
        self.bytes_parsed.load(Ordering::Relaxed)
    }

    /// Number of cached footers.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Simulated CPU time for parsing `footer_bytes` of footer.
    pub fn parse_cost(footer_bytes: u64) -> Duration {
        Duration::from_nanos(footer_bytes * PARSE_NANOS_PER_BYTE)
    }

    /// Simulated CPU time actually spent parsing through this cache.
    pub fn total_parse_cost(&self) -> Duration {
        Self::parse_cost(self.bytes_parsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::Schema;

    fn meta(footer_len: u64) -> FileMetadata {
        FileMetadata {
            schema: Schema::default(),
            row_groups: Vec::new(),
            total_rows: 0,
            footer_len,
        }
    }

    #[test]
    fn second_lookup_hits() {
        let cache = MetadataCache::new();
        let mut parses = 0;
        for _ in 0..3 {
            cache
                .get_or_parse("f@1", || {
                    parses += 1;
                    Ok(meta(100))
                })
                .unwrap();
        }
        assert_eq!(parses, 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.bytes_parsed(), 100);
    }

    #[test]
    fn versioned_keys_are_distinct() {
        let cache = MetadataCache::new();
        cache.get_or_parse("f@1", || Ok(meta(10))).unwrap();
        cache.get_or_parse("f@2", || Ok(meta(20))).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.bytes_parsed(), 30);
    }

    #[test]
    fn invalidate_forces_reparse() {
        let cache = MetadataCache::new();
        cache.get_or_parse("f@1", || Ok(meta(10))).unwrap();
        cache.invalidate("f@1");
        cache.get_or_parse("f@1", || Ok(meta(10))).unwrap();
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn parse_failure_is_not_cached() {
        let cache = MetadataCache::new();
        let r = cache.get_or_parse("f@1", || Err(edgecache_common::Error::Decode("bad".into())));
        assert!(r.is_err());
        assert!(cache.is_empty());
        // A later good parse succeeds.
        cache.get_or_parse("f@1", || Ok(meta(5))).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn persistent_backing_survives_restart() {
        use edgecache_kvstore::{LogKv, LogKvConfig};
        let dir = std::env::temp_dir().join(format!("edgecache-metakv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let full_meta = || {
            use crate::format::{ColumnSchema, Schema};
            use crate::types::ColumnType;
            let schema = Schema {
                columns: vec![ColumnSchema {
                    name: "x".into(),
                    ty: ColumnType::Int64,
                }],
            };
            let meta = FileMetadata {
                schema,
                row_groups: Vec::new(),
                total_rows: 0,
                footer_len: 0,
            };
            // Round-trip through encode so footer_len is realistic.
            FileMetadata::decode(&meta.encode()).unwrap()
        };
        {
            let kv = Arc::new(LogKv::open(&dir, LogKvConfig::default()).unwrap());
            let cache = MetadataCache::with_backing(kv);
            cache.get_or_parse("f@1", || Ok(full_meta())).unwrap();
            assert_eq!(cache.misses(), 1);
            assert_eq!(cache.backing_hits(), 0);
        }
        // "Process restart": fresh in-memory cache, same backing.
        let kv = Arc::new(LogKv::open(&dir, LogKvConfig::default()).unwrap());
        let cache = MetadataCache::with_backing(kv);
        let mut parses = 0;
        let meta = cache
            .get_or_parse("f@1", || {
                parses += 1;
                Ok(full_meta())
            })
            .unwrap();
        assert_eq!(parses, 0, "served from the persistent backing");
        assert_eq!(cache.backing_hits(), 1);
        assert_eq!(meta.schema.columns[0].name, "x");
        // And now it is in memory: a plain hit.
        cache.get_or_parse("f@1", || Ok(full_meta())).unwrap();
        assert_eq!(cache.hits(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_cost_scales() {
        assert_eq!(
            MetadataCache::parse_cost(10_000),
            Duration::from_micros(1000)
        );
        let cache = MetadataCache::new();
        cache.get_or_parse("a", || Ok(meta(10_000))).unwrap();
        cache.get_or_parse("a", || Ok(meta(10_000))).unwrap();
        assert_eq!(cache.total_parse_cost(), Duration::from_micros(1000));
    }
}
