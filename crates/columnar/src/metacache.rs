//! The file-metadata cache (§6.1.1, §7).
//!
//! "Parsing complex column-oriented data files can consume as much as 30 %
//! of CPU resources. To mitigate the issue, Presto local cache also caches
//! file metadata. ... caching deserialized metadata objects can reduce CPU
//! usage by up to 40 %."
//!
//! Keys are `path@version` strings so a rewritten file never serves a stale
//! footer. The cache stores *deserialized* [`FileMetadata`] objects, and
//! tracks how many footer bytes were actually parsed — the currency of the
//! metadata-caching ablation.
//!
//! The cache is **bounded** (entry-count capacity, LRU eviction with an
//! `evictions` counter) and **single-flight**: concurrent misses on the
//! same key parse the footer once; the other callers wait for the published
//! result instead of duplicating the CPU-heavy deserialization.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Duration;

use edgecache_common::error::Result;
use parking_lot::Mutex;

use crate::format::FileMetadata;

/// Simulated CPU cost of deserializing one footer byte. Calibrated so that
/// a ~10 KB footer costs ~1 ms, in line with the paper's observation that
/// metadata handling is CPU-bound.
pub const PARSE_NANOS_PER_BYTE: u64 = 100;

/// Default entry-count bound: generous enough that the simulated tables
/// never evict unless a test or experiment shrinks it on purpose.
pub const DEFAULT_METADATA_CAPACITY: usize = 4096;

#[derive(Debug, Default)]
struct Inner {
    /// key → (footer, LRU stamp).
    entries: HashMap<String, (Arc<FileMetadata>, u64)>,
    /// LRU stamp → key; the smallest stamp is the eviction victim.
    lru: BTreeMap<u64, String>,
    next_stamp: u64,
}

impl Inner {
    fn touch(&mut self, key: &str) -> Option<Arc<FileMetadata>> {
        let (meta, stamp) = self.entries.get_mut(key)?;
        let meta = Arc::clone(meta);
        self.lru.remove(&*stamp);
        self.next_stamp += 1;
        *stamp = self.next_stamp;
        self.lru.insert(self.next_stamp, key.to_string());
        Some(meta)
    }

    fn insert(&mut self, key: &str, meta: Arc<FileMetadata>) -> Arc<FileMetadata> {
        if let Some(existing) = self.touch(key) {
            // Another thread published first; keep its entry.
            return existing;
        }
        self.next_stamp += 1;
        self.entries
            .insert(key.to_string(), (meta.clone(), self.next_stamp));
        self.lru.insert(self.next_stamp, key.to_string());
        meta
    }

    fn remove(&mut self, key: &str) {
        if let Some((_, stamp)) = self.entries.remove(key) {
            self.lru.remove(&stamp);
        }
    }

    /// Evicts least-recently-used entries down to `capacity`; returns how
    /// many were dropped.
    fn evict_to(&mut self, capacity: usize) -> u64 {
        let mut evicted = 0;
        while self.entries.len() > capacity {
            let Some((&stamp, _)) = self.lru.iter().next() else {
                break;
            };
            let key = self.lru.remove(&stamp).expect("stamp just observed");
            self.entries.remove(&key);
            evicted += 1;
        }
        evicted
    }
}

/// A shared, bounded cache of deserialized footers.
///
/// Optionally backed by a persistent key-value store
/// ([`LogKv`](edgecache_kvstore::LogKv), our RocksDB stand-in): footers
/// survive process restarts, so a warm restart skips the remote footer
/// *read* entirely (only the cheap local decode remains).
#[derive(Debug)]
pub struct MetadataCache {
    inner: Mutex<Inner>,
    /// Keys with a parse in progress; misses on them block on the condvar
    /// instead of parsing the same footer again (single-flight).
    inflight: StdMutex<HashSet<String>>,
    inflight_done: Condvar,
    capacity: usize,
    backing: Option<Arc<edgecache_kvstore::LogKv>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Misses served from the persistent backing (no remote footer read).
    backing_hits: AtomicU64,
    bytes_parsed: AtomicU64,
    evictions: AtomicU64,
}

impl Default for MetadataCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_METADATA_CAPACITY)
    }
}

impl MetadataCache {
    /// Creates an empty cache with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache bounded to `capacity` footers.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            inflight: StdMutex::new(HashSet::new()),
            inflight_done: Condvar::new(),
            capacity: capacity.max(1),
            backing: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            backing_hits: AtomicU64::new(0),
            bytes_parsed: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Creates a cache backed by a persistent key-value store.
    pub fn with_backing(backing: Arc<edgecache_kvstore::LogKv>) -> Self {
        Self {
            backing: Some(backing),
            ..Self::default()
        }
    }

    /// Returns the cached metadata for `key`, or parses it with `parse` and
    /// caches the result. Concurrent callers of the same missing key parse
    /// exactly once; the rest wait and read the published footer.
    pub fn get_or_parse(
        &self,
        key: &str,
        parse: impl FnOnce() -> Result<FileMetadata>,
    ) -> Result<Arc<FileMetadata>> {
        loop {
            if let Some(meta) = self.inner.lock().touch(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(meta);
            }
            // Single-flight gate: first thread in claims the key; others
            // wait for the parse to publish (or fail) and re-check.
            let mut inflight = self.inflight.lock().expect("inflight poisoned");
            if !inflight.contains(key) {
                inflight.insert(key.to_string());
                drop(inflight);
                break;
            }
            while inflight.contains(key) {
                inflight = self
                    .inflight_done
                    .wait(inflight)
                    .expect("inflight poisoned");
            }
        }
        let result = self.parse_and_publish(key, parse);
        let mut inflight = self.inflight.lock().expect("inflight poisoned");
        inflight.remove(key);
        self.inflight_done.notify_all();
        drop(inflight);
        result
    }

    fn parse_and_publish(
        &self,
        key: &str,
        parse: impl FnOnce() -> Result<FileMetadata>,
    ) -> Result<Arc<FileMetadata>> {
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Second chance: the persistent backing (a restart-survivor).
        if let Some(kv) = &self.backing {
            if let Ok(Some(encoded)) = kv.get(key.as_bytes()) {
                if let Ok(meta) = FileMetadata::decode(&encoded) {
                    self.backing_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(self.publish(key, Arc::new(meta)));
                }
            }
        }
        let meta = Arc::new(parse()?);
        self.bytes_parsed
            .fetch_add(meta.footer_len, Ordering::Relaxed);
        if let Some(kv) = &self.backing {
            // Best effort: a failed persist only costs a future re-parse.
            let _ = kv.put(key.as_bytes(), &meta.encode());
        }
        Ok(self.publish(key, meta))
    }

    fn publish(&self, key: &str, meta: Arc<FileMetadata>) -> Arc<FileMetadata> {
        let mut inner = self.inner.lock();
        let meta = inner.insert(key, meta);
        let evicted = inner.evict_to(self.capacity);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        meta
    }

    /// Misses that were served from the persistent backing.
    pub fn backing_hits(&self) -> u64 {
        self.backing_hits.load(Ordering::Relaxed)
    }

    /// Invalidates one key (e.g. the file was rewritten).
    pub fn invalidate(&self, key: &str) {
        self.inner.lock().remove(key);
    }

    /// Drops everything.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.lru.clear();
    }

    /// Cache hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= parses attempted, after single-flight collapsing).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the LRU capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The entry-count capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Footer bytes actually deserialized.
    pub fn bytes_parsed(&self) -> u64 {
        self.bytes_parsed.load(Ordering::Relaxed)
    }

    /// Number of cached footers.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().entries.is_empty()
    }

    /// Simulated CPU time for parsing `footer_bytes` of footer.
    pub fn parse_cost(footer_bytes: u64) -> Duration {
        Duration::from_nanos(footer_bytes * PARSE_NANOS_PER_BYTE)
    }

    /// Simulated CPU time actually spent parsing through this cache.
    pub fn total_parse_cost(&self) -> Duration {
        Self::parse_cost(self.bytes_parsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::Schema;

    fn meta(footer_len: u64) -> FileMetadata {
        FileMetadata {
            schema: Schema::default(),
            row_groups: Vec::new(),
            total_rows: 0,
            footer_len,
        }
    }

    #[test]
    fn second_lookup_hits() {
        let cache = MetadataCache::new();
        let mut parses = 0;
        for _ in 0..3 {
            cache
                .get_or_parse("f@1", || {
                    parses += 1;
                    Ok(meta(100))
                })
                .unwrap();
        }
        assert_eq!(parses, 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.bytes_parsed(), 100);
    }

    #[test]
    fn versioned_keys_are_distinct() {
        let cache = MetadataCache::new();
        cache.get_or_parse("f@1", || Ok(meta(10))).unwrap();
        cache.get_or_parse("f@2", || Ok(meta(20))).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.bytes_parsed(), 30);
    }

    #[test]
    fn invalidate_forces_reparse() {
        let cache = MetadataCache::new();
        cache.get_or_parse("f@1", || Ok(meta(10))).unwrap();
        cache.invalidate("f@1");
        cache.get_or_parse("f@1", || Ok(meta(10))).unwrap();
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn parse_failure_is_not_cached() {
        let cache = MetadataCache::new();
        let r = cache.get_or_parse("f@1", || Err(edgecache_common::Error::Decode("bad".into())));
        assert!(r.is_err());
        assert!(cache.is_empty());
        // A later good parse succeeds.
        cache.get_or_parse("f@1", || Ok(meta(5))).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let cache = MetadataCache::with_capacity(3);
        for i in 0..3 {
            cache
                .get_or_parse(&format!("f{i}@1"), || Ok(meta(10)))
                .unwrap();
        }
        // Touch f0 so f1 becomes the LRU victim.
        cache.get_or_parse("f0@1", || Ok(meta(10))).unwrap();
        cache.get_or_parse("f3@1", || Ok(meta(10))).unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 1);
        // f1 is gone (re-parse), f0 survives (hit).
        let mut parsed = false;
        cache
            .get_or_parse("f1@1", || {
                parsed = true;
                Ok(meta(10))
            })
            .unwrap();
        assert!(parsed, "LRU victim was evicted");
        let hits_before = cache.hits();
        cache.get_or_parse("f0@1", || Ok(meta(10))).unwrap();
        assert_eq!(cache.hits(), hits_before + 1, "recently used survives");
    }

    #[test]
    fn concurrent_misses_parse_once() {
        use std::sync::atomic::AtomicU64;
        let cache = Arc::new(MetadataCache::new());
        let parses = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let parses = Arc::clone(&parses);
            handles.push(std::thread::spawn(move || {
                let meta = cache
                    .get_or_parse("hot@1", || {
                        parses.fetch_add(1, Ordering::SeqCst);
                        // Hold the parse long enough that the other threads
                        // pile up behind the single-flight gate.
                        std::thread::sleep(Duration::from_millis(20));
                        Ok(meta(1234))
                    })
                    .unwrap();
                assert_eq!(meta.footer_len, 1234);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(parses.load(Ordering::SeqCst), 1, "single-flight parse");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.bytes_parsed(), 1234);
        assert_eq!(cache.hits(), 7, "waiters read the published footer");
    }

    #[test]
    fn failed_singleflight_parse_releases_waiters() {
        let cache = Arc::new(MetadataCache::new());
        let c = Arc::clone(&cache);
        let loser = std::thread::spawn(move || {
            c.get_or_parse("k@1", || {
                std::thread::sleep(Duration::from_millis(20));
                Err(edgecache_common::Error::Decode("flaky".into()))
            })
        });
        std::thread::sleep(Duration::from_millis(5));
        // This call either waits out the failing parse and then parses
        // itself, or (if it raced in first) parses directly. Either way it
        // must not deadlock and must succeed.
        let ok = cache.get_or_parse("k@1", || Ok(meta(9))).unwrap();
        assert_eq!(ok.footer_len, 9);
        assert!(loser.join().unwrap().is_err());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn persistent_backing_survives_restart() {
        use edgecache_kvstore::{LogKv, LogKvConfig};
        let dir = std::env::temp_dir().join(format!("edgecache-metakv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let full_meta = || {
            use crate::format::{ColumnSchema, Schema};
            use crate::types::ColumnType;
            let schema = Schema {
                columns: vec![ColumnSchema {
                    name: "x".into(),
                    ty: ColumnType::Int64,
                }],
            };
            let meta = FileMetadata {
                schema,
                row_groups: Vec::new(),
                total_rows: 0,
                footer_len: 0,
            };
            // Round-trip through encode so footer_len is realistic.
            FileMetadata::decode(&meta.encode()).unwrap()
        };
        {
            let kv = Arc::new(LogKv::open(&dir, LogKvConfig::default()).unwrap());
            let cache = MetadataCache::with_backing(kv);
            cache.get_or_parse("f@1", || Ok(full_meta())).unwrap();
            assert_eq!(cache.misses(), 1);
            assert_eq!(cache.backing_hits(), 0);
        }
        // "Process restart": fresh in-memory cache, same backing.
        let kv = Arc::new(LogKv::open(&dir, LogKvConfig::default()).unwrap());
        let cache = MetadataCache::with_backing(kv);
        let mut parses = 0;
        let meta = cache
            .get_or_parse("f@1", || {
                parses += 1;
                Ok(full_meta())
            })
            .unwrap();
        assert_eq!(parses, 0, "served from the persistent backing");
        assert_eq!(cache.backing_hits(), 1);
        assert_eq!(meta.schema.columns[0].name, "x");
        // And now it is in memory: a plain hit.
        cache.get_or_parse("f@1", || Ok(full_meta())).unwrap();
        assert_eq!(cache.hits(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_cost_scales() {
        assert_eq!(
            MetadataCache::parse_cost(10_000),
            Duration::from_micros(1000)
        );
        let cache = MetadataCache::new();
        cache.get_or_parse("a", || Ok(meta(10_000))).unwrap();
        cache.get_or_parse("a", || Ok(meta(10_000))).unwrap();
        assert_eq!(cache.total_parse_cost(), Duration::from_micros(1000));
    }
}
