//! The `colf` reader: footer discovery, ranged chunk reads, row-group
//! pruning.
//!
//! The reader performs exactly the access pattern that motivates the paper's
//! page cache: a small read at the tail, a footer read, then one small
//! ranged read per (row group × projected column) — fragmented I/O against
//! a large file.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use edgecache_common::error::{Error, Result};

use crate::encoding::decode_with_stats;
use crate::format::{ChunkMeta, FileMetadata, Schema, MAGIC, TAIL_LEN};
use crate::metacache::MetadataCache;
use crate::predicate::Predicate;
use crate::types::ColumnData;

/// How much of the file tail `ColfReader::open` reads in its one
/// speculative request; footers are almost always smaller than this.
const TAIL_OVERREAD: u64 = 64 * 1024;

/// Abstract ranged access to one file. The local cache, a raw byte buffer,
/// or a remote store can all sit behind this.
pub trait RangeReader {
    /// Reads `len` bytes at `offset` (clamped at end of file).
    fn read(&self, offset: u64, len: u64) -> Result<Bytes>;

    /// Reads many `(offset, len)` fragments as one batch, returning one
    /// buffer per fragment. The default falls back to sequential `read`
    /// calls; cache-backed readers override this to classify and fetch all
    /// fragments at once.
    fn read_vectored(&self, ranges: &[(u64, u64)]) -> Result<Vec<Bytes>> {
        ranges
            .iter()
            .map(|&(off, len)| self.read(off, len))
            .collect()
    }

    /// Total file length.
    fn len(&self) -> u64;

    /// Whether the file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<R: RangeReader + ?Sized> RangeReader for &R {
    fn read(&self, offset: u64, len: u64) -> Result<Bytes> {
        (**self).read(offset, len)
    }

    fn read_vectored(&self, ranges: &[(u64, u64)]) -> Result<Vec<Bytes>> {
        (**self).read_vectored(ranges)
    }

    fn len(&self) -> u64 {
        (**self).len()
    }
}

/// In-memory files are range-readable (tests, small tables).
impl RangeReader for Bytes {
    fn read(&self, offset: u64, len: u64) -> Result<Bytes> {
        let total = Bytes::len(self) as u64;
        let start = offset.min(total);
        let end = offset.saturating_add(len).min(total);
        Ok(self.slice(start as usize..end as usize))
    }

    fn len(&self) -> u64 {
        Bytes::len(self) as u64
    }
}

/// A reader over one `colf` file.
pub struct ColfReader<R: RangeReader> {
    reader: R,
    meta: Arc<FileMetadata>,
    decode_copied: AtomicU64,
}

impl<R: RangeReader> ColfReader<R> {
    /// Opens the file: validates the magic, reads and parses the footer.
    pub fn open(reader: R) -> Result<Self> {
        let meta = Arc::new(Self::parse_footer(&reader)?);
        Ok(Self {
            reader,
            meta,
            decode_copied: AtomicU64::new(0),
        })
    }

    /// Opens the file, consulting (and populating) a shared metadata cache
    /// keyed by `cache_key` (conventionally `path@version`).
    pub fn open_with_cache(reader: R, cache: &MetadataCache, cache_key: &str) -> Result<Self> {
        let meta = cache.get_or_parse(cache_key, || Self::parse_footer(&reader))?;
        Ok(Self {
            reader,
            meta,
            decode_copied: AtomicU64::new(0),
        })
    }

    /// Reads the tail and footer and deserializes the metadata.
    ///
    /// The tail is over-read speculatively: one ranged request for the last
    /// `TAIL_OVERREAD` bytes usually captures both the fixed tail and the
    /// footer, the way production Parquet/ORC readers avoid paying a second
    /// metadata round trip per file open. Only a footer larger than the
    /// over-read costs a second request.
    fn parse_footer(reader: &R) -> Result<FileMetadata> {
        let total = reader.len();
        if total < TAIL_LEN + MAGIC.len() as u64 {
            return Err(Error::Decode("file too short for colf".into()));
        }
        let spec_len = TAIL_OVERREAD.min(total);
        let spec = reader.read(total - spec_len, spec_len)?;
        if (spec.len() as u64) < TAIL_LEN {
            return Err(Error::Decode("short tail read".into()));
        }
        let tail = &spec[spec.len() - TAIL_LEN as usize..];
        if &tail[8..12] != MAGIC {
            return Err(Error::Decode("missing colf tail magic".into()));
        }
        let footer_len = u64::from_le_bytes(tail[0..8].try_into().expect("8 bytes"));
        if footer_len > total - TAIL_LEN {
            return Err(Error::Decode("footer length exceeds file".into()));
        }
        let footer = if footer_len + TAIL_LEN <= spec.len() as u64 {
            let end = spec.len() - TAIL_LEN as usize;
            spec.slice(end - footer_len as usize..end)
        } else {
            let f = reader.read(total - TAIL_LEN - footer_len, footer_len)?;
            if (f.len() as u64) < footer_len {
                return Err(Error::Decode("short footer read".into()));
            }
            f
        };
        FileMetadata::decode(&footer)
    }

    /// The parsed metadata.
    pub fn metadata(&self) -> &Arc<FileMetadata> {
        &self.meta
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.meta.schema
    }

    /// Number of row groups.
    pub fn row_groups(&self) -> usize {
        self.meta.row_groups.len()
    }

    /// Chunk metadata for a named column within a row group.
    pub fn chunk(&self, row_group: usize, column: &str) -> Option<ChunkMeta> {
        let idx = self.meta.schema.index_of(column)?;
        self.meta
            .row_groups
            .get(row_group)
            .map(|rg| rg.chunks[idx].clone())
    }

    /// Reads and decodes one column of one row group (one fragmented ranged
    /// read).
    pub fn read_column(&self, row_group: usize, column_index: usize) -> Result<ColumnData> {
        let rg = self
            .meta
            .row_groups
            .get(row_group)
            .ok_or_else(|| Error::InvalidArgument(format!("row group {row_group}")))?;
        let col = self
            .meta
            .schema
            .columns
            .get(column_index)
            .ok_or_else(|| Error::InvalidArgument(format!("column {column_index}")))?;
        let chunk = &rg.chunks[column_index];
        let raw = self.reader.read(chunk.offset, chunk.len)?;
        if (raw.len() as u64) < chunk.len {
            return Err(Error::Decode("short chunk read".into()));
        }
        let (col, copied) = decode_with_stats(chunk.encoding, col.ty, rg.rows as usize, &raw)?;
        self.decode_copied.fetch_add(copied, Ordering::Relaxed);
        Ok(col)
    }

    /// The `(offset, len)` ranges of the projected chunks of one row group —
    /// the fragment batch a vectored read (or a prefetch of this row group)
    /// issues.
    pub fn chunk_ranges(&self, row_group: usize, projection: &[usize]) -> Result<Vec<(u64, u64)>> {
        let rg = self
            .meta
            .row_groups
            .get(row_group)
            .ok_or_else(|| Error::InvalidArgument(format!("row group {row_group}")))?;
        projection
            .iter()
            .map(|&c| {
                if self.meta.schema.columns.get(c).is_none() {
                    return Err(Error::InvalidArgument(format!("column {c}")));
                }
                let chunk = &rg.chunks[c];
                Ok((chunk.offset, chunk.len))
            })
            .collect()
    }

    /// Reads a projection of one row group: plans every projected chunk
    /// range up front, issues them as one vectored read, then decodes each
    /// buffer. Against a cache-backed reader this lets misses on different
    /// columns coalesce and fetch concurrently.
    pub fn read_row_group(
        &self,
        row_group: usize,
        projection: &[usize],
    ) -> Result<Vec<ColumnData>> {
        let ranges = self.chunk_ranges(row_group, projection)?;
        let raws = self.reader.read_vectored(&ranges)?;
        self.decode_chunks(row_group, projection, raws)
    }

    /// Decodes already-fetched chunk buffers for a projection of one row
    /// group (`raws` in projection order, as returned by a vectored read of
    /// [`ColfReader::chunk_ranges`]). Split out from [`read_row_group`] so a
    /// prefetch pipeline can fetch row group N+1 while N decodes.
    pub fn decode_chunks(
        &self,
        row_group: usize,
        projection: &[usize],
        raws: Vec<Bytes>,
    ) -> Result<Vec<ColumnData>> {
        if raws.len() != projection.len() {
            return Err(Error::Decode("vectored read returned wrong arity".into()));
        }
        let rg = self
            .meta
            .row_groups
            .get(row_group)
            .ok_or_else(|| Error::InvalidArgument(format!("row group {row_group}")))?;
        projection
            .iter()
            .zip(raws)
            .map(|(&c, raw)| {
                if self.meta.schema.columns.get(c).is_none() {
                    return Err(Error::InvalidArgument(format!("column {c}")));
                }
                let chunk = &rg.chunks[c];
                if (raw.len() as u64) < chunk.len {
                    return Err(Error::Decode("short chunk read".into()));
                }
                let (col, copied) = decode_with_stats(
                    chunk.encoding,
                    self.meta.schema.columns[c].ty,
                    rg.rows as usize,
                    &raw,
                )?;
                self.decode_copied.fetch_add(copied, Ordering::Relaxed);
                Ok(col)
            })
            .collect()
    }

    /// The underlying range reader.
    pub fn reader(&self) -> &R {
        &self.reader
    }

    /// Chunk bytes this reader re-materialized value by value while
    /// decoding. Aligned plain fixed-width chunks decode by bulk word
    /// reinterpretation and don't count — see
    /// [`crate::encoding::decode_with_stats`].
    pub fn decode_bytes_copied(&self) -> u64 {
        self.decode_copied.load(Ordering::Relaxed)
    }

    /// Row groups that may contain rows matching `predicate` (statistics
    /// pruning). With no predicate, all row groups survive.
    pub fn prune(&self, predicate: Option<&Predicate>) -> Vec<usize> {
        match predicate {
            None => (0..self.row_groups()).collect(),
            Some(p) => (0..self.row_groups())
                .filter(|&rg| p.may_match(&|name| self.chunk(rg, name)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ColumnType, Value};
    use crate::writer::ColfWriter;

    fn sample_file(rows: i64, per_group: usize) -> Bytes {
        let schema = Schema::new(vec![
            ("id", ColumnType::Int64),
            ("city", ColumnType::Utf8),
            ("price", ColumnType::Float64),
        ]);
        let mut w = ColfWriter::new(schema, per_group);
        for i in 0..rows {
            w.push_row(vec![
                Value::Int64(i),
                Value::Utf8(format!("city_{}", i % 3)),
                Value::Float64(i as f64 * 1.5),
            ])
            .unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn open_and_read_round_trip() {
        let file = sample_file(10, 4);
        let r = ColfReader::open(file).unwrap();
        assert_eq!(r.row_groups(), 3);
        assert_eq!(r.metadata().total_rows, 10);
        let ids = r.read_column(0, 0).unwrap();
        assert_eq!(ids, ColumnData::Int64(vec![0, 1, 2, 3]));
        let cities = r.read_column(2, 1).unwrap();
        assert_eq!(
            cities,
            ColumnData::Utf8(vec!["city_2".into(), "city_0".into()])
        );
    }

    #[test]
    fn projection_reads_selected_columns() {
        let file = sample_file(6, 10);
        let r = ColfReader::open(file).unwrap();
        let cols = r.read_row_group(0, &[0, 2]).unwrap();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].len(), 6);
        assert_eq!(cols[1].column_type(), ColumnType::Float64);
    }

    #[test]
    fn pruning_skips_row_groups() {
        // 100 rows, 10 per group: id ranges [0..10), [10..20), ...
        let file = sample_file(100, 10);
        let r = ColfReader::open(file).unwrap();
        let p = Predicate::Between("id".into(), Value::Int64(35), Value::Int64(44));
        assert_eq!(r.prune(Some(&p)), vec![3, 4]);
        let p = Predicate::Eq("id".into(), Value::Int64(7));
        assert_eq!(r.prune(Some(&p)), vec![0]);
        assert_eq!(r.prune(None).len(), 10);
        let p = Predicate::Gt("id".into(), Value::Int64(1000));
        assert!(r.prune(Some(&p)).is_empty());
    }

    #[test]
    fn pruned_scan_matches_full_scan() {
        let file = sample_file(100, 7);
        let r = ColfReader::open(file).unwrap();
        let p = Predicate::Between("id".into(), Value::Int64(20), Value::Int64(60));
        // Full scan + row filter.
        let mut expect = Vec::new();
        for rg in 0..r.row_groups() {
            let cols = r.read_row_group(rg, &[0]).unwrap();
            let keep = p.matching_rows(&[("id", &cols[0])], cols[0].len());
            for k in keep {
                if let Value::Int64(v) = cols[0].value(k) {
                    expect.push(v);
                }
            }
        }
        // Pruned scan + row filter.
        let mut got = Vec::new();
        for rg in r.prune(Some(&p)) {
            let cols = r.read_row_group(rg, &[0]).unwrap();
            let keep = p.matching_rows(&[("id", &cols[0])], cols[0].len());
            for k in keep {
                if let Value::Int64(v) = cols[0].value(k) {
                    got.push(v);
                }
            }
        }
        assert_eq!(got, expect, "pruning must never change results");
        assert_eq!(got.len(), 41);
    }

    #[test]
    fn metadata_cache_avoids_reparse() {
        let file = sample_file(20, 5);
        let cache = MetadataCache::new();
        let r1 = ColfReader::open_with_cache(file.clone(), &cache, "f@1").unwrap();
        let r2 = ColfReader::open_with_cache(file, &cache, "f@1").unwrap();
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert!(Arc::ptr_eq(r1.metadata(), r2.metadata()));
    }

    #[test]
    fn corrupt_files_fail_to_open() {
        assert!(ColfReader::open(Bytes::from_static(b"short")).is_err());
        let mut file = sample_file(5, 5).to_vec();
        let n = file.len();
        // Break the footer length.
        file[n - 12..n - 4].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(ColfReader::open(Bytes::from(file)).is_err());
    }

    #[test]
    fn out_of_range_access_errors() {
        let file = sample_file(5, 5);
        let r = ColfReader::open(file).unwrap();
        assert!(r.read_column(9, 0).is_err());
        assert!(r.read_column(0, 9).is_err());
        assert!(r.chunk(0, "nope").is_none());
        assert!(r.chunk_ranges(9, &[0]).is_err());
        assert!(r.chunk_ranges(0, &[9]).is_err());
    }

    /// Counts `read` vs `read_vectored` calls so tests can assert the scan
    /// path batches.
    struct CountingReader {
        inner: Bytes,
        reads: AtomicU64,
        vectored: AtomicU64,
    }

    impl CountingReader {
        fn new(inner: Bytes) -> Self {
            Self {
                inner,
                reads: AtomicU64::new(0),
                vectored: AtomicU64::new(0),
            }
        }
    }

    impl RangeReader for CountingReader {
        fn read(&self, offset: u64, len: u64) -> Result<Bytes> {
            self.reads.fetch_add(1, Ordering::Relaxed);
            self.inner.read(offset, len)
        }

        fn read_vectored(&self, ranges: &[(u64, u64)]) -> Result<Vec<Bytes>> {
            self.vectored.fetch_add(1, Ordering::Relaxed);
            ranges
                .iter()
                .map(|&(off, len)| self.inner.read(off, len))
                .collect()
        }

        fn len(&self) -> u64 {
            RangeReader::len(&self.inner)
        }
    }

    #[test]
    fn row_group_read_is_one_vectored_call() {
        let file = sample_file(30, 10);
        let counting = CountingReader::new(file);
        let r = ColfReader::open(&counting).unwrap();
        let opens = counting.reads.load(Ordering::Relaxed);
        let cols = r.read_row_group(1, &[0, 1, 2]).unwrap();
        assert_eq!(cols.len(), 3);
        assert_eq!(counting.vectored.load(Ordering::Relaxed), 1);
        assert_eq!(
            counting.reads.load(Ordering::Relaxed),
            opens,
            "projected chunks must ride the vectored call, not per-column reads"
        );
    }

    #[test]
    fn vectored_row_group_matches_per_column_reads() {
        let file = sample_file(100, 7);
        let r = ColfReader::open(file).unwrap();
        for rg in 0..r.row_groups() {
            let batch = r.read_row_group(rg, &[2, 0, 1]).unwrap();
            let singles: Vec<_> = [2usize, 0, 1]
                .iter()
                .map(|&c| r.read_column(rg, c).unwrap())
                .collect();
            assert_eq!(batch, singles);
        }
    }

    #[test]
    fn decode_copy_counter_tracks_cursor_paths() {
        let file = sample_file(40, 10);
        let r = ColfReader::open(file).unwrap();
        // Utf8 always re-materializes, so copies must be visible; plain
        // aligned fixed-width columns may contribute nothing.
        let before = r.decode_bytes_copied();
        r.read_row_group(0, &[1]).unwrap();
        let after_str = r.decode_bytes_copied();
        assert!(after_str > before, "utf8 decode must count copied bytes");
        let chunk = r.chunk(1, "id").unwrap();
        r.read_row_group(1, &[0]).unwrap();
        let delta = r.decode_bytes_copied() - after_str;
        assert!(
            delta == 0 || delta == chunk.len,
            "int64 chunk counts all-or-nothing by alignment, got {delta}"
        );
    }
}
