//! Column-chunk encodings: plain, dictionary, and run-length.
//!
//! The writer encodes each chunk with every applicable encoding and keeps
//! the smallest — the same adaptive choice Parquet/ORC writers make, which
//! is what produces the variably-sized, small column chunks that fragment
//! read traffic (§2.2).

use bytes::{BufMut, Bytes, BytesMut};
use edgecache_common::error::{Error, Result};

use crate::types::{ColumnData, ColumnType};

/// Encoding identifiers stored in chunk metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    Plain,
    Dictionary,
    RunLength,
}

impl Encoding {
    pub(crate) fn tag(self) -> u8 {
        match self {
            Encoding::Plain => 0,
            Encoding::Dictionary => 1,
            Encoding::RunLength => 2,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => Encoding::Plain,
            1 => Encoding::Dictionary,
            2 => Encoding::RunLength,
            _ => return None,
        })
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(Error::Decode("chunk truncated".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Error::Decode("invalid utf8".into()))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Encodes a column with the plain encoding.
pub fn encode_plain(col: &ColumnData) -> Bytes {
    let mut buf = BytesMut::new();
    match col {
        ColumnData::Int64(v) => {
            for &x in v {
                buf.put_i64_le(x);
            }
        }
        ColumnData::Float64(v) => {
            for &x in v {
                buf.put_f64_le(x);
            }
        }
        ColumnData::Utf8(v) => {
            for s in v {
                put_str(&mut buf, s);
            }
        }
        ColumnData::Bool(v) => {
            for &b in v {
                buf.put_u8(b as u8);
            }
        }
    }
    buf.freeze()
}

/// Encodes with a dictionary (strings and int64 only): distinct values
/// followed by u32 indices.
pub fn encode_dictionary(col: &ColumnData) -> Option<Bytes> {
    let mut buf = BytesMut::new();
    match col {
        ColumnData::Utf8(v) => {
            let mut dict: Vec<&String> = Vec::new();
            let mut index_of = std::collections::HashMap::new();
            let mut indices = Vec::with_capacity(v.len());
            for s in v {
                let idx = *index_of.entry(s).or_insert_with(|| {
                    dict.push(s);
                    dict.len() - 1
                });
                indices.push(idx as u32);
            }
            buf.put_u32_le(dict.len() as u32);
            for s in dict {
                put_str(&mut buf, s);
            }
            for i in indices {
                buf.put_u32_le(i);
            }
        }
        ColumnData::Int64(v) => {
            let mut dict: Vec<i64> = Vec::new();
            let mut index_of = std::collections::HashMap::new();
            let mut indices = Vec::with_capacity(v.len());
            for &x in v {
                let idx = *index_of.entry(x).or_insert_with(|| {
                    dict.push(x);
                    dict.len() - 1
                });
                indices.push(idx as u32);
            }
            buf.put_u32_le(dict.len() as u32);
            for x in dict {
                buf.put_i64_le(x);
            }
            for i in indices {
                buf.put_u32_le(i);
            }
        }
        _ => return None,
    }
    Some(buf.freeze())
}

/// Run-length encodes int64 and bool columns: `(u32 run, value)` pairs.
pub fn encode_run_length(col: &ColumnData) -> Option<Bytes> {
    let mut buf = BytesMut::new();
    match col {
        ColumnData::Int64(v) => {
            let mut i = 0;
            while i < v.len() {
                let mut run = 1usize;
                while i + run < v.len() && v[i + run] == v[i] {
                    run += 1;
                }
                buf.put_u32_le(run as u32);
                buf.put_i64_le(v[i]);
                i += run;
            }
        }
        ColumnData::Bool(v) => {
            let mut i = 0;
            while i < v.len() {
                let mut run = 1usize;
                while i + run < v.len() && v[i + run] == v[i] {
                    run += 1;
                }
                buf.put_u32_le(run as u32);
                buf.put_u8(v[i] as u8);
                i += run;
            }
        }
        _ => return None,
    }
    Some(buf.freeze())
}

/// Encodes `col`, choosing the smallest applicable encoding. Returns the
/// encoding used and the bytes.
pub fn encode_best(col: &ColumnData) -> (Encoding, Bytes) {
    let plain = encode_plain(col);
    let mut best = (Encoding::Plain, plain);
    if let Some(dict) = encode_dictionary(col) {
        if dict.len() < best.1.len() {
            best = (Encoding::Dictionary, dict);
        }
    }
    if let Some(rle) = encode_run_length(col) {
        if rle.len() < best.1.len() {
            best = (Encoding::RunLength, rle);
        }
    }
    best
}

/// Exact-length check for plain fixed-width chunks, with the same error
/// texts the cursor path produces.
fn expect_plain_len(want: usize, data: &[u8]) -> Result<()> {
    match data.len().cmp(&want) {
        std::cmp::Ordering::Less => Err(Error::Decode("chunk truncated".into())),
        std::cmp::Ordering::Greater => {
            Err(Error::Decode("trailing bytes after plain chunk".into()))
        }
        std::cmp::Ordering::Equal => Ok(()),
    }
}

/// Decodes a plain `i64` chunk. When the buffer is machine-aligned on a
/// little-endian target the words are reinterpreted in bulk (no per-value
/// copying — the `Bytes` slice handed up by the cache is consumed as-is);
/// otherwise values are re-materialized one by one and the chunk length is
/// reported as copied.
fn plain_i64(rows: usize, data: &[u8]) -> Result<(Vec<i64>, u64)> {
    expect_plain_len(rows * 8, data)?;
    #[cfg(target_endian = "little")]
    {
        // SAFETY: every bit pattern is a valid i64; `align_to` only splits
        // at alignment boundaries.
        let (prefix, mid, _) = unsafe { data.align_to::<i64>() };
        if prefix.is_empty() && mid.len() == rows {
            return Ok((mid.to_vec(), 0));
        }
    }
    let v = data
        .chunks_exact(8)
        .map(|c| i64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    Ok((v, data.len() as u64))
}

/// Decodes a plain `f64` chunk (see [`plain_i64`] for the fast path).
fn plain_f64(rows: usize, data: &[u8]) -> Result<(Vec<f64>, u64)> {
    expect_plain_len(rows * 8, data)?;
    #[cfg(target_endian = "little")]
    {
        // SAFETY: every bit pattern is a valid f64.
        let (prefix, mid, _) = unsafe { data.align_to::<f64>() };
        if prefix.is_empty() && mid.len() == rows {
            return Ok((mid.to_vec(), 0));
        }
    }
    let v = data
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    Ok((v, data.len() as u64))
}

/// Decodes a chunk of `rows` values of type `ty` encoded with `encoding`.
pub fn decode(encoding: Encoding, ty: ColumnType, rows: usize, data: &[u8]) -> Result<ColumnData> {
    decode_with_stats(encoding, ty, rows, data).map(|(col, _)| col)
}

/// Decodes a chunk and reports how many of its bytes had to be
/// re-materialized value by value. Plain fixed-width chunks whose buffer is
/// machine-aligned decode by bulk word reinterpretation and report 0 —
/// the decoder consumed the cache's `Bytes` slice directly instead of
/// copying through a cursor. Every other shape (unaligned buffers, strings,
/// dictionary and run-length expansion) reports the chunk length. The sum
/// is the columnar layer's `bytes_copied`: the fraction of scanned chunk
/// bytes that alignment allowed to skip per-value copying is the win.
pub fn decode_with_stats(
    encoding: Encoding,
    ty: ColumnType,
    rows: usize,
    data: &[u8],
) -> Result<(ColumnData, u64)> {
    if encoding == Encoding::Plain {
        match ty {
            ColumnType::Int64 => {
                let (v, copied) = plain_i64(rows, data)?;
                return Ok((ColumnData::Int64(v), copied));
            }
            ColumnType::Float64 => {
                let (v, copied) = plain_f64(rows, data)?;
                return Ok((ColumnData::Float64(v), copied));
            }
            _ => {}
        }
    }
    decode_cursor(encoding, ty, rows, data).map(|col| (col, data.len() as u64))
}

/// The cursor-driven decode paths: everything except aligned plain
/// fixed-width chunks.
fn decode_cursor(
    encoding: Encoding,
    ty: ColumnType,
    rows: usize,
    data: &[u8],
) -> Result<ColumnData> {
    let mut cur = Cursor::new(data);
    let out = match encoding {
        Encoding::Plain => match ty {
            ColumnType::Int64 => {
                ColumnData::Int64((0..rows).map(|_| cur.i64()).collect::<Result<_>>()?)
            }
            ColumnType::Float64 => {
                ColumnData::Float64((0..rows).map(|_| cur.f64()).collect::<Result<_>>()?)
            }
            ColumnType::Utf8 => {
                ColumnData::Utf8((0..rows).map(|_| cur.str()).collect::<Result<_>>()?)
            }
            ColumnType::Bool => ColumnData::Bool(
                (0..rows)
                    .map(|_| Ok(cur.take(1)?[0] != 0))
                    .collect::<Result<_>>()?,
            ),
        },
        Encoding::Dictionary => {
            let dict_len = cur.u32()? as usize;
            match ty {
                ColumnType::Utf8 => {
                    let dict: Vec<String> =
                        (0..dict_len).map(|_| cur.str()).collect::<Result<_>>()?;
                    let mut out = Vec::with_capacity(rows);
                    for _ in 0..rows {
                        let idx = cur.u32()? as usize;
                        let s = dict
                            .get(idx)
                            .ok_or_else(|| Error::Decode("dict index out of range".into()))?;
                        out.push(s.clone());
                    }
                    ColumnData::Utf8(out)
                }
                ColumnType::Int64 => {
                    let dict: Vec<i64> = (0..dict_len).map(|_| cur.i64()).collect::<Result<_>>()?;
                    let mut out = Vec::with_capacity(rows);
                    for _ in 0..rows {
                        let idx = cur.u32()? as usize;
                        out.push(
                            *dict
                                .get(idx)
                                .ok_or_else(|| Error::Decode("dict index out of range".into()))?,
                        );
                    }
                    ColumnData::Int64(out)
                }
                _ => return Err(Error::Decode(format!("dictionary not valid for {ty}"))),
            }
        }
        Encoding::RunLength => match ty {
            ColumnType::Int64 => {
                let mut out = Vec::with_capacity(rows);
                while out.len() < rows {
                    let run = cur.u32()? as usize;
                    let v = cur.i64()?;
                    out.extend(std::iter::repeat_n(v, run));
                }
                if out.len() != rows {
                    return Err(Error::Decode("run-length overrun".into()));
                }
                ColumnData::Int64(out)
            }
            ColumnType::Bool => {
                let mut out = Vec::with_capacity(rows);
                while out.len() < rows {
                    let run = cur.u32()? as usize;
                    let v = cur.take(1)?[0] != 0;
                    out.extend(std::iter::repeat_n(v, run));
                }
                if out.len() != rows {
                    return Err(Error::Decode("run-length overrun".into()));
                }
                ColumnData::Bool(out)
            }
            _ => return Err(Error::Decode(format!("run-length not valid for {ty}"))),
        },
    };
    if !cur.done() && encoding == Encoding::Plain {
        return Err(Error::Decode("trailing bytes after plain chunk".into()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(col: ColumnData) {
        let rows = col.len();
        let ty = col.column_type();
        let (enc, bytes) = encode_best(&col);
        let back = decode(enc, ty, rows, &bytes).unwrap();
        assert_eq!(back, col, "round trip via {enc:?}");
        // Plain must always round-trip too.
        let plain = encode_plain(&col);
        assert_eq!(decode(Encoding::Plain, ty, rows, &plain).unwrap(), col);
    }

    #[test]
    fn round_trips_all_types() {
        round_trip(ColumnData::Int64(vec![1, -5, i64::MAX, 0, i64::MIN]));
        round_trip(ColumnData::Float64(vec![1.5, -0.0, f64::MAX, 3.25]));
        round_trip(ColumnData::Utf8(vec![
            "a".into(),
            "".into(),
            "日本語".into(),
        ]));
        round_trip(ColumnData::Bool(vec![true, false, true, true]));
    }

    #[test]
    fn empty_columns_round_trip() {
        round_trip(ColumnData::Int64(vec![]));
        round_trip(ColumnData::Utf8(vec![]));
    }

    #[test]
    fn dictionary_wins_on_repetitive_strings() {
        let col = ColumnData::Utf8((0..1000).map(|i| format!("city_{}", i % 5)).collect());
        let (enc, bytes) = encode_best(&col);
        assert_eq!(enc, Encoding::Dictionary);
        assert!(bytes.len() < encode_plain(&col).len() / 2);
        round_trip(col);
    }

    #[test]
    fn rle_wins_on_runs() {
        let col = ColumnData::Int64((0..1000).map(|i| (i / 250) as i64).collect());
        let (enc, bytes) = encode_best(&col);
        assert_eq!(enc, Encoding::RunLength);
        assert!(bytes.len() < 100);
        round_trip(col);
    }

    #[test]
    fn plain_wins_on_high_cardinality() {
        let col = ColumnData::Int64((0..1000).map(|i| i * 7919).collect());
        let (enc, _) = encode_best(&col);
        assert_eq!(enc, Encoding::Plain);
    }

    #[test]
    fn truncated_data_is_a_decode_error() {
        let col = ColumnData::Int64(vec![1, 2, 3]);
        let bytes = encode_plain(&col);
        assert!(decode(Encoding::Plain, ColumnType::Int64, 3, &bytes[..10]).is_err());
    }

    #[test]
    fn corrupt_dictionary_index_is_rejected() {
        let col = ColumnData::Utf8(vec!["a".into(), "a".into()]);
        let bytes = encode_dictionary(&col).unwrap();
        let mut broken = bytes.to_vec();
        // Point the last index far out of range.
        let n = broken.len();
        broken[n - 4..].copy_from_slice(&999u32.to_le_bytes());
        assert!(decode(Encoding::Dictionary, ColumnType::Utf8, 2, &broken).is_err());
    }

    #[test]
    fn wrong_encoding_type_combination() {
        let col = ColumnData::Float64(vec![1.0]);
        assert!(encode_dictionary(&col).is_none());
        assert!(encode_run_length(&col).is_none());
        assert!(decode(Encoding::Dictionary, ColumnType::Float64, 1, &[0, 0, 0, 0]).is_err());
    }

    #[test]
    fn encoding_tags_round_trip() {
        for e in [Encoding::Plain, Encoding::Dictionary, Encoding::RunLength] {
            assert_eq!(Encoding::from_tag(e.tag()), Some(e));
        }
        assert_eq!(Encoding::from_tag(9), None);
    }

    #[cfg(target_endian = "little")]
    #[test]
    fn aligned_plain_fixed_width_decodes_without_copying() {
        let ints = ColumnData::Int64((0..257).map(|i| i * 31 - 4000).collect());
        let floats = ColumnData::Float64((0..129).map(|i| i as f64 * 0.75 - 17.0).collect());
        for col in [ints, floats] {
            let bytes = encode_plain(&col);
            // A freshly allocated buffer starts machine-aligned.
            assert_eq!(bytes.as_ptr() as usize % 8, 0, "test premise: aligned");
            let (back, copied) =
                decode_with_stats(Encoding::Plain, col.column_type(), col.len(), &bytes).unwrap();
            assert_eq!(back, col);
            assert_eq!(copied, 0, "aligned bulk path must not count copies");
        }
    }

    #[test]
    fn unaligned_plain_fixed_width_still_decodes_and_counts() {
        let col = ColumnData::Int64((0..64).map(|i| i * 131).collect());
        let bytes = encode_plain(&col);
        // Shift by one byte to defeat alignment.
        let mut padded = vec![0u8];
        padded.extend_from_slice(&bytes);
        let data = &padded[1..];
        let (back, copied) =
            decode_with_stats(Encoding::Plain, ColumnType::Int64, col.len(), data).unwrap();
        assert_eq!(back, col);
        assert_eq!(copied, data.len() as u64, "unaligned path counts the chunk");
    }

    #[test]
    fn cursor_encodings_count_full_chunk_as_copied() {
        let col = ColumnData::Utf8((0..100).map(|i| format!("v{}", i % 4)).collect());
        let (enc, bytes) = encode_best(&col);
        let (back, copied) = decode_with_stats(enc, ColumnType::Utf8, 100, &bytes).unwrap();
        assert_eq!(back, col);
        assert_eq!(copied, bytes.len() as u64);
        let bools = ColumnData::Bool(vec![true; 9]);
        let plain = encode_plain(&bools);
        let (back, copied) =
            decode_with_stats(Encoding::Plain, ColumnType::Bool, 9, &plain).unwrap();
        assert_eq!(back, bools);
        assert_eq!(copied, plain.len() as u64);
    }

    #[test]
    fn plain_fixed_width_length_checks_hold_on_both_paths() {
        let col = ColumnData::Int64(vec![1, 2, 3, 4]);
        let bytes = encode_plain(&col);
        // Truncated and trailing forms fail identically regardless of alignment.
        assert!(decode(
            Encoding::Plain,
            ColumnType::Int64,
            4,
            &bytes[..bytes.len() - 3]
        )
        .is_err());
        let mut extra = bytes.to_vec();
        extra.push(7);
        assert!(decode(Encoding::Plain, ColumnType::Int64, 4, &extra).is_err());
        let mut shifted = vec![0u8];
        shifted.extend_from_slice(&bytes);
        assert!(decode(Encoding::Plain, ColumnType::Int64, 4, &shifted[..12]).is_err());
    }
}
