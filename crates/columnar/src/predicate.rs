//! Predicates with pushdown: row-group pruning via chunk statistics.
//!
//! "These engines have implemented various query optimization techniques,
//! with predicate pushdown being a key example. ... While these
//! optimizations lead to performance gains, they also often result in a
//! high number of read requests for small portions of data files" (§2.2).

use std::cmp::Ordering;

use crate::format::ChunkMeta;
use crate::types::{ColumnData, Value};

/// A predicate over one column (by name), with conjunction/disjunction.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `column == value`
    Eq(String, Value),
    /// `column < value`
    Lt(String, Value),
    /// `column > value`
    Gt(String, Value),
    /// `low <= column <= high`
    Between(String, Value, Value),
    /// Both sides hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either side holds.
    Or(Box<Predicate>, Box<Predicate>),
}

impl Predicate {
    /// Convenience constructor for `AND`.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Convenience constructor for `OR`.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Column names referenced by this predicate.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::Eq(c, _) | Predicate::Lt(c, _) | Predicate::Gt(c, _) => out.push(c),
            Predicate::Between(c, _, _) => out.push(c),
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
        }
    }

    /// Conservatively decides whether a row group *may* contain matching
    /// rows, from per-column chunk statistics. `chunk_of` maps a column name
    /// to its chunk metadata in this row group; unknown columns or missing
    /// stats yield `true` (cannot prune).
    pub fn may_match(&self, chunk_of: &dyn Fn(&str) -> Option<ChunkMeta>) -> bool {
        match self {
            Predicate::Eq(col, v) => match stats(chunk_of, col) {
                Some((min, max)) => in_range(v, &min, &max),
                None => true,
            },
            Predicate::Lt(col, v) => match stats(chunk_of, col) {
                // Some value < v iff min < v.
                Some((min, _)) => min.partial_cmp_same_type(v) == Some(Ordering::Less),
                None => true,
            },
            Predicate::Gt(col, v) => match stats(chunk_of, col) {
                Some((_, max)) => max.partial_cmp_same_type(v) == Some(Ordering::Greater),
                None => true,
            },
            Predicate::Between(col, lo, hi) => match stats(chunk_of, col) {
                Some((min, max)) => {
                    // The ranges [min,max] and [lo,hi] must intersect.
                    min.partial_cmp_same_type(hi) != Some(Ordering::Greater)
                        && max.partial_cmp_same_type(lo) != Some(Ordering::Less)
                }
                None => true,
            },
            Predicate::And(a, b) => a.may_match(chunk_of) && b.may_match(chunk_of),
            Predicate::Or(a, b) => a.may_match(chunk_of) || b.may_match(chunk_of),
        }
    }

    /// Evaluates the predicate on one row. `value_of` resolves a column name
    /// to the row's value; unknown columns evaluate to `false`.
    pub fn matches(&self, value_of: &dyn Fn(&str) -> Option<Value>) -> bool {
        match self {
            Predicate::Eq(col, v) => {
                value_of(col).is_some_and(|x| x.partial_cmp_same_type(v) == Some(Ordering::Equal))
            }
            Predicate::Lt(col, v) => {
                value_of(col).is_some_and(|x| x.partial_cmp_same_type(v) == Some(Ordering::Less))
            }
            Predicate::Gt(col, v) => {
                value_of(col).is_some_and(|x| x.partial_cmp_same_type(v) == Some(Ordering::Greater))
            }
            Predicate::Between(col, lo, hi) => value_of(col).is_some_and(|x| {
                x.partial_cmp_same_type(lo) != Some(Ordering::Less)
                    && x.partial_cmp_same_type(hi) != Some(Ordering::Greater)
            }),
            Predicate::And(a, b) => a.matches(value_of) && b.matches(value_of),
            Predicate::Or(a, b) => a.matches(value_of) || b.matches(value_of),
        }
    }

    /// Filters decoded columns: returns the indices of matching rows.
    /// `columns` pairs each column name with its data.
    pub fn matching_rows(&self, columns: &[(&str, &ColumnData)], rows: usize) -> Vec<usize> {
        (0..rows)
            .filter(|&row| {
                self.matches(&|name| {
                    columns
                        .iter()
                        .find(|(n, _)| *n == name)
                        .map(|(_, data)| data.value(row))
                })
            })
            .collect()
    }
}

fn stats(chunk_of: &dyn Fn(&str) -> Option<ChunkMeta>, col: &str) -> Option<(Value, Value)> {
    let chunk = chunk_of(col)?;
    Some((chunk.min?, chunk.max?))
}

fn in_range(v: &Value, min: &Value, max: &Value) -> bool {
    v.partial_cmp_same_type(min) != Some(Ordering::Less)
        && v.partial_cmp_same_type(max) != Some(Ordering::Greater)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Encoding;

    fn chunk(min: i64, max: i64) -> ChunkMeta {
        ChunkMeta {
            offset: 0,
            len: 0,
            encoding: Encoding::Plain,
            min: Some(Value::Int64(min)),
            max: Some(Value::Int64(max)),
        }
    }

    fn lookup(min: i64, max: i64) -> impl Fn(&str) -> Option<ChunkMeta> {
        move |name| (name == "x").then(|| chunk(min, max))
    }

    #[test]
    fn eq_pruning() {
        let p = Predicate::Eq("x".into(), Value::Int64(50));
        assert!(p.may_match(&lookup(0, 100)));
        assert!(!p.may_match(&lookup(60, 100)));
        assert!(!p.may_match(&lookup(0, 49)));
        assert!(p.may_match(&lookup(50, 50)));
    }

    #[test]
    fn lt_gt_pruning() {
        assert!(Predicate::Lt("x".into(), Value::Int64(10)).may_match(&lookup(5, 100)));
        assert!(!Predicate::Lt("x".into(), Value::Int64(10)).may_match(&lookup(10, 100)));
        assert!(Predicate::Gt("x".into(), Value::Int64(90)).may_match(&lookup(0, 91)));
        assert!(!Predicate::Gt("x".into(), Value::Int64(90)).may_match(&lookup(0, 90)));
    }

    #[test]
    fn between_pruning_checks_intersection() {
        let p = Predicate::Between("x".into(), Value::Int64(10), Value::Int64(20));
        assert!(p.may_match(&lookup(0, 15)));
        assert!(p.may_match(&lookup(15, 100)));
        assert!(p.may_match(&lookup(0, 100)));
        assert!(!p.may_match(&lookup(21, 100)));
        assert!(!p.may_match(&lookup(0, 9)));
    }

    #[test]
    fn and_or_pruning() {
        let lo = Predicate::Gt("x".into(), Value::Int64(80));
        let hi = Predicate::Lt("x".into(), Value::Int64(20));
        // x in [30, 60]: neither side can match.
        assert!(!lo.clone().or(hi.clone()).may_match(&lookup(30, 60)));
        // AND of contradictory conditions over [0,100] cannot be pruned by
        // independent min/max checks (both sides individually may match).
        assert!(lo.and(hi).may_match(&lookup(0, 100)));
    }

    #[test]
    fn unknown_column_cannot_prune() {
        let p = Predicate::Eq("y".into(), Value::Int64(1));
        assert!(p.may_match(&lookup(5, 6)));
    }

    #[test]
    fn row_evaluation() {
        let col = ColumnData::Int64(vec![1, 5, 10, 15]);
        let p = Predicate::Between("x".into(), Value::Int64(5), Value::Int64(10));
        assert_eq!(p.matching_rows(&[("x", &col)], 4), vec![1, 2]);
        let p2 = Predicate::Eq("x".into(), Value::Int64(1))
            .or(Predicate::Gt("x".into(), Value::Int64(12)));
        assert_eq!(p2.matching_rows(&[("x", &col)], 4), vec![0, 3]);
    }

    #[test]
    fn columns_are_collected() {
        let p = Predicate::Eq("a".into(), Value::Int64(1))
            .and(Predicate::Lt("b".into(), Value::Int64(2)))
            .or(Predicate::Gt("a".into(), Value::Int64(3)));
        assert_eq!(p.columns(), vec!["a", "b"]);
    }
}
