//! `edgecache-cli` — operator tooling for edgecache cache directories.
//!
//! ```text
//! edgecache-cli inspect <dir>
//! edgecache-cli verify  <dir> [--repair]
//! edgecache-cli top     <dir> [-n <count>]
//! edgecache-cli purge   <dir> [--file <hex-file-id>]
//! edgecache-cli trace   <dump.json>
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use edgecache_common::ByteSize;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  edgecache-cli inspect <dir>\n  edgecache-cli verify <dir> [--repair]\n  \
         edgecache-cli top <dir> [-n <count>]\n  edgecache-cli purge <dir> [--file <hex-id>]\n  \
         edgecache-cli trace <dump.json>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(cmd), Some(dir)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let dir = PathBuf::from(dir);
    let rest = &args[2..];

    let result = match cmd.as_str() {
        "inspect" => edgecache_cli::inspect(&dir).map(|r| println!("{r}")),
        "verify" => {
            let repair = rest.iter().any(|a| a == "--repair");
            edgecache_cli::verify(&dir, repair).map(|r| {
                println!(
                    "checked {} pages, {} corrupt{}",
                    r.checked,
                    r.corrupt,
                    if r.repaired { " (deleted)" } else { "" }
                );
                if r.corrupt > 0 && !r.repaired {
                    println!("re-run with --repair to delete corrupt pages");
                }
            })
        }
        "top" => {
            let n = rest
                .iter()
                .position(|a| a == "-n")
                .and_then(|i| rest.get(i + 1))
                .and_then(|v| v.parse().ok())
                .unwrap_or(10);
            edgecache_cli::top(&dir, n).map(|entries| {
                println!("{:<18} {:>8} {:>12}", "file id", "pages", "bytes");
                for (file, pages, bytes) in entries {
                    println!(
                        "{:<18} {:>8} {:>12}",
                        file.as_hex(),
                        pages,
                        ByteSize::new(bytes).to_string()
                    );
                }
            })
        }
        "trace" => edgecache_cli::trace_summary(&dir).map(|stages| {
            let us = |d: std::time::Duration| d.as_micros();
            println!(
                "{:<18} {:>7} {:>12} {:>9} {:>9} {:>9} {:>9}",
                "stage", "count", "total_us", "p50_us", "p95_us", "p99_us", "max_us"
            );
            for s in stages {
                println!(
                    "{:<18} {:>7} {:>12} {:>9} {:>9} {:>9} {:>9}",
                    s.name,
                    s.count,
                    us(s.total),
                    us(s.p50),
                    us(s.p95),
                    us(s.p99),
                    us(s.max)
                );
            }
        }),
        "purge" => {
            // Purge deletes data: refuse stray arguments rather than silently
            // ignoring them and wiping the whole directory when the caller
            // meant `--file <hex-id>`.
            let file = match rest {
                [] => None,
                [flag, hex] if flag == "--file" => Some(hex.as_str()),
                _ => {
                    eprintln!("error: unrecognized purge arguments {rest:?}");
                    return usage();
                }
            };
            edgecache_cli::purge(&dir, file).map(|n| println!("removed {n} pages"))
        }
        _ => return usage(),
    };

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
