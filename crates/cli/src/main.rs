//! `edgecache-cli` — operator tooling for edgecache cache directories.
//!
//! ```text
//! edgecache-cli inspect <dir>
//! edgecache-cli verify  <dir> [--repair]
//! edgecache-cli top     <dir> [-n <count>]
//! edgecache-cli purge   <dir> [--file <hex-file-id>]
//! edgecache-cli trace   <dump.json>
//! edgecache-cli serve   <dir> [--addr <host:port>] [--capacity <size>]
//!                       [--mem <size>] [--quota <scope>=<size>]...
//!                       [--max-conns <n>] [--ttl <secs>] [--allow-shutdown]
//! ```
//!
//! Argument parsing is strict (see `args`): any unrecognized argument is a
//! hard error with exit code 2, for every subcommand.

use std::process::ExitCode;

use edgecache_cli::{parse_cli, CliCommand, USAGE};
use edgecache_common::ByteSize;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_cli(&argv) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let result = match cmd {
        CliCommand::Inspect { dir } => edgecache_cli::inspect(&dir).map(|r| println!("{r}")),
        CliCommand::Verify { dir, repair } => edgecache_cli::verify(&dir, repair).map(|r| {
            println!(
                "checked {} pages, {} corrupt{}",
                r.checked,
                r.corrupt,
                if r.repaired { " (deleted)" } else { "" }
            );
            if r.corrupt > 0 && !r.repaired {
                println!("re-run with --repair to delete corrupt pages");
            }
        }),
        CliCommand::Top { dir, n } => edgecache_cli::top(&dir, n).map(|entries| {
            println!("{:<18} {:>8} {:>12}", "file id", "pages", "bytes");
            for (file, pages, bytes) in entries {
                println!(
                    "{:<18} {:>8} {:>12}",
                    file.as_hex(),
                    pages,
                    ByteSize::new(bytes).to_string()
                );
            }
        }),
        CliCommand::Trace { path } => edgecache_cli::trace_summary(&path).map(|stages| {
            let us = |d: std::time::Duration| d.as_micros();
            println!(
                "{:<18} {:>7} {:>12} {:>9} {:>9} {:>9} {:>9}",
                "stage", "count", "total_us", "p50_us", "p95_us", "p99_us", "max_us"
            );
            for s in stages {
                println!(
                    "{:<18} {:>7} {:>12} {:>9} {:>9} {:>9} {:>9}",
                    s.name,
                    s.count,
                    us(s.total),
                    us(s.p50),
                    us(s.p95),
                    us(s.p99),
                    us(s.max)
                );
            }
        }),
        CliCommand::Purge { dir, file } => {
            edgecache_cli::purge(&dir, file.as_deref()).map(|n| println!("removed {n} pages"))
        }
        CliCommand::Serve(args) => edgecache_cli::start_serve(&args).map(|session| {
            // The bound address on stdout is the contract scripts rely on
            // (with --addr host:0 the port is ephemeral).
            println!("listening on {}", session.handle.local_addr());
            session.handle.wait();
            eprintln!("shutdown requested, draining");
        }),
    };

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
