//! Strict command-line parsing for `edgecache-cli`.
//!
//! Parsing lives in the library (not the binary) so it is testable, and it
//! is *strict*: every subcommand rejects arguments it does not understand
//! instead of silently ignoring them. The `purge` audit that motivated
//! this (`purge <dir> --fil <id>` must not wipe the directory) applies to
//! every subcommand — a typoed flag on `verify --repair` or `serve
//! --quota` changes what the tool destroys or admits, so an unrecognized
//! token is always an error, never a no-op.

use std::path::PathBuf;
use std::time::Duration;

use edgecache_common::ByteSize;

/// Arguments of the `serve` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Cache directory (created if absent).
    pub dir: PathBuf,
    /// Bind address.
    pub addr: String,
    /// SSD capacity of the cache directory.
    pub capacity: ByteSize,
    /// DRAM tier capacity (zero disables the tier).
    pub memory: ByteSize,
    /// Per-scope quotas: `(dotted scope, size)`.
    pub quotas: Vec<(String, ByteSize)>,
    /// Connection semaphore size.
    pub max_conns: usize,
    /// Page TTL in seconds (zero disables expiry).
    pub ttl_secs: u64,
    /// Honour the `shutdown` protocol command.
    pub allow_shutdown: bool,
}

impl Default for ServeArgs {
    fn default() -> Self {
        Self {
            dir: PathBuf::new(),
            addr: "127.0.0.1:11211".to_string(),
            capacity: ByteSize::gib(1),
            memory: ByteSize::new(0),
            quotas: Vec::new(),
            max_conns: 1024,
            ttl_secs: 0,
            allow_shutdown: false,
        }
    }
}

impl ServeArgs {
    /// The TTL as a duration, if enabled.
    pub fn ttl(&self) -> Option<Duration> {
        (self.ttl_secs > 0).then(|| Duration::from_secs(self.ttl_secs))
    }
}

/// One fully parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum CliCommand {
    Inspect { dir: PathBuf },
    Verify { dir: PathBuf, repair: bool },
    Top { dir: PathBuf, n: usize },
    Purge { dir: PathBuf, file: Option<String> },
    Trace { path: PathBuf },
    Serve(ServeArgs),
}

/// The usage text printed on any parse error.
pub const USAGE: &str = "usage:\n  \
    edgecache-cli inspect <dir>\n  \
    edgecache-cli verify <dir> [--repair]\n  \
    edgecache-cli top <dir> [-n <count>]\n  \
    edgecache-cli purge <dir> [--file <hex-id>]\n  \
    edgecache-cli trace <dump.json>\n  \
    edgecache-cli serve <dir> [--addr <host:port>] [--capacity <size>]\n    \
    [--mem <size>] [--quota <scope>=<size>]... [--max-conns <n>]\n    \
    [--ttl <secs>] [--allow-shutdown]";

/// Parses an invocation (everything after the program name). Errors carry
/// a human-readable message; callers print it plus [`USAGE`] and exit 2.
pub fn parse_cli(args: &[String]) -> Result<CliCommand, String> {
    let Some(cmd) = args.first() else {
        return Err("missing subcommand".into());
    };
    let Some(dir) = args.get(1) else {
        return Err(format!("{cmd}: missing argument"));
    };
    let dir = PathBuf::from(dir);
    let rest = &args[2..];

    match cmd.as_str() {
        "inspect" => {
            reject_extras("inspect", rest)?;
            Ok(CliCommand::Inspect { dir })
        }
        "trace" => {
            reject_extras("trace", rest)?;
            Ok(CliCommand::Trace { path: dir })
        }
        "verify" => {
            let mut repair = false;
            for a in rest {
                match a.as_str() {
                    "--repair" => repair = true,
                    other => return Err(unrecognized("verify", other)),
                }
            }
            Ok(CliCommand::Verify { dir, repair })
        }
        "top" => {
            let mut n = 10;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "-n" => n = parse_value("top", "-n", it.next())?,
                    other => return Err(unrecognized("top", other)),
                }
            }
            Ok(CliCommand::Top { dir, n })
        }
        "purge" => {
            let mut file = None;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--file" => {
                        file = Some(
                            it.next()
                                .ok_or_else(|| "purge: --file needs a value".to_string())?
                                .clone(),
                        )
                    }
                    other => return Err(unrecognized("purge", other)),
                }
            }
            Ok(CliCommand::Purge { dir, file })
        }
        "serve" => {
            let mut serve = ServeArgs {
                dir,
                ..Default::default()
            };
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--addr" => {
                        serve.addr = it
                            .next()
                            .ok_or_else(|| "serve: --addr needs a value".to_string())?
                            .clone()
                    }
                    "--capacity" => serve.capacity = parse_value("serve", "--capacity", it.next())?,
                    "--mem" => serve.memory = parse_value("serve", "--mem", it.next())?,
                    "--max-conns" => {
                        serve.max_conns = parse_value("serve", "--max-conns", it.next())?
                    }
                    "--ttl" => serve.ttl_secs = parse_value("serve", "--ttl", it.next())?,
                    "--allow-shutdown" => serve.allow_shutdown = true,
                    "--quota" => {
                        let spec = it
                            .next()
                            .ok_or_else(|| "serve: --quota needs <scope>=<size>".to_string())?;
                        let (scope, size) = spec
                            .split_once('=')
                            .ok_or_else(|| format!("serve: bad quota spec `{spec}`"))?;
                        let size: ByteSize = size
                            .parse()
                            .map_err(|e| format!("serve: bad quota size in `{spec}`: {e}"))?;
                        serve.quotas.push((scope.to_string(), size));
                    }
                    other => return Err(unrecognized("serve", other)),
                }
            }
            if serve.max_conns == 0 {
                return Err("serve: --max-conns must be positive".into());
            }
            Ok(CliCommand::Serve(serve))
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

fn unrecognized(cmd: &str, arg: &str) -> String {
    format!("{cmd}: unrecognized argument `{arg}`")
}

/// For subcommands that take no flags at all.
fn reject_extras(cmd: &str, rest: &[String]) -> Result<(), String> {
    match rest.first() {
        Some(extra) => Err(unrecognized(cmd, extra)),
        None => Ok(()),
    }
}

fn parse_value<T: std::str::FromStr>(
    cmd: &str,
    flag: &str,
    value: Option<&String>,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    let v = value.ok_or_else(|| format!("{cmd}: {flag} needs a value"))?;
    v.parse()
        .map_err(|e| format!("{cmd}: bad value for {flag} `{v}`: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliCommand, String> {
        parse_cli(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn every_subcommand_parses_its_happy_path() {
        assert_eq!(
            parse(&["inspect", "/d"]).unwrap(),
            CliCommand::Inspect { dir: "/d".into() }
        );
        assert_eq!(
            parse(&["verify", "/d", "--repair"]).unwrap(),
            CliCommand::Verify {
                dir: "/d".into(),
                repair: true
            }
        );
        assert_eq!(
            parse(&["top", "/d", "-n", "3"]).unwrap(),
            CliCommand::Top {
                dir: "/d".into(),
                n: 3
            }
        );
        assert_eq!(
            parse(&["purge", "/d", "--file", "00000000000000ff"]).unwrap(),
            CliCommand::Purge {
                dir: "/d".into(),
                file: Some("00000000000000ff".into())
            }
        );
        let CliCommand::Serve(s) = parse(&[
            "serve",
            "/d",
            "--addr",
            "127.0.0.1:0",
            "--capacity",
            "256MB",
            "--mem",
            "32MB",
            "--quota",
            "sales.orders=64MB",
            "--max-conns",
            "16",
            "--ttl",
            "60",
            "--allow-shutdown",
        ])
        .unwrap() else {
            panic!("expected serve");
        };
        assert_eq!(s.addr, "127.0.0.1:0");
        assert_eq!(s.capacity, ByteSize::mib(256));
        assert_eq!(s.memory, ByteSize::mib(32));
        assert_eq!(s.quotas, vec![("sales.orders".into(), ByteSize::mib(64))]);
        assert_eq!(s.max_conns, 16);
        assert_eq!(s.ttl(), Some(Duration::from_secs(60)));
        assert!(s.allow_shutdown);
    }

    /// The audit this module exists for: EVERY subcommand must reject a
    /// stray argument — no silent ignoring anywhere.
    #[test]
    fn every_subcommand_rejects_stray_arguments() {
        let cases: &[&[&str]] = &[
            &["inspect", "/d", "extra"],
            &["trace", "/d.json", "extra"],
            &["verify", "/d", "--repar"],
            &["verify", "/d", "--repair", "now"],
            &["top", "/d", "-m", "3"],
            &["top", "/d", "-n", "3", "extra"],
            &["purge", "/d", "--fil", "00ff"],
            &["purge", "/d", "stray"],
            &["serve", "/d", "--adr", "x"],
            &["serve", "/d", "--allow-shutdown", "yes"],
        ];
        for case in cases {
            let err = parse(case).expect_err(&format!("{case:?} must be rejected"));
            assert!(err.contains("unrecognized"), "{case:?} -> {err}");
        }
    }

    #[test]
    fn missing_values_and_bad_values_are_errors() {
        assert!(parse(&["top", "/d", "-n"])
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse(&["top", "/d", "-n", "many"])
            .unwrap_err()
            .contains("bad value"));
        assert!(parse(&["purge", "/d", "--file"])
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse(&["serve", "/d", "--quota", "noequals"])
            .unwrap_err()
            .contains("bad quota spec"));
        assert!(parse(&["serve", "/d", "--quota", "s=1XB"])
            .unwrap_err()
            .contains("bad quota size"));
        assert!(parse(&["serve", "/d", "--max-conns", "0"])
            .unwrap_err()
            .contains("positive"));
        assert!(parse(&[]).unwrap_err().contains("missing subcommand"));
        assert!(parse(&["inspect"])
            .unwrap_err()
            .contains("missing argument"));
        assert!(parse(&["frobnicate", "/d"])
            .unwrap_err()
            .contains("unknown subcommand"));
    }
}
