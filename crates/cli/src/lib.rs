//! Operator tooling for edgecache cache directories.
//!
//! The paper's operational sections (§7, §8) describe the day-2 work of
//! running thousands of cache deployments: inspecting usage, chasing
//! corruption, and purging data (not least for the data-privacy
//! requirements that motivated TTL eviction). This crate implements those
//! workflows against the on-disk layout of `edgecache-pagestore`:
//!
//! * [`inspect`] — page/byte/file counts and layout info;
//! * [`verify`] — full checksum scan, reporting (and optionally deleting)
//!   corrupt pages;
//! * [`top`] — largest cached files;
//! * [`purge`] — delete everything, or one file's pages;
//! * [`trace_summary`] — per-stage latency table from a Chrome trace dump
//!   (written by `simtest --trace-dump` or the `trace_dump` bench);
//! * [`start_serve`] — the network front-end: a memcached-protocol server
//!   over a recovered cache directory (`edgecache-cli serve`).
//!
//! The binary (`edgecache-cli`) dispatches on [`args::parse_cli`], which is
//! strict: every subcommand rejects arguments it doesn't understand.

pub mod args;

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use edgecache_common::clock::system_clock;
use edgecache_common::error::{Error, Result};
use edgecache_common::ByteSize;
use edgecache_core::config::CacheConfig;
use edgecache_core::manager::{CacheManager, TtlJanitor};
use edgecache_metrics::trace::summarize_chrome_trace;
use edgecache_metrics::StageSummary;
use edgecache_pagestore::{CacheScope, FileId, LocalPageStore, LocalStoreConfig, PageStore};
use edgecache_server::server::{serve, ServerConfig, ServerHandle};

pub use args::{parse_cli, CliCommand, ServeArgs, USAGE};

/// Summary of a cache directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InspectReport {
    pub page_size: u64,
    pub pages: usize,
    pub bytes: u64,
    pub files: usize,
}

impl std::fmt::Display for InspectReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "page size : {}", ByteSize::new(self.page_size))?;
        writeln!(f, "pages     : {}", self.pages)?;
        writeln!(f, "bytes     : {}", ByteSize::new(self.bytes))?;
        write!(f, "files     : {}", self.files)
    }
}

/// Opens the store at `dir`, auto-detecting its page size.
fn open(dir: &Path) -> Result<LocalPageStore> {
    let page_size = LocalPageStore::detect_page_size(dir).ok_or_else(|| {
        Error::InvalidArgument(format!(
            "`{}` does not look like an edgecache directory (no page_size= folder)",
            dir.display()
        ))
    })?;
    LocalPageStore::open(
        dir,
        LocalStoreConfig {
            page_size,
            ..Default::default()
        },
    )
}

/// Summarizes a cache directory.
pub fn inspect(dir: &Path) -> Result<InspectReport> {
    let store = open(dir)?;
    let pages = store.recover()?;
    let files: std::collections::HashSet<FileId> = pages.iter().map(|(id, _)| id.file).collect();
    Ok(InspectReport {
        page_size: store.page_size(),
        pages: pages.len(),
        bytes: pages.iter().map(|(_, s)| s).sum(),
        files: files.len(),
    })
}

/// Result of a verification scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    pub checked: usize,
    pub corrupt: usize,
    /// Whether corrupt pages were deleted.
    pub repaired: bool,
}

/// Verifies every page's checksum. With `repair`, corrupt pages are deleted
/// (the §8 "early eviction" applied offline).
pub fn verify(dir: &Path, repair: bool) -> Result<VerifyReport> {
    let store = open(dir)?;
    let pages = store.recover()?;
    let mut corrupt = 0;
    for (id, _) in &pages {
        match store.get_full(*id) {
            Ok(_) => {}
            Err(Error::Corrupted(_)) => {
                corrupt += 1;
                if repair {
                    store.delete(*id)?;
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(VerifyReport {
        checked: pages.len(),
        corrupt,
        repaired: repair,
    })
}

/// The `n` largest cached files: `(file id, pages, bytes)`.
pub fn top(dir: &Path, n: usize) -> Result<Vec<(FileId, usize, u64)>> {
    let store = open(dir)?;
    let mut by_file: HashMap<FileId, (usize, u64)> = HashMap::new();
    for (id, size) in store.recover()? {
        let e = by_file.entry(id.file).or_default();
        e.0 += 1;
        e.1 += size;
    }
    let mut out: Vec<(FileId, usize, u64)> =
        by_file.into_iter().map(|(f, (p, b))| (f, p, b)).collect();
    out.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
    out.truncate(n);
    Ok(out)
}

/// Deletes cached pages: all of them, or only one file's (by hex file id).
/// Returns the number of pages removed.
///
/// The purge runs through a recovered [`CacheManager`] rather than raw store
/// deletes, so every removal flows through the index and the scope lifecycle
/// ledger — the same exit path online evictions take. An offline purge thus
/// keeps the same accounting discipline (and metrics) as the live system,
/// and cannot diverge from it as the eviction path evolves.
pub fn purge(dir: &Path, file: Option<&str>) -> Result<usize> {
    let store = open(dir)?;
    let filter = match file {
        Some(hex) => Some(FileId::from_hex(hex).ok_or_else(|| {
            Error::InvalidArgument(format!("`{hex}` is not a 16-hex-digit file id"))
        })?),
        None => None,
    };
    let page_size = store.page_size();
    let cache =
        CacheManager::builder(CacheConfig::default().with_page_size(ByteSize::new(page_size)))
            .with_store(Arc::new(store), u64::MAX)
            .with_recovery()
            .build()?;
    Ok(match filter {
        Some(f) => cache.delete_file(f),
        None => cache.clear(),
    })
}

/// A running `serve` session: the TCP front-end plus the machinery that
/// must outlive it (the manager keeps the store; the janitor enforces TTL
/// expiry). Dropping the session shuts everything down gracefully and
/// joins every thread.
pub struct ServeSession {
    /// The TCP server handle (address, wait, shutdown).
    pub handle: ServerHandle,
    /// The recovered cache manager the server fronts.
    pub cache: Arc<CacheManager>,
    _janitor: Option<TtlJanitor>,
}

/// Opens (or creates) the cache directory at `args.dir`, recovers its
/// pages, and starts a memcached-protocol server over it. Returns the
/// running session; the caller decides whether to block on
/// `session.handle.wait()`.
pub fn start_serve(args: &ServeArgs) -> Result<ServeSession> {
    // Reuse the directory's page size if it already holds pages; a fresh
    // directory gets the production default.
    let page_size = LocalPageStore::detect_page_size(&args.dir)
        .unwrap_or_else(|| CacheConfig::default().page_size.as_u64());
    let store = LocalPageStore::open(
        &args.dir,
        LocalStoreConfig {
            page_size,
            ..Default::default()
        },
    )?;
    let clock = system_clock();
    let mut config = CacheConfig::default()
        .with_page_size(ByteSize::new(page_size))
        .with_memory_tier(args.memory);
    if let Some(ttl) = args.ttl() {
        config = config.with_ttl(ttl);
    }
    let mut builder = CacheManager::builder(config)
        .with_store(Arc::new(store), args.capacity.as_u64())
        .with_clock(clock.clone())
        .with_recovery();
    for (scope, size) in &args.quotas {
        builder = builder.with_quota(CacheScope::parse(scope), *size);
    }
    let cache = Arc::new(builder.build()?);
    let janitor = args.ttl().map(|ttl| {
        // Sweep a few times per TTL window, at most once a minute.
        let interval = (ttl / 4).clamp(Duration::from_secs(1), Duration::from_secs(60));
        cache.start_ttl_janitor(interval)
    });
    let handle = serve(
        Arc::clone(&cache),
        clock,
        ServerConfig {
            addr: args.addr.clone(),
            max_connections: args.max_conns,
            allow_shutdown_command: args.allow_shutdown,
            ..Default::default()
        },
    )?;
    Ok(ServeSession {
        handle,
        cache,
        _janitor: janitor,
    })
}

/// Summarizes a Chrome trace-event dump (`simtest --trace-dump`, the
/// `trace_dump` bench, or any `Tracer::chrome_trace_json` output) into a
/// per-stage latency table, sorted by total time descending.
pub fn trace_summary(path: &Path) -> Result<Vec<StageSummary>> {
    let raw = std::fs::read_to_string(path)?;
    let doc = serde_json::parse_value(&raw)
        .map_err(|e| Error::InvalidArgument(format!("`{}`: {e}", path.display())))?;
    summarize_chrome_trace(&doc)
        .map_err(|e| Error::InvalidArgument(format!("`{}`: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgecache_pagestore::PageId;
    use std::path::PathBuf;

    fn setup(tag: &str) -> (PathBuf, LocalPageStore) {
        let dir = std::env::temp_dir().join(format!("edgecache-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = LocalPageStore::open(
            &dir,
            LocalStoreConfig {
                page_size: 4096,
                ..Default::default()
            },
        )
        .unwrap();
        for f in 0..3u64 {
            for p in 0..=f {
                store
                    .put(
                        PageId::new(FileId(f + 1), p),
                        &vec![7u8; 100 * (f as usize + 1)],
                    )
                    .unwrap();
            }
        }
        (dir, store)
    }

    #[test]
    fn inspect_counts_pages_files_bytes() {
        let (dir, _store) = setup("inspect");
        let r = inspect(&dir).unwrap();
        assert_eq!(r.page_size, 4096);
        assert_eq!(r.pages, 6); // 1 + 2 + 3.
        assert_eq!(r.files, 3);
        assert_eq!(r.bytes, 100 + 2 * 200 + 3 * 300);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_finds_and_repairs_corruption() {
        let (dir, store) = setup("verify");
        // Corrupt one page file on disk.
        let id = PageId::new(FileId(2), 0);
        let path = walk_find(&dir, "0");
        let mut raw = std::fs::read(&path).unwrap();
        raw[1] ^= 0xff;
        std::fs::write(&path, raw).unwrap();
        drop(store);

        let r = verify(&dir, false).unwrap();
        assert_eq!(r.checked, 6);
        assert_eq!(r.corrupt, 1);
        // Repair deletes it; a second scan is clean.
        let r = verify(&dir, true).unwrap();
        assert_eq!(r.corrupt, 1);
        let r = verify(&dir, false).unwrap();
        assert_eq!((r.checked, r.corrupt), (5, 0));
        let _ = (id, std::fs::remove_dir_all(&dir));
    }

    #[test]
    fn top_orders_by_bytes() {
        let (dir, _store) = setup("top");
        let t = top(&dir, 2).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].0, FileId(3)); // 3 pages × 300 bytes.
        assert_eq!(t[0].2, 900);
        assert_eq!(t[1].0, FileId(2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn purge_all_and_by_file() {
        let (dir, _store) = setup("purge");
        assert_eq!(purge(&dir, Some(&FileId(3).as_hex())).unwrap(), 3);
        assert_eq!(inspect(&dir).unwrap().pages, 3);
        assert_eq!(purge(&dir, None).unwrap(), 3);
        assert_eq!(inspect(&dir).unwrap().pages, 0);
        assert!(purge(&dir, Some("zznothex")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_summary_reads_a_dump() {
        use edgecache_common::SimClock;
        use edgecache_metrics::Tracer;
        use std::sync::Arc;
        use std::time::Duration;

        let clock = Arc::new(SimClock::new());
        let tracer = Tracer::enabled(clock.clone());
        for micros in [100u64, 300] {
            let _span = tracer.span("cache.read");
            clock.advance(Duration::from_micros(micros));
        }
        let path =
            std::env::temp_dir().join(format!("edgecache-cli-trace-{}.json", std::process::id()));
        std::fs::write(&path, tracer.chrome_trace_json()).unwrap();

        let stages = trace_summary(&path).unwrap();
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].name, "cache.read");
        assert_eq!(stages[0].count, 2);
        assert_eq!(stages[0].total, Duration::from_micros(400));
        assert_eq!(stages[0].max, Duration::from_micros(300));

        std::fs::write(&path, "not json").unwrap();
        assert!(trace_summary(&path).is_err());
        assert!(trace_summary(Path::new("/no/such/trace.json")).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_cache_dir_is_rejected() {
        let dir = std::env::temp_dir().join(format!("edgecache-cli-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(inspect(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_session_round_trips_over_tcp_and_survives_restart() {
        use std::io::{Read, Write};

        let dir = std::env::temp_dir().join(format!("edgecache-cli-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let args = ServeArgs {
            dir: dir.clone(),
            addr: "127.0.0.1:0".to_string(),
            ..Default::default()
        };
        let set_get = |addr: std::net::SocketAddr, op: &[u8], want: &str| {
            let mut c = std::net::TcpStream::connect(addr).unwrap();
            c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            c.write_all(op).unwrap();
            let mut buf = [0u8; 256];
            let n = c.read(&mut buf).unwrap();
            let got = String::from_utf8_lossy(&buf[..n]).to_string();
            assert!(got.starts_with(want), "want {want:?}, got {got:?}");
        };

        let session = start_serve(&args).unwrap();
        let addr = session.handle.local_addr();
        set_get(addr, b"set k 0 0 5\r\nhello\r\n", "STORED");
        set_get(addr, b"get k\r\n", "VALUE k 0 5\r\nhello\r\nEND");
        drop(session);

        // The directory persists; a second session recovers it and serves
        // from the same store (the key table is per-session, so the page
        // bytes are there even though the key must be re-set).
        let session = start_serve(&args).unwrap();
        assert!(session.cache.stats().pages > 0, "recovery found pages");
        set_get(session.handle.local_addr(), b"version\r\n", "VERSION");
        drop(session);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Finds the first file named `name` under `dir`.
    fn walk_find(dir: &std::path::Path, name: &str) -> PathBuf {
        let mut stack = vec![dir.to_path_buf()];
        while let Some(d) = stack.pop() {
            for entry in std::fs::read_dir(&d).unwrap().flatten() {
                let p = entry.path();
                if p.is_dir() {
                    stack.push(p);
                } else if p.file_name().and_then(|n| n.to_str()) == Some(name) {
                    return p;
                }
            }
        }
        panic!("no file named {name}");
    }
}
