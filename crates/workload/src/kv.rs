//! Key/value operation mixes for the network front-end.
//!
//! The server's load generator and its benchmark harness need the same
//! thing the page-level workloads provide for the embedded cache: a
//! deterministic, Zipf-skewed stream of operations over a bounded keyspace
//! — here memcached-style string keys grouped into tenant namespaces
//! (`<namespace>:<key>`), so a run exercises the per-tenant scope mapping
//! exactly as remote Presto workers would.
//!
//! [`KeyMix`] is seeded and fully deterministic: the same seed yields the
//! same op sequence, which is what lets the server bench commit
//! byte-exact request accounting next to its (host-dependent) wall-clock
//! numbers.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::zipf::ZipfSampler;

/// One generated operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Fetch a key.
    Get { key: String },
    /// Store `value_len` bytes (the caller materializes deterministic
    /// contents, e.g. via [`fill_value`]).
    Set { key: String, value_len: usize },
    /// Remove a key.
    Delete { key: String },
}

impl KvOp {
    /// The key this op touches.
    pub fn key(&self) -> &str {
        match self {
            KvOp::Get { key } | KvOp::Set { key, .. } | KvOp::Delete { key } => key,
        }
    }
}

/// Configuration for a [`KeyMix`].
#[derive(Debug, Clone)]
pub struct KeyMixConfig {
    /// Distinct keys in the working set.
    pub keys: usize,
    /// Zipf exponent over key popularity (the paper's Figure 2 reports up
    /// to 1.39 for file access; KV front-end traffic is similarly skewed).
    pub zipf_s: f64,
    /// Tenant namespaces; key `i` belongs to namespace `i % namespaces`.
    /// Zero disables namespacing (bare keys, global scope).
    pub namespaces: usize,
    /// Fraction of ops that are `Set` (in 0..=1).
    pub set_ratio: f64,
    /// Fraction of ops that are `Delete` (in 0..=1; carved out after sets).
    pub delete_ratio: f64,
    /// Value length for `Set` ops.
    pub value_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KeyMixConfig {
    fn default() -> Self {
        Self {
            keys: 10_000,
            zipf_s: 1.0,
            namespaces: 4,
            set_ratio: 0.1,
            delete_ratio: 0.0,
            value_len: 1024,
            seed: 42,
        }
    }
}

/// Deterministic Zipf-skewed KV op stream with tenant namespaces.
#[derive(Debug)]
pub struct KeyMix {
    cfg: KeyMixConfig,
    zipf: ZipfSampler,
    rng: StdRng,
}

impl KeyMix {
    /// Builds a mix from its config.
    pub fn new(cfg: KeyMixConfig) -> Self {
        assert!(cfg.keys > 0, "need at least one key");
        let zipf = ZipfSampler::new(cfg.keys, cfg.zipf_s, cfg.seed.wrapping_mul(0x9e37_79b9));
        let rng = StdRng::seed_from_u64(cfg.seed);
        Self { cfg, zipf, rng }
    }

    /// The key string for a rank (stable across calls and runs).
    pub fn key_of(&self, rank: usize) -> String {
        if self.cfg.namespaces == 0 {
            format!("k{rank:08x}")
        } else {
            // Dotted namespaces parse into schema.table scopes, so a
            // server run exercises the ledger's hierarchy.
            let ns = rank % self.cfg.namespaces;
            format!("tenant{ns}.t{ns}:k{rank:08x}")
        }
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> KvOp {
        let rank = self.zipf.sample();
        let key = self.key_of(rank);
        let r: f64 = self.rng.random();
        if r < self.cfg.set_ratio {
            KvOp::Set {
                key,
                value_len: self.cfg.value_len,
            }
        } else if r < self.cfg.set_ratio + self.cfg.delete_ratio {
            KvOp::Delete { key }
        } else {
            KvOp::Get { key }
        }
    }

    /// Every key that can appear, for warmup passes.
    pub fn all_keys(&self) -> impl Iterator<Item = String> + '_ {
        (0..self.cfg.keys).map(|r| self.key_of(r))
    }

    /// The configured value length.
    pub fn value_len(&self) -> usize {
        self.cfg.value_len
    }
}

/// Deterministic value bytes for a key: reproducible across processes, so
/// a loadgen can verify `get` responses byte-for-byte against what any
/// earlier `set` (its own or another connection's) must have written.
pub fn fill_value(key: &str, len: usize) -> Vec<u8> {
    let seed = edgecache_common::hash::hash_str(key);
    (0..len)
        .map(|i| {
            (seed
                .wrapping_add(i as u64)
                .wrapping_mul(0x2545_f491_4f6c_dd1d)
                >> 56) as u8
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = KeyMix::new(KeyMixConfig::default());
        let mut b = KeyMix::new(KeyMixConfig::default());
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn ratios_are_respected_roughly() {
        let mut m = KeyMix::new(KeyMixConfig {
            set_ratio: 0.3,
            delete_ratio: 0.1,
            seed: 7,
            ..Default::default()
        });
        let mut sets = 0;
        let mut dels = 0;
        const N: usize = 20_000;
        for _ in 0..N {
            match m.next_op() {
                KvOp::Set { .. } => sets += 1,
                KvOp::Delete { .. } => dels += 1,
                KvOp::Get { .. } => {}
            }
        }
        let sr = sets as f64 / N as f64;
        let dr = dels as f64 / N as f64;
        assert!((sr - 0.3).abs() < 0.03, "set ratio {sr}");
        assert!((dr - 0.1).abs() < 0.02, "delete ratio {dr}");
    }

    #[test]
    fn keys_carry_namespaces() {
        let m = KeyMix::new(KeyMixConfig {
            namespaces: 2,
            ..Default::default()
        });
        assert!(m.key_of(0).starts_with("tenant0.t0:"));
        assert!(m.key_of(1).starts_with("tenant1.t1:"));
        let bare = KeyMix::new(KeyMixConfig {
            namespaces: 0,
            ..Default::default()
        });
        assert!(!bare.key_of(0).contains(':'));
    }

    #[test]
    fn fill_value_is_stable_and_key_dependent() {
        assert_eq!(fill_value("a", 32), fill_value("a", 32));
        assert_ne!(fill_value("a", 32), fill_value("b", 32));
    }
}
