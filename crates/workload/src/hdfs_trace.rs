//! HDFS DataNode trace synthesis matching Table 1's shape.
//!
//! Table 1 reports, per high-activity DataNode over ~20 hours: 8.5–14.3 M
//! reads, 3.3–45 K writes (read:write ratios of ~318–4 091), and 89–99 % of
//! read traffic concentrated on the top 10 K blocks. The generator draws
//! block popularity from a Zipf distribution and read sizes from the
//! fragmented-read mixture, yielding event streams with those aggregate
//! statistics.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::fragread::FragmentedReadSampler;
use crate::zipf::ZipfSampler;

/// One trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Milliseconds since trace start.
    pub time_ms: u64,
    /// Block rank (0 = hottest) — map to real block ids at replay time.
    pub block: u64,
    /// Offset of the read within the block.
    pub offset: u64,
    /// Bytes requested.
    pub len: u64,
    /// Write (true) or read (false).
    pub is_write: bool,
}

/// Configuration for a synthetic DataNode trace.
#[derive(Debug, Clone)]
pub struct HdfsTraceConfig {
    /// Distinct blocks on the node.
    pub blocks: usize,
    /// Block size in bytes (bounds offsets).
    pub block_size: u64,
    /// Total read events.
    pub reads: u64,
    /// Total write events.
    pub writes: u64,
    /// Zipf exponent of block popularity.
    pub zipf_s: f64,
    /// Trace duration.
    pub duration_ms: u64,
    pub seed: u64,
}

impl Default for HdfsTraceConfig {
    fn default() -> Self {
        Self {
            blocks: 100_000,
            block_size: 64 << 20,
            reads: 1_000_000,
            writes: 300,
            zipf_s: 1.1,
            duration_ms: 20 * 3600 * 1000,
            seed: 42,
        }
    }
}

/// Aggregate statistics of a generated trace (the Table 1 columns).
#[derive(Debug, Clone, PartialEq)]
pub struct HdfsTraceStats {
    pub total_reads: u64,
    pub total_writes: u64,
    pub read_write_ratio: f64,
    /// Fraction of read events hitting the 10 K most-read blocks.
    pub top_10k_share: f64,
}

/// Generates the trace as an iterator of events (time-ordered, reads and
/// writes interleaved uniformly over the duration).
pub struct HdfsTraceGen {
    config: HdfsTraceConfig,
    zipf: ZipfSampler,
    sizes: FragmentedReadSampler,
    rng: StdRng,
    emitted: u64,
    total: u64,
    /// Every `write_every`-th event is a write.
    write_every: u64,
}

impl HdfsTraceGen {
    /// Creates a generator.
    pub fn new(config: HdfsTraceConfig) -> Self {
        let total = config.reads + config.writes;
        let write_every = total
            .checked_div(config.writes)
            .map_or(u64::MAX, |v| v.max(1));
        Self {
            zipf: ZipfSampler::new(config.blocks, config.zipf_s, config.seed),
            sizes: FragmentedReadSampler::paper_default(config.seed ^ 0x5eed),
            rng: StdRng::seed_from_u64(config.seed ^ 0xdead),
            emitted: 0,
            total,
            write_every,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HdfsTraceConfig {
        &self.config
    }
}

impl Iterator for HdfsTraceGen {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        if self.emitted >= self.total {
            return None;
        }
        let i = self.emitted;
        self.emitted += 1;
        let time_ms = if self.total <= 1 {
            0
        } else {
            i * self.config.duration_ms / (self.total - 1)
        };
        let is_write = i % self.write_every == self.write_every - 1;
        let block = self.zipf.sample() as u64;
        let len = self.sizes.sample().min(self.config.block_size);
        let max_offset = self.config.block_size - len;
        let offset = if max_offset == 0 {
            0
        } else {
            self.rng.random_range(0..=max_offset)
        };
        Some(TraceEvent {
            time_ms,
            block,
            offset,
            len,
            is_write,
        })
    }
}

/// Computes the Table 1 statistics for a trace.
pub fn trace_stats(events: impl Iterator<Item = TraceEvent>, blocks: usize) -> HdfsTraceStats {
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut per_block = vec![0u64; blocks];
    for e in events {
        if e.is_write {
            writes += 1;
        } else {
            reads += 1;
            per_block[e.block as usize] += 1;
        }
    }
    per_block.sort_unstable_by(|a, b| b.cmp(a));
    let top: u64 = per_block.iter().take(10_000).sum();
    HdfsTraceStats {
        total_reads: reads,
        total_writes: writes,
        read_write_ratio: if writes == 0 {
            f64::INFINITY
        } else {
            reads as f64 / writes as f64
        },
        top_10k_share: if reads == 0 {
            0.0
        } else {
            top as f64 / reads as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> HdfsTraceConfig {
        HdfsTraceConfig {
            blocks: 20_000,
            reads: 100_000,
            writes: 100,
            zipf_s: 1.1,
            duration_ms: 3_600_000,
            seed: 7,
            block_size: 1 << 20,
        }
    }

    #[test]
    fn event_counts_match_config() {
        let gen = HdfsTraceGen::new(small_config());
        let stats = trace_stats(gen, 20_000);
        assert_eq!(stats.total_reads + stats.total_writes, 100_100);
        assert_eq!(stats.total_writes, 100);
        assert!((stats.read_write_ratio - 1000.0).abs() < 10.0);
    }

    #[test]
    fn hot_blocks_dominate() {
        let gen = HdfsTraceGen::new(small_config());
        let stats = trace_stats(gen, 20_000);
        // 10K of 20K blocks under Zipf 1.1 carry the vast majority of reads.
        assert!(stats.top_10k_share > 0.85, "{}", stats.top_10k_share);
    }

    #[test]
    fn events_are_time_ordered_and_bounded() {
        let config = small_config();
        let mut last = 0;
        for e in HdfsTraceGen::new(config.clone()).take(5000) {
            assert!(e.time_ms >= last);
            last = e.time_ms;
            assert!((e.block as usize) < config.blocks);
            assert!(e.offset + e.len <= config.block_size);
            assert!(e.len > 0);
        }
        assert!(last <= config.duration_ms);
    }

    #[test]
    fn zero_writes_supported() {
        let config = HdfsTraceConfig {
            writes: 0,
            reads: 1000,
            ..small_config()
        };
        let stats = trace_stats(HdfsTraceGen::new(config), 20_000);
        assert_eq!(stats.total_writes, 0);
        assert!(stats.read_write_ratio.is_infinite());
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<TraceEvent> = HdfsTraceGen::new(small_config()).take(100).collect();
        let b: Vec<TraceEvent> = HdfsTraceGen::new(small_config()).take(100).collect();
        assert_eq!(a, b);
    }
}
