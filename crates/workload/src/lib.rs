//! Workload synthesis for the edgecache evaluation.
//!
//! The paper's evaluation runs on production traces we do not have; §2.2
//! publishes their distribution parameters, and this crate synthesizes
//! traces from those published parameters:
//!
//! * [`zipf`] — Zipfian popularity (Figure 2 reports a factor of ~1.39 for
//!   Presto file access at Uber) with a slope-fit helper.
//! * [`fragread`] — fragmented read sizes: ">50 % of SQL requests on HDFS
//!   access less than 10 KB of data, and over 90 % involve less than 1 MB".
//! * [`hdfs_trace`] — per-DataNode block traces matching Table 1's shape
//!   (read:write ratios in the hundreds-to-thousands, top-10K-block
//!   concentration of 89–99 %).
//! * [`tpcds`] — a TPC-DS-like star schema (a sales fact table partitioned
//!   by date plus dimension tables) in `colf` format, and 99 parameterized
//!   query templates mirroring the benchmark's scan/aggregate shapes.
//! * [`replay`] — drives a simulated DataNode from a trace, minute by
//!   minute, producing the time series behind Figures 13 and 14.
//! * [`repeatq`] — repeated-query mixes for the result-cache evaluation:
//!   a Zipf-weighted working set of query shapes that rotates slowly and
//!   occasionally stampedes onto one hot dashboard query.

pub mod fragread;
pub mod hdfs_trace;
pub mod kv;
pub mod repeatq;
pub mod replay;
pub mod tpcds;
pub mod zipf;

pub use fragread::FragmentedReadSampler;
pub use hdfs_trace::{HdfsTraceConfig, HdfsTraceStats, TraceEvent};
pub use kv::{KeyMix, KeyMixConfig, KvOp};
pub use repeatq::{BurstConfig, RepeatedQueryConfig, RepeatedQueryMix};
pub use replay::{DataNodeReplay, MinuteStats};
pub use tpcds::{TpcdsGen, TpcdsScale};
pub use zipf::ZipfSampler;
