//! Trace replay against a simulated DataNode.
//!
//! Drives [`TraceEvent`]s through a [`DataNode`] minute by minute on a
//! shared [`SimClock`], collecting the per-minute series behind Figure 13
//! (cache vs. non-cache read rates) and Figure 14 (blocked processes from
//! the HDD queue model).

use std::sync::Arc;
use std::time::Duration;

use edgecache_common::clock::{Clock, SimClock};
use edgecache_common::error::Result;
use edgecache_storage::hdfs::{BlockId, DataNode};
use edgecache_storage::FluidQueue;

use crate::hdfs_trace::TraceEvent;

/// Per-minute replay statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct MinuteStats {
    /// Minute index since replay start.
    pub minute: u64,
    /// Bytes served from the local cache during the minute.
    pub cache_bytes: u64,
    /// Bytes served from the HDD during the minute.
    pub hdd_bytes: u64,
    /// HDD requests during the minute.
    pub hdd_requests: u64,
    /// Blocked processes at minute end (HDD queue backlog).
    pub blocked_processes: u64,
    /// HDD utilization during the minute.
    pub utilization: f64,
}

/// Replays a trace against one DataNode.
pub struct DataNodeReplay {
    node: Arc<DataNode>,
    clock: SimClock,
    queue: FluidQueue,
    /// Size of the blocks actually stored on the node (trace offsets are
    /// clamped to this).
    stored_block_size: u64,
}

impl DataNodeReplay {
    /// Creates a replay harness; the queue model comes from the node's HDD
    /// device model.
    pub fn new(node: Arc<DataNode>, clock: SimClock) -> Self {
        let queue = FluidQueue::new(node.hdd_model());
        Self {
            node,
            clock,
            queue,
            stored_block_size: 0,
        }
    }

    /// Stores `blocks` blocks of `block_size` bytes on the node, ids
    /// matching trace block ranks.
    pub fn prepare_blocks(&mut self, blocks: usize, block_size: u64) -> Result<()> {
        let payload: Vec<u8> = (0..block_size).map(|i| (i % 251) as u8).collect();
        for b in 0..blocks {
            self.node.store_block(BlockId(b as u64), 1, payload.clone());
        }
        self.stored_block_size = block_size;
        Ok(())
    }

    /// The node under replay.
    pub fn node(&self) -> &Arc<DataNode> {
        &self.node
    }

    /// Replays `events` (time-ordered), returning one [`MinuteStats`] per
    /// elapsed minute. `on_minute` fires after each minute closes (e.g. to
    /// toggle the cache mid-run, as the Figure 14 experiment does).
    pub fn run(
        &mut self,
        events: impl Iterator<Item = TraceEvent>,
        mut on_minute: impl FnMut(u64, &Arc<DataNode>),
    ) -> Result<Vec<MinuteStats>> {
        let start_ms = self.clock.now_millis();
        let mut out = Vec::new();
        let mut minute = 0u64;
        let mut last_cache = self.node.cache_bytes();
        let mut last_hdd = self.node.hdd_bytes();
        let mut last_reqs = self.node.hdd_requests();

        let close_minute = |minute: u64,
                            queue: &mut FluidQueue,
                            node: &Arc<DataNode>,
                            last_cache: &mut u64,
                            last_hdd: &mut u64,
                            last_reqs: &mut u64|
         -> MinuteStats {
            let cache_bytes = node.cache_bytes() - *last_cache;
            let hdd_bytes = node.hdd_bytes() - *last_hdd;
            let hdd_requests = node.hdd_requests() - *last_reqs;
            *last_cache = node.cache_bytes();
            *last_hdd = node.hdd_bytes();
            *last_reqs = node.hdd_requests();
            let window = queue.offer(hdd_requests, hdd_bytes, Duration::from_secs(60));
            MinuteStats {
                minute,
                cache_bytes,
                hdd_bytes,
                hdd_requests,
                blocked_processes: window.blocked_processes,
                utilization: window.utilization,
            }
        };

        for event in events {
            // Close any minutes that elapsed before this event.
            while event.time_ms >= (minute + 1) * 60_000 {
                self.clock
                    .advance_to(Duration::from_millis(start_ms + (minute + 1) * 60_000));
                out.push(close_minute(
                    minute,
                    &mut self.queue,
                    &self.node,
                    &mut last_cache,
                    &mut last_hdd,
                    &mut last_reqs,
                ));
                minute += 1;
                on_minute(minute, &self.node);
            }
            self.clock
                .advance_to(Duration::from_millis(start_ms + event.time_ms));
            if event.is_write {
                continue; // Replay measures the read path (Figures 13/14).
            }
            let offset = event.offset.min(self.stored_block_size.saturating_sub(1));
            let len = event.len.min(self.stored_block_size - offset).max(1);
            self.node.read_block(BlockId(event.block), offset, len)?;
        }
        // Close the final minute.
        out.push(close_minute(
            minute,
            &mut self.queue,
            &self.node,
            &mut last_cache,
            &mut last_hdd,
            &mut last_reqs,
        ));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdfs_trace::{HdfsTraceConfig, HdfsTraceGen};
    use edgecache_common::ByteSize;
    use edgecache_storage::hdfs::DataNodeConfig;

    fn replay(admission: Option<(usize, u64)>) -> DataNodeReplay {
        let clock = SimClock::new();
        let node = DataNode::new(
            "dn0",
            DataNodeConfig {
                cache_capacity: 8 << 20,
                page_size: ByteSize::kib(64),
                admission_window: admission,
                ..Default::default()
            },
            Arc::new(clock.clone()),
        )
        .unwrap();
        let mut r = DataNodeReplay::new(Arc::new(node), clock);
        r.prepare_blocks(200, 256 << 10).unwrap();
        r
    }

    fn trace(reads: u64, minutes: u64) -> HdfsTraceGen {
        HdfsTraceGen::new(HdfsTraceConfig {
            blocks: 200,
            block_size: 256 << 10,
            reads,
            writes: 10,
            zipf_s: 1.2,
            duration_ms: minutes * 60_000,
            seed: 3,
        })
    }

    #[test]
    fn produces_one_stats_row_per_minute() {
        let mut r = replay(None);
        let stats = r.run(trace(2000, 10), |_, _| {}).unwrap();
        assert!(stats.len() >= 10 && stats.len() <= 11, "{}", stats.len());
        for (i, s) in stats.iter().enumerate() {
            assert_eq!(s.minute, i as u64);
        }
    }

    #[test]
    fn cache_takes_over_traffic() {
        let mut r = replay(None);
        let stats = r.run(trace(5000, 10), |_, _| {}).unwrap();
        let early = &stats[0];
        let late = stats
            .iter()
            .rev()
            .find(|s| s.cache_bytes + s.hdd_bytes > 0)
            .expect("some active minute");
        assert!(early.hdd_bytes > 0, "cold start reads disk");
        assert!(
            late.cache_bytes > late.hdd_bytes,
            "warm cache dominates: {late:?}"
        );
    }

    #[test]
    fn on_minute_can_toggle_cache() {
        let mut r = replay(None);
        let stats = r
            .run(trace(5000, 10), |minute, node| {
                if minute == 5 {
                    node.set_cache_enabled(false);
                }
            })
            .unwrap();
        // Seeded trace (seed 3) through the shim RNG: warm minutes 3–4 serve
        // ~165 requests/min from disk, disabled minutes 6–7 send all 500/min
        // there — requests triple and bytes nearly double (36.1 MB → 69.7 MB).
        let before_reqs: u64 = stats[3..5].iter().map(|s| s.hdd_requests).sum();
        let after_reqs: u64 = stats[6..8].iter().map(|s| s.hdd_requests).sum();
        assert!(
            after_reqs > before_reqs * 2,
            "disabling the cache floods the disk with requests: {before_reqs} -> {after_reqs}"
        );
        let before: u64 = stats[3..5].iter().map(|s| s.hdd_bytes).sum();
        let after: u64 = stats[6..8].iter().map(|s| s.hdd_bytes).sum();
        assert!(
            after as f64 > before as f64 * 1.5,
            "disabling the cache floods the disk with bytes: {before} -> {after}"
        );
        assert_eq!(stats[6].cache_bytes, 0, "cache is off after the toggle");
    }

    #[test]
    fn total_bytes_conserved() {
        let mut r = replay(None);
        let stats = r.run(trace(1000, 5), |_, _| {}).unwrap();
        let total: u64 = stats.iter().map(|s| s.cache_bytes + s.hdd_bytes).sum();
        assert_eq!(
            total,
            r.node().cache_bytes() + r.node().hdd_bytes(),
            "per-minute deltas sum to the counters"
        );
    }
}
