//! Zipfian popularity sampling and slope fitting.
//!
//! Figure 2 of the paper shows Presto file popularity at Uber following a
//! Zipf distribution with a factor of up to 1.39. [`ZipfSampler`] draws item
//! ranks from `P(rank = k) ∝ 1 / k^s`; [`fit_zipf_factor`] recovers `s` from
//! an observed popularity histogram, which is how the Figure 2 harness
//! verifies the synthetic trace matches the paper's characterization.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Samples ranks `0..n` with Zipfian weights via inverse-CDF lookup.
#[derive(Debug)]
pub struct ZipfSampler {
    /// Cumulative distribution over ranks.
    cdf: Vec<f64>,
    rng: StdRng,
    s: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `n` items with exponent `s`, seeded for
    /// reproducibility.
    pub fn new(n: usize, s: f64, seed: u64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self {
            cdf,
            rng: StdRng::seed_from_u64(seed),
            s,
        }
    }

    /// The configured exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Number of items.
    pub fn items(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one rank in `0..n` (0 = most popular).
    pub fn sample(&mut self) -> usize {
        let u: f64 = self.rng.random();
        // First index with cdf >= u.
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Draws `count` ranks and returns per-rank access counts.
    pub fn histogram(&mut self, count: u64) -> Vec<u64> {
        let mut counts = vec![0u64; self.cdf.len()];
        for _ in 0..count {
            counts[self.sample()] += 1;
        }
        counts
    }
}

/// Fits the Zipf factor `s` by least-squares regression of
/// `log(count)` on `log(rank)` over the populated head of a popularity
/// histogram. `counts` must be sorted descending (rank order).
pub fn fit_zipf_factor(counts: &[u64]) -> Option<f64> {
    let points: Vec<(f64, f64)> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| (((i + 1) as f64).ln(), (c as f64).ln()))
        .collect();
    if points.len() < 3 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|(x, _)| x).sum();
    let sy: f64 = points.iter().map(|(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    Some(-slope)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_is_deterministic_per_seed() {
        let mut a = ZipfSampler::new(100, 1.0, 7);
        let mut b = ZipfSampler::new(100, 1.0, 7);
        let va: Vec<usize> = (0..50).map(|_| a.sample()).collect();
        let vb: Vec<usize> = (0..50).map(|_| b.sample()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn low_ranks_dominate() {
        let mut z = ZipfSampler::new(1000, 1.2, 1);
        let counts = z.histogram(50_000);
        assert!(counts[0] > counts[10] && counts[10] > counts[100]);
        // The top 10 items should take a large share under s = 1.2.
        let head: u64 = counts[..10].iter().sum();
        assert!(head as f64 / 50_000.0 > 0.4, "head share {head}");
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let mut z = ZipfSampler::new(10, 0.0, 3);
        let counts = z.histogram(100_000);
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{c}");
        }
    }

    #[test]
    fn fit_recovers_exponent() {
        for s in [0.8, 1.0, 1.39] {
            let mut z = ZipfSampler::new(10_000, s, 42);
            let mut counts = z.histogram(1_000_000);
            counts.sort_unstable_by(|a, b| b.cmp(a));
            // Fit over the well-populated head.
            let fitted = fit_zipf_factor(&counts[..1000]).unwrap();
            assert!(
                (fitted - s).abs() < 0.12,
                "fitted {fitted:.3} for true s = {s}"
            );
        }
    }

    #[test]
    fn fit_needs_enough_points() {
        assert!(fit_zipf_factor(&[5, 3]).is_none());
        assert!(fit_zipf_factor(&[]).is_none());
    }

    #[test]
    fn sample_is_in_range() {
        let mut z = ZipfSampler::new(7, 2.0, 9);
        for _ in 0..1000 {
            assert!(z.sample() < 7);
        }
    }
}
