//! Fragmented read-size distribution.
//!
//! §2.2: "More than 50 % of SQL requests on HDFS access less than 10 KB of
//! data, and over 90 % involve less than 1 MB." The sampler draws request
//! sizes from a three-band log-uniform mixture calibrated to those two
//! published quantiles.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const KIB: u64 = 1 << 10;
const MIB: u64 = 1 << 20;

/// Samples per-request read sizes matching the paper's characterization.
#[derive(Debug)]
pub struct FragmentedReadSampler {
    rng: StdRng,
    /// Probability mass of the `< 10 KB` band.
    small: f64,
    /// Probability mass of the `10 KB – 1 MB` band.
    medium: f64,
    /// Upper bound for the large band.
    max_size: u64,
}

impl FragmentedReadSampler {
    /// The paper-calibrated sampler: 55 % < 10 KB, 37 % in 10 KB–1 MB, 8 %
    /// in 1–64 MB (so ~55 % under 10 KB and ~92 % under 1 MB).
    pub fn paper_default(seed: u64) -> Self {
        Self::new(0.55, 0.37, 64 * MIB, seed)
    }

    /// A custom mixture. `small + medium` must be ≤ 1.
    pub fn new(small: f64, medium: f64, max_size: u64, seed: u64) -> Self {
        assert!(small >= 0.0 && medium >= 0.0 && small + medium <= 1.0);
        assert!(max_size > MIB);
        Self {
            rng: StdRng::seed_from_u64(seed),
            small,
            medium,
            max_size,
        }
    }

    fn log_uniform(&mut self, lo: u64, hi: u64) -> u64 {
        let (lo, hi) = (lo.max(1) as f64, hi as f64);
        let u: f64 = self.rng.random();
        (lo * (hi / lo).powf(u)).round() as u64
    }

    /// Draws one request size in bytes.
    pub fn sample(&mut self) -> u64 {
        let u: f64 = self.rng.random();
        if u < self.small {
            self.log_uniform(64, 10 * KIB - 1)
        } else if u < self.small + self.medium {
            self.log_uniform(10 * KIB, MIB - 1)
        } else {
            self.log_uniform(MIB, self.max_size)
        }
    }

    /// Draws `n` sizes.
    pub fn sample_many(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.sample()).collect()
    }
}

/// Fraction of `sizes` strictly below `threshold`.
pub fn fraction_below(sizes: &[u64], threshold: u64) -> f64 {
    if sizes.is_empty() {
        return 0.0;
    }
    sizes.iter().filter(|&&s| s < threshold).count() as f64 / sizes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quantiles_hold() {
        let mut s = FragmentedReadSampler::paper_default(11);
        let sizes = s.sample_many(100_000);
        let under_10k = fraction_below(&sizes, 10 * KIB);
        let under_1m = fraction_below(&sizes, MIB);
        assert!(under_10k > 0.50, "under 10KB: {under_10k:.3}");
        assert!(under_1m > 0.90, "under 1MB: {under_1m:.3}");
        // And the distribution is not degenerate: some large reads exist.
        assert!(under_1m < 0.99);
    }

    #[test]
    fn sizes_are_positive_and_bounded() {
        let mut s = FragmentedReadSampler::paper_default(5);
        for size in s.sample_many(10_000) {
            assert!((1..=64 * MIB).contains(&size), "{size}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = FragmentedReadSampler::paper_default(3).sample_many(100);
        let b = FragmentedReadSampler::paper_default(3).sample_many(100);
        assert_eq!(a, b);
    }

    #[test]
    fn custom_mixture_respected() {
        // All mass in the small band.
        let mut s = FragmentedReadSampler::new(1.0, 0.0, 2 * MIB, 1);
        let sizes = s.sample_many(1000);
        assert_eq!(fraction_below(&sizes, 10 * KIB), 1.0);
    }

    #[test]
    #[should_panic]
    fn invalid_mixture_panics() {
        let _ = FragmentedReadSampler::new(0.8, 0.5, 2 * MIB, 1);
    }
}
