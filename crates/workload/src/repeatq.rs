//! Repeated-query workload synthesis for the result-cache evaluation.
//!
//! Enterprise OLAP dashboards re-issue the same parameterized aggregations
//! on a schedule: a small *working set* of query shapes dominates, the set
//! drifts slowly as reports are edited, and incidents produce flash crowds
//! where everyone refreshes one hot dashboard at once. [`RepeatedQueryMix`]
//! draws query indices from a pool with exactly those dynamics:
//!
//! * **Zipfian working set** — draws concentrate on a window of
//!   `working_set` queries out of `pool`, ranks weighted `1/k^s`.
//! * **Rotation** — every `rotate_every` draws the window slides by
//!   `rotate_step`, retiring the coldest shapes and admitting fresh ones
//!   (wrap-around over the pool).
//! * **Flash-crowd bursts** — optionally, every `burst.every` draws the
//!   next `burst.len` draws pin to the window head with probability
//!   `burst.hot_fraction`, modeling a dashboard stampede.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::zipf::ZipfSampler;

/// Flash-crowd shape: periodically, a run of draws concentrates on the
/// hottest query of the current working set.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstConfig {
    /// A burst starts every this many draws.
    pub every: usize,
    /// How many draws each burst lasts.
    pub len: usize,
    /// Probability that a draw inside a burst goes to the window head.
    pub hot_fraction: f64,
}

impl Default for BurstConfig {
    fn default() -> Self {
        Self {
            every: 200,
            len: 40,
            hot_fraction: 0.9,
        }
    }
}

/// Configuration of the repeated-query mix.
#[derive(Debug, Clone, PartialEq)]
pub struct RepeatedQueryConfig {
    /// Total distinct query shapes available.
    pub pool: usize,
    /// Size of the active working set (≤ pool).
    pub working_set: usize,
    /// Slide the working-set window after this many draws (0 = never).
    pub rotate_every: usize,
    /// How far the window slides per rotation.
    pub rotate_step: usize,
    /// Zipf exponent over the working set (the paper's Figure 2 reports
    /// factors up to 1.39 for file popularity; query popularity is at
    /// least as skewed).
    pub zipf_exponent: f64,
    /// Flash-crowd bursts, when present.
    pub burst: Option<BurstConfig>,
    /// RNG seed: identical configs and seeds yield identical streams.
    pub seed: u64,
}

impl Default for RepeatedQueryConfig {
    fn default() -> Self {
        Self {
            pool: 99,
            working_set: 12,
            rotate_every: 500,
            rotate_step: 3,
            zipf_exponent: 1.39,
            burst: Some(BurstConfig::default()),
            seed: 42,
        }
    }
}

/// A deterministic stream of query indices in `0..pool`.
#[derive(Debug)]
pub struct RepeatedQueryMix {
    config: RepeatedQueryConfig,
    zipf: ZipfSampler,
    rng: StdRng,
    /// Start of the working-set window within the pool.
    offset: usize,
    /// Draws made so far.
    drawn: usize,
}

impl RepeatedQueryMix {
    /// Creates the mix; panics on a degenerate configuration.
    pub fn new(config: RepeatedQueryConfig) -> Self {
        assert!(config.pool > 0, "empty query pool");
        assert!(
            (1..=config.pool).contains(&config.working_set),
            "working set must be 1..=pool"
        );
        if let Some(b) = &config.burst {
            assert!(b.every > 0 && b.len > 0, "degenerate burst");
            assert!((0.0..=1.0).contains(&b.hot_fraction));
        }
        let zipf = ZipfSampler::new(config.working_set, config.zipf_exponent, config.seed ^ 0x5a);
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            config,
            zipf,
            rng,
            offset: 0,
            drawn: 0,
        }
    }

    /// Whether the *next* draw falls inside a flash-crowd burst.
    pub fn in_burst(&self) -> bool {
        match &self.config.burst {
            Some(b) => self.drawn % b.every < b.len,
            None => false,
        }
    }

    /// Start of the current working-set window.
    pub fn window_offset(&self) -> usize {
        self.offset
    }

    /// Draws the next query index in `0..pool`.
    pub fn next_query(&mut self) -> usize {
        let in_burst = self.in_burst();
        self.drawn += 1;
        if self.config.rotate_every > 0 && self.drawn.is_multiple_of(self.config.rotate_every) {
            self.offset = (self.offset + self.config.rotate_step) % self.config.pool;
        }
        let rank = if in_burst {
            let b = self.config.burst.as_ref().expect("in_burst implies burst");
            if self.rng.random::<f64>() < b.hot_fraction {
                0
            } else {
                self.zipf.sample()
            }
        } else {
            self.zipf.sample()
        };
        (self.offset + rank) % self.config.pool
    }

    /// Draws `n` queries.
    pub fn take(&mut self, n: usize) -> Vec<usize> {
        (0..n).map(|_| self.next_query()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> RepeatedQueryConfig {
        RepeatedQueryConfig {
            pool: 30,
            working_set: 8,
            rotate_every: 100,
            rotate_step: 2,
            zipf_exponent: 1.2,
            burst: None,
            seed: 7,
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = RepeatedQueryMix::new(config()).take(500);
        let b = RepeatedQueryMix::new(config()).take(500);
        assert_eq!(a, b);
        let c = RepeatedQueryMix::new(RepeatedQueryConfig {
            seed: 8,
            ..config()
        })
        .take(500);
        assert_ne!(a, c, "different seed, different stream");
    }

    #[test]
    fn draws_stay_in_pool_and_concentrate_on_working_set() {
        let mut mix = RepeatedQueryMix::new(RepeatedQueryConfig {
            rotate_every: 0,
            ..config()
        });
        let draws = mix.take(2000);
        assert!(draws.iter().all(|&q| q < 30));
        // Without rotation all draws come from the initial window.
        assert!(draws.iter().all(|&q| q < 8), "window is 0..8");
        // Zipf skew: the head rank dominates.
        let head = draws.iter().filter(|&&q| q == 0).count();
        assert!(head > 2000 / 8, "head {head} draws out of 2000");
    }

    #[test]
    fn rotation_slides_the_window() {
        let mut mix = RepeatedQueryMix::new(config());
        assert_eq!(mix.window_offset(), 0);
        mix.take(100);
        assert_eq!(mix.window_offset(), 2);
        mix.take(100);
        assert_eq!(mix.window_offset(), 4);
        // Post-rotation draws include shapes outside the original window.
        let draws = mix.take(1000);
        assert!(draws.iter().any(|&q| q >= 8), "rotation admits new shapes");
        // Offset wraps around the pool.
        let mut far = RepeatedQueryMix::new(RepeatedQueryConfig {
            rotate_every: 10,
            rotate_step: 7,
            ..config()
        });
        far.take(10 * 30);
        assert!(far.window_offset() < 30);
    }

    #[test]
    fn bursts_pin_to_the_window_head() {
        let burst = BurstConfig {
            every: 50,
            len: 25,
            hot_fraction: 1.0,
        };
        let mut mix = RepeatedQueryMix::new(RepeatedQueryConfig {
            rotate_every: 0,
            burst: Some(burst),
            ..config()
        });
        for i in 0..200 {
            let in_burst = mix.in_burst();
            assert_eq!(in_burst, i % 50 < 25, "draw {i}");
            let q = mix.next_query();
            if in_burst {
                assert_eq!(q, 0, "burst draw {i} pins to the head");
            }
        }
    }
}
