//! A TPC-DS-like star schema and 99 query templates.
//!
//! The paper's Presto evaluation runs TPC-DS (scale factor 100, Parquet on
//! S3) and reports per-query speedups from the local cache (Figures 9, 15,
//! 16). We reproduce the workload *shape* at laptop scale: a date-partitioned
//! sales fact table plus dimension tables in `colf` format on the simulated
//! object store, and 99 deterministic, parameterized scan/aggregate query
//! templates with varying projection width, predicate selectivity,
//! partition reach, and aggregation type — the axes that determine how much
//! a query benefits from caching.

use std::sync::Arc;

use edgecache_columnar::{ColfWriter, ColumnType, Predicate, Schema, Value};
use edgecache_common::error::Result;
use edgecache_olap::{AggExpr, Catalog, DataFile, PartitionDef, QueryPlan, TableDef};
use edgecache_storage::ObjectStore;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Dataset sizing.
#[derive(Debug, Clone)]
pub struct TpcdsScale {
    /// Rows in the `store_sales` fact table.
    pub fact_rows: u64,
    /// Date partitions of the fact table.
    pub date_partitions: usize,
    /// Files per fact partition.
    pub files_per_partition: usize,
    /// Rows per row group.
    pub rows_per_group: usize,
    /// Rows per dimension table.
    pub dim_rows: u64,
}

impl TpcdsScale {
    /// Minimal scale for unit tests.
    pub fn tiny() -> Self {
        Self {
            fact_rows: 2_000,
            date_partitions: 4,
            files_per_partition: 1,
            rows_per_group: 100,
            dim_rows: 100,
        }
    }

    /// Laptop-scale benchmark dataset (a stand-in for the paper's SF100).
    pub fn small() -> Self {
        Self {
            fact_rows: 200_000,
            date_partitions: 20,
            files_per_partition: 2,
            rows_per_group: 2_000,
            dim_rows: 5_000,
        }
    }
}

/// Generates the dataset and the query workload.
pub struct TpcdsGen {
    pub scale: TpcdsScale,
    pub seed: u64,
}

impl TpcdsGen {
    /// Creates a generator.
    pub fn new(scale: TpcdsScale, seed: u64) -> Self {
        Self { scale, seed }
    }

    fn fact_schema() -> Schema {
        Schema::new(vec![
            ("ss_sold_date_sk", ColumnType::Int64),
            ("ss_item_sk", ColumnType::Int64),
            ("ss_store_sk", ColumnType::Int64),
            ("ss_customer_sk", ColumnType::Int64),
            ("ss_quantity", ColumnType::Int64),
            ("ss_sales_price", ColumnType::Float64),
            ("ss_net_profit", ColumnType::Float64),
        ])
    }

    /// Builds all tables into `store` and registers them in `catalog`.
    pub fn build(&self, store: &ObjectStore, catalog: &Catalog) -> Result<()> {
        self.build_fact(store, catalog)?;
        self.build_item(store, catalog)?;
        self.build_store_dim(store, catalog)?;
        self.build_customer(store, catalog)?;
        Ok(())
    }

    fn build_fact(&self, store: &ObjectStore, catalog: &Catalog) -> Result<()> {
        let schema = Self::fact_schema();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let rows_per_file = self.scale.fact_rows
            / (self.scale.date_partitions * self.scale.files_per_partition) as u64;
        let mut partitions = Vec::new();
        for p in 0..self.scale.date_partitions {
            let date_sk = 2_450_000 + p as i64; // TPC-DS style date keys.
            let mut files = Vec::new();
            for f in 0..self.scale.files_per_partition {
                let mut w = ColfWriter::new(schema.clone(), self.scale.rows_per_group);
                for _ in 0..rows_per_file {
                    let price: f64 = rng.random_range(0.5..200.0);
                    let quantity: i64 = rng.random_range(1..100);
                    w.push_row(vec![
                        Value::Int64(date_sk),
                        Value::Int64(rng.random_range(0..self.scale.dim_rows as i64)),
                        Value::Int64(rng.random_range(0..20)),
                        Value::Int64(rng.random_range(0..self.scale.dim_rows as i64)),
                        Value::Int64(quantity),
                        Value::Float64(price),
                        Value::Float64(price * quantity as f64 * rng.random_range(-0.1..0.4)),
                    ])?;
                }
                let bytes = w.finish()?;
                let path = format!("/warehouse/tpcds/store_sales/date={date_sk}/part-{f}.colf");
                store.put_object(&path, bytes.clone());
                files.push(DataFile {
                    path,
                    version: 1,
                    length: bytes.len() as u64,
                });
            }
            partitions.push(PartitionDef {
                name: format!("date={date_sk}"),
                files,
            });
        }
        catalog.register(TableDef {
            schema_name: "tpcds".into(),
            table_name: "store_sales".into(),
            columns: schema,
            partitions,
        });
        Ok(())
    }

    fn build_dim(
        &self,
        store: &ObjectStore,
        catalog: &Catalog,
        name: &str,
        schema: Schema,
        mut row: impl FnMut(i64, &mut StdRng) -> Vec<Value>,
    ) -> Result<()> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ edgecache_common::hash::hash_str(name));
        let mut w = ColfWriter::new(schema.clone(), self.scale.rows_per_group);
        for i in 0..self.scale.dim_rows as i64 {
            w.push_row(row(i, &mut rng))?;
        }
        let bytes = w.finish()?;
        let path = format!("/warehouse/tpcds/{name}/part-0.colf");
        store.put_object(&path, bytes.clone());
        catalog.register(TableDef {
            schema_name: "tpcds".into(),
            table_name: name.into(),
            columns: schema,
            partitions: vec![PartitionDef {
                name: "all".into(),
                files: vec![DataFile {
                    path,
                    version: 1,
                    length: bytes.len() as u64,
                }],
            }],
        });
        Ok(())
    }

    fn build_item(&self, store: &ObjectStore, catalog: &Catalog) -> Result<()> {
        const CATEGORIES: [&str; 10] = [
            "Books",
            "Home",
            "Electronics",
            "Jewelry",
            "Men",
            "Music",
            "Shoes",
            "Sports",
            "Toys",
            "Women",
        ];
        let schema = Schema::new(vec![
            ("i_item_sk", ColumnType::Int64),
            ("i_category", ColumnType::Utf8),
            ("i_brand", ColumnType::Utf8),
            ("i_current_price", ColumnType::Float64),
        ]);
        self.build_dim(store, catalog, "item", schema, |i, rng| {
            vec![
                Value::Int64(i),
                Value::Utf8(CATEGORIES[i as usize % CATEGORIES.len()].to_string()),
                Value::Utf8(format!("brand_{}", i % 50)),
                Value::Float64(rng.random_range(0.5..500.0)),
            ]
        })
    }

    fn build_store_dim(&self, store: &ObjectStore, catalog: &Catalog) -> Result<()> {
        const STATES: [&str; 8] = ["CA", "NY", "TX", "WA", "IL", "FL", "GA", "OH"];
        let schema = Schema::new(vec![
            ("s_store_sk", ColumnType::Int64),
            ("s_state", ColumnType::Utf8),
            ("s_floor_space", ColumnType::Int64),
        ]);
        self.build_dim(store, catalog, "store", schema, |i, rng| {
            vec![
                Value::Int64(i),
                Value::Utf8(STATES[i as usize % STATES.len()].to_string()),
                Value::Int64(rng.random_range(5_000..10_000)),
            ]
        })
    }

    fn build_customer(&self, store: &ObjectStore, catalog: &Catalog) -> Result<()> {
        let schema = Schema::new(vec![
            ("c_customer_sk", ColumnType::Int64),
            ("c_birth_year", ColumnType::Int64),
            ("c_preferred", ColumnType::Bool),
        ]);
        self.build_dim(store, catalog, "customer", schema, |i, rng| {
            vec![
                Value::Int64(i),
                Value::Int64(rng.random_range(1940..2005)),
                Value::Bool(rng.random_bool(0.3)),
            ]
        })
    }

    /// The partition names of the fact table (oldest first).
    pub fn fact_partitions(&self) -> Vec<String> {
        (0..self.scale.date_partitions)
            .map(|p| format!("date={}", 2_450_000 + p as i64))
            .collect()
    }

    /// Query template `q` (1-based, `1..=99`). Templates are deterministic
    /// and vary along the axes that matter for caching: table choice,
    /// projection width, predicate selectivity, partition reach, and
    /// aggregation shape.
    pub fn query(&self, q: usize) -> QueryPlan {
        assert!((1..=99).contains(&q), "TPC-DS queries are 1..=99");
        // ~1 in 5 queries hits a dimension table, like the catalog-heavy
        // TPC-DS templates.
        match q % 5 {
            1 if q % 10 == 1 => self.dim_query(q),
            _ => self.fact_query(q),
        }
    }

    fn dim_query(&self, q: usize) -> QueryPlan {
        match (q / 10) % 3 {
            0 => QueryPlan::scan("tpcds", "item", &["i_category"])
                .filter(Predicate::Gt(
                    "i_current_price".into(),
                    Value::Float64(100.0 + (q % 7) as f64 * 30.0),
                ))
                .aggregate(vec![AggExpr::count()])
                .group("i_category"),
            1 => QueryPlan::scan("tpcds", "store", &["s_state"])
                .filter(Predicate::Gt(
                    "s_floor_space".into(),
                    Value::Int64(6_000 + (q % 5) as i64 * 500),
                ))
                .aggregate(vec![AggExpr::count(), AggExpr::avg("s_floor_space")])
                .group("s_state"),
            _ => QueryPlan::scan("tpcds", "customer", &[])
                .filter(Predicate::Between(
                    "c_birth_year".into(),
                    Value::Int64(1950 + (q % 10) as i64 * 3),
                    Value::Int64(1970 + (q % 10) as i64 * 3),
                ))
                .aggregate(vec![AggExpr::count()]),
        }
    }

    fn fact_query(&self, q: usize) -> QueryPlan {
        let parts = self.fact_partitions();
        // Partition reach cycles: 1 partition, a quarter, half, or all.
        let reach = match q % 4 {
            0 => 1usize,
            1 => (parts.len() / 4).max(1),
            2 => (parts.len() / 2).max(1),
            _ => parts.len(),
        };
        // Rotate the window start so different queries touch different dates.
        let start = (q * 3) % (parts.len() - reach + 1).max(1);
        let selected: Vec<&str> = parts[start..start + reach]
            .iter()
            .map(String::as_str)
            .collect();

        let price_cut = 20.0 + (q % 9) as f64 * 20.0;
        let predicate = match q % 3 {
            0 => Predicate::Gt("ss_sales_price".into(), Value::Float64(price_cut)),
            1 => Predicate::Between(
                "ss_quantity".into(),
                Value::Int64((q % 20) as i64),
                Value::Int64((q % 20 + 40) as i64),
            ),
            _ => Predicate::Eq("ss_store_sk".into(), Value::Int64((q % 20) as i64)),
        };

        let aggregates = match q % 4 {
            0 => vec![AggExpr::count(), AggExpr::sum("ss_net_profit")],
            1 => vec![AggExpr::sum("ss_sales_price"), AggExpr::avg("ss_quantity")],
            2 => vec![
                AggExpr::min("ss_sales_price"),
                AggExpr::max("ss_net_profit"),
            ],
            _ => vec![AggExpr::count()],
        };

        let mut plan = QueryPlan::scan("tpcds", "store_sales", &[])
            .in_partitions(&selected)
            .filter(predicate)
            .aggregate(aggregates);
        if q.is_multiple_of(6) {
            plan = plan.group("ss_store_sk");
        }
        // Star joins, like the real benchmark's fact ⋈ dimension templates.
        match q % 10 {
            3 => {
                // Sales by item category.
                plan = plan
                    .join(
                        "tpcds",
                        "item",
                        "ss_item_sk",
                        "i_item_sk",
                        &["i_category"],
                        None,
                    )
                    .group("i_category");
            }
            9 => {
                // Sales in large stores only.
                plan = plan.join(
                    "tpcds",
                    "store",
                    "ss_store_sk",
                    "s_store_sk",
                    &["s_state", "s_floor_space"],
                    Some(Predicate::Gt("s_floor_space".into(), Value::Int64(6_000))),
                );
            }
            _ => {}
        }
        plan
    }

    /// Builds everything into fresh store/catalog handles.
    pub fn build_fresh(
        &self,
        clock: edgecache_common::clock::SharedClock,
    ) -> Result<(Arc<Catalog>, Arc<ObjectStore>)> {
        let store = Arc::new(ObjectStore::new(clock));
        let catalog = Arc::new(Catalog::new());
        self.build(&store, &catalog)?;
        Ok((catalog, store))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgecache_common::clock::SimClock;
    use edgecache_common::ByteSize;
    use edgecache_olap::{Engine, EngineConfig, WorkerConfig};

    fn engine() -> (TpcdsGen, Engine) {
        let clock = SimClock::new();
        let gen = TpcdsGen::new(TpcdsScale::tiny(), 1);
        let (catalog, store) = gen.build_fresh(Arc::new(clock.clone())).unwrap();
        let engine = Engine::new(
            catalog,
            store,
            EngineConfig {
                workers: 2,
                worker: WorkerConfig {
                    page_size: ByteSize::kib(4),
                    ..Default::default()
                },
                ..Default::default()
            },
            Arc::new(clock),
        )
        .unwrap();
        (gen, engine)
    }

    #[test]
    fn dataset_registers_all_tables() {
        let (_, e) = engine();
        let names = e.catalog().table_names();
        assert_eq!(names.len(), 4);
        let fact = e.catalog().table("tpcds", "store_sales").unwrap();
        assert_eq!(fact.partitions.len(), 4);
        assert_eq!(fact.files().count(), 4);
    }

    #[test]
    fn all_99_queries_execute() {
        let (gen, e) = engine();
        for q in 1..=99 {
            let plan = gen.query(q);
            let r = e
                .execute(&plan)
                .unwrap_or_else(|err| panic!("q{q} failed: {err}"));
            assert!(r.stats.splits > 0, "q{q} scanned nothing");
        }
    }

    #[test]
    fn queries_are_deterministic() {
        let gen = TpcdsGen::new(TpcdsScale::tiny(), 1);
        assert_eq!(gen.query(5), gen.query(5));
        assert_ne!(gen.query(5), gen.query(6));
    }

    #[test]
    fn partition_reach_varies() {
        let gen = TpcdsGen::new(TpcdsScale::tiny(), 1);
        let reaches: std::collections::HashSet<usize> = (1..=40)
            .map(|q| {
                let plan = gen.query(q);
                if plan.table == "store_sales" {
                    plan.partitions.len()
                } else {
                    0
                }
            })
            .collect();
        assert!(reaches.len() >= 3, "query reach should vary: {reaches:?}");
    }

    #[test]
    fn warm_runs_match_cold_runs() {
        let (gen, e) = engine();
        for q in [2, 7, 13] {
            let plan = gen.query(q);
            let cold = e.execute(&plan).unwrap();
            let warm = e.execute(&plan).unwrap();
            assert_eq!(cold.rows, warm.rows, "q{q} changed results when warm");
            assert!(warm.stats.wall_time <= cold.stats.wall_time, "q{q}");
        }
    }

    #[test]
    #[should_panic(expected = "1..=99")]
    fn query_zero_panics() {
        let gen = TpcdsGen::new(TpcdsScale::tiny(), 1);
        let _ = gen.query(0);
    }
}
