//! `edgecache-trace`: lightweight hierarchical spans with per-stage latency
//! attribution.
//!
//! The paper's operational lessons (§7) hinge on knowing *where* a slow read
//! spent its time: Figure 10's P50/P90 claims are measured via the
//! `inputWall` of one operator, and the companion metadata-caching work found
//! its next optimisation through exactly this kind of attribution. This
//! module provides the span layer those measurements need:
//!
//! * [`Tracer`] — a handle that is either enabled (records spans) or a
//!   no-op. The disabled form is an `Option<Arc<_>>` holding `None`, so
//!   every operation on it is a branch on a null pointer: the read path
//!   costs nothing when tracing is off.
//! * [`Span`] — one timed stage, created with an explicit parent (no
//!   thread-locals), finished on drop. Spans carry string annotations
//!   (byte counts, page counts, fallback reasons).
//! * Exports: per-stage log-bucketed histograms rolled into a
//!   [`MetricRegistry`] (`trace.<stage>_us`, mergeable across workers by the
//!   existing [`ClusterAggregator`](crate::ClusterAggregator)), a slow-op
//!   log with a configurable threshold, and Chrome trace-event JSON loadable
//!   in `chrome://tracing` / Perfetto.
//!
//! # Determinism contract
//!
//! Timestamps come from the injected [`SharedClock`], so under a `SimClock`
//! traces are a pure function of the schedule: two runs of the same simtest
//! seed produce byte-identical span trees. The one hazard is concurrent
//! work — virtual-time charges from parallel fetch-pool workers commute on
//! the clock *value* but interleave per thread, so per-thread timestamps
//! race. [`Tracer::with_concurrent_timing`] therefore gates whether spans
//! for concurrently executed work are timed on the executing thread
//! (`true`: wall-clock profiles, benches) or pinned to the issuing thread's
//! stage window (`false`, the default: deterministic simulation).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use edgecache_common::SharedClock;
use parking_lot::Mutex;
use serde_json::{Number, Value};

use crate::registry::MetricRegistry;

/// Identifier of a recorded span; [`SpanId::NONE`] marks "no parent".
///
/// Ids are `Copy + Send` so concurrent work (fetch-pool jobs) can parent
/// spans onto the issuing thread's stage without borrowing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The absent parent: spans with this parent are roots.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the absent id.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// The underlying numeric id (0 for [`SpanId::NONE`]), matching the
    /// `id`/`parent` fields of [`SpanRecord`].
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id within the tracer (1-based; 0 is reserved for "none").
    pub id: u64,
    /// Parent span id, or 0 for a root.
    pub parent: u64,
    /// Stage name, e.g. `cache.read` or `remote_fetch`.
    pub name: &'static str,
    /// Start timestamp in clock nanoseconds.
    pub start_nanos: u64,
    /// End timestamp in clock nanoseconds.
    pub end_nanos: u64,
    /// Key/value annotations (byte counts, reasons, query ids).
    pub args: Vec<(&'static str, String)>,
}

impl SpanRecord {
    /// The span's duration.
    pub fn duration(&self) -> Duration {
        Duration::from_nanos(self.end_nanos.saturating_sub(self.start_nanos))
    }
}

/// A root span that exceeded the tracer's slow-op threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowOp {
    /// Stage name of the slow root span.
    pub name: &'static str,
    /// Start timestamp in clock nanoseconds.
    pub start_nanos: u64,
    /// End-to-end duration of the operation.
    pub duration: Duration,
    /// Annotations captured on the root span.
    pub args: Vec<(&'static str, String)>,
}

impl fmt::Display for SlowOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slow op: {} took {:?} (started at +{}ns)",
            self.name, self.duration, self.start_nanos
        )?;
        for (k, v) in &self.args {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

#[derive(Debug)]
struct Inner {
    clock: SharedClock,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    registry: Option<Arc<MetricRegistry>>,
    slow_threshold: Option<Duration>,
    slow_ops: Mutex<Vec<SlowOp>>,
    concurrent_timing: bool,
}

/// Span recorder handle; cheap to clone, no-op when disabled.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Tracer {
    /// A tracer that records nothing and costs (almost) nothing.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A recording tracer timestamped by `clock`.
    pub fn enabled(clock: SharedClock) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                clock,
                next_id: AtomicU64::new(1),
                spans: Mutex::new(Vec::new()),
                registry: None,
                slow_threshold: None,
                slow_ops: Mutex::new(Vec::new()),
                concurrent_timing: false,
            })),
        }
    }

    /// Rolls finished spans into `registry` as per-stage histograms named
    /// `trace.<stage>_us` (micro-seconds, log-bucketed — P50/P95/P99 come
    /// for free and snapshots merge across workers).
    ///
    /// Must be called before the tracer is cloned/shared.
    pub fn with_registry(mut self, registry: Arc<MetricRegistry>) -> Self {
        if let Some(inner) = self.inner.as_mut() {
            Arc::get_mut(inner)
                .expect("configure the tracer before sharing it")
                .registry = Some(registry);
        }
        self
    }

    /// Root spans lasting at least `threshold` are kept in the slow-op log
    /// (and counted as `trace.slow_ops` when a registry is attached).
    ///
    /// Must be called before the tracer is cloned/shared.
    pub fn with_slow_threshold(mut self, threshold: Duration) -> Self {
        if let Some(inner) = self.inner.as_mut() {
            Arc::get_mut(inner)
                .expect("configure the tracer before sharing it")
                .slow_threshold = Some(threshold);
        }
        self
    }

    /// Whether spans for concurrently executed work may be timed on the
    /// executing thread (see the module-level determinism contract).
    ///
    /// Must be called before the tracer is cloned/shared.
    pub fn with_concurrent_timing(mut self, on: bool) -> Self {
        if let Some(inner) = self.inner.as_mut() {
            Arc::get_mut(inner)
                .expect("configure the tracer before sharing it")
                .concurrent_timing = on;
        }
        self
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether per-thread timing of concurrent work is allowed.
    pub fn concurrent_timing(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|inner| inner.concurrent_timing)
    }

    /// Starts a root span.
    pub fn span(&self, name: &'static str) -> Span {
        self.child(SpanId::NONE, name)
    }

    /// Starts a span under `parent` (pass [`SpanId::NONE`] for a root).
    pub fn child(&self, parent: SpanId, name: &'static str) -> Span {
        match &self.inner {
            None => Span {
                inner: None,
                id: 0,
                parent: 0,
                name,
                start_nanos: 0,
                args: Vec::new(),
            },
            Some(inner) => Span {
                id: inner.next_id.fetch_add(1, Ordering::Relaxed),
                parent: parent.0,
                name,
                start_nanos: inner.clock.now_nanos(),
                args: Vec::new(),
                inner: Some(Arc::clone(inner)),
            },
        }
    }

    /// Records an already-measured interval as a finished span (used for
    /// stages whose duration comes from a model rather than two clock
    /// reads, e.g. the OLAP operator cost model).
    pub fn record_interval(
        &self,
        parent: SpanId,
        name: &'static str,
        start_nanos: u64,
        end_nanos: u64,
        args: Vec<(&'static str, String)>,
    ) -> SpanId {
        match &self.inner {
            None => SpanId::NONE,
            Some(inner) => {
                let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
                inner.finish(SpanRecord {
                    id,
                    parent: parent.0,
                    name,
                    start_nanos,
                    end_nanos,
                    args,
                });
                SpanId(id)
            }
        }
    }

    /// Current clock reading, if enabled.
    pub fn now_nanos(&self) -> Option<u64> {
        self.inner.as_ref().map(|inner| inner.clock.now_nanos())
    }

    /// A copy of every finished span so far, in finish order.
    pub fn records(&self) -> Vec<SpanRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.spans.lock().clone(),
        }
    }

    /// Drains and returns every finished span so far.
    pub fn take_records(&self) -> Vec<SpanRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => std::mem::take(&mut *inner.spans.lock()),
        }
    }

    /// The slow-op log (root spans over the configured threshold).
    pub fn slow_ops(&self) -> Vec<SlowOp> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.slow_ops.lock().clone(),
        }
    }

    /// Serializes every finished span as Chrome trace-event JSON
    /// (loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)).
    pub fn chrome_trace_json(&self) -> String {
        chrome_trace_json(&self.records())
    }
}

impl Inner {
    fn finish(&self, record: SpanRecord) {
        if let Some(registry) = &self.registry {
            let micros = record.duration().as_micros() as u64;
            registry
                .histogram(&format!("trace.{}_us", record.name))
                .record(micros);
        }
        if record.parent == 0 {
            if let Some(threshold) = self.slow_threshold {
                let duration = record.duration();
                if duration >= threshold {
                    if let Some(registry) = &self.registry {
                        registry.counter("trace.slow_ops").inc();
                    }
                    self.slow_ops.lock().push(SlowOp {
                        name: record.name,
                        start_nanos: record.start_nanos,
                        duration,
                        args: record.args.clone(),
                    });
                }
            }
        }
        self.spans.lock().push(record);
    }
}

/// An in-flight span; records itself when dropped (or via [`Span::finish`]).
#[derive(Debug)]
pub struct Span {
    inner: Option<Arc<Inner>>,
    id: u64,
    parent: u64,
    name: &'static str,
    start_nanos: u64,
    args: Vec<(&'static str, String)>,
}

impl Span {
    /// This span's id, for parenting children (possibly cross-thread).
    pub fn id(&self) -> SpanId {
        SpanId(self.id)
    }

    /// Whether annotations on this span will be kept.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches a key/value annotation. The value is only formatted when
    /// the span is recording.
    pub fn annotate(&mut self, key: &'static str, value: impl fmt::Display) {
        if self.inner.is_some() {
            self.args.push((key, value.to_string()));
        }
    }

    /// Ends the span now (spans also end when dropped).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            inner.finish(SpanRecord {
                id: self.id,
                parent: self.parent,
                name: self.name,
                start_nanos: self.start_nanos,
                end_nanos: inner.clock.now_nanos(),
                args: std::mem::take(&mut self.args),
            });
        }
    }
}

fn num_f(v: f64) -> Value {
    Value::Number(Number::Float(v))
}

/// Builds the Chrome trace-event JSON document for a set of records.
///
/// Each span becomes a complete (`"ph": "X"`) event; the `tid` is the id of
/// the span's root, so every top-level operation renders on its own lane
/// with its children nested inside.
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let parents: BTreeMap<u64, u64> = records.iter().map(|r| (r.id, r.parent)).collect();
    let root_of = |mut id: u64| {
        while let Some(&parent) = parents.get(&id) {
            if parent == 0 {
                break;
            }
            id = parent;
        }
        id
    };
    let events: Vec<Value> = records
        .iter()
        .map(|r| {
            let mut event = BTreeMap::new();
            event.insert("name".to_string(), Value::String(r.name.to_string()));
            event.insert("ph".to_string(), Value::String("X".to_string()));
            event.insert("ts".to_string(), num_f(r.start_nanos as f64 / 1e3));
            event.insert(
                "dur".to_string(),
                num_f(r.end_nanos.saturating_sub(r.start_nanos) as f64 / 1e3),
            );
            event.insert("pid".to_string(), Value::Number(Number::PosInt(0)));
            event.insert(
                "tid".to_string(),
                Value::Number(Number::PosInt(root_of(r.id))),
            );
            let args: BTreeMap<String, Value> = r
                .args
                .iter()
                .map(|(k, v)| (k.to_string(), Value::String(v.clone())))
                .collect();
            event.insert("args".to_string(), Value::Object(args));
            Value::Object(event)
        })
        .collect();
    let mut doc = BTreeMap::new();
    doc.insert("traceEvents".to_string(), Value::Array(events));
    doc.insert(
        "displayTimeUnit".to_string(),
        Value::String("ms".to_string()),
    );
    serde_json::to_string_pretty(&Value::Object(doc)).expect("trace document serializes")
}

/// Per-stage aggregate over a trace dump (the `edgecache-cli trace` table).
#[derive(Debug, Clone, PartialEq)]
pub struct StageSummary {
    /// Stage (span) name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of span durations.
    pub total: Duration,
    /// Median span duration.
    pub p50: Duration,
    /// 95th-percentile span duration.
    pub p95: Duration,
    /// 99th-percentile span duration.
    pub p99: Duration,
    /// Longest span duration.
    pub max: Duration,
}

/// Summarizes a parsed Chrome trace document (either the
/// `{"traceEvents": [...]}` object form or a bare event array) into
/// per-stage aggregates, sorted by total time descending.
pub fn summarize_chrome_trace(doc: &Value) -> Result<Vec<StageSummary>, String> {
    let events = match doc {
        Value::Array(events) => events,
        Value::Object(fields) => match fields.get("traceEvents") {
            Some(Value::Array(events)) => events,
            _ => return Err("no traceEvents array in trace document".to_string()),
        },
        _ => return Err("trace document is neither an object nor an array".to_string()),
    };
    let mut by_stage: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for event in events {
        let Value::Object(fields) = event else {
            return Err("trace event is not an object".to_string());
        };
        let Some(Value::String(name)) = fields.get("name") else {
            return Err("trace event has no name".to_string());
        };
        let dur_us = match fields.get("dur") {
            Some(Value::Number(Number::Float(f))) => *f,
            Some(Value::Number(Number::PosInt(i))) => *i as f64,
            Some(Value::Number(Number::NegInt(i))) => *i as f64,
            _ => return Err(format!("trace event {name:?} has no duration")),
        };
        by_stage.entry(name.clone()).or_default().push(dur_us);
    }
    let mut summaries: Vec<StageSummary> = by_stage
        .into_iter()
        .map(|(name, mut durs)| {
            durs.sort_by(|a, b| a.partial_cmp(b).expect("finite durations"));
            let micros = |v: f64| Duration::from_nanos((v * 1e3).round() as u64);
            let pct = |p: f64| {
                let rank = ((p / 100.0 * durs.len() as f64).ceil() as usize).max(1) - 1;
                micros(durs[rank.min(durs.len() - 1)])
            };
            StageSummary {
                count: durs.len() as u64,
                total: micros(durs.iter().sum()),
                p50: pct(50.0),
                p95: pct(95.0),
                p99: pct(99.0),
                max: micros(*durs.last().expect("non-empty stage")),
                name,
            }
        })
        .collect();
    summaries.sort_by(|a, b| b.total.cmp(&a.total).then_with(|| a.name.cmp(&b.name)));
    Ok(summaries)
}

/// Sums the durations of each stage across `records`, optionally restricted
/// to spans carrying the annotation `key == value` (per-query aggregation
/// uses `("query", id)`).
pub fn stage_totals(
    records: &[SpanRecord],
    filter: Option<(&str, &str)>,
) -> BTreeMap<String, Duration> {
    let mut totals = BTreeMap::new();
    for r in records {
        if let Some((key, value)) = filter {
            if !r.args.iter().any(|(k, v)| *k == key && v == value) {
                continue;
            }
        }
        *totals.entry(r.name.to_string()).or_insert(Duration::ZERO) += r.duration();
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgecache_common::SimClock;

    fn sim() -> (Arc<SimClock>, Tracer) {
        let clock = Arc::new(SimClock::new());
        let tracer = Tracer::enabled(clock.clone());
        (clock, tracer)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let mut span = tracer.span("cache.read");
        span.annotate("bytes", 4096);
        assert!(!span.is_recording());
        span.finish();
        assert!(tracer.records().is_empty());
        assert!(!tracer.chrome_trace_json().contains("cache.read"));
    }

    #[test]
    fn span_tree_durations_nest_and_sum() {
        let (clock, tracer) = sim();
        let root = tracer.span("cache.read");
        {
            let _classify = tracer.child(root.id(), "classify");
            clock.advance(Duration::from_micros(10));
        }
        {
            let _fetch = tracer.child(root.id(), "remote_fetch");
            clock.advance(Duration::from_micros(90));
        }
        root.finish();
        let records = tracer.records();
        assert_eq!(records.len(), 3);
        let root = records.iter().find(|r| r.parent == 0).unwrap();
        assert_eq!(root.name, "cache.read");
        assert_eq!(root.duration(), Duration::from_micros(100));
        let child_sum: Duration = records
            .iter()
            .filter(|r| r.parent == root.id)
            .map(|r| r.duration())
            .sum();
        assert_eq!(child_sum, root.duration());
    }

    #[test]
    fn registry_rollup_records_per_stage_histograms() {
        let registry = Arc::new(MetricRegistry::new("t"));
        let clock = Arc::new(SimClock::new());
        let tracer = Tracer::enabled(clock.clone()).with_registry(Arc::clone(&registry));
        for micros in [100u64, 200, 300] {
            let _span = tracer.span("remote_fetch");
            clock.advance(Duration::from_micros(micros));
        }
        let hist = registry.histogram("trace.remote_fetch_us");
        assert_eq!(hist.count(), 3);
        let p = hist.percentiles().expect("histogram has samples");
        assert!((150..=260).contains(&p.p50), "p50 = {}", p.p50);
    }

    #[test]
    fn slow_op_log_honors_threshold() {
        let clock = Arc::new(SimClock::new());
        let tracer = Tracer::enabled(clock.clone()).with_slow_threshold(Duration::from_millis(50));
        {
            let _fast = tracer.span("cache.read");
            clock.advance(Duration::from_millis(1));
        }
        {
            let mut slow = tracer.span("cache.read");
            slow.annotate("path", "/warehouse/t/part-0");
            clock.advance(Duration::from_millis(80));
        }
        let slow = tracer.slow_ops();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].duration, Duration::from_millis(80));
        assert!(slow[0].to_string().contains("/warehouse/t/part-0"));
    }

    #[test]
    fn chrome_export_roundtrips_through_summary() {
        let (clock, tracer) = sim();
        let root = tracer.span("cache.read");
        {
            let mut fetch = tracer.child(root.id(), "remote_fetch");
            fetch.annotate("bytes", 8192);
            clock.advance(Duration::from_micros(500));
        }
        root.finish();
        let json = tracer.chrome_trace_json();
        let doc = serde_json::parse_value(&json).expect("export parses");
        let summary = summarize_chrome_trace(&doc).expect("summarizes");
        assert_eq!(summary.len(), 2);
        let fetch = summary.iter().find(|s| s.name == "remote_fetch").unwrap();
        assert_eq!(fetch.count, 1);
        assert_eq!(fetch.total, Duration::from_micros(500));
        assert_eq!(fetch.p99, Duration::from_micros(500));
    }

    #[test]
    fn identical_schedules_produce_identical_traces() {
        let run = || {
            let (clock, tracer) = sim();
            let root = tracer.span("op");
            for stage in ["a", "b"] {
                let _s = tracer.child(root.id(), stage);
                clock.advance(Duration::from_micros(7));
            }
            root.finish();
            tracer.chrome_trace_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stage_totals_filters_by_annotation() {
        let (clock, tracer) = sim();
        for query in ["1", "2"] {
            let mut span = tracer.span("olap.split");
            span.annotate("query", query);
            clock.advance(Duration::from_micros(40));
        }
        let all = stage_totals(&tracer.records(), None);
        assert_eq!(all["olap.split"], Duration::from_micros(80));
        let q1 = stage_totals(&tracer.records(), Some(("query", "1")));
        assert_eq!(q1["olap.split"], Duration::from_micros(40));
    }

    #[test]
    fn record_interval_attributes_modeled_time() {
        let (_clock, tracer) = sim();
        let root = tracer.span("olap.split");
        let id = tracer.record_interval(
            root.id(),
            "scan.decode",
            100,
            400,
            vec![("rows", "10".to_string())],
        );
        assert!(!id.is_none());
        root.finish();
        let records = tracer.records();
        let decode = records.iter().find(|r| r.name == "scan.decode").unwrap();
        assert_eq!(decode.duration(), Duration::from_nanos(300));
    }
}
