//! A log-bucketed histogram with percentile estimation.
//!
//! Values are assigned to buckets of geometrically increasing width: each
//! power of two is split into [`SUB_BUCKETS`] linear sub-buckets, bounding
//! the relative quantile error to about `1 / SUB_BUCKETS`. Recording is a
//! single relaxed atomic increment; histograms merge losslessly, which is
//! what lets per-node latency distributions aggregate into the cluster-level
//! P50/P90/P95 numbers the paper reports (Figures 10, and §6.1.4's Meta
//! production percentiles).

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Linear sub-buckets per power of two. 32 gives ~3 % worst-case error.
pub const SUB_BUCKETS: usize = 32;
/// Number of powers of two covered (u64 value range).
const EXPONENTS: usize = 64;
/// Total bucket count.
const BUCKETS: usize = EXPONENTS * SUB_BUCKETS;

/// Maps a value to its bucket index.
fn bucket_of(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        // Values smaller than SUB_BUCKETS get exact buckets.
        return value as usize;
    }
    let exp = 63 - value.leading_zeros() as usize;
    let shift = exp.saturating_sub(SUB_BUCKETS.trailing_zeros() as usize);
    let sub = ((value >> shift) as usize) - SUB_BUCKETS;
    // Region for exponent `exp` starts after the exact region.
    let base = (exp + 1 - SUB_BUCKETS.trailing_zeros() as usize) * SUB_BUCKETS;
    (base + sub).min(BUCKETS - 1)
}

/// Returns a representative (midpoint) value for a bucket index.
fn bucket_midpoint(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let log_sub = SUB_BUCKETS.trailing_zeros() as usize;
    let region = index / SUB_BUCKETS; // ≥ 1
    let sub = index % SUB_BUCKETS;
    let exp = region + log_sub - 1;
    let shift = exp - log_sub;
    let low = ((SUB_BUCKETS + sub) as u64) << shift;
    let width = 1u64 << shift;
    low + width / 2
}

/// A concurrent log-bucketed histogram.
pub struct Histogram {
    counts: Box<[AtomicU64; BUCKETS]>,
    total: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        // An array literal of non-Copy atomics needs a loop; build via Vec.
        let counts: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let counts: Box<[AtomicU64; BUCKETS]> =
            counts.into_boxed_slice().try_into().expect("exact length");
        Self {
            counts,
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.counts[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records `n` observations of the same value.
    pub fn record_n(&self, value: u64, n: u64) {
        self.counts[bucket_of(value)].fetch_add(n, Ordering::Relaxed);
        self.total.fetch_add(n, Ordering::Relaxed);
        self.sum
            .fetch_add(value.saturating_mul(n), Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Mean of observations, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum.load(Ordering::Relaxed) as f64 / n as f64)
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`). Exact for the min/max
    /// endpoints; bucket-midpoint elsewhere. Returns `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        if q <= 0.0 {
            return Some(self.min.load(Ordering::Relaxed));
        }
        if q >= 1.0 {
            return Some(self.max.load(Ordering::Relaxed));
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                let mid = bucket_midpoint(i);
                let lo = self.min.load(Ordering::Relaxed);
                let hi = self.max.load(Ordering::Relaxed);
                return Some(mid.clamp(lo, hi));
            }
        }
        Some(self.max.load(Ordering::Relaxed))
    }

    /// Convenience: the 50th/90th/95th/99th percentiles.
    pub fn percentiles(&self) -> Option<Percentiles> {
        Some(Percentiles {
            p50: self.quantile(0.50)?,
            p90: self.quantile(0.90)?,
            p95: self.quantile(0.95)?,
            p99: self.quantile(0.99)?,
        })
    }

    /// Takes a serializable snapshot (sparse representation).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, c) in self.counts.iter().enumerate() {
            let v = c.load(Ordering::Relaxed);
            if v > 0 {
                buckets.push((i as u32, v));
            }
        }
        HistogramSnapshot {
            buckets,
            count: self.count(),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Merges a snapshot into this histogram (used for aggregation).
    pub fn merge_snapshot(&self, snap: &HistogramSnapshot) {
        for &(i, c) in &snap.buckets {
            self.counts[i as usize].fetch_add(c, Ordering::Relaxed);
        }
        self.total.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        if snap.count > 0 {
            self.min.fetch_min(snap.min, Ordering::Relaxed);
            self.max.fetch_max(snap.max, Ordering::Relaxed);
        }
    }
}

/// Selected percentiles of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Percentiles {
    pub p50: u64,
    pub p90: u64,
    pub p95: u64,
    pub p99: u64,
}

impl Serialize for Percentiles {
    fn to_value(&self) -> serde::Value {
        let mut object = std::collections::BTreeMap::new();
        object.insert("p50".to_owned(), self.p50.to_value());
        object.insert("p90".to_owned(), self.p90.to_value());
        object.insert("p95".to_owned(), self.p95.to_value());
        object.insert("p99".to_owned(), self.p99.to_value());
        serde::Value::Object(object)
    }
}

impl Deserialize for Percentiles {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            p50: serde::field(value, "p50")?,
            p90: serde::field(value, "p90")?,
            p95: serde::field(value, "p95")?,
            p99: serde::field(value, "p99")?,
        })
    }
}

/// A serializable, mergeable snapshot of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Sparse `(bucket_index, count)` pairs.
    pub buckets: Vec<(u32, u64)>,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl Serialize for HistogramSnapshot {
    fn to_value(&self) -> serde::Value {
        let mut object = std::collections::BTreeMap::new();
        object.insert("buckets".to_owned(), self.buckets.to_value());
        object.insert("count".to_owned(), self.count.to_value());
        object.insert("sum".to_owned(), self.sum.to_value());
        object.insert("min".to_owned(), self.min.to_value());
        object.insert("max".to_owned(), self.max.to_value());
        serde::Value::Object(object)
    }
}

impl Deserialize for HistogramSnapshot {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            buckets: serde::field(value, "buckets")?,
            count: serde::field(value, "count")?,
            sum: serde::field(value, "sum")?,
            min: serde::field(value, "min")?,
            max: serde::field(value, "max")?,
        })
    }
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        Self {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Rehydrates into a [`Histogram`] for quantile queries.
    pub fn to_histogram(&self) -> Histogram {
        let h = Histogram::new();
        h.merge_snapshot(self);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_monotone() {
        let mut last = 0usize;
        for v in [
            0u64,
            1,
            5,
            31,
            32,
            33,
            63,
            64,
            100,
            1000,
            1 << 20,
            u64::MAX / 2,
        ] {
            let b = bucket_of(v);
            assert!(b >= last, "bucket_of({v}) = {b} < {last}");
            last = b;
        }
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_midpoint(v as usize), v);
        }
    }

    #[test]
    fn midpoint_is_inside_bucket() {
        for v in [32u64, 100, 999, 12345, 1 << 22, (1 << 40) + 7] {
            let b = bucket_of(v);
            let mid = bucket_midpoint(b);
            assert_eq!(bucket_of(mid), b, "midpoint of bucket({v}) maps back");
        }
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert!(h.percentiles().is_none());
    }

    #[test]
    fn quantiles_of_uniform_data() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap() as f64;
        let p99 = h.quantile(0.99).unwrap() as f64;
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.05, "p50 = {p50}");
        assert!((p99 - 9900.0).abs() / 9900.0 < 0.05, "p99 = {p99}");
        assert_eq!(h.quantile(0.0).unwrap(), 1);
        assert_eq!(h.quantile(1.0).unwrap(), 10_000);
    }

    #[test]
    fn mean_is_exact() {
        let h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.mean(), Some(20.0));
    }

    #[test]
    fn merge_equals_union() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..5000u64 {
            let target = if v % 2 == 0 { &a } else { &b };
            target.record(v * 3);
            all.record(v * 3);
        }
        let merged = Histogram::new();
        merged.merge_snapshot(&a.snapshot());
        merged.merge_snapshot(&b.snapshot());
        assert_eq!(merged.count(), all.count());
        assert_eq!(merged.quantile(0.5), all.quantile(0.5));
        assert_eq!(merged.quantile(0.95), all.quantile(0.95));
        assert_eq!(merged.snapshot(), all.snapshot());
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_n(77, 100);
        for _ in 0..100 {
            b.record(77);
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn snapshot_round_trips_through_histogram() {
        let h = Histogram::new();
        for v in [1u64, 1, 2, 500, 1_000_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        let h2 = snap.to_histogram();
        assert_eq!(h2.snapshot(), snap);
    }

    #[test]
    fn relative_error_is_bounded() {
        let h = Histogram::new();
        // A value in a wide bucket: error must stay within ~1/SUB_BUCKETS.
        let v = 1_234_567u64;
        h.record(v);
        let est = h.quantile(0.5).unwrap() as f64;
        assert!((est - v as f64).abs() / v as f64 <= 1.0 / SUB_BUCKETS as f64 + 1e-9);
    }

    mod bucket_properties {
        use super::*;
        use proptest::prelude::*;

        /// Inclusive `[low, high]` range of values mapping to bucket
        /// `index`, derived independently of `bucket_of`'s bit tricks.
        fn bucket_bounds(index: usize) -> (u64, u64) {
            if index < SUB_BUCKETS {
                return (index as u64, index as u64);
            }
            let log_sub = SUB_BUCKETS.trailing_zeros() as usize;
            let region = index / SUB_BUCKETS;
            let sub = index % SUB_BUCKETS;
            let exp = region + log_sub - 1;
            let shift = exp - log_sub;
            let low = ((SUB_BUCKETS + sub) as u64) << shift;
            (low, low + ((1u64 << shift) - 1))
        }

        /// The largest reachable bucket index (the one holding u64::MAX).
        fn top_bucket() -> usize {
            bucket_of(u64::MAX)
        }

        proptest! {
            /// value → index → bounds roundtrip over the full u64 range:
            /// every value lands in a bucket whose bounds contain it, the
            /// bucket edges map back to the same index, and the next value
            /// past the upper edge starts the next bucket.
            #[test]
            fn value_index_bounds_roundtrip(v in any::<u64>()) {
                let index = bucket_of(v);
                let (low, high) = bucket_bounds(index);
                prop_assert!(low <= v && v <= high,
                    "value {v} outside bucket {index} = [{low}, {high}]");
                prop_assert_eq!(bucket_of(low), index);
                prop_assert_eq!(bucket_of(high), index);
                let mid = bucket_midpoint(index);
                prop_assert!(low <= mid && mid <= high);
                if high < u64::MAX {
                    prop_assert_eq!(bucket_of(high + 1), index + 1,
                        "bucket {index} upper edge not adjacent to next");
                }
                if low > 0 {
                    prop_assert_eq!(bucket_of(low - 1), index - 1,
                        "bucket {index} lower edge not adjacent to previous");
                }
            }

            /// The mapping is monotone: larger values never map to a
            /// smaller bucket.
            #[test]
            fn mapping_is_monotone(a in any::<u64>(), b in any::<u64>()) {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                prop_assert!(bucket_of(lo) <= bucket_of(hi));
            }
        }

        #[test]
        fn every_reachable_bucket_roundtrips_exhaustively() {
            // All buckets up to the one holding u64::MAX (the tail of the
            // BUCKETS array is headroom the shift math never reaches).
            let top = top_bucket();
            assert!(top < BUCKETS);
            for index in 0..=top {
                let (low, high) = bucket_bounds(index);
                assert_eq!(bucket_of(low), index, "low edge of {index}");
                assert_eq!(bucket_of(high), index, "high edge of {index}");
                assert_eq!(
                    bucket_of(bucket_midpoint(index)),
                    index,
                    "midpoint of {index}"
                );
            }
            assert_eq!(bucket_bounds(top).1, u64::MAX, "top bucket ends at MAX");
        }
    }
}
