//! A named collection of metrics with snapshots and error breakdowns.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::scalar::{Counter, Gauge};

/// A registry of named counters, gauges, and histograms.
///
/// Lookup is by `&str`; the first lookup of a name creates the metric.
/// Registries are cheap to clone (shared state) and can be embedded in every
/// cache component. Error breakdowns follow the paper's recommendation (§7):
/// `record_error("put", "no_space")` maintains a counter per
/// *(operation, error-kind)* pair.
///
/// # Examples
///
/// ```
/// use edgecache_metrics::MetricRegistry;
/// let m = MetricRegistry::new("cache");
/// m.counter("hits").inc();
/// m.histogram("get_latency_us").record(120);
/// m.record_error("put", "no_space");
/// let snap = m.snapshot();
/// assert_eq!(snap.counters["hits"], 1);
/// assert_eq!(snap.counters["errors.put.no_space"], 1);
/// ```
#[derive(Debug, Clone)]
pub struct MetricRegistry {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    name: String,
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricRegistry {
    /// Creates a registry identified by `name` (e.g. the node id).
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            inner: Arc::new(Inner {
                name: name.into(),
                counters: RwLock::new(BTreeMap::new()),
                gauges: RwLock::new(BTreeMap::new()),
                histograms: RwLock::new(BTreeMap::new()),
            }),
        }
    }

    /// The registry's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Gets or creates the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.inner.counters.read().get(name) {
            return Arc::clone(c);
        }
        let mut w = self.inner.counters.write();
        Arc::clone(w.entry(name.to_string()).or_default())
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.inner.gauges.read().get(name) {
            return Arc::clone(g);
        }
        let mut w = self.inner.gauges.write();
        Arc::clone(w.entry(name.to_string()).or_default())
    }

    /// Gets or creates the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.inner.histograms.read().get(name) {
            return Arc::clone(h);
        }
        let mut w = self.inner.histograms.write();
        Arc::clone(w.entry(name.to_string()).or_default())
    }

    /// Records an error for `op` with error kind `kind`
    /// (maintains the `errors.<op>.<kind>` counter).
    pub fn record_error(&self, op: &str, kind: &str) {
        self.counter(&format!("errors.{op}.{kind}")).inc();
    }

    /// Sum of all error counters for operation `op`.
    pub fn error_count(&self, op: &str) -> u64 {
        let prefix = format!("errors.{op}.");
        self.inner
            .counters
            .read()
            .iter()
            .filter(|(k, _)| k.starts_with(&prefix))
            .map(|(_, c)| c.get())
            .sum()
    }

    /// Takes a point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            name: self.inner.name.clone(),
            counters: self
                .inner
                .counters
                .read()
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .read()
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: self
                .inner
                .histograms
                .read()
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time, serializable snapshot of a [`MetricRegistry`].
#[derive(Debug, Clone)]
pub struct RegistrySnapshot {
    /// Name of the source registry (node id).
    pub name: String,
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Serialize for RegistrySnapshot {
    fn to_value(&self) -> serde::Value {
        let mut object = BTreeMap::new();
        object.insert("name".to_owned(), self.name.to_value());
        object.insert("counters".to_owned(), self.counters.to_value());
        object.insert("gauges".to_owned(), self.gauges.to_value());
        object.insert("histograms".to_owned(), self.histograms.to_value());
        serde::Value::Object(object)
    }
}

impl Deserialize for RegistrySnapshot {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self {
            name: serde::field(value, "name")?,
            counters: serde::field(value, "counters")?,
            gauges: serde::field(value, "gauges")?,
            histograms: serde::field(value, "histograms")?,
        })
    }
}

impl RegistrySnapshot {
    /// Serializes the snapshot as pretty JSON (the export format, standing in
    /// for the paper's JMX exporters).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Parses a snapshot from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Returns counter value or 0.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_metric() {
        let m = MetricRegistry::new("n");
        m.counter("x").inc();
        m.counter("x").inc();
        assert_eq!(m.counter("x").get(), 2);
    }

    #[test]
    fn clones_share_state() {
        let m = MetricRegistry::new("n");
        let m2 = m.clone();
        m.counter("hits").add(5);
        assert_eq!(m2.counter("hits").get(), 5);
    }

    #[test]
    fn error_breakdown() {
        let m = MetricRegistry::new("n");
        m.record_error("put", "no_space");
        m.record_error("put", "no_space");
        m.record_error("put", "corrupted");
        m.record_error("get", "timeout");
        assert_eq!(m.error_count("put"), 3);
        assert_eq!(m.error_count("get"), 1);
        assert_eq!(m.error_count("delete"), 0);
        let snap = m.snapshot();
        assert_eq!(snap.counter("errors.put.no_space"), 2);
        assert_eq!(snap.counter("errors.put.corrupted"), 1);
    }

    #[test]
    fn snapshot_json_round_trip() {
        let m = MetricRegistry::new("node-7");
        m.counter("hits").add(10);
        m.gauge("bytes_cached").set(-3);
        m.histogram("lat").record(42);
        let snap = m.snapshot();
        let json = snap.to_json();
        let back = RegistrySnapshot::from_json(&json).unwrap();
        assert_eq!(back.name, "node-7");
        assert_eq!(back.counter("hits"), 10);
        assert_eq!(back.gauges["bytes_cached"], -3);
        assert_eq!(back.histograms["lat"].count, 1);
    }

    #[test]
    fn missing_counter_reads_zero() {
        let snap = MetricRegistry::new("n").snapshot();
        assert_eq!(snap.counter("nonexistent"), 0);
    }
}
