//! Lock-free scalar metrics: monotonically increasing counters and
//! arbitrarily settable gauges.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
///
/// # Examples
///
/// ```
/// use edgecache_metrics::Counter;
/// let c = Counter::new();
/// c.inc();
/// c.add(41);
/// assert_eq!(c.get(), 42);
/// ```
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (e.g. bytes currently cached,
/// blocked-process count).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(100);
        g.add(-30);
        assert_eq!(g.get(), 70);
        g.add(5);
        assert_eq!(g.get(), 75);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }
}
