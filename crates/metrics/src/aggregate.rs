//! Cluster-level metric aggregation.
//!
//! The paper's deployments run thousands of local caches; tuning and
//! debugging them requires "a centralized view of predefined and
//! user-customized metrics" (§7). [`ClusterAggregator`] merges
//! [`RegistrySnapshot`]s from many nodes: counters add, gauges add,
//! histograms merge losslessly (so cluster-level percentiles are computed
//! over the union of observations, not averaged per node).

use std::collections::BTreeMap;

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::registry::RegistrySnapshot;

/// Merges snapshots from many nodes into one cluster-level view.
#[derive(Debug, Default)]
pub struct ClusterAggregator {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
    nodes: Vec<String>,
}

impl ClusterAggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests one node's snapshot.
    pub fn ingest(&mut self, snap: &RegistrySnapshot) {
        self.nodes.push(snap.name.clone());
        for (k, v) in &snap.counters {
            *self.counters.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &snap.gauges {
            *self.gauges.entry(k.clone()).or_default() += v;
        }
        for (k, hs) in &snap.histograms {
            let entry = self
                .histograms
                .entry(k.clone())
                .or_insert_with(HistogramSnapshot::empty);
            let merged = Histogram::new();
            merged.merge_snapshot(entry);
            merged.merge_snapshot(hs);
            *entry = merged.snapshot();
        }
    }

    /// Number of ingested node snapshots.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Cluster-wide counter total.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Cluster-wide gauge total.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Cluster-wide histogram (merged across nodes), if any node reported it.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.histograms.get(name).map(|s| s.to_histogram())
    }

    /// Hit ratio derived from `hits` / (`hits` + `misses`) counters, a
    /// drill-down the paper's dashboards expose. Returns `None` when there is
    /// no traffic.
    pub fn ratio(&self, numerator: &str, denominator_extra: &str) -> Option<f64> {
        let num = self.counter(numerator) as f64;
        let den = num + self.counter(denominator_extra) as f64;
        (den > 0.0).then_some(num / den)
    }

    /// Finalizes into a single cluster-level snapshot.
    pub fn into_snapshot(self, name: impl Into<String>) -> RegistrySnapshot {
        RegistrySnapshot {
            name: name.into(),
            counters: self.counters,
            gauges: self.gauges,
            histograms: self.histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricRegistry;

    fn node_snapshot(name: &str, hits: u64, misses: u64, lat: &[u64]) -> RegistrySnapshot {
        let m = MetricRegistry::new(name);
        m.counter("hits").add(hits);
        m.counter("misses").add(misses);
        for &l in lat {
            m.histogram("get_latency_us").record(l);
        }
        m.gauge("bytes_cached").set(100);
        m.snapshot()
    }

    #[test]
    fn counters_and_gauges_sum() {
        let mut agg = ClusterAggregator::new();
        agg.ingest(&node_snapshot("a", 10, 5, &[]));
        agg.ingest(&node_snapshot("b", 20, 5, &[]));
        assert_eq!(agg.node_count(), 2);
        assert_eq!(agg.counter("hits"), 30);
        assert_eq!(agg.gauge("bytes_cached"), 200);
    }

    #[test]
    fn hit_ratio() {
        let mut agg = ClusterAggregator::new();
        agg.ingest(&node_snapshot("a", 75, 25, &[]));
        assert_eq!(agg.ratio("hits", "misses"), Some(0.75));
        let empty = ClusterAggregator::new();
        assert_eq!(empty.ratio("hits", "misses"), None);
    }

    #[test]
    fn histograms_merge_across_nodes() {
        let mut agg = ClusterAggregator::new();
        // Node `a` is fast, node `b` is slow; cluster P50 must reflect the
        // union, not a per-node average.
        agg.ingest(&node_snapshot("a", 0, 0, &[10; 100]));
        agg.ingest(&node_snapshot("b", 0, 0, &[1000; 100]));
        let h = agg.histogram("get_latency_us").unwrap();
        assert_eq!(h.count(), 200);
        assert_eq!(h.quantile(0.25), Some(10));
        let p90 = h.quantile(0.90).unwrap();
        assert!((950..=1050).contains(&p90), "p90 = {p90}");
    }

    #[test]
    fn into_snapshot_preserves_totals() {
        let mut agg = ClusterAggregator::new();
        agg.ingest(&node_snapshot("a", 7, 0, &[5]));
        let snap = agg.into_snapshot("cluster");
        assert_eq!(snap.name, "cluster");
        assert_eq!(snap.counter("hits"), 7);
        assert_eq!(snap.histograms["get_latency_us"].count, 1);
    }
}
