//! Conservation-law checking over registry snapshots.
//!
//! The torture harness (`crates/simtest`) validates cache runs against
//! *conservation laws* — linear relations between counter deltas that must
//! hold no matter what the workload or fault schedule did, e.g.
//! `hits + misses + fallbacks.timeout == page_reads`. Expressing the laws
//! over a [`SnapshotDiff`] (after − before) rather than absolute values lets
//! callers check any window of a run, including windows that start on a
//! warm cache.
//!
//! A [`ConservationLaw`] is `sum(lhs counters) REL sum(rhs counters)`, with
//! REL one of `==`, `<=`, `>=`. [`assert_conserved`] evaluates a slice of
//! laws and reports every violated one with both sides' values, so a failed
//! oracle names the drifting counter instead of just "mismatch".

use std::collections::BTreeMap;
use std::fmt;

use crate::registry::RegistrySnapshot;

/// The delta between two snapshots of one registry: `after − before`,
/// counter-wise (counters are monotone, so deltas are non-negative in any
/// well-formed window).
#[derive(Debug, Clone, Default)]
pub struct SnapshotDiff {
    counters: BTreeMap<String, u64>,
}

impl SnapshotDiff {
    /// Computes `after − before`. Counters absent from `before` count from
    /// zero; counters that went *backwards* (registry misuse) saturate to 0.
    pub fn between(before: &RegistrySnapshot, after: &RegistrySnapshot) -> Self {
        let mut counters = BTreeMap::new();
        for (name, &v) in &after.counters {
            let base = before.counter(name);
            counters.insert(name.clone(), v.saturating_sub(base));
        }
        Self { counters }
    }

    /// A diff measured from an empty registry (i.e. the snapshot itself).
    pub fn from_start(after: &RegistrySnapshot) -> Self {
        let mut counters = BTreeMap::new();
        for (name, &v) in &after.counters {
            counters.insert(name.clone(), v);
        }
        Self { counters }
    }

    /// Counter delta, 0 if the counter never appeared.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sum of deltas of every counter whose name starts with `prefix`.
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }
}

/// How the two sides of a law must relate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `lhs == rhs`
    Equal,
    /// `lhs <= rhs`
    AtMost,
    /// `lhs >= rhs`
    AtLeast,
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Relation::Equal => "==",
            Relation::AtMost => "<=",
            Relation::AtLeast => ">=",
        })
    }
}

/// One conservation law: `sum(lhs) REL sum(rhs)` over counter *deltas*.
/// A term ending in `*` sums every counter with that prefix (e.g.
/// `evictions.*`).
#[derive(Debug, Clone)]
pub struct ConservationLaw {
    /// Human-readable name, e.g. `"page reads balance"`.
    pub name: &'static str,
    /// Left-hand-side counter names (summed).
    pub lhs: Vec<&'static str>,
    /// Right-hand-side counter names (summed).
    pub rhs: Vec<&'static str>,
    /// Relation between the sums.
    pub relation: Relation,
}

impl ConservationLaw {
    /// Builds an equality law.
    pub fn equal(name: &'static str, lhs: &[&'static str], rhs: &[&'static str]) -> Self {
        Self {
            name,
            lhs: lhs.to_vec(),
            rhs: rhs.to_vec(),
            relation: Relation::Equal,
        }
    }

    /// Builds an `lhs <= rhs` law.
    pub fn at_most(name: &'static str, lhs: &[&'static str], rhs: &[&'static str]) -> Self {
        Self {
            name,
            lhs: lhs.to_vec(),
            rhs: rhs.to_vec(),
            relation: Relation::AtMost,
        }
    }

    fn side(diff: &SnapshotDiff, terms: &[&'static str]) -> u64 {
        terms
            .iter()
            .map(|t| match t.strip_suffix('*') {
                Some(prefix) => diff.counter_prefix_sum(prefix),
                None => diff.counter(t),
            })
            .sum()
    }

    /// Evaluates the law against a diff; `None` means it holds, otherwise a
    /// description of the violation with both sides' values.
    pub fn check(&self, diff: &SnapshotDiff) -> Option<String> {
        let lhs = Self::side(diff, &self.lhs);
        let rhs = Self::side(diff, &self.rhs);
        let ok = match self.relation {
            Relation::Equal => lhs == rhs,
            Relation::AtMost => lhs <= rhs,
            Relation::AtLeast => lhs >= rhs,
        };
        if ok {
            None
        } else {
            Some(format!(
                "law '{}' violated: {}={} {} {}={}",
                self.name,
                self.lhs.join("+"),
                lhs,
                self.relation,
                self.rhs.join("+"),
                rhs,
            ))
        }
    }
}

/// The conservation laws of the network front-end's request accounting
/// (`server.*` counters), checkable over any quiesced window of a
/// server's life (requests still in flight haven't been answered yet):
///
/// * every request is answered exactly once — by a response on the wire or
///   a `noreply` acknowledgement, never both, never neither;
/// * every key in a multi-key `get` is classified as a hit or a miss;
/// * parse rejections are themselves requests (a malformed line still gets
///   its error reply counted);
/// * a connection closes at most once per accept.
pub fn server_laws() -> Vec<ConservationLaw> {
    vec![
        ConservationLaw::equal(
            "every request is answered exactly once",
            &["server.requests"],
            &["server.responses", "server.noreply_acks"],
        ),
        ConservationLaw::equal(
            "every get key is a hit or a miss",
            &["server.get_keys"],
            &["server.get_hits", "server.get_misses"],
        ),
        ConservationLaw::at_most(
            "parse errors are answered requests",
            &["server.parse_errors"],
            &["server.requests"],
        ),
        ConservationLaw::at_most(
            "connections close at most once",
            &["server.conns_closed"],
            &["server.conns_accepted"],
        ),
        ConservationLaw::at_most(
            "sets and deletes are requests",
            &["server.sets", "server.deletes"],
            &["server.requests"],
        ),
    ]
}

/// Checks every law against the diff; `Err` lists each violated law with
/// both sides' values.
pub fn assert_conserved(diff: &SnapshotDiff, laws: &[ConservationLaw]) -> Result<(), String> {
    let violations: Vec<String> = laws.iter().filter_map(|l| l.check(diff)).collect();
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricRegistry;

    fn diff_after(f: impl Fn(&MetricRegistry)) -> SnapshotDiff {
        let m = MetricRegistry::new("t");
        let before = m.snapshot();
        f(&m);
        SnapshotDiff::between(&before, &m.snapshot())
    }

    #[test]
    fn diff_subtracts_and_defaults_to_zero() {
        let m = MetricRegistry::new("t");
        m.counter("a").add(5);
        let before = m.snapshot();
        m.counter("a").add(3);
        m.counter("b").add(7);
        let d = SnapshotDiff::between(&before, &m.snapshot());
        assert_eq!(d.counter("a"), 3);
        assert_eq!(d.counter("b"), 7);
        assert_eq!(d.counter("never"), 0);
    }

    #[test]
    fn prefix_sum_covers_error_breakdowns() {
        let d = diff_after(|m| {
            m.record_error("get", "timeout");
            m.record_error("get", "corrupted");
            m.record_error("put", "no_space");
        });
        assert_eq!(d.counter_prefix_sum("errors.get."), 2);
        assert_eq!(d.counter_prefix_sum("errors."), 3);
    }

    #[test]
    fn equality_law_holds_and_fails() {
        let d = diff_after(|m| {
            m.counter("hits").add(4);
            m.counter("misses").add(6);
            m.counter("page_reads").add(10);
        });
        let law = ConservationLaw::equal("balance", &["hits", "misses"], &["page_reads"]);
        assert!(law.check(&d).is_none());

        let skewed = diff_after(|m| {
            m.counter("hits").add(4);
            m.counter("page_reads").add(10);
        });
        let msg = law.check(&skewed).expect("violated");
        assert!(msg.contains("hits+misses=4"), "{msg}");
        assert!(msg.contains("page_reads=10"), "{msg}");
    }

    #[test]
    fn at_most_law_and_wildcards() {
        let d = diff_after(|m| {
            m.counter("remote_requests").add(3);
            m.counter("misses").add(5);
            m.counter("evictions.capacity").add(2);
            m.counter("evictions.quota").add(1);
            m.counter("puts").add(4);
        });
        let laws = [
            ConservationLaw::at_most("single-flight", &["remote_requests"], &["misses"]),
            ConservationLaw::at_most("no phantom evictions", &["evictions.*"], &["puts"]),
        ];
        assert!(assert_conserved(&d, &laws).is_ok());

        let bad = diff_after(|m| {
            m.counter("remote_requests").add(9);
            m.counter("misses").add(5);
        });
        let err = assert_conserved(&bad, &laws[..1]).unwrap_err();
        assert!(err.contains("single-flight"), "{err}");
    }

    #[test]
    fn multiple_violations_are_all_reported() {
        let d = diff_after(|m| {
            m.counter("a").add(1);
        });
        let laws = [
            ConservationLaw::equal("first", &["a"], &["b"]),
            ConservationLaw::equal("second", &["a"], &["c"]),
        ];
        let err = assert_conserved(&d, &laws).unwrap_err();
        assert!(err.contains("first") && err.contains("second"), "{err}");
    }
}
