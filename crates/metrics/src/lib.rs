//! Metrics for the `edgecache` workspace.
//!
//! The paper stresses that "an aggregated metrics system is crucial for cache
//! tuning and debugging" (§7): thousands of local cache deployments need their
//! counters rolled up to a cluster-level view, and *error breakdowns* (error
//! counts per operation and per concrete error type) were called out as the
//! single most useful debugging signal.
//!
//! This crate provides:
//!
//! * [`Counter`] and [`Gauge`] — lock-free scalar metrics.
//! * [`Histogram`] — a log-bucketed histogram with percentile estimation and
//!   lossless merging, used for latency distributions (P50/P90/P95 figures).
//! * [`MetricRegistry`] — a named collection of metrics with error-breakdown
//!   recording, snapshots, and JSON export.
//! * [`ClusterAggregator`] — merges snapshots from many nodes into one
//!   cluster-level view (the paper's "aggregated metrics system").
//! * [`conservation`] — snapshot-diff conservation laws
//!   ([`assert_conserved`]), the invariant-oracle vocabulary of the
//!   simulation harness.
//! * [`trace`] — hierarchical spans with per-stage latency attribution:
//!   clock-driven (deterministic under `SimClock`), near-zero cost when
//!   disabled, exporting per-stage histograms, a slow-op log, and Chrome
//!   trace-event JSON.

pub mod aggregate;
pub mod conservation;
pub mod histogram;
pub mod registry;
pub mod scalar;
pub mod trace;

pub use aggregate::ClusterAggregator;
pub use conservation::{assert_conserved, server_laws, ConservationLaw, Relation, SnapshotDiff};
pub use histogram::{Histogram, HistogramSnapshot, Percentiles};
pub use registry::{MetricRegistry, RegistrySnapshot};
pub use scalar::{Counter, Gauge};
pub use trace::{Span, SpanId, SpanRecord, StageSummary, Tracer};
