//! The coordinator/engine: planning, soft-affinity scheduling, distributed
//! execution, and per-query stats.
//!
//! Queries run functionally for real; *time* is simulated. Each worker
//! executes its splits sequentially on its own virtual timeline; the query's
//! wall time is the slowest worker's timeline (the critical path) plus a
//! coordinator overhead, matching how a Presto stage completes when its last
//! task does.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use edgecache_columnar::Value;
use edgecache_common::clock::SharedClock;
use edgecache_common::error::{Error, Result};
use edgecache_core::manager::RemoteSource;
use edgecache_metrics::Tracer;

use crate::catalog::{Catalog, DataFile};
use crate::plan::{JoinClause, QueryPlan};
use crate::resultcache::{
    split_key, CanonicalQuery, Fingerprint, ResultCache, ResultCacheConfig, PROBE_NANOS_PER_SPLIT,
};
use crate::scheduler::{SchedulerConfig, SoftAffinityScheduler};
use crate::stats::{QueryStatsCollector, RuntimeStats};
use crate::worker::{PartialAgg, PreparedJoin, Worker, WorkerConfig};

/// Engine-level configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker nodes.
    pub workers: usize,
    pub scheduler: SchedulerConfig,
    pub worker: WorkerConfig,
    /// Fixed coordinator overhead added to every query (plan + dispatch).
    pub coordinator_overhead: Duration,
    /// Query-fragment result cache (disabled by default).
    pub result_cache: ResultCacheConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            scheduler: SchedulerConfig::default(),
            worker: WorkerConfig::default(),
            coordinator_overhead: Duration::from_millis(20),
            result_cache: ResultCacheConfig::default(),
        }
    }
}

/// A query result: rows plus runtime statistics.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub rows: Vec<Vec<Value>>,
    pub stats: RuntimeStats,
}

/// The engine: catalog + coordinator + workers.
pub struct Engine {
    catalog: Arc<Catalog>,
    workers: Arc<HashMap<String, Worker>>,
    scheduler: SoftAffinityScheduler,
    remote: Arc<dyn RemoteSource + Send + Sync>,
    collector: QueryStatsCollector,
    config: EngineConfig,
    /// Shared with every worker (via `config.worker.tracer`): queries get an
    /// `olap.query` root span with one `olap.split` child per split.
    tracer: Tracer,
    /// The query-fragment result cache, when enabled.
    result_cache: Option<Arc<ResultCache>>,
    next_query: AtomicU64,
}

impl Engine {
    /// Builds an engine over `remote` storage. Registers a stale-file
    /// listener on the catalog, so file rewrites, partition replacement,
    /// and drops invalidate the workers' footer metadata caches and the
    /// result cache through one shared path.
    pub fn new(
        catalog: Arc<Catalog>,
        remote: Arc<dyn RemoteSource + Send + Sync>,
        config: EngineConfig,
        clock: SharedClock,
    ) -> Result<Self> {
        if config.workers == 0 {
            return Err(Error::InvalidArgument(
                "engine needs at least one worker".into(),
            ));
        }
        let names: Vec<String> = (0..config.workers).map(|i| format!("worker-{i}")).collect();
        let mut workers = HashMap::new();
        for name in &names {
            workers.insert(
                name.clone(),
                Worker::new(name, config.worker.clone(), clock.clone())?,
            );
        }
        let workers = Arc::new(workers);
        let scheduler = SoftAffinityScheduler::new(&names, config.scheduler.clone(), clock);
        let result_cache = config
            .result_cache
            .enabled
            .then(|| Arc::new(ResultCache::new(config.result_cache.capacity)));
        {
            // The shared invalidation path: any stale `path@version` —
            // whether from catalog DDL or a namenode generation bump
            // forwarded into `Catalog::notify_stale` — purges the footer
            // caches (exact key) and the result cache (whole path;
            // over-invalidation is safe).
            let workers = Arc::clone(&workers);
            let rc = result_cache.clone();
            catalog.on_stale_file(Arc::new(move |file: &DataFile| {
                let key = format!("{}@{}", file.path, file.version);
                for worker in workers.values() {
                    worker.metadata_cache().invalidate(&key);
                }
                if let Some(rc) = &rc {
                    rc.invalidate_path(&file.path);
                }
            }));
        }
        Ok(Self {
            catalog,
            workers,
            scheduler,
            remote,
            collector: QueryStatsCollector::new(),
            tracer: config.worker.tracer.clone(),
            config,
            result_cache,
            next_query: AtomicU64::new(1),
        })
    }

    /// The result cache, when enabled.
    pub fn result_cache(&self) -> Option<&Arc<ResultCache>> {
        self.result_cache.as_ref()
    }

    /// The catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The scheduler (for node lifecycle in tests/experiments).
    pub fn scheduler(&self) -> &SoftAffinityScheduler {
        &self.scheduler
    }

    /// The per-table stats collector (§6.1.3).
    pub fn stats_collector(&self) -> &QueryStatsCollector {
        &self.collector
    }

    /// A worker by name.
    pub fn worker(&self, name: &str) -> Option<&Worker> {
        self.workers.get(name)
    }

    /// All worker names.
    pub fn worker_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.workers.keys().cloned().collect();
        names.sort();
        names
    }

    /// Drops a partition everywhere: catalog, and each worker's cached pages
    /// for that partition scope (the §4.4 bulk-delete flow).
    pub fn drop_partition(&self, schema: &str, table: &str, partition: &str) -> Result<usize> {
        self.catalog.drop_partition(schema, table, partition)?;
        let scope = edgecache_pagestore::CacheScope::partition(schema, table, partition);
        let mut removed = 0;
        for worker in self.workers.values() {
            if let Some(cache) = worker.cache() {
                removed += cache.delete_scope(&scope);
            }
        }
        Ok(removed)
    }

    /// Builds the broadcast hash table for one join clause by scanning the
    /// dimension table as an internal (join-free) query — so the build side
    /// also flows through the workers' local caches, just like Presto's
    /// broadcast exchange reads.
    fn prepare_join(&self, clause: &JoinClause) -> Result<(PreparedJoin, RuntimeStats)> {
        let mut projection: Vec<&str> = vec![clause.dim_key.as_str()];
        projection.extend(
            clause
                .dim_columns
                .iter()
                .filter(|c| **c != clause.dim_key)
                .map(String::as_str),
        );
        let mut dim_plan = QueryPlan::scan(&clause.dim_schema, &clause.dim_table, &projection);
        if let Some(f) = &clause.dim_filter {
            dim_plan = dim_plan.filter(f.clone());
        }
        let result = self.execute(&dim_plan)?;
        let mut map = HashMap::with_capacity(result.rows.len());
        for row in result.rows {
            let key = match &row[0] {
                Value::Int64(k) => *k,
                other => {
                    return Err(Error::InvalidArgument(format!(
                        "join key `{}` must be int64, got {}",
                        clause.dim_key,
                        other.column_type()
                    )))
                }
            };
            let mut values: Vec<(String, Value)> = Vec::with_capacity(clause.dim_columns.len());
            for name in &clause.dim_columns {
                let value = if name == &clause.dim_key {
                    row[0].clone()
                } else {
                    let idx = 1 + clause
                        .dim_columns
                        .iter()
                        .filter(|c| **c != clause.dim_key)
                        .position(|c| c == name)
                        .expect("projected above");
                    row[idx].clone()
                };
                values.push((name.clone(), value));
            }
            // Duplicate dimension keys keep the last row (dimension tables
            // are keyed; duplicates indicate generator noise).
            map.insert(key, Arc::new(values));
        }
        Ok((
            PreparedJoin {
                fact_key: clause.fact_key.clone(),
                map: Arc::new(map),
            },
            result.stats,
        ))
    }

    /// Executes a query.
    pub fn execute(&self, plan: &QueryPlan) -> Result<QueryResult> {
        let query_id = self.next_query.fetch_add(1, Ordering::Relaxed);
        let mut query_span = self.tracer.span("olap.query");
        query_span.annotate("query", query_id);
        query_span.annotate("table", format!("{}.{}", plan.schema, plan.table));
        let table = self.catalog.table(&plan.schema, &plan.table)?;

        // Enumerate splits first — one per data file of the selected
        // partitions. The result cache may cover some (or all) of them, and
        // a fully covered query skips the join build sides too.
        let mut splits: Vec<(String, DataFile)> = Vec::new();
        for partition in &table.partitions {
            if !plan.partitions.is_empty() && !plan.partitions.contains(&partition.name) {
                continue;
            }
            for file in &partition.files {
                splits.push((partition.name.clone(), file.clone()));
            }
        }

        let mut stats = RuntimeStats {
            query_id,
            table: format!("{}.{}", plan.schema, plan.table),
            splits: splits.len(),
            ..Default::default()
        };

        // Result-cache probe: canonicalize, fingerprint (salted with the
        // join build sides' current `path@version` sets), and look up every
        // split. Covered splits bypass the scheduler entirely.
        let canonical = self
            .result_cache
            .as_ref()
            .and_then(|_| CanonicalQuery::of(plan));
        let fingerprint: Option<Fingerprint> = canonical
            .as_ref()
            .and_then(|c| c.fingerprint(&self.catalog).ok());
        let mut cached: Vec<Option<Arc<PartialAgg>>> = vec![None; splits.len()];
        let mut probe_cost = Duration::ZERO;
        if let (Some(rc), Some(fp)) = (self.result_cache.as_deref(), &fingerprint) {
            let probe_start = self.tracer.now_nanos();
            for (slot, (_, file)) in cached.iter_mut().zip(&splits) {
                if let Some(partial) = rc.probe(fp, &split_key(file)) {
                    stats.scan_bytes_saved += file.length;
                    stats.splits_skipped += 1;
                    *slot = Some(partial);
                }
            }
            probe_cost = Duration::from_nanos(splits.len() as u64 * PROBE_NANOS_PER_SPLIT);
            *stats
                .stage_breakdown
                .entry("olap.resultcache_probe")
                .or_default() += probe_cost;
            if let Some(start) = probe_start {
                self.tracer.record_interval(
                    query_span.id(),
                    "olap.resultcache_probe",
                    start,
                    start + probe_cost.as_nanos() as u64,
                    vec![
                        ("hits", stats.splits_skipped.to_string()),
                        ("misses", (splits.len() - stats.splits_skipped).to_string()),
                        ("fingerprint", format!("{:016x}", fp.hash64())),
                    ],
                );
            }
        }
        let uncovered: Vec<(usize, String, DataFile)> = splits
            .iter()
            .enumerate()
            .filter(|(i, _)| cached[*i].is_none())
            .map(|(i, (partition, file))| (i, partition.clone(), file.clone()))
            .collect();

        // Broadcast-join build sides; their scan costs are part of this
        // query's time and traffic. A fully covered query never builds
        // them — the cached partials already reflect the joins, and the
        // fingerprint's dimension-file salt guarantees they are current.
        let mut joins = Vec::with_capacity(plan.joins.len());
        let mut build_stats: Vec<RuntimeStats> = Vec::new();
        if !uncovered.is_empty() {
            for clause in &plan.joins {
                let (prepared, b) = self.prepare_join(clause)?;
                joins.push(prepared);
                build_stats.push(b);
            }
        }

        // Schedule the uncovered splits (soft affinity), then execute per
        // worker; each split's partial lands back in its enumeration slot.
        let mut assigned: BTreeMap<String, Vec<(usize, String, DataFile, bool)>> = BTreeMap::new();
        let mut assignments = Vec::with_capacity(uncovered.len());
        for (slot, partition, file) in uncovered {
            let a = self.scheduler.assign(&file.path)?;
            assigned.entry(a.worker.clone()).or_default().push((
                slot,
                partition,
                file,
                a.use_cache,
            ));
            assignments.push(a);
        }
        stats.splits_scheduled = assignments.len();

        // Paths each inserted entry depends on besides its own file: the
        // join build sides' files (a dimension rewrite must purge it).
        let dim_paths: Vec<String> = match (&fingerprint, &canonical) {
            (Some(_), Some(c)) => c.dim_paths(&self.catalog).unwrap_or_default(),
            _ => Vec::new(),
        };

        let mut fresh: Vec<Option<PartialAgg>> = (0..splits.len()).map(|_| None).collect();
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut critical_path = Duration::ZERO;
        let mut critical_input = Duration::ZERO;
        let mut critical_cpu = Duration::ZERO;

        // The scheduler's pending counts must drop on *every* exit path: an
        // early `?` here used to leak one pending slot per assigned split,
        // marking workers busy forever after a failed query.
        let exec_result = (|| -> Result<()> {
            for (worker_name, worker_splits) in &assigned {
                let worker = self
                    .workers
                    .get(worker_name)
                    .ok_or_else(|| Error::Other(format!("unknown worker {worker_name}")))?;
                let mut worker_time = Duration::ZERO;
                let mut worker_input = Duration::ZERO;
                let mut worker_cpu = Duration::ZERO;
                for (slot, partition, file, use_cache) in worker_splits {
                    let scope = table.partition_scope(partition);
                    let out = worker.execute_split_traced(
                        file,
                        &scope,
                        plan,
                        &joins,
                        self.remote.as_ref(),
                        *use_cache,
                        query_span.id(),
                    )?;
                    worker_time += out.io_time + out.cpu_time;
                    worker_input += out.io_time;
                    worker_cpu += out.cpu_time;
                    stats.rows_scanned += out.rows_scanned;
                    stats.bytes_from_cache += out.bytes_from_cache;
                    stats.bytes_from_remote += out.bytes_from_remote;
                    stats.cache_hits += out.cache_hits;
                    stats.cache_misses += out.cache_misses;
                    stats.merge_stage_breakdown(&out.stage_breakdown);
                    match out.partial {
                        Some(p) => {
                            // Populate the result cache as splits complete
                            // (canonical aggregate order) — even on the
                            // scheduler's cache-bypass path: bypass is a
                            // load-shedding decision, not staleness.
                            if let (Some(rc), Some(fp), Some(cq)) =
                                (self.result_cache.as_deref(), &fingerprint, &canonical)
                            {
                                let mut paths = Vec::with_capacity(1 + dim_paths.len());
                                paths.push(file.path.clone());
                                paths.extend(dim_paths.iter().cloned());
                                rc.insert(fp, &split_key(file), paths, cq.to_canonical(&p));
                            }
                            fresh[*slot] = Some(p);
                        }
                        None => rows.extend(out.rows),
                    }
                }
                if worker_time > critical_path {
                    critical_path = worker_time;
                    critical_input = worker_input;
                    critical_cpu = worker_cpu;
                }
            }
            Ok(())
        })();

        for a in &assignments {
            self.scheduler.complete(&a.worker);
        }
        exec_result?;

        // Merge per-split partials in *split enumeration order* — not
        // worker order — so the float accumulation order is identical no
        // matter which splits came from the cache: cached ≡ recomputed,
        // bit for bit.
        let mut merged_partial: Option<PartialAgg> = None;
        for (slot, computed) in fresh.into_iter().enumerate() {
            let partial = match computed {
                Some(p) => Some(p),
                None => cached[slot].take().map(|arc| {
                    let cq = canonical.as_ref().expect("cached implies canonical");
                    if cq.identity_order() {
                        (*arc).clone()
                    } else {
                        cq.to_plan(&arc)
                    }
                }),
            };
            if let Some(p) = partial {
                match &mut merged_partial {
                    Some(m) => m.merge(&p),
                    None => merged_partial = Some(p),
                }
            }
        }

        if let Some(partial) = merged_partial {
            rows = partial.finalize();
        }
        if let Some(limit) = plan.limit {
            rows.truncate(limit);
        }

        stats.rows_output = rows.len() as u64;
        stats.input_wall = critical_input;
        stats.cpu_time = critical_cpu;
        stats.wall_time = critical_path + probe_cost + self.config.coordinator_overhead;
        stats.cpu_time += probe_cost;
        // Join build sides happen before the probe stage: serial prefix.
        for b in &build_stats {
            stats.wall_time += b.wall_time;
            stats.input_wall += b.input_wall;
            stats.cpu_time += b.cpu_time;
            stats.rows_scanned += b.rows_scanned;
            stats.bytes_from_cache += b.bytes_from_cache;
            stats.bytes_from_remote += b.bytes_from_remote;
            stats.cache_hits += b.cache_hits;
            stats.cache_misses += b.cache_misses;
            stats.splits_skipped += b.splits_skipped;
            stats.splits_scheduled += b.splits_scheduled;
            stats.scan_bytes_saved += b.scan_bytes_saved;
            stats.merge_stage_breakdown(&b.stage_breakdown);
        }
        if query_span.is_recording() {
            query_span.annotate("splits", stats.splits);
            query_span.annotate("splits_skipped", stats.splits_skipped);
            query_span.annotate("rows_output", stats.rows_output);
            query_span.annotate("wall_us", stats.wall_time.as_micros());
        }
        self.collector.record(&stats);
        Ok(QueryResult { rows, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{PartitionDef, TableDef};
    use crate::plan::AggExpr;
    use edgecache_columnar::{ColfWriter, ColumnType, Predicate, Schema};
    use edgecache_common::clock::SimClock;
    use edgecache_common::ByteSize;
    use edgecache_storage::ObjectStore;

    /// Builds a two-partition table in an object store and the catalog.
    fn setup() -> (Arc<Catalog>, Arc<ObjectStore>, SimClock) {
        let clock = SimClock::new();
        let store = Arc::new(ObjectStore::new(Arc::new(clock.clone())));
        let catalog = Arc::new(Catalog::new());
        let schema = Schema::new(vec![
            ("id", ColumnType::Int64),
            ("region", ColumnType::Utf8),
            ("amount", ColumnType::Float64),
        ]);
        let mut partitions = Vec::new();
        for (p, base) in [("2024-01-01", 0i64), ("2024-01-02", 1000)] {
            let mut files = Vec::new();
            for f in 0..2 {
                let mut w = ColfWriter::new(schema.clone(), 20);
                for i in 0..50i64 {
                    let id = base + f * 50 + i;
                    w.push_row(vec![
                        Value::Int64(id),
                        Value::Utf8(format!("r{}", id % 3)),
                        Value::Float64(id as f64),
                    ])
                    .unwrap();
                }
                let bytes = w.finish().unwrap();
                let path = format!("/wh/sales/{p}/part-{f}.colf");
                store.put_object(&path, bytes.clone());
                files.push(DataFile {
                    path,
                    version: 1,
                    length: bytes.len() as u64,
                });
            }
            partitions.push(PartitionDef {
                name: p.to_string(),
                files,
            });
        }
        catalog.register(TableDef {
            schema_name: "sales".into(),
            table_name: "orders".into(),
            columns: schema,
            partitions,
        });
        (catalog, store, clock)
    }

    fn engine(catalog: Arc<Catalog>, store: Arc<ObjectStore>, clock: &SimClock) -> Engine {
        Engine::new(
            catalog,
            store,
            EngineConfig {
                workers: 3,
                worker: WorkerConfig {
                    page_size: ByteSize::kib(1),
                    ..Default::default()
                },
                ..Default::default()
            },
            Arc::new(clock.clone()),
        )
        .unwrap()
    }

    #[test]
    fn count_star_counts_everything() {
        let (catalog, store, clock) = setup();
        let e = engine(catalog, store, &clock);
        let q = QueryPlan::scan("sales", "orders", &[]).aggregate(vec![AggExpr::count()]);
        let r = e.execute(&q).unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int64(200)]]);
        assert_eq!(r.stats.splits, 4);
        assert_eq!(r.stats.rows_scanned, 200);
        assert!(r.stats.wall_time > Duration::ZERO);
    }

    #[test]
    fn filtered_projection() {
        let (catalog, store, clock) = setup();
        let e = engine(catalog, store, &clock);
        let q = QueryPlan::scan("sales", "orders", &["id"]).filter(Predicate::Between(
            "id".into(),
            Value::Int64(95),
            Value::Int64(104),
        ));
        let mut r = e.execute(&q).unwrap();
        r.rows.sort_by_key(|row| match row[0] {
            Value::Int64(v) => v,
            _ => 0,
        });
        let ids: Vec<i64> = r
            .rows
            .iter()
            .map(|row| match row[0] {
                Value::Int64(v) => v,
                _ => panic!(),
            })
            .collect();
        // ids 95..=99 exist in partition 1; 1000..=1004 don't fall in range.
        assert_eq!(ids, vec![95, 96, 97, 98, 99]);
    }

    #[test]
    fn partition_pruning_reduces_scanned_rows() {
        let (catalog, store, clock) = setup();
        let e = engine(catalog, store, &clock);
        let all = QueryPlan::scan("sales", "orders", &[]).aggregate(vec![AggExpr::count()]);
        let one = all.clone().in_partitions(&["2024-01-02"]);
        assert_eq!(e.execute(&all).unwrap().stats.rows_scanned, 200);
        let r = e.execute(&one).unwrap();
        assert_eq!(r.stats.rows_scanned, 100);
        assert_eq!(r.rows, vec![vec![Value::Int64(100)]]);
    }

    #[test]
    fn group_by_aggregation() {
        let (catalog, store, clock) = setup();
        let e = engine(catalog, store, &clock);
        let q = QueryPlan::scan("sales", "orders", &[])
            .aggregate(vec![AggExpr::count(), AggExpr::sum("amount")])
            .group("region");
        let r = e.execute(&q).unwrap();
        assert_eq!(r.rows.len(), 3);
        let total: i64 = r
            .rows
            .iter()
            .map(|row| match row[1] {
                Value::Int64(v) => v,
                _ => panic!(),
            })
            .sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn warm_cache_speeds_up_second_run() {
        let (catalog, store, clock) = setup();
        let e = engine(catalog, store, &clock);
        let q = QueryPlan::scan("sales", "orders", &["id", "amount"])
            .aggregate(vec![AggExpr::sum("amount")]);
        let cold = e.execute(&q).unwrap();
        let warm = e.execute(&q).unwrap();
        assert_eq!(cold.rows, warm.rows, "results identical warm vs cold");
        assert!(warm.stats.bytes_from_remote < cold.stats.bytes_from_remote);
        assert!(warm.stats.wall_time < cold.stats.wall_time);
        assert!(warm.stats.input_wall < cold.stats.input_wall);
    }

    #[test]
    fn affinity_routes_same_file_to_same_worker() {
        let (catalog, store, clock) = setup();
        let e = engine(catalog, store, &clock);
        let q = QueryPlan::scan("sales", "orders", &[]).aggregate(vec![AggExpr::count()]);
        e.execute(&q).unwrap();
        e.execute(&q).unwrap();
        // Each file was read twice; with stable affinity each worker's cache
        // gets a hit on the second pass, so cluster-wide remote bytes stop
        // growing.
        let r3 = e.execute(&q).unwrap();
        assert_eq!(r3.stats.bytes_from_remote, 0, "fully warm after two passes");
    }

    #[test]
    fn drop_partition_purges_caches() {
        let (catalog, store, clock) = setup();
        let e = engine(catalog, store, &clock);
        let q = QueryPlan::scan("sales", "orders", &[]).aggregate(vec![AggExpr::count()]);
        e.execute(&q).unwrap();
        let removed = e.drop_partition("sales", "orders", "2024-01-01").unwrap();
        assert!(removed > 0, "cached pages of the partition were deleted");
        let r = e.execute(&q).unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int64(100)]]);
    }

    #[test]
    fn stats_collector_aggregates_per_table() {
        let (catalog, store, clock) = setup();
        let e = engine(catalog, store, &clock);
        let q = QueryPlan::scan("sales", "orders", &[]).aggregate(vec![AggExpr::sum("amount")]);
        for _ in 0..5 {
            e.execute(&q).unwrap();
        }
        let insights = e.stats_collector().table_insights("sales.orders").unwrap();
        assert_eq!(insights.queries, 5);
        assert!(insights.hit_rate.unwrap() > 0.5, "later queries hit");
    }

    #[test]
    fn limit_truncates() {
        let (catalog, store, clock) = setup();
        let e = engine(catalog, store, &clock);
        let q = QueryPlan::scan("sales", "orders", &["id"]).take(7);
        let r = e.execute(&q).unwrap();
        assert_eq!(r.rows.len(), 7);
        assert_eq!(r.stats.rows_output, 7);
    }

    #[test]
    fn unknown_table_fails() {
        let (catalog, store, clock) = setup();
        let e = engine(catalog, store, &clock);
        assert!(e.execute(&QueryPlan::scan("x", "y", &[])).is_err());
    }

    #[test]
    fn join_with_dimension_table() {
        let (catalog, store, clock) = setup();
        // A dimension keyed by region id (r0, r1, r2 → ids 0, 1, 2).
        let dim_schema = Schema::new(vec![
            ("r_id", ColumnType::Int64),
            ("r_name", ColumnType::Utf8),
            ("r_tier", ColumnType::Int64),
        ]);
        let mut w = ColfWriter::new(dim_schema.clone(), 10);
        for i in 0..3i64 {
            w.push_row(vec![
                Value::Int64(i),
                Value::Utf8(format!("region-{i}")),
                Value::Int64(i % 2),
            ])
            .unwrap();
        }
        let bytes = w.finish().unwrap();
        store.put_object("/dims/region", bytes.clone());
        catalog.register(crate::catalog::TableDef {
            schema_name: "sales".into(),
            table_name: "region".into(),
            columns: dim_schema,
            partitions: vec![crate::catalog::PartitionDef {
                name: "all".into(),
                files: vec![DataFile {
                    path: "/dims/region".into(),
                    version: 1,
                    length: bytes.len() as u64,
                }],
            }],
        });
        let e = engine(catalog, store, &clock);

        // Fact rows have region = "r{id % 3}" as a string; derive the join
        // key from the numeric id instead: id % 3 == region id. The fact
        // table has no numeric region key, so join on a synthetic check:
        // use `id` joined against nothing would be meaningless — instead
        // group by the joined dimension name via key = id % 3 is not
        // expressible, so join fact.id → dim.r_id for ids 0..=2 only.
        let q = QueryPlan::scan("sales", "orders", &["id"])
            .join("sales", "region", "id", "r_id", &["r_name", "r_tier"], None)
            .aggregate(vec![AggExpr::count()])
            .group("r_name");
        let r = e.execute(&q).unwrap();
        // Inner join keeps only fact ids 0, 1, 2 (one row each).
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            assert_eq!(row[1], Value::Int64(1));
        }
        // Join stats include the build-side scan.
        assert!(r.stats.rows_scanned >= 203, "{}", r.stats.rows_scanned);
    }

    #[test]
    fn join_with_dim_filter_drops_unmatched() {
        let (catalog, store, clock) = setup();
        let dim_schema = Schema::new(vec![
            ("r_id", ColumnType::Int64),
            ("r_tier", ColumnType::Int64),
        ]);
        let mut w = ColfWriter::new(dim_schema.clone(), 10);
        for i in 0..200i64 {
            w.push_row(vec![Value::Int64(i), Value::Int64(i % 2)])
                .unwrap();
        }
        let bytes = w.finish().unwrap();
        store.put_object("/dims/r", bytes.clone());
        catalog.register(crate::catalog::TableDef {
            schema_name: "sales".into(),
            table_name: "r".into(),
            columns: dim_schema,
            partitions: vec![crate::catalog::PartitionDef {
                name: "all".into(),
                files: vec![DataFile {
                    path: "/dims/r".into(),
                    version: 1,
                    length: bytes.len() as u64,
                }],
            }],
        });
        let e = engine(catalog, store, &clock);
        // Fact ids 0..100 (partition 1); dim filter keeps even tiers only
        // → half the fact rows survive the inner join.
        let q = QueryPlan::scan("sales", "orders", &[])
            .in_partitions(&["2024-01-01"])
            .join(
                "sales",
                "r",
                "id",
                "r_id",
                &["r_tier"],
                Some(Predicate::Eq("r_tier".into(), Value::Int64(0))),
            )
            .aggregate(vec![AggExpr::count()]);
        let r = e.execute(&q).unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int64(50)]]);
        // Predicates over joined columns evaluate post-join too.
        let q2 = QueryPlan::scan("sales", "orders", &[])
            .in_partitions(&["2024-01-01"])
            .join("sales", "r", "id", "r_id", &["r_tier"], None)
            .filter(Predicate::Eq("r_tier".into(), Value::Int64(1)))
            .aggregate(vec![AggExpr::count()]);
        let r2 = e.execute(&q2).unwrap();
        assert_eq!(r2.rows, vec![vec![Value::Int64(50)]]);
    }

    #[test]
    fn warm_join_queries_match_cold_and_speed_up() {
        let (catalog, store, clock) = setup();
        let dim_schema = Schema::new(vec![
            ("r_id", ColumnType::Int64),
            ("r_name", ColumnType::Utf8),
        ]);
        let mut w = ColfWriter::new(dim_schema.clone(), 50);
        for i in 0..2000i64 {
            w.push_row(vec![Value::Int64(i), Value::Utf8(format!("n{}", i % 7))])
                .unwrap();
        }
        let bytes = w.finish().unwrap();
        store.put_object("/dims/big", bytes.clone());
        catalog.register(crate::catalog::TableDef {
            schema_name: "sales".into(),
            table_name: "big".into(),
            columns: dim_schema,
            partitions: vec![crate::catalog::PartitionDef {
                name: "all".into(),
                files: vec![DataFile {
                    path: "/dims/big".into(),
                    version: 1,
                    length: bytes.len() as u64,
                }],
            }],
        });
        let e = engine(catalog, store, &clock);
        let q = QueryPlan::scan("sales", "orders", &[])
            .join("sales", "big", "id", "r_id", &["r_name"], None)
            .aggregate(vec![AggExpr::count(), AggExpr::sum("amount")])
            .group("r_name");
        let cold = e.execute(&q).unwrap();
        let warm = e.execute(&q).unwrap();
        assert_eq!(cold.rows, warm.rows);
        assert!(warm.stats.wall_time < cold.stats.wall_time);
        assert!(warm.stats.bytes_from_remote < cold.stats.bytes_from_remote);
    }

    #[test]
    fn failed_query_releases_scheduler_slots() {
        let (catalog, store, clock) = setup();
        let e = engine(catalog, store, &clock);
        // The column is unknown, so every split fails *after* scheduling:
        // the early return must still release the pending assignments.
        let bad = QueryPlan::scan("sales", "orders", &["no_such_column"]);
        assert!(e.execute(&bad).is_err());
        for w in e.worker_names() {
            assert_eq!(e.scheduler().pending_of(&w), 0, "leaked pending on {w}");
        }
        // The workers are not stuck "busy": a healthy query still runs and
        // lands on its affinity nodes.
        let q = QueryPlan::scan("sales", "orders", &[]).aggregate(vec![AggExpr::count()]);
        assert_eq!(e.execute(&q).unwrap().rows, vec![vec![Value::Int64(200)]]);
        for w in e.worker_names() {
            assert_eq!(e.scheduler().pending_of(&w), 0);
        }
    }

    #[test]
    fn traced_query_attributes_stages() {
        use edgecache_metrics::Tracer;
        let (catalog, store, clock) = setup();
        let shared: crate::worker::WorkerConfig = WorkerConfig {
            page_size: ByteSize::kib(1),
            tracer: Tracer::enabled(Arc::new(clock.clone())),
            ..Default::default()
        };
        let tracer = shared.tracer.clone();
        let e = Engine::new(
            catalog,
            store,
            EngineConfig {
                workers: 3,
                worker: shared,
                ..Default::default()
            },
            Arc::new(clock.clone()),
        )
        .unwrap();
        let q = QueryPlan::scan("sales", "orders", &["id", "amount"])
            .aggregate(vec![AggExpr::sum("amount")]);
        let r = e.execute(&q).unwrap();
        // The stats carry a per-stage breakdown covering IO and CPU.
        assert!(r.stats.stage_breakdown.contains_key("io.remote_read"));
        assert!(r.stats.stage_breakdown.contains_key("cpu.decode"));
        let io: Duration = r
            .stats
            .stage_breakdown
            .iter()
            .filter(|(s, _)| s.starts_with("io."))
            .map(|(_, d)| *d)
            .sum();
        // The breakdown sums over all workers' splits; input_wall is the
        // critical path only, so IO attribution can only be larger.
        assert!(
            io >= r.stats.input_wall,
            "{io:?} < {:?}",
            r.stats.input_wall
        );
        // Span tree: olap.query → olap.split → operator stages, and the
        // cache's own read-path spans ride the same tracer.
        let records = tracer.take_records();
        let names: Vec<&str> = records.iter().map(|r| r.name).collect();
        for expected in ["olap.query", "olap.split", "io.remote_read", "cache.read"] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn zero_workers_rejected() {
        let (catalog, store, clock) = setup();
        let r = Engine::new(
            catalog,
            store,
            EngineConfig {
                workers: 0,
                ..Default::default()
            },
            Arc::new(clock.clone()),
        );
        assert!(r.is_err());
    }

    /// An engine with the query-fragment result cache enabled.
    fn rc_engine(catalog: Arc<Catalog>, store: Arc<ObjectStore>, clock: &SimClock) -> Engine {
        Engine::new(
            catalog,
            store,
            EngineConfig {
                workers: 3,
                worker: WorkerConfig {
                    page_size: ByteSize::kib(1),
                    ..Default::default()
                },
                result_cache: crate::resultcache::ResultCacheConfig::enabled(ByteSize::mib(4)),
                ..Default::default()
            },
            Arc::new(clock.clone()),
        )
        .unwrap()
    }

    #[test]
    fn result_cache_warm_repeat_skips_every_split() {
        let (catalog, store, clock) = setup();
        let e = rc_engine(catalog, store, &clock);
        let q = QueryPlan::scan("sales", "orders", &[])
            .aggregate(vec![AggExpr::sum("amount"), AggExpr::count()])
            .group("region");
        let cold = e.execute(&q).unwrap();
        assert_eq!(cold.stats.splits, 4);
        assert_eq!(cold.stats.splits_skipped, 0);
        assert_eq!(cold.stats.splits_scheduled, 4);
        let warm = e.execute(&q).unwrap();
        assert_eq!(warm.rows, cold.rows, "cached answer is bit-identical");
        assert_eq!(warm.stats.splits_skipped, 4, "fully covered");
        assert_eq!(warm.stats.splits_scheduled, 0);
        assert_eq!(warm.stats.rows_scanned, 0, "no scan at all");
        assert_eq!(
            warm.stats.bytes_from_cache + warm.stats.bytes_from_remote,
            0
        );
        assert!(warm.stats.wall_time < cold.stats.wall_time);
        assert_eq!(
            warm.stats.scan_bytes_saved,
            e.catalog().table("sales", "orders").unwrap().total_bytes()
        );
        let counters = e.result_cache().unwrap().counters();
        assert_eq!(counters.hits, 4);
        assert_eq!(counters.misses, 4);
        assert_eq!(counters.inserts, 4);
    }

    #[test]
    fn result_cache_append_rescans_only_the_new_file() {
        let (catalog, store, clock) = setup();
        let e = rc_engine(Arc::clone(&catalog), Arc::clone(&store), &clock);
        let q = QueryPlan::scan("sales", "orders", &[]).aggregate(vec![AggExpr::count()]);
        assert_eq!(e.execute(&q).unwrap().rows, vec![vec![Value::Int64(200)]]);

        // Append a fifth file (30 rows) to the first partition.
        let schema = catalog.table("sales", "orders").unwrap().columns;
        let mut w = ColfWriter::new(schema, 20);
        for i in 0..30i64 {
            w.push_row(vec![
                Value::Int64(5000 + i),
                Value::Utf8(format!("r{}", i % 3)),
                Value::Float64(i as f64),
            ])
            .unwrap();
        }
        let bytes = w.finish().unwrap();
        store.put_object("/wh/sales/2024-01-01/part-2.colf", bytes.clone());
        let mut part = catalog
            .table("sales", "orders")
            .unwrap()
            .partitions
            .into_iter()
            .find(|p| p.name == "2024-01-01")
            .unwrap();
        part.files.push(DataFile {
            path: "/wh/sales/2024-01-01/part-2.colf".into(),
            version: 1,
            length: bytes.len() as u64,
        });
        catalog.add_partition("sales", "orders", part).unwrap();

        let r = e.execute(&q).unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int64(230)]]);
        assert_eq!(r.stats.splits, 5);
        assert_eq!(r.stats.splits_skipped, 4, "old files stay covered");
        assert_eq!(r.stats.splits_scheduled, 1, "only the new file scans");
    }

    #[test]
    fn result_cache_rewrite_invalidates_only_that_file() {
        let (catalog, store, clock) = setup();
        let e = rc_engine(Arc::clone(&catalog), Arc::clone(&store), &clock);
        let q = QueryPlan::scan("sales", "orders", &[]).aggregate(vec![AggExpr::count()]);
        e.execute(&q).unwrap();

        // Rewrite one file with fewer rows under a bumped version.
        let schema = catalog.table("sales", "orders").unwrap().columns;
        let mut w = ColfWriter::new(schema, 20);
        for i in 0..10i64 {
            w.push_row(vec![
                Value::Int64(i),
                Value::Utf8("r0".into()),
                Value::Float64(i as f64),
            ])
            .unwrap();
        }
        let bytes = w.finish().unwrap();
        let path = "/wh/sales/2024-01-01/part-0.colf";
        store.put_object(path, bytes.clone());
        catalog
            .rewrite_file("sales", "orders", "2024-01-01", path, 2, bytes.len() as u64)
            .unwrap();

        let r = e.execute(&q).unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int64(160)]], "10 + 50 + 100");
        assert_eq!(r.stats.splits_skipped, 3, "siblings stay covered");
        assert_eq!(r.stats.splits_scheduled, 1);
        assert!(e.result_cache().unwrap().counters().invalidations >= 1);
    }

    #[test]
    fn result_cache_drop_partition_keeps_surviving_entries() {
        let (catalog, store, clock) = setup();
        let e = rc_engine(catalog, store, &clock);
        let q = QueryPlan::scan("sales", "orders", &[]).aggregate(vec![AggExpr::count()]);
        e.execute(&q).unwrap();
        e.drop_partition("sales", "orders", "2024-01-01").unwrap();
        let r = e.execute(&q).unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int64(100)]]);
        // The dropped partition's entries are gone; the survivor's two
        // splits still answer from the cache.
        assert_eq!(r.stats.splits, 2);
        assert_eq!(r.stats.splits_skipped, 2);
        assert_eq!(r.stats.splits_scheduled, 0);
    }

    #[test]
    fn result_cache_serves_equivalent_reordered_plans() {
        let (catalog, store, clock) = setup();
        let e = rc_engine(Arc::clone(&catalog), Arc::clone(&store), &clock);
        let filt = Predicate::Eq("region".into(), Value::Utf8("r1".into()))
            .or(Predicate::Gt("amount".into(), Value::Float64(150.0)));
        let a = QueryPlan::scan("sales", "orders", &[])
            .filter(filt)
            .aggregate(vec![AggExpr::sum("amount"), AggExpr::count()])
            .group("region");
        // Same query, commuted: Or operands and aggregates swapped.
        let filt2 = Predicate::Gt("amount".into(), Value::Float64(150.0))
            .or(Predicate::Eq("region".into(), Value::Utf8("r1".into())));
        let b = QueryPlan::scan("sales", "orders", &[])
            .filter(filt2)
            .aggregate(vec![AggExpr::count(), AggExpr::sum("amount")])
            .group("region");
        e.execute(&a).unwrap();
        let rb = e.execute(&b).unwrap();
        assert_eq!(rb.stats.splits_skipped, 4, "b is served from a's entries");
        // Ground truth from an engine with the cache off.
        let shadow = engine(catalog, store, &clock);
        assert_eq!(rb.rows, shadow.execute(&b).unwrap().rows);
    }

    #[test]
    fn result_cache_covers_join_queries_and_skips_build_sides() {
        let (catalog, store, clock) = setup();
        let dim_schema = Schema::new(vec![
            ("r_id", ColumnType::Int64),
            ("r_name", ColumnType::Utf8),
        ]);
        let mut w = ColfWriter::new(dim_schema.clone(), 10);
        for i in 0..3i64 {
            w.push_row(vec![Value::Int64(i), Value::Utf8(format!("region-{i}"))])
                .unwrap();
        }
        let bytes = w.finish().unwrap();
        store.put_object("/dims/region", bytes.clone());
        catalog.register(crate::catalog::TableDef {
            schema_name: "sales".into(),
            table_name: "region".into(),
            columns: dim_schema.clone(),
            partitions: vec![crate::catalog::PartitionDef {
                name: "all".into(),
                files: vec![DataFile {
                    path: "/dims/region".into(),
                    version: 1,
                    length: bytes.len() as u64,
                }],
            }],
        });
        let e = rc_engine(Arc::clone(&catalog), Arc::clone(&store), &clock);
        let q = QueryPlan::scan("sales", "orders", &["id"])
            .join("sales", "region", "id", "r_id", &["r_name"], None)
            .aggregate(vec![AggExpr::count()])
            .group("r_name");
        let cold = e.execute(&q).unwrap();
        let warm = e.execute(&q).unwrap();
        assert_eq!(warm.rows, cold.rows);
        assert_eq!(warm.stats.splits_skipped, 4);
        assert_eq!(
            warm.stats.rows_scanned, 0,
            "a fully covered query skips the join build side too"
        );

        // Rewriting the dimension file purges the dependent entries (and
        // changes the fingerprint salt): the next run re-scans everything
        // and reflects the new dimension rows.
        let mut w = ColfWriter::new(dim_schema, 10);
        for i in 0..2i64 {
            w.push_row(vec![Value::Int64(i), Value::Utf8(format!("REGION-{i}"))])
                .unwrap();
        }
        let bytes = w.finish().unwrap();
        store.put_object("/dims/region", bytes.clone());
        catalog
            .rewrite_file(
                "sales",
                "region",
                "all",
                "/dims/region",
                2,
                bytes.len() as u64,
            )
            .unwrap();
        let fresh = e.execute(&q).unwrap();
        assert_eq!(fresh.stats.splits_skipped, 0);
        assert_eq!(fresh.stats.splits_scheduled, 4 + 1, "fact splits + build");
        assert_eq!(fresh.rows.len(), 2, "only the two rewritten dim rows join");
    }

    #[test]
    fn result_cache_split_accounting_reconciles_with_scheduler() {
        let (catalog, store, clock) = setup();
        let e = rc_engine(catalog, store, &clock);
        let mut scheduled: u64 = 0;
        let plans = [
            QueryPlan::scan("sales", "orders", &[]).aggregate(vec![AggExpr::count()]),
            QueryPlan::scan("sales", "orders", &[])
                .aggregate(vec![AggExpr::sum("amount")])
                .group("region"),
            QueryPlan::scan("sales", "orders", &["id"]), // uncacheable
        ];
        for _ in 0..3 {
            for q in &plans {
                let r = e.execute(q).unwrap();
                assert_eq!(
                    r.stats.splits_skipped + r.stats.splits_scheduled,
                    r.stats.splits
                );
                scheduled += r.stats.splits_scheduled as u64;
            }
        }
        assert_eq!(
            scheduled,
            e.scheduler().assigned_total(),
            "every scheduled split was assigned exactly once"
        );
    }

    #[test]
    fn result_cache_probe_stage_is_traced() {
        use edgecache_metrics::Tracer;
        let (catalog, store, clock) = setup();
        let shared = WorkerConfig {
            page_size: ByteSize::kib(1),
            tracer: Tracer::enabled(Arc::new(clock.clone())),
            ..Default::default()
        };
        let tracer = shared.tracer.clone();
        let e = Engine::new(
            catalog,
            store,
            EngineConfig {
                workers: 3,
                worker: shared,
                result_cache: crate::resultcache::ResultCacheConfig::enabled(ByteSize::mib(4)),
                ..Default::default()
            },
            Arc::new(clock.clone()),
        )
        .unwrap();
        let q = QueryPlan::scan("sales", "orders", &[]).aggregate(vec![AggExpr::count()]);
        let r = e.execute(&q).unwrap();
        assert!(r
            .stats
            .stage_breakdown
            .contains_key("olap.resultcache_probe"));
        e.execute(&q).unwrap();
        let records = tracer.take_records();
        let probes: Vec<_> = records
            .iter()
            .filter(|r| r.name == "olap.resultcache_probe")
            .collect();
        assert_eq!(probes.len(), 2, "one probe span per cached-eligible query");
    }

    #[test]
    fn namenode_generation_bump_flows_into_the_shared_invalidation_path() {
        use edgecache_storage::hdfs::NameNode;
        let (catalog, store, clock) = setup();
        let e = rc_engine(Arc::clone(&catalog), store, &clock);
        let q = QueryPlan::scan("sales", "orders", &[]).aggregate(vec![AggExpr::count()]);
        e.execute(&q).unwrap();
        assert_eq!(e.execute(&q).unwrap().stats.splits_skipped, 4, "warm");

        // The storage tier: the fact file lives in simulated HDFS, and an
        // append bumps its tail block's generation stamp. The bump listener
        // forwards the new stamp into the catalog as a file rewrite — from
        // there the engine's stale-file listener purges the footer caches
        // and the result cache, all through one path.
        let path = "/wh/sales/2024-01-01/part-0.colf";
        let length = catalog
            .table("sales", "orders")
            .unwrap()
            .files()
            .find(|(_, f)| f.path == path)
            .unwrap()
            .1
            .length;
        let nn = NameNode::new(1 << 20, 1);
        nn.register_datanode("dn0");
        nn.create_file(path, length).unwrap();
        let cat = Arc::clone(&catalog);
        nn.on_generation_bump(Arc::new(move |p: &str, _old, new_gen| {
            let table = cat.table("sales", "orders").unwrap();
            let len = table.files().find(|(_, f)| f.path == p).unwrap().1.length;
            cat.rewrite_file("sales", "orders", "2024-01-01", p, new_gen, len)
                .unwrap();
        }));
        nn.append_file(path, 1).unwrap();

        let r = e.execute(&q).unwrap();
        assert_eq!(r.stats.splits_skipped, 3, "bumped file re-scans");
        assert_eq!(r.stats.splits_scheduled, 1);
        assert!(e.result_cache().unwrap().counters().invalidations >= 1);
    }

    #[test]
    fn non_aggregate_queries_bypass_the_result_cache() {
        let (catalog, store, clock) = setup();
        let e = rc_engine(catalog, store, &clock);
        let q = QueryPlan::scan("sales", "orders", &["id"]).take(5);
        let r1 = e.execute(&q).unwrap();
        let r2 = e.execute(&q).unwrap();
        assert_eq!(r1.rows, r2.rows);
        assert_eq!(r2.stats.splits_skipped, 0);
        assert_eq!(r2.stats.splits_scheduled, r2.stats.splits);
        assert!(e.result_cache().unwrap().is_empty(), "nothing was inserted");
    }
}
