//! Query plans: single-table scan–filter–project–aggregate queries.
//!
//! Presto plans are far richer, but the cache-relevant behaviour — which
//! files are scanned, which columns are projected, which row groups survive
//! pushdown — is fully captured by this shape, and the TPC-DS-like workload
//! generator emits plans of exactly this form.

use edgecache_columnar::Predicate;

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

/// One aggregate expression, e.g. `Sum(price)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    pub func: AggFunc,
    /// Aggregated column (ignored for `Count`).
    pub column: String,
}

impl AggExpr {
    /// `COUNT(*)`.
    pub fn count() -> Self {
        Self {
            func: AggFunc::Count,
            column: String::new(),
        }
    }

    /// `SUM(column)`.
    pub fn sum(column: &str) -> Self {
        Self {
            func: AggFunc::Sum,
            column: column.to_string(),
        }
    }

    /// `AVG(column)`.
    pub fn avg(column: &str) -> Self {
        Self {
            func: AggFunc::Avg,
            column: column.to_string(),
        }
    }

    /// `MIN(column)`.
    pub fn min(column: &str) -> Self {
        Self {
            func: AggFunc::Min,
            column: column.to_string(),
        }
    }

    /// `MAX(column)`.
    pub fn max(column: &str) -> Self {
        Self {
            func: AggFunc::Max,
            column: column.to_string(),
        }
    }
}

/// An inner equi-join of the scanned (fact) table against a dimension
/// table, executed as a broadcast hash join: the dimension side is scanned
/// once (through the caches), filtered, and built into a hash table; fact
/// rows probe it during the scan.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// Dimension table schema name.
    pub dim_schema: String,
    /// Dimension table name.
    pub dim_table: String,
    /// Fact-side join key column (must be `Int64`).
    pub fact_key: String,
    /// Dimension-side join key column (must be `Int64`).
    pub dim_key: String,
    /// Dimension columns made available to projection / predicate /
    /// aggregates / group-by after the join.
    pub dim_columns: Vec<String>,
    /// Filter applied to dimension rows while building the hash table
    /// (rows failing it are absent, so matching fact rows drop — inner-join
    /// semantics).
    pub dim_filter: Option<Predicate>,
}

/// A query: scan a table (optionally a subset of partitions), join against
/// dimensions, filter, project, and optionally aggregate (optionally
/// grouped).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    pub schema: String,
    pub table: String,
    /// Partition names to scan; empty = all partitions.
    pub partitions: Vec<String>,
    /// Projected columns (for non-aggregate queries, the output columns).
    pub projection: Vec<String>,
    pub predicate: Option<Predicate>,
    /// Broadcast hash joins against dimension tables.
    pub joins: Vec<JoinClause>,
    /// Aggregates; empty = plain projection query.
    pub aggregates: Vec<AggExpr>,
    /// Optional single-column GROUP BY (requires aggregates).
    pub group_by: Option<String>,
    /// Optional row limit on the final result.
    pub limit: Option<usize>,
}

impl QueryPlan {
    /// A full-table scan of the given columns.
    pub fn scan(schema: &str, table: &str, projection: &[&str]) -> Self {
        Self {
            schema: schema.to_string(),
            table: table.to_string(),
            partitions: Vec::new(),
            projection: projection.iter().map(|s| s.to_string()).collect(),
            predicate: None,
            joins: Vec::new(),
            aggregates: Vec::new(),
            group_by: None,
            limit: None,
        }
    }

    /// Adds a broadcast hash join against a dimension table.
    pub fn join(
        mut self,
        dim_schema: &str,
        dim_table: &str,
        fact_key: &str,
        dim_key: &str,
        dim_columns: &[&str],
        dim_filter: Option<Predicate>,
    ) -> Self {
        self.joins.push(JoinClause {
            dim_schema: dim_schema.to_string(),
            dim_table: dim_table.to_string(),
            fact_key: fact_key.to_string(),
            dim_key: dim_key.to_string(),
            dim_columns: dim_columns.iter().map(|s| s.to_string()).collect(),
            dim_filter,
        });
        self
    }

    /// Adds a predicate.
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.predicate = Some(predicate);
        self
    }

    /// Restricts to specific partitions (partition pruning).
    pub fn in_partitions(mut self, partitions: &[&str]) -> Self {
        self.partitions = partitions.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Turns the query into an aggregation.
    pub fn aggregate(mut self, aggregates: Vec<AggExpr>) -> Self {
        self.aggregates = aggregates;
        self
    }

    /// Groups the aggregation by a column.
    pub fn group(mut self, column: &str) -> Self {
        self.group_by = Some(column.to_string());
        self
    }

    /// Limits the result.
    pub fn take(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// All column names the query references (projection ∪ predicate ∪
    /// aggregates ∪ group-by), fact- and dimension-side alike.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out: Vec<String> = self.projection.clone();
        if let Some(p) = &self.predicate {
            out.extend(p.columns().into_iter().map(String::from));
        }
        for agg in &self.aggregates {
            if !agg.column.is_empty() {
                out.push(agg.column.clone());
            }
        }
        if let Some(g) = &self.group_by {
            out.push(g.clone());
        }
        out.sort();
        out.dedup();
        out
    }

    /// The columns the *fact-table scan* must read: every referenced column
    /// that is not supplied by a join, plus the fact-side join keys.
    pub fn required_columns(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .referenced_columns()
            .into_iter()
            .filter(|c| !self.joins.iter().any(|j| j.dim_columns.contains(c)))
            .collect();
        out.extend(self.joins.iter().map(|j| j.fact_key.clone()));
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgecache_columnar::Value;

    #[test]
    fn builder_chain() {
        let q = QueryPlan::scan("s", "t", &["a", "b"])
            .filter(Predicate::Eq("c".into(), Value::Int64(1)))
            .aggregate(vec![AggExpr::sum("a"), AggExpr::count()])
            .group("b")
            .take(10);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.group_by.as_deref(), Some("b"));
        assert_eq!(q.aggregates.len(), 2);
    }

    #[test]
    fn required_columns_unions_everything() {
        let q = QueryPlan::scan("s", "t", &["a"])
            .filter(Predicate::Lt("c".into(), Value::Int64(5)))
            .aggregate(vec![AggExpr::sum("d"), AggExpr::count()])
            .group("b");
        assert_eq!(q.required_columns(), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn count_has_no_column() {
        let q = QueryPlan::scan("s", "t", &[]).aggregate(vec![AggExpr::count()]);
        assert!(q.required_columns().is_empty());
    }
}
