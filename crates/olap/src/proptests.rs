//! Property tests for the result cache (ROADMAP item 5(b) follow-through):
//!
//! * **Canonicalization soundness** — plans that differ only in commutative
//!   structure (aggregate order, And/Or operand order, nesting) fingerprint
//!   identically; plans that differ semantically fingerprint distinctly.
//! * **Cached ≡ recomputed under churn** — a cached engine and an uncached
//!   shadow sharing one catalog/store/clock stay bit-identical across random
//!   interleavings of queries, appends, rewrites, drops, and cache
//!   perturbations, while the scheduler/stats split accounting reconciles
//!   exactly.
#![cfg(test)]

use std::sync::Arc;
use std::time::Duration;

use edgecache_columnar::{ColfWriter, ColumnType, Predicate, Schema, Value};
use edgecache_common::clock::SimClock;
use edgecache_common::ByteSize;
use edgecache_storage::ObjectStore;
use proptest::prelude::*;

use crate::catalog::{Catalog, DataFile, PartitionDef, TableDef};
use crate::engine::{Engine, EngineConfig};
use crate::plan::{AggExpr, QueryPlan};
use crate::resultcache::{CanonicalQuery, ResultCacheConfig};
use crate::worker::WorkerConfig;

fn cases() -> u32 {
    std::env::var("EDGECACHE_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

fn table_schema() -> Schema {
    Schema::new(vec![
        ("id", ColumnType::Int64),
        ("region", ColumnType::Utf8),
        ("amount", ColumnType::Float64),
    ])
}

// ---------------------------------------------------------------------------
// Canonicalization soundness
// ---------------------------------------------------------------------------

/// A small pool of predicates to combine.
fn leaf_pred(i: u8) -> Predicate {
    match i % 4 {
        0 => Predicate::Eq("region".into(), Value::Utf8("r1".into())),
        1 => Predicate::Gt("amount".into(), Value::Float64(10.5)),
        2 => Predicate::Lt("id".into(), Value::Int64(40)),
        _ => Predicate::Between("amount".into(), Value::Float64(1.0), Value::Float64(9.0)),
    }
}

fn agg_pool() -> Vec<AggExpr> {
    vec![
        AggExpr::count(),
        AggExpr::sum("amount"),
        AggExpr::avg("amount"),
        AggExpr::min("id"),
        AggExpr::max("amount"),
    ]
}

/// Builds a plan whose predicate chains `leaves` in the order given by
/// `order`, associated left or right, and whose aggregates are permuted by
/// `perm`.
fn shuffled_plan(
    leaves: &[u8],
    order: &[usize],
    left_assoc: bool,
    and_chain: bool,
    perm: &[usize],
) -> QueryPlan {
    let preds: Vec<Predicate> = order.iter().map(|&i| leaf_pred(leaves[i])).collect();
    let combine = |a: Predicate, b: Predicate| {
        if and_chain {
            a.and(b)
        } else {
            a.or(b)
        }
    };
    let chained = if left_assoc {
        let mut it = preds.into_iter();
        let first = it.next().unwrap();
        it.fold(first, combine)
    } else {
        let mut it = preds.into_iter().rev();
        let first = it.next().unwrap();
        it.fold(first, |acc, p| combine(p, acc))
    };
    let pool = agg_pool();
    let aggs: Vec<AggExpr> = perm.iter().map(|&i| pool[i].clone()).collect();
    QueryPlan::scan("sales", "orders", &[])
        .filter(chained)
        .aggregate(aggs)
        .group("region")
}

fn catalog_one_table() -> Arc<Catalog> {
    let catalog = Catalog::new();
    catalog.register(TableDef {
        schema_name: "sales".into(),
        table_name: "orders".into(),
        columns: table_schema(),
        partitions: vec![PartitionDef {
            name: "p0".into(),
            files: vec![DataFile {
                path: "/w/orders/p0/f0".into(),
                version: 1,
                length: 100,
            }],
        }],
    });
    Arc::new(catalog)
}

fn perm_strategy(n: usize) -> impl Strategy<Value = Vec<usize>> {
    // A seed vector shuffled Fisher–Yates style by index draws.
    proptest::collection::vec(0usize..1000, n).prop_map(move |draws| {
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            perm.swap(i, draws[i] % (i + 1));
        }
        perm
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Commuting aggregate order, predicate operand order, and chain
    /// associativity never changes the fingerprint.
    #[test]
    fn equivalent_plans_fingerprint_equal(
        leaves in proptest::collection::vec(0u8..4, 2..4),
        rot_a in 0usize..4,
        rot_b in 0usize..4,
        assoc_a in (0u8..2).prop_map(|b| b == 1),
        assoc_b in (0u8..2).prop_map(|b| b == 1),
        and_chain in (0u8..2).prop_map(|b| b == 1),
        perm_a in perm_strategy(5),
        perm_b in perm_strategy(5),
    ) {
        let catalog = catalog_one_table();
        let k = leaves.len();
        // Same leaf multiset, rotated differently on each side.
        let mut oa: Vec<usize> = (0..k).collect();
        let mut ob: Vec<usize> = (0..k).collect();
        oa.rotate_left(rot_a % k);
        ob.rotate_left(rot_b % k);
        let a = shuffled_plan(&leaves, &oa, assoc_a, and_chain, &perm_a);
        let b = shuffled_plan(&leaves, &ob, assoc_b, and_chain, &perm_b);
        let ca = CanonicalQuery::of(&a).expect("aggregate plan is cacheable");
        let cb = CanonicalQuery::of(&b).expect("aggregate plan is cacheable");
        let fa = ca.fingerprint(&catalog).unwrap();
        let fb = cb.fingerprint(&catalog).unwrap();
        prop_assert_eq!(fa.as_str(), fb.as_str());
    }

    /// Changing a literal, the group key, the chain operator, or the
    /// aggregate set changes the fingerprint.
    #[test]
    fn mutated_plans_fingerprint_distinct(
        leaves in proptest::collection::vec(0u8..4, 2..4),
        perm in perm_strategy(5),
        mutation in 0u8..4,
    ) {
        let catalog = catalog_one_table();
        let order: Vec<usize> = (0..leaves.len()).collect();
        let base = shuffled_plan(&leaves, &order, true, true, &perm);
        let mutated = match mutation {
            0 => base.clone().filter(Predicate::Eq(
                "region".into(),
                Value::Utf8("r2".into()),
            )),
            1 => {
                let mut p = base.clone();
                p.group_by = None;
                p
            }
            2 => shuffled_plan(&leaves, &order, true, false, &perm),
            _ => {
                let mut p = base.clone();
                p.aggregates.push(AggExpr::sum("id"));
                p
            }
        };
        let fa = CanonicalQuery::of(&base).unwrap().fingerprint(&catalog).unwrap();
        let fb = CanonicalQuery::of(&mutated).unwrap().fingerprint(&catalog).unwrap();
        prop_assert_ne!(fa.as_str(), fb.as_str());
    }
}

// ---------------------------------------------------------------------------
// Cached ≡ recomputed under churn
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum ChurnOp {
    /// Run query shape `q` on both engines and compare rows bit-for-bit.
    Query { q: u8 },
    /// Append a fresh file to a live partition.
    Append { p: u8 },
    /// Rewrite file 0 of a live partition under a bumped version.
    Rewrite { p: u8 },
    /// Drop a live partition (skipped when it would drop the last one).
    Drop { p: u8 },
    /// Clear the result cache outright.
    Clear,
    /// Shrink then restore the result-cache capacity.
    Thrash,
}

fn churn_op_strategy() -> impl Strategy<Value = ChurnOp> {
    prop_oneof![
        6 => (0u8..6).prop_map(|q| ChurnOp::Query { q }),
        2 => (0u8..4).prop_map(|p| ChurnOp::Append { p }),
        2 => (0u8..4).prop_map(|p| ChurnOp::Rewrite { p }),
        1 => (0u8..4).prop_map(|p| ChurnOp::Drop { p }),
        1 => Just(ChurnOp::Clear),
        1 => Just(ChurnOp::Thrash),
    ]
}

/// Deterministic file content: a pure function of `(partition, file,
/// version)`, so a rewrite genuinely changes the answer.
fn file_bytes(partition: usize, file: usize, version: u64) -> bytes::Bytes {
    let mut w = ColfWriter::new(table_schema(), 16);
    let salt = (partition * 97 + file * 31) as i64 + version as i64 * 7;
    for i in 0..40i64 {
        let id = salt + i;
        w.push_row(vec![
            Value::Int64(id),
            Value::Utf8(format!("r{}", id.rem_euclid(3))),
            Value::Float64(id as f64 * 1.25 + version as f64 * 0.5),
        ])
        .unwrap();
    }
    w.finish().unwrap()
}

struct ChurnHarness {
    catalog: Arc<Catalog>,
    store: Arc<ObjectStore>,
    cached: Engine,
    shadow: Engine,
    /// (partition index, next file index, version of file 0)
    partitions: Vec<(usize, usize, u64)>,
    next_partition: usize,
}

impl ChurnHarness {
    fn new() -> Self {
        let clock = SimClock::new();
        let store = Arc::new(ObjectStore::new(Arc::new(clock.clone())));
        let catalog = Arc::new(Catalog::new());
        catalog.register(TableDef {
            schema_name: "sales".into(),
            table_name: "orders".into(),
            columns: table_schema(),
            partitions: vec![],
        });
        let mk = |rc: ResultCacheConfig| {
            Engine::new(
                Arc::clone(&catalog),
                Arc::clone(&store) as _,
                EngineConfig {
                    workers: 2,
                    worker: WorkerConfig {
                        page_size: ByteSize::kib(1),
                        ..Default::default()
                    },
                    coordinator_overhead: Duration::ZERO,
                    result_cache: rc,
                    ..Default::default()
                },
                Arc::new(clock.clone()),
            )
            .unwrap()
        };
        let cached = mk(ResultCacheConfig::enabled(ByteSize::mib(4)));
        let shadow = mk(ResultCacheConfig::default());
        let mut h = Self {
            catalog,
            store,
            cached,
            shadow,
            partitions: Vec::new(),
            next_partition: 0,
        };
        for _ in 0..2 {
            h.add_partition();
        }
        h
    }

    fn path(p: usize, f: usize) -> String {
        format!("/prop/olap/p{p}/f{f}.colf")
    }

    fn add_partition(&mut self) {
        let p = self.next_partition;
        self.next_partition += 1;
        let bytes = file_bytes(p, 0, 1);
        let path = Self::path(p, 0);
        self.store.put_object(&path, bytes.clone());
        self.catalog
            .add_partition(
                "sales",
                "orders",
                PartitionDef {
                    name: format!("p{p}"),
                    files: vec![DataFile {
                        path,
                        version: 1,
                        length: bytes.len() as u64,
                    }],
                },
            )
            .unwrap();
        self.partitions.push((p, 1, 1));
    }

    fn append(&mut self, pick: usize) {
        let idx = pick % self.partitions.len();
        let (p, next_file, _) = &mut self.partitions[idx];
        let f = *next_file;
        *next_file += 1;
        let p = *p;
        let bytes = file_bytes(p, f, 1);
        let path = Self::path(p, f);
        self.store.put_object(&path, bytes.clone());
        let name = format!("p{p}");
        let table = self.catalog.table("sales", "orders").unwrap();
        let mut files = table
            .partitions
            .iter()
            .find(|x| x.name == name)
            .cloned()
            .unwrap()
            .files;
        files.push(DataFile {
            path,
            version: 1,
            length: bytes.len() as u64,
        });
        self.catalog
            .add_partition("sales", "orders", PartitionDef { name, files })
            .unwrap();
    }

    fn rewrite(&mut self, pick: usize) {
        let idx = pick % self.partitions.len();
        let (p, _, version) = &mut self.partitions[idx];
        *version += 1;
        let (p, version) = (*p, *version);
        let bytes = file_bytes(p, 0, version);
        let path = Self::path(p, 0);
        self.store.put_object(&path, bytes.clone());
        self.catalog
            .rewrite_file(
                "sales",
                "orders",
                &format!("p{p}"),
                &path,
                version,
                bytes.len() as u64,
            )
            .unwrap();
    }

    fn drop_partition(&mut self, pick: usize) {
        if self.partitions.len() <= 1 {
            return;
        }
        let idx = pick % self.partitions.len();
        let (p, _, _) = self.partitions.remove(idx);
        self.catalog
            .drop_partition("sales", "orders", &format!("p{p}"))
            .unwrap();
    }

    fn plan(q: u8) -> QueryPlan {
        let base = QueryPlan::scan("sales", "orders", &[]);
        match q % 6 {
            0 => base.aggregate(vec![AggExpr::count()]),
            1 => base
                .aggregate(vec![AggExpr::sum("amount"), AggExpr::count()])
                .group("region"),
            // Shuffled-equivalent variant of shape 1: same fingerprint,
            // different plan order — exercises the permutation mapping.
            2 => base
                .aggregate(vec![AggExpr::count(), AggExpr::sum("amount")])
                .group("region"),
            3 => base
                .filter(
                    Predicate::Eq("region".into(), Value::Utf8("r1".into()))
                        .or(Predicate::Eq("region".into(), Value::Utf8("r2".into()))),
                )
                .aggregate(vec![AggExpr::avg("amount"), AggExpr::min("id")]),
            4 => base
                .filter(Predicate::Gt("amount".into(), Value::Float64(20.0)))
                .aggregate(vec![AggExpr::max("amount"), AggExpr::count()])
                .group("region"),
            _ => base.aggregate(vec![
                AggExpr::sum("amount"),
                AggExpr::avg("amount"),
                AggExpr::min("amount"),
                AggExpr::max("amount"),
            ]),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases() / 4 + 4))]

    /// Under random churn the cached engine answers bit-identically to an
    /// uncached shadow, the per-query split accounting partitions exactly,
    /// and the cache's internal ledger stays consistent.
    #[test]
    fn cached_equals_recomputed_under_churn(
        ops in proptest::collection::vec(churn_op_strategy(), 12..40),
    ) {
        let mut h = ChurnHarness::new();
        let mut scheduled_total: u64 = 0;
        for op in &ops {
            match op {
                ChurnOp::Query { q } => {
                    let plan = ChurnHarness::plan(*q);
                    let a = h.cached.execute(&plan).unwrap();
                    let b = h.shadow.execute(&plan).unwrap();
                    prop_assert_eq!(
                        format!("{:?}", a.rows),
                        format!("{:?}", b.rows),
                        "cached and uncached rows diverged for shape {}",
                        q
                    );
                    prop_assert_eq!(
                        a.stats.splits_skipped + a.stats.splits_scheduled,
                        a.stats.splits
                    );
                    prop_assert_eq!(b.stats.splits_skipped, 0usize);
                    scheduled_total += a.stats.splits_scheduled as u64;
                }
                ChurnOp::Append { p } => h.append(*p as usize),
                ChurnOp::Rewrite { p } => h.rewrite(*p as usize),
                ChurnOp::Drop { p } => h.drop_partition(*p as usize),
                ChurnOp::Clear => {
                    h.cached.result_cache().unwrap().clear();
                }
                ChurnOp::Thrash => {
                    let rc = h.cached.result_cache().unwrap();
                    rc.set_capacity(ByteSize::new(256));
                    rc.set_capacity(ByteSize::mib(4));
                }
            }
            prop_assert!(
                h.cached.result_cache().unwrap().check_consistency().is_ok(),
                "result-cache ledger inconsistent after {:?}",
                op
            );
        }
        // Reconciliation: every split the cached engine reported as
        // scheduled was assigned by its scheduler, exactly once.
        prop_assert_eq!(scheduled_total, h.cached.scheduler().assigned_total());
        // Repeated queries after the churn settles: the second run must be
        // fully covered and still bit-identical.
        let plan = ChurnHarness::plan(1);
        let warm1 = h.cached.execute(&plan).unwrap();
        let warm2 = h.cached.execute(&plan).unwrap();
        let truth = h.shadow.execute(&plan).unwrap();
        prop_assert_eq!(warm2.stats.splits_skipped, warm2.stats.splits);
        prop_assert_eq!(format!("{:?}", warm1.rows), format!("{:?}", truth.rows));
        prop_assert_eq!(format!("{:?}", warm2.rows), format!("{:?}", truth.rows));
    }
}
