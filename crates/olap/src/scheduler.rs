//! The soft-affinity split scheduler (§6.1.2, Figure 8).
//!
//! "The soft-affinity scheduler uses the consistent hashing algorithm, with
//! the file as the hashing input, to calculate the preferred worker node for
//! a split. ... If the initially chosen worker node is deemed busy, the
//! scheduler opts for a secondary worker node from the hash ring. If the
//! secondary node also lacks sufficient resources ... the scheduler assigns
//! the task to the least burdened worker in the cluster. This worker is
//! instructed to fetch data directly from external storage, bypassing local
//! caching."

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use edgecache_common::clock::SharedClock;
use edgecache_common::error::{Error, Result};
use edgecache_common::ring::{ConsistentRing, RingConfig};
use parking_lot::Mutex;

/// Scheduler tuning knobs (names follow the Presto configuration keys the
/// paper cites).
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// A node is "busy" when its pending splits reach this bound.
    pub max_splits_per_node: usize,
    /// Additional pending-split headroom granted to affinity assignments
    /// (the `max-pending-splits-per-task` comparison of §6.1.2).
    pub max_pending_splits_per_task: usize,
    /// Ring configuration (virtual nodes, lazy-movement timeout).
    pub ring: RingConfig,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            max_splits_per_node: 100,
            max_pending_splits_per_task: 10,
            ring: RingConfig::default(),
        }
    }
}

/// Where a split was placed and whether it may use the local cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitAssignment {
    pub worker: String,
    /// `false` when the fallback path was taken: the worker must bypass its
    /// cache and read straight from external storage.
    pub use_cache: bool,
    /// Which choice served: 0 = primary, 1 = secondary, 2 = least-loaded.
    pub choice: u8,
}

/// The scheduler: a consistent-hash ring plus per-worker load accounting.
pub struct SoftAffinityScheduler {
    ring: ConsistentRing,
    config: SchedulerConfig,
    pending: Mutex<HashMap<String, usize>>,
    /// Lifetime count of splits assigned. The engine's per-query
    /// `splits_scheduled` stats must sum to exactly this — the
    /// reconciliation the result-cache oracles check.
    assigned_total: AtomicU64,
}

impl SoftAffinityScheduler {
    /// Creates a scheduler over the given workers.
    pub fn new(workers: &[String], config: SchedulerConfig, clock: SharedClock) -> Self {
        let ring = ConsistentRing::new(config.ring.clone(), clock);
        let mut pending = HashMap::new();
        for w in workers {
            ring.add_node(w);
            pending.insert(w.clone(), 0);
        }
        Self {
            ring,
            config,
            pending: Mutex::new(pending),
            assigned_total: AtomicU64::new(0),
        }
    }

    /// Lifetime count of splits assigned through this scheduler.
    pub fn assigned_total(&self) -> u64 {
        self.assigned_total.load(Ordering::Relaxed)
    }

    /// The underlying ring (for node lifecycle events).
    pub fn ring(&self) -> &ConsistentRing {
        &self.ring
    }

    /// Current pending splits of a worker.
    pub fn pending_of(&self, worker: &str) -> usize {
        self.pending.lock().get(worker).copied().unwrap_or(0)
    }

    fn is_busy(&self, pending: &HashMap<String, usize>, worker: &str) -> bool {
        let load = pending.get(worker).copied().unwrap_or(0);
        load >= self.config.max_splits_per_node + self.config.max_pending_splits_per_task
    }

    /// Assigns a split identified by its file path. Increments the chosen
    /// worker's pending count; call [`Self::complete`] when the split
    /// finishes.
    pub fn assign(&self, file_path: &str) -> Result<SplitAssignment> {
        // Lazy data movement (§7): seats whose offline timeout has expired
        // are purged here, so their keys rehash to surviving workers instead
        // of hitting the fallback path forever.
        let swept = self.ring.sweep_expired();
        if !swept.is_empty() {
            let mut pending = self.pending.lock();
            for gone in &swept {
                pending.remove(gone);
            }
        }
        let (primary, secondary) = self.ring.primary_and_secondary(file_path);
        let mut pending = self.pending.lock();
        if let Some(primary) = primary {
            if !self.is_busy(&pending, &primary) {
                *pending.entry(primary.clone()).or_default() += 1;
                self.assigned_total.fetch_add(1, Ordering::Relaxed);
                return Ok(SplitAssignment {
                    worker: primary,
                    use_cache: true,
                    choice: 0,
                });
            }
            if let Some(secondary) = secondary {
                if !self.is_busy(&pending, &secondary) {
                    *pending.entry(secondary.clone()).or_default() += 1;
                    self.assigned_total.fetch_add(1, Ordering::Relaxed);
                    return Ok(SplitAssignment {
                        worker: secondary,
                        use_cache: true,
                        choice: 1,
                    });
                }
            }
        }
        // Fallback: least-burdened online worker, cache bypassed.
        let online = self.ring.nodes();
        let least = online
            .iter()
            .filter(|w| self.ring.is_online(w))
            .min_by_key(|w| pending.get(*w).copied().unwrap_or(0))
            .cloned()
            .ok_or_else(|| Error::Other("no online workers".into()))?;
        *pending.entry(least.clone()).or_default() += 1;
        self.assigned_total.fetch_add(1, Ordering::Relaxed);
        Ok(SplitAssignment {
            worker: least,
            use_cache: false,
            choice: 2,
        })
    }

    /// Marks a split complete on `worker`.
    pub fn complete(&self, worker: &str) {
        let mut pending = self.pending.lock();
        if let Some(n) = pending.get_mut(worker) {
            *n = n.saturating_sub(1);
        }
    }

    /// Registers a new worker.
    pub fn add_worker(&self, worker: &str) {
        self.ring.add_node(worker);
        self.pending.lock().entry(worker.to_string()).or_insert(0);
    }

    /// Marks a worker offline (keeps its ring seat per lazy data movement).
    pub fn worker_offline(&self, worker: &str) {
        self.ring.mark_offline(worker);
    }

    /// Marks a worker online again.
    pub fn worker_online(&self, worker: &str) {
        self.ring.mark_online(worker);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgecache_common::clock::SimClock;
    use std::sync::Arc;

    fn scheduler(workers: usize, max_per_node: usize) -> SoftAffinityScheduler {
        let names: Vec<String> = (0..workers).map(|i| format!("w{i}")).collect();
        SoftAffinityScheduler::new(
            &names,
            SchedulerConfig {
                max_splits_per_node: max_per_node,
                max_pending_splits_per_task: 0,
                ring: RingConfig::default(),
            },
            Arc::new(SimClock::new()),
        )
    }

    #[test]
    fn same_file_goes_to_same_worker() {
        let s = scheduler(4, 100);
        let first = s.assign("/data/f1").unwrap();
        assert_eq!(first.choice, 0);
        for _ in 0..10 {
            let a = s.assign("/data/f1").unwrap();
            assert_eq!(a.worker, first.worker, "affinity must be stable");
            assert!(a.use_cache);
        }
    }

    #[test]
    fn busy_primary_overflows_to_secondary() {
        let s = scheduler(4, 2);
        let a1 = s.assign("/f").unwrap();
        let a2 = s.assign("/f").unwrap();
        assert_eq!(a1.worker, a2.worker);
        // Primary now at the bound: next goes to the secondary, still cached.
        let a3 = s.assign("/f").unwrap();
        assert_ne!(a3.worker, a1.worker);
        assert!(a3.use_cache);
        assert_eq!(a3.choice, 1);
    }

    #[test]
    fn both_busy_falls_back_least_loaded_without_cache() {
        let s = scheduler(4, 1);
        let a1 = s.assign("/f").unwrap();
        let a2 = s.assign("/f").unwrap();
        // Primary and secondary are both at the bound now.
        let a3 = s.assign("/f").unwrap();
        assert_eq!(a3.choice, 2);
        assert!(!a3.use_cache, "fallback bypasses the cache");
        assert_ne!(a3.worker, a1.worker);
        assert_ne!(a3.worker, a2.worker);
    }

    #[test]
    fn completion_frees_capacity() {
        let s = scheduler(2, 1);
        let a1 = s.assign("/f").unwrap();
        s.complete(&a1.worker);
        let a2 = s.assign("/f").unwrap();
        assert_eq!(a2.worker, a1.worker);
        assert_eq!(a2.choice, 0);
    }

    #[test]
    fn offline_worker_is_skipped_and_reverts() {
        let s = scheduler(3, 100);
        let home = s.assign("/f").unwrap().worker;
        s.complete(&home);
        s.worker_offline(&home);
        let moved = s.assign("/f").unwrap();
        assert_ne!(moved.worker, home);
        s.complete(&moved.worker);
        // Lazy data movement: the worker returns and resumes its keys.
        s.worker_online(&home);
        assert_eq!(s.assign("/f").unwrap().worker, home);
    }

    #[test]
    fn expired_offline_worker_is_swept_on_assign() {
        use std::time::Duration;
        let clock = SimClock::new();
        let names: Vec<String> = (0..3).map(|i| format!("w{i}")).collect();
        let s =
            SoftAffinityScheduler::new(&names, SchedulerConfig::default(), Arc::new(clock.clone()));
        let home = s.assign("/f").unwrap().worker;
        s.complete(&home);
        s.worker_offline(&home);
        // Past the lazy-movement timeout (default 10 min), `assign` itself
        // purges the seat: the key rehashes to a surviving worker as a
        // first-choice (cached) assignment, not the bypass fallback.
        clock.advance(Duration::from_secs(11 * 60));
        let a = s.assign("/f").unwrap();
        assert_ne!(a.worker, home);
        assert!(a.use_cache);
        assert_eq!(a.choice, 0);
        assert!(!s.ring().nodes().contains(&home), "seat removed for good");
        assert_eq!(s.pending_of(&home), 0);
        // No future assignment lands on the dead worker.
        for i in 0..20 {
            assert_ne!(s.assign(&format!("/file-{i}")).unwrap().worker, home);
        }
    }

    #[test]
    fn pending_accounting() {
        let s = scheduler(2, 100);
        let a = s.assign("/x").unwrap();
        assert_eq!(s.pending_of(&a.worker), 1);
        s.complete(&a.worker);
        assert_eq!(s.pending_of(&a.worker), 0);
        s.complete(&a.worker); // Double-complete is harmless.
        assert_eq!(s.pending_of(&a.worker), 0);
    }

    #[test]
    fn no_workers_errors() {
        let s = scheduler(0, 1);
        assert!(s.assign("/f").is_err());
    }

    #[test]
    fn load_spreads_across_files() {
        let s = scheduler(4, 1_000_000);
        let mut counts: HashMap<String, usize> = HashMap::new();
        for i in 0..2000 {
            let a = s.assign(&format!("/file-{i}")).unwrap();
            *counts.entry(a.worker).or_default() += 1;
        }
        assert_eq!(counts.len(), 4);
        for (_, c) in counts {
            assert!((200..900).contains(&c), "rough balance: {c}");
        }
    }
}
