//! A Presto-like distributed OLAP engine (§2.1.1, §6.1) — the compute layer
//! the paper embeds its local cache into.
//!
//! The engine follows Presto's coordinator–worker architecture:
//!
//! * [`catalog`] — schemas, tables, partitions, and their data files; the
//!   partition hierarchy maps one-to-one onto cache scopes (§4.4).
//! * [`plan`] — single-table scan–filter–project–aggregate query plans,
//!   enough to express the TPC-DS-shaped workloads of the evaluation.
//! * [`scheduler`] — the soft-affinity split scheduler (§6.1.2): consistent
//!   hashing on the file, a busy check against `max_splits_per_node`, a
//!   secondary node, and a least-loaded fallback that bypasses the cache.
//! * [`worker`] — workers embedding the local cache and the metadata cache;
//!   execution charges simulated I/O and CPU time from device cost models.
//! * [`engine`] — the coordinator: plans splits, schedules, merges partial
//!   aggregates, and reports per-query [`RuntimeStats`] (§6.1.3), including
//!   the `inputWall` metric of the ScanFilterProject stage that Figure 10
//!   reports.

//! * [`resultcache`] — the canonicalized query-fragment result cache:
//!   per-split partial aggregates keyed by `(fingerprint, path@version)`,
//!   probed by the engine before scheduling so warm repeated aggregations
//!   skip the scan entirely (ROADMAP item 5(b)).

pub mod catalog;
pub mod engine;
pub mod plan;
mod proptests;
pub mod resultcache;
pub mod scheduler;
pub mod stats;
pub mod worker;

pub use catalog::{Catalog, DataFile, PartitionDef, StaleFileListener, TableDef};
pub use engine::{Engine, EngineConfig, QueryResult};
pub use plan::{AggExpr, AggFunc, JoinClause, QueryPlan};
pub use resultcache::{
    CanonicalQuery, Fingerprint, ResultCache, ResultCacheConfig, ResultCacheCounters,
};
pub use scheduler::{SchedulerConfig, SoftAffinityScheduler, SplitAssignment};
pub use stats::{QueryStatsCollector, RuntimeStats};
pub use worker::{PartialAgg, PreparedJoin, Worker, WorkerConfig};
