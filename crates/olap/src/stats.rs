//! Per-query runtime statistics and their table-level aggregation (§6.1.3).
//!
//! "Whenever Presto I/O operations engage the local cache, relevant metrics,
//! such as cache hit rate and pages read, are recorded ... query-level
//! runtime statistics are logged as in-memory metrics, which are
//! periodically gathered for extensive monitoring."
//!
//! `input_wall` is the simulated analog of Presto's `inputWall` on the
//! `ScanFilterProjectOperator` — the metric Figure 10 reports before/after
//! enabling the cache.

use std::collections::BTreeMap;
use std::time::Duration;

use edgecache_metrics::{Histogram, Percentiles};
use parking_lot::Mutex;

/// Runtime statistics for one executed query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuntimeStats {
    pub query_id: u64,
    pub table: String,
    pub splits: usize,
    /// Splits covered by the result cache: no scheduling, no scan.
    pub splits_skipped: usize,
    /// Splits actually handed to the soft-affinity scheduler (this query
    /// plus its join build sides). Always `splits - splits_skipped` for the
    /// fact scan itself; the invariant is cross-checked against the
    /// scheduler's own assignment counter by the simtest oracle and the
    /// resultcache bench.
    pub splits_scheduled: usize,
    /// Bytes of data files the result cache kept off the scan path.
    pub scan_bytes_saved: u64,
    pub rows_scanned: u64,
    pub rows_output: u64,
    /// Simulated time the critical-path worker spent reading input
    /// (the `inputWall` of the ScanFilterProject stage).
    pub input_wall: Duration,
    /// Simulated CPU time on the critical path (decode, filter, footer
    /// parsing).
    pub cpu_time: Duration,
    /// End-to-end simulated query latency.
    pub wall_time: Duration,
    pub bytes_from_cache: u64,
    pub bytes_from_remote: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Per-stage latency attribution, summed across the query's splits:
    /// stage name (`scan`, `decode`, `filter`, `join`, `aggregate`, …) →
    /// simulated time spent in that stage.
    pub stage_breakdown: BTreeMap<&'static str, Duration>,
}

impl RuntimeStats {
    /// Cache hit rate over page accesses, or `None` without traffic.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }

    /// Adds a split's per-stage times into this query's breakdown.
    pub fn merge_stage_breakdown(&mut self, other: &BTreeMap<&'static str, Duration>) {
        for (&stage, &d) in other {
            *self.stage_breakdown.entry(stage).or_default() += d;
        }
    }
}

/// Aggregated view of one table's queries.
#[derive(Debug)]
pub struct TableInsights {
    pub queries: u64,
    pub input_wall_us: Percentiles,
    pub wall_us: Percentiles,
    pub bytes_from_cache: u64,
    pub bytes_from_remote: u64,
    /// Cache hit rate across all the table's queries.
    pub hit_rate: Option<f64>,
}

#[derive(Default)]
struct TableAccum {
    queries: u64,
    input_wall_us: Histogram,
    wall_us: Histogram,
    bytes_from_cache: u64,
    bytes_from_remote: u64,
    hits: u64,
    misses: u64,
}

/// Collects per-query stats and aggregates them per table — the mechanism
/// that surfaces "hot partitions" and table-level insights in production.
#[derive(Default)]
pub struct QueryStatsCollector {
    tables: Mutex<BTreeMap<String, TableAccum>>,
}

impl QueryStatsCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one query's stats.
    pub fn record(&self, stats: &RuntimeStats) {
        let mut tables = self.tables.lock();
        let acc = tables.entry(stats.table.clone()).or_default();
        acc.queries += 1;
        acc.input_wall_us
            .record(stats.input_wall.as_micros() as u64);
        acc.wall_us.record(stats.wall_time.as_micros() as u64);
        acc.bytes_from_cache += stats.bytes_from_cache;
        acc.bytes_from_remote += stats.bytes_from_remote;
        acc.hits += stats.cache_hits;
        acc.misses += stats.cache_misses;
    }

    /// Table-level insights, or `None` if the table has no recorded queries.
    pub fn table_insights(&self, table: &str) -> Option<TableInsights> {
        let tables = self.tables.lock();
        let acc = tables.get(table)?;
        Some(TableInsights {
            queries: acc.queries,
            input_wall_us: acc.input_wall_us.percentiles()?,
            wall_us: acc.wall_us.percentiles()?,
            bytes_from_cache: acc.bytes_from_cache,
            bytes_from_remote: acc.bytes_from_remote,
            hit_rate: {
                let total = acc.hits + acc.misses;
                (total > 0).then(|| acc.hits as f64 / total as f64)
            },
        })
    }

    /// Tables with recorded queries.
    pub fn tables(&self) -> Vec<String> {
        self.tables.lock().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(table: &str, input_ms: u64, hits: u64, misses: u64) -> RuntimeStats {
        RuntimeStats {
            table: table.into(),
            input_wall: Duration::from_millis(input_ms),
            wall_time: Duration::from_millis(input_ms * 2),
            cache_hits: hits,
            cache_misses: misses,
            bytes_from_cache: hits * 100,
            bytes_from_remote: misses * 100,
            ..Default::default()
        }
    }

    #[test]
    fn hit_rate_math() {
        assert_eq!(stats("t", 1, 3, 1).hit_rate(), Some(0.75));
        assert_eq!(RuntimeStats::default().hit_rate(), None);
    }

    #[test]
    fn table_aggregation() {
        let c = QueryStatsCollector::new();
        for ms in [10, 20, 30, 40] {
            c.record(&stats("s.t", ms, 8, 2));
        }
        let insights = c.table_insights("s.t").unwrap();
        assert_eq!(insights.queries, 4);
        assert_eq!(insights.hit_rate, Some(0.8));
        assert_eq!(insights.bytes_from_cache, 4 * 800);
        // P50 of {10,20,30,40} ms in µs is ~20 000.
        let p50 = insights.input_wall_us.p50;
        assert!((18_000..23_000).contains(&p50), "{p50}");
        assert!(c.table_insights("none").is_none());
        assert_eq!(c.tables(), vec!["s.t".to_string()]);
    }
}
