//! The table catalog: schema → table → partition → data files.
//!
//! "In Presto, the data is organized in a partition-table-schema hierarchy.
//! This hierarchy maps to a tree of nested scopes in Alluxio local cache"
//! (§4.4). [`TableDef::partition_scope`] performs exactly that mapping.

use std::collections::BTreeMap;

use edgecache_columnar::Schema;
use edgecache_common::error::{Error, Result};
use edgecache_pagestore::CacheScope;
use parking_lot::RwLock;

/// One immutable data file of a partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataFile {
    /// Path in the remote store.
    pub path: String,
    /// Version (etag / modification stamp) for cache invalidation.
    pub version: u64,
    /// File length in bytes.
    pub length: u64,
}

/// One partition: a name (e.g. a date) plus its files.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartitionDef {
    pub name: String,
    pub files: Vec<DataFile>,
}

/// One table: its columnar schema and partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    pub schema_name: String,
    pub table_name: String,
    pub columns: Schema,
    pub partitions: Vec<PartitionDef>,
}

impl TableDef {
    /// The cache scope of this table.
    pub fn scope(&self) -> CacheScope {
        CacheScope::table(&self.schema_name, &self.table_name)
    }

    /// The cache scope of one of this table's partitions.
    pub fn partition_scope(&self, partition: &str) -> CacheScope {
        CacheScope::partition(&self.schema_name, &self.table_name, partition)
    }

    /// All files with their partition names.
    pub fn files(&self) -> impl Iterator<Item = (&str, &DataFile)> {
        self.partitions
            .iter()
            .flat_map(|p| p.files.iter().map(move |f| (p.name.as_str(), f)))
    }

    /// Total bytes across all files.
    pub fn total_bytes(&self) -> u64 {
        self.files().map(|(_, f)| f.length).sum()
    }
}

/// The catalog: a registry of tables.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<BTreeMap<(String, String), TableDef>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a table.
    pub fn register(&self, table: TableDef) {
        self.tables
            .write()
            .insert((table.schema_name.clone(), table.table_name.clone()), table);
    }

    /// Looks up a table.
    pub fn table(&self, schema: &str, table: &str) -> Result<TableDef> {
        self.tables
            .read()
            .get(&(schema.to_string(), table.to_string()))
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("table `{schema}.{table}`")))
    }

    /// Adds a partition to an existing table.
    pub fn add_partition(&self, schema: &str, table: &str, partition: PartitionDef) -> Result<()> {
        let mut tables = self.tables.write();
        let def = tables
            .get_mut(&(schema.to_string(), table.to_string()))
            .ok_or_else(|| Error::NotFound(format!("table `{schema}.{table}`")))?;
        def.partitions.retain(|p| p.name != partition.name);
        def.partitions.push(partition);
        Ok(())
    }

    /// Drops a partition (the catalog side of the §4.4 "delete an outdated
    /// partition" flow). Returns the dropped definition.
    pub fn drop_partition(
        &self,
        schema: &str,
        table: &str,
        partition: &str,
    ) -> Result<PartitionDef> {
        let mut tables = self.tables.write();
        let def = tables
            .get_mut(&(schema.to_string(), table.to_string()))
            .ok_or_else(|| Error::NotFound(format!("table `{schema}.{table}`")))?;
        let idx = def
            .partitions
            .iter()
            .position(|p| p.name == partition)
            .ok_or_else(|| Error::NotFound(format!("partition `{partition}`")))?;
        Ok(def.partitions.remove(idx))
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<(String, String)> {
        self.tables.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgecache_columnar::ColumnType;

    fn table() -> TableDef {
        TableDef {
            schema_name: "sales".into(),
            table_name: "orders".into(),
            columns: Schema::new(vec![("id", ColumnType::Int64)]),
            partitions: vec![PartitionDef {
                name: "2024-01-01".into(),
                files: vec![DataFile {
                    path: "/w/orders/p0/f0".into(),
                    version: 1,
                    length: 100,
                }],
            }],
        }
    }

    #[test]
    fn register_and_lookup() {
        let c = Catalog::new();
        c.register(table());
        let t = c.table("sales", "orders").unwrap();
        assert_eq!(t.partitions.len(), 1);
        assert!(c.table("sales", "nope").is_err());
        assert_eq!(c.table_names(), vec![("sales".into(), "orders".into())]);
    }

    #[test]
    fn scopes_map_to_hierarchy() {
        let t = table();
        assert_eq!(t.scope(), CacheScope::table("sales", "orders"));
        assert_eq!(
            t.partition_scope("2024-01-01"),
            CacheScope::partition("sales", "orders", "2024-01-01")
        );
    }

    #[test]
    fn add_and_drop_partition() {
        let c = Catalog::new();
        c.register(table());
        c.add_partition(
            "sales",
            "orders",
            PartitionDef {
                name: "2024-01-02".into(),
                files: vec![DataFile {
                    path: "/w/orders/p1/f0".into(),
                    version: 1,
                    length: 50,
                }],
            },
        )
        .unwrap();
        let t = c.table("sales", "orders").unwrap();
        assert_eq!(t.partitions.len(), 2);
        assert_eq!(t.total_bytes(), 150);
        assert_eq!(t.files().count(), 2);

        let dropped = c.drop_partition("sales", "orders", "2024-01-01").unwrap();
        assert_eq!(dropped.files.len(), 1);
        assert_eq!(c.table("sales", "orders").unwrap().partitions.len(), 1);
        assert!(c.drop_partition("sales", "orders", "2024-01-01").is_err());
    }

    #[test]
    fn add_partition_replaces_same_name() {
        let c = Catalog::new();
        c.register(table());
        c.add_partition(
            "sales",
            "orders",
            PartitionDef {
                name: "2024-01-01".into(),
                files: vec![],
            },
        )
        .unwrap();
        let t = c.table("sales", "orders").unwrap();
        assert_eq!(t.partitions.len(), 1);
        assert!(t.partitions[0].files.is_empty());
    }
}
