//! The table catalog: schema → table → partition → data files.
//!
//! "In Presto, the data is organized in a partition-table-schema hierarchy.
//! This hierarchy maps to a tree of nested scopes in Alluxio local cache"
//! (§4.4). [`TableDef::partition_scope`] performs exactly that mapping.

use std::collections::BTreeMap;
use std::sync::Arc;

use edgecache_columnar::Schema;
use edgecache_common::error::{Error, Result};
use edgecache_pagestore::CacheScope;
use parking_lot::RwLock;

/// One immutable data file of a partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataFile {
    /// Path in the remote store.
    pub path: String,
    /// Version (etag / modification stamp) for cache invalidation.
    pub version: u64,
    /// File length in bytes.
    pub length: u64,
}

/// One partition: a name (e.g. a date) plus its files.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartitionDef {
    pub name: String,
    pub files: Vec<DataFile>,
}

/// One table: its columnar schema and partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    pub schema_name: String,
    pub table_name: String,
    pub columns: Schema,
    pub partitions: Vec<PartitionDef>,
}

impl TableDef {
    /// The cache scope of this table.
    pub fn scope(&self) -> CacheScope {
        CacheScope::table(&self.schema_name, &self.table_name)
    }

    /// The cache scope of one of this table's partitions.
    pub fn partition_scope(&self, partition: &str) -> CacheScope {
        CacheScope::partition(&self.schema_name, &self.table_name, partition)
    }

    /// All files with their partition names.
    pub fn files(&self) -> impl Iterator<Item = (&str, &DataFile)> {
        self.partitions
            .iter()
            .flat_map(|p| p.files.iter().map(move |f| (p.name.as_str(), f)))
    }

    /// Total bytes across all files.
    pub fn total_bytes(&self) -> u64 {
        self.files().map(|(_, f)| f.length).sum()
    }
}

/// Notified with each [`DataFile`] that stopped being current — dropped,
/// replaced, or rewritten under a new version. The engine wires both the
/// footer metadata cache and the query-result cache to this single path,
/// so every invalidation source (catalog DDL, namenode generation bumps
/// forwarded by the storage layer) purges both caches the same way.
pub type StaleFileListener = Arc<dyn Fn(&DataFile) + Send + Sync>;

/// The catalog: a registry of tables.
#[derive(Default)]
pub struct Catalog {
    tables: RwLock<BTreeMap<(String, String), TableDef>>,
    listeners: RwLock<Vec<StaleFileListener>>,
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog")
            .field("tables", &self.tables)
            .field("listeners", &self.listeners.read().len())
            .finish()
    }
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a stale-file listener (fired outside the table lock).
    pub fn on_stale_file(&self, listener: StaleFileListener) {
        self.listeners.write().push(listener);
    }

    /// Notifies every listener of each stale file.
    pub fn notify_stale(&self, files: &[DataFile]) {
        if files.is_empty() {
            return;
        }
        let listeners = self.listeners.read().clone();
        for file in files {
            for listener in &listeners {
                listener(file);
            }
        }
    }

    /// Registers (or replaces) a table.
    pub fn register(&self, table: TableDef) {
        self.tables
            .write()
            .insert((table.schema_name.clone(), table.table_name.clone()), table);
    }

    /// Looks up a table.
    pub fn table(&self, schema: &str, table: &str) -> Result<TableDef> {
        self.tables
            .read()
            .get(&(schema.to_string(), table.to_string()))
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("table `{schema}.{table}`")))
    }

    /// Adds a partition to an existing table. Replacing a same-name
    /// partition marks every file of the old definition that did not carry
    /// over (same path and version) as stale.
    pub fn add_partition(&self, schema: &str, table: &str, partition: PartitionDef) -> Result<()> {
        let stale = {
            let mut tables = self.tables.write();
            let def = tables
                .get_mut(&(schema.to_string(), table.to_string()))
                .ok_or_else(|| Error::NotFound(format!("table `{schema}.{table}`")))?;
            let stale: Vec<DataFile> = def
                .partitions
                .iter()
                .filter(|p| p.name == partition.name)
                .flat_map(|p| p.files.iter())
                .filter(|f| !partition.files.contains(f))
                .cloned()
                .collect();
            def.partitions.retain(|p| p.name != partition.name);
            def.partitions.push(partition);
            stale
        };
        self.notify_stale(&stale);
        Ok(())
    }

    /// Replaces one data file in place with a new version (a compaction or
    /// rewrite): the old `path@version` goes stale, and the caches keyed on
    /// it are purged through the listeners. Returns the old definition.
    pub fn rewrite_file(
        &self,
        schema: &str,
        table: &str,
        partition: &str,
        path: &str,
        new_version: u64,
        new_length: u64,
    ) -> Result<DataFile> {
        let old = {
            let mut tables = self.tables.write();
            let def = tables
                .get_mut(&(schema.to_string(), table.to_string()))
                .ok_or_else(|| Error::NotFound(format!("table `{schema}.{table}`")))?;
            let part = def
                .partitions
                .iter_mut()
                .find(|p| p.name == partition)
                .ok_or_else(|| Error::NotFound(format!("partition `{partition}`")))?;
            let file = part
                .files
                .iter_mut()
                .find(|f| f.path == path)
                .ok_or_else(|| Error::NotFound(format!("file `{path}`")))?;
            let old = file.clone();
            file.version = new_version;
            file.length = new_length;
            old
        };
        self.notify_stale(std::slice::from_ref(&old));
        Ok(old)
    }

    /// Drops a partition (the catalog side of the §4.4 "delete an outdated
    /// partition" flow). Returns the dropped definition.
    pub fn drop_partition(
        &self,
        schema: &str,
        table: &str,
        partition: &str,
    ) -> Result<PartitionDef> {
        let mut tables = self.tables.write();
        let def = tables
            .get_mut(&(schema.to_string(), table.to_string()))
            .ok_or_else(|| Error::NotFound(format!("table `{schema}.{table}`")))?;
        let idx = def
            .partitions
            .iter()
            .position(|p| p.name == partition)
            .ok_or_else(|| Error::NotFound(format!("partition `{partition}`")))?;
        let dropped = def.partitions.remove(idx);
        drop(tables);
        self.notify_stale(&dropped.files);
        Ok(dropped)
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<(String, String)> {
        self.tables.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgecache_columnar::ColumnType;

    fn table() -> TableDef {
        TableDef {
            schema_name: "sales".into(),
            table_name: "orders".into(),
            columns: Schema::new(vec![("id", ColumnType::Int64)]),
            partitions: vec![PartitionDef {
                name: "2024-01-01".into(),
                files: vec![DataFile {
                    path: "/w/orders/p0/f0".into(),
                    version: 1,
                    length: 100,
                }],
            }],
        }
    }

    #[test]
    fn register_and_lookup() {
        let c = Catalog::new();
        c.register(table());
        let t = c.table("sales", "orders").unwrap();
        assert_eq!(t.partitions.len(), 1);
        assert!(c.table("sales", "nope").is_err());
        assert_eq!(c.table_names(), vec![("sales".into(), "orders".into())]);
    }

    #[test]
    fn scopes_map_to_hierarchy() {
        let t = table();
        assert_eq!(t.scope(), CacheScope::table("sales", "orders"));
        assert_eq!(
            t.partition_scope("2024-01-01"),
            CacheScope::partition("sales", "orders", "2024-01-01")
        );
    }

    #[test]
    fn add_and_drop_partition() {
        let c = Catalog::new();
        c.register(table());
        c.add_partition(
            "sales",
            "orders",
            PartitionDef {
                name: "2024-01-02".into(),
                files: vec![DataFile {
                    path: "/w/orders/p1/f0".into(),
                    version: 1,
                    length: 50,
                }],
            },
        )
        .unwrap();
        let t = c.table("sales", "orders").unwrap();
        assert_eq!(t.partitions.len(), 2);
        assert_eq!(t.total_bytes(), 150);
        assert_eq!(t.files().count(), 2);

        let dropped = c.drop_partition("sales", "orders", "2024-01-01").unwrap();
        assert_eq!(dropped.files.len(), 1);
        assert_eq!(c.table("sales", "orders").unwrap().partitions.len(), 1);
        assert!(c.drop_partition("sales", "orders", "2024-01-01").is_err());
    }

    #[test]
    fn stale_listeners_fire_on_rewrite_drop_and_replace() {
        use parking_lot::Mutex;
        let c = Catalog::new();
        c.register(table());
        let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        c.on_stale_file(Arc::new(move |f: &DataFile| {
            sink.lock().push(format!("{}@{}", f.path, f.version));
        }));

        // Rewrite bumps the version and reports the old identity stale.
        let old = c
            .rewrite_file("sales", "orders", "2024-01-01", "/w/orders/p0/f0", 2, 120)
            .unwrap();
        assert_eq!(old.version, 1);
        let t = c.table("sales", "orders").unwrap();
        assert_eq!(t.partitions[0].files[0].version, 2);
        assert_eq!(t.partitions[0].files[0].length, 120);
        assert_eq!(seen.lock().as_slice(), ["/w/orders/p0/f0@1"]);

        // Replacing the partition with different files marks the current
        // ones stale; carrying a file over identically does not.
        seen.lock().clear();
        c.add_partition(
            "sales",
            "orders",
            PartitionDef {
                name: "2024-01-01".into(),
                files: vec![DataFile {
                    path: "/w/orders/p0/f1".into(),
                    version: 1,
                    length: 10,
                }],
            },
        )
        .unwrap();
        assert_eq!(seen.lock().as_slice(), ["/w/orders/p0/f0@2"]);

        // Dropping the partition marks all its files stale.
        seen.lock().clear();
        c.drop_partition("sales", "orders", "2024-01-01").unwrap();
        assert_eq!(seen.lock().as_slice(), ["/w/orders/p0/f1@1"]);

        // Unknown targets error without firing anything.
        seen.lock().clear();
        assert!(c
            .rewrite_file("sales", "orders", "nope", "/w/orders/p0/f0", 3, 1)
            .is_err());
        assert!(seen.lock().is_empty());
    }

    #[test]
    fn add_partition_replaces_same_name() {
        let c = Catalog::new();
        c.register(table());
        c.add_partition(
            "sales",
            "orders",
            PartitionDef {
                name: "2024-01-01".into(),
                files: vec![],
            },
        )
        .unwrap();
        let t = c.table("sales", "orders").unwrap();
        assert_eq!(t.partitions.len(), 1);
        assert!(t.partitions[0].files.is_empty());
    }
}
