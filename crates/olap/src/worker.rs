//! A worker node: the local cache, the metadata cache, and split execution
//! (the ScanFilterProject + partial-aggregation pipeline of §6.1.1,
//! Figure 7).
//!
//! Execution is functionally real — actual `colf` bytes are fetched (through
//! the cache or not), decoded, filtered, and aggregated. *Time* is charged
//! from device cost models: SSD time for cache hits, remote-network time for
//! misses, and CPU time for decode, row filtering, and footer parsing.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bytes::Bytes;
use edgecache_columnar::{ColfReader, ColumnData, MetadataCache, RangeReader, Value};
use edgecache_common::clock::SharedClock;
use edgecache_common::error::{Error, Result};
use edgecache_common::ByteSize;
use edgecache_core::config::CacheConfig;
use edgecache_core::manager::{CacheManager, RemoteSource, SourceFile};
use edgecache_metrics::{MetricRegistry, SpanId, Tracer};
use edgecache_pagestore::{CacheScope, MemoryPageStore};
use edgecache_storage::DeviceModel;

use crate::catalog::DataFile;
use crate::plan::{AggExpr, AggFunc, QueryPlan};

/// Worker tuning.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Local-cache capacity in bytes (0 disables caching entirely).
    pub cache_capacity: u64,
    /// Cache page size.
    pub page_size: ByteSize,
    /// Whether the data cache is enabled.
    pub enable_cache: bool,
    /// Whether the (deserialized) file-metadata cache is enabled.
    pub enable_metadata_cache: bool,
    /// Entry-count bound of the footer metadata cache (LRU beyond it).
    pub metadata_cache_capacity: usize,
    /// Device model for local-SSD cache reads.
    pub ssd: DeviceModel,
    /// Device model for remote (data lake) reads.
    pub remote: DeviceModel,
    /// Simulated CPU cost of decoding one encoded byte.
    pub decode_nanos_per_byte: u64,
    /// Simulated CPU cost of evaluating the filter on one row.
    pub filter_nanos_per_row: u64,
    /// Simulated CPU cost of one hash-join probe.
    pub join_probe_nanos_per_row: u64,
    /// Whether the scan plans each row group's projected chunks as one
    /// vectored read (`CacheManager::read_multi`). `false` forces the
    /// per-column sequential baseline the `scanpath` bench compares against.
    pub vectored_scan: bool,
    /// How many row groups ahead of the one being decoded the vectored scan
    /// fetches (0 disables the prefetch pipeline). The window refills as one
    /// vectored call, so its groups' requests stay in flight together and
    /// amortize in a single modeled batch; the I/O overlaps the current row
    /// group's decode CPU and only the uncovered remainder is charged, as
    /// `io.prefetch`.
    pub prefetch_depth: usize,
    /// Tracer shared by the worker's cache and its split execution; the
    /// engine also parents its per-query spans here. Disabled by default.
    pub tracer: Tracer,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        Self {
            cache_capacity: ByteSize::gib(1).as_u64(),
            page_size: ByteSize::mib(1),
            enable_cache: true,
            enable_metadata_cache: true,
            metadata_cache_capacity: edgecache_columnar::metacache::DEFAULT_METADATA_CAPACITY,
            ssd: DeviceModel::local_ssd(),
            remote: DeviceModel::object_store(),
            decode_nanos_per_byte: 25,
            filter_nanos_per_row: 50,
            join_probe_nanos_per_row: 100,
            vectored_scan: true,
            prefetch_depth: 1,
            tracer: Tracer::disabled(),
        }
    }
}

/// A broadcast-join build side, prepared once per query by the coordinator:
/// dimension key → the dimension columns exposed to the query.
#[derive(Debug, Clone)]
pub struct PreparedJoin {
    /// Fact-side key column name.
    pub fact_key: String,
    /// Key → `(column name, value)` pairs of the (filtered) dimension row.
    pub map: Arc<std::collections::HashMap<i64, DimensionRow>>,
}

/// The `(column name, value)` pairs of one (filtered) dimension row.
pub type DimensionRow = Arc<Vec<(String, Value)>>;

/// Output of one split execution.
#[derive(Debug, Default)]
pub struct SplitOutput {
    /// Projected rows (non-aggregate queries).
    pub rows: Vec<Vec<Value>>,
    /// Partial aggregation state (aggregate queries).
    pub partial: Option<PartialAgg>,
    pub rows_scanned: u64,
    pub io_time: Duration,
    pub cpu_time: Duration,
    pub bytes_from_cache: u64,
    pub bytes_from_remote: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Per-stage latency attribution for this split: operator/stage name →
    /// simulated time charged (`io.cache_read`, `io.remote_read`,
    /// `cpu.decode`, `cpu.filter`, …).
    pub stage_breakdown: BTreeMap<&'static str, Duration>,
}

impl SplitOutput {
    /// Attributes `d` of simulated time to `stage` (no-op for zero time, so
    /// untouched stages stay out of the breakdown).
    fn charge_stage(&mut self, stage: &'static str, d: Duration) {
        if d > Duration::ZERO {
            *self.stage_breakdown.entry(stage).or_default() += d;
        }
    }
}

/// The I/O a single read call put on each device: SSD requests/bytes for
/// cache hits, remote requests/bytes for misses.
#[derive(Debug, Default, Clone, Copy)]
struct IoDelta {
    ssd_requests: u64,
    ssd_bytes: u64,
    remote_requests: u64,
    remote_bytes: u64,
}

/// Per-call I/O accounting shared between a scan-path reader (which appends
/// one [`IoDelta`] per read it issues) and the scan loop (which turns each
/// call into modeled device time — per call, because separate sequential
/// calls cannot pipeline against each other).
#[derive(Debug, Default)]
struct IoLog {
    entries: Mutex<Vec<IoDelta>>,
}

impl IoLog {
    fn push(&self, delta: IoDelta) {
        self.entries.lock().unwrap().push(delta);
    }

    /// Index marking "everything logged so far".
    fn mark(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// The entries appended since `mark`.
    fn since(&self, mark: usize) -> Vec<IoDelta> {
        self.entries.lock().unwrap()[mark..].to_vec()
    }
}

/// A range reader that serves through the worker's local cache.
struct CachedRangeReader<'a> {
    cache: &'a CacheManager,
    file: &'a SourceFile,
    remote: &'a dyn RemoteSource,
    log: Arc<IoLog>,
}

impl CachedRangeReader<'_> {
    fn log_call<T>(&self, read: impl FnOnce() -> Result<T>) -> Result<T> {
        let before = CacheCounters::snapshot(self.cache.metrics());
        let out = read()?;
        let d = CacheCounters::snapshot(self.cache.metrics()).minus(&before);
        self.log.push(IoDelta {
            ssd_requests: d.hits,
            ssd_bytes: d.bytes_from_cache,
            remote_requests: d.remote_requests,
            remote_bytes: d.bytes_from_remote,
        });
        Ok(out)
    }
}

impl RangeReader for CachedRangeReader<'_> {
    fn read(&self, offset: u64, len: u64) -> Result<Bytes> {
        self.log_call(|| self.cache.read(self.file, offset, len, self.remote))
    }

    fn read_vectored(&self, ranges: &[(u64, u64)]) -> Result<Vec<Bytes>> {
        self.log_call(|| self.cache.read_multi(self.file, ranges, self.remote))
    }

    fn len(&self) -> u64 {
        self.file.length
    }
}

/// A range reader that bypasses the cache (the scheduler's fallback path),
/// with its own request accounting. Its `read_vectored` still batches: the
/// row-group plan goes out as one ranged remote request batch, so the
/// requests amortize within a single logged call.
struct BypassRangeReader<'a> {
    remote: &'a dyn RemoteSource,
    path: &'a str,
    length: u64,
    requests: AtomicU64,
    bytes: AtomicU64,
    log: Arc<IoLog>,
}

impl RangeReader for BypassRangeReader<'_> {
    fn read(&self, offset: u64, len: u64) -> Result<Bytes> {
        let out = self.remote.read(self.path, offset, len)?;
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(out.len() as u64, Ordering::Relaxed);
        self.log.push(IoDelta {
            remote_requests: 1,
            remote_bytes: out.len() as u64,
            ..IoDelta::default()
        });
        Ok(out)
    }

    fn read_vectored(&self, ranges: &[(u64, u64)]) -> Result<Vec<Bytes>> {
        // A scan that bypasses the cache still issues its row-group plan as
        // one ranged remote request batch — the requests amortize within
        // the single logged call exactly like the cached path's coalesced
        // fetch batches do.
        let out = self.remote.read_ranges(self.path, ranges)?;
        let total: u64 = out.iter().map(|b| b.len() as u64).sum();
        self.requests.fetch_add(out.len() as u64, Ordering::Relaxed);
        self.bytes.fetch_add(total, Ordering::Relaxed);
        self.log.push(IoDelta {
            remote_requests: out.len() as u64,
            remote_bytes: total,
            ..IoDelta::default()
        });
        Ok(out)
    }

    fn len(&self) -> u64 {
        self.length
    }
}

/// A worker node.
pub struct Worker {
    id: String,
    cache: Option<CacheManager>,
    meta_cache: MetadataCache,
    config: WorkerConfig,
}

impl Worker {
    /// Creates a worker with an in-memory page store of the configured
    /// capacity.
    pub fn new(id: &str, config: WorkerConfig, clock: SharedClock) -> Result<Self> {
        let cache = if config.enable_cache && config.cache_capacity > 0 {
            Some(
                CacheManager::builder(CacheConfig::default().with_page_size(config.page_size))
                    .with_store(
                        std::sync::Arc::new(MemoryPageStore::new()),
                        config.cache_capacity,
                    )
                    .with_clock(clock)
                    .with_metrics(MetricRegistry::new(format!("{id}-cache")))
                    .with_tracer(config.tracer.clone())
                    .build()?,
            )
        } else {
            None
        };
        Ok(Self {
            id: id.to_string(),
            cache,
            meta_cache: MetadataCache::with_capacity(config.metadata_cache_capacity),
            config,
        })
    }

    /// The worker id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The worker's cache metrics, if caching is enabled.
    pub fn cache_metrics(&self) -> Option<&MetricRegistry> {
        self.cache.as_ref().map(|c| c.metrics())
    }

    /// The worker's metadata cache.
    pub fn metadata_cache(&self) -> &MetadataCache {
        &self.meta_cache
    }

    /// The worker's local cache manager, if enabled.
    pub fn cache(&self) -> Option<&CacheManager> {
        self.cache.as_ref()
    }

    /// Executes one split: scans `file` for `plan`, reading through the
    /// cache unless `use_cache` is false (scheduler fallback). `joins`
    /// carries the broadcast-join build sides prepared by the coordinator.
    pub fn execute_split(
        &self,
        file: &DataFile,
        partition_scope: &CacheScope,
        plan: &QueryPlan,
        joins: &[PreparedJoin],
        remote: &dyn RemoteSource,
        use_cache: bool,
    ) -> Result<SplitOutput> {
        self.execute_split_traced(
            file,
            partition_scope,
            plan,
            joins,
            remote,
            use_cache,
            SpanId::NONE,
        )
    }

    /// [`Worker::execute_split`] with a trace parent: emits an `olap.split`
    /// span whose children lay the split's per-stage modeled times out on a
    /// virtual timeline, so OLAP operator costs land in the same per-stage
    /// histograms as the cache's read-path spans.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_split_traced(
        &self,
        file: &DataFile,
        partition_scope: &CacheScope,
        plan: &QueryPlan,
        joins: &[PreparedJoin],
        remote: &dyn RemoteSource,
        use_cache: bool,
        parent: SpanId,
    ) -> Result<SplitOutput> {
        let source_file = SourceFile::new(
            &file.path,
            file.version,
            file.length,
            partition_scope.clone(),
        );
        let out = match (use_cache, self.cache.as_ref()) {
            (true, Some(cache)) => {
                let before = CacheCounters::snapshot(cache.metrics());
                let log = Arc::new(IoLog::default());
                let reader = CachedRangeReader {
                    cache,
                    file: &source_file,
                    remote,
                    log: Arc::clone(&log),
                };
                let mut out = self.scan(reader, &log, file, plan, joins, parent)?;
                let delta = CacheCounters::snapshot(cache.metrics()).minus(&before);
                out.bytes_from_cache = delta.bytes_from_cache;
                out.bytes_from_remote = delta.bytes_from_remote;
                out.cache_hits = delta.hits;
                out.cache_misses = delta.misses;
                out
            }
            _ => {
                let log = Arc::new(IoLog::default());
                let reader = BypassRangeReader {
                    remote,
                    path: &file.path,
                    length: file.length,
                    requests: AtomicU64::new(0),
                    bytes: AtomicU64::new(0),
                    log: Arc::clone(&log),
                };
                let mut out = self.scan(&reader, &log, file, plan, joins, parent)?;
                out.bytes_from_remote = reader.bytes.load(Ordering::Relaxed);
                out.cache_misses = reader.requests.load(Ordering::Relaxed);
                out
            }
        };
        self.emit_split_spans(file, &out, parent);
        Ok(out)
    }

    /// Lays the split's per-stage modeled times out as spans on a virtual
    /// timeline starting at the current clock reading. Time is *simulated*
    /// (the clock does not advance during a scan), so stages are placed
    /// back-to-back; their durations — not their absolute positions — are
    /// the signal.
    fn emit_split_spans(&self, file: &DataFile, out: &SplitOutput, parent: SpanId) {
        let tracer = &self.config.tracer;
        if !tracer.is_enabled() {
            return;
        }
        let start = tracer.now_nanos().unwrap_or(0);
        let total: u64 = out
            .stage_breakdown
            .values()
            .map(|d| d.as_nanos() as u64)
            .sum();
        let split = tracer.record_interval(
            parent,
            "olap.split",
            start,
            start + total,
            vec![
                ("file", file.path.clone()),
                ("rows", out.rows_scanned.to_string()),
                ("cache_hits", out.cache_hits.to_string()),
                ("cache_misses", out.cache_misses.to_string()),
            ],
        );
        let mut t = start;
        for (&stage, &d) in &out.stage_breakdown {
            let d = d.as_nanos() as u64;
            tracer.record_interval(split, stage, t, t + d, Vec::new());
            t += d;
        }
    }

    /// Modeled device time one logged read call cost: `(ssd, remote)`.
    fn modeled_io(&self, d: &IoDelta) -> (Duration, Duration) {
        (
            self.config.ssd.batch_read_time(d.ssd_requests, d.ssd_bytes),
            self.config
                .remote
                .batch_read_time(d.remote_requests, d.remote_bytes),
        )
    }

    /// The ScanFilterProject + join-probe + partial-agg pipeline over one
    /// file.
    ///
    /// `log` is the per-call I/O ledger the reader appends to; each call is
    /// modeled independently (sequential calls cannot pipeline against each
    /// other, while requests *within* one call already amortize inside
    /// `DeviceModel::batch_read_time`). On the vectored path the scan keeps
    /// a row-group pipeline: the lookahead window's fetches are issued
    /// before the current group decodes, and only the part of their modeled
    /// time not hidden behind that decode is charged, as `io.prefetch`.
    fn scan<R: RangeReader>(
        &self,
        reader: R,
        log: &IoLog,
        file: &DataFile,
        plan: &QueryPlan,
        joins: &[PreparedJoin],
        parent: SpanId,
    ) -> Result<SplitOutput> {
        let mut cpu = Duration::ZERO;
        let mut out = SplitOutput::default();
        let key = format!("{}@{}", file.path, file.version);
        let colf = if self.config.enable_metadata_cache {
            let parsed_before = self.meta_cache.bytes_parsed();
            let r = ColfReader::open_with_cache(reader, &self.meta_cache, &key)?;
            let parsed = self.meta_cache.bytes_parsed() - parsed_before;
            let parse = MetadataCache::parse_cost(parsed);
            cpu += parse;
            out.charge_stage("cpu.metadata_parse", parse);
            r
        } else {
            let r = ColfReader::open(reader)?;
            let parse = MetadataCache::parse_cost(r.metadata().footer_len);
            cpu += parse;
            out.charge_stage("cpu.metadata_parse", parse);
            r
        };

        // Footer/tail reads issued while opening are demand I/O.
        let mut demand_ssd = Duration::ZERO;
        let mut demand_remote = Duration::ZERO;
        let mut prefetch_io = Duration::ZERO;
        for d in log.since(0) {
            let (s, r) = self.modeled_io(&d);
            demand_ssd += s;
            demand_remote += r;
        }

        let needed = plan.required_columns();
        let mut column_indexes = Vec::with_capacity(needed.len());
        for name in &needed {
            let idx = colf.schema().index_of(name).ok_or_else(|| {
                Error::InvalidArgument(format!("unknown column `{name}` in `{}`", file.path))
            })?;
            column_indexes.push((name.clone(), idx));
        }
        let proj: Vec<usize> = column_indexes.iter().map(|&(_, idx)| idx).collect();

        let mut partial = if plan.aggregates.is_empty() {
            None
        } else {
            Some(PartialAgg::new(&plan.aggregates))
        };

        let pruned = colf.prune(plan.predicate.as_ref());
        let depth = if self.config.vectored_scan {
            self.config.prefetch_depth
        } else {
            0
        };
        let tracer = &self.config.tracer;
        // Row groups fetched ahead of the decode position, oldest first.
        let mut staged: VecDeque<Vec<Bytes>> = VecDeque::new();
        let mut next_fetch = 0usize;

        for (pos, &rg) in pruned.iter().enumerate() {
            let rows = colf.metadata().row_groups[rg].rows as usize;
            let decoded_bytes: u64 = proj
                .iter()
                .map(|&idx| colf.metadata().row_groups[rg].chunks[idx].len)
                .sum();
            let decode = Duration::from_nanos(decoded_bytes * self.config.decode_nanos_per_byte);

            let decoded: Vec<ColumnData> = if self.config.vectored_scan {
                // Demand-fetch unless the pipeline staged this row group.
                // The cold start primes the whole lookahead window in ONE
                // vectored call — this group plus the next `depth` — the way
                // an async reader fills its pipeline with the first request
                // batch rather than paying a round trip before lookahead
                // starts.
                if staged.is_empty() {
                    let last = (pos + depth).min(pruned.len() - 1);
                    let mut window: Vec<(u64, u64)> = Vec::new();
                    let mut arity: Vec<usize> = Vec::new();
                    for &g in &pruned[pos..=last] {
                        let ranges = colf.chunk_ranges(g, &proj)?;
                        arity.push(ranges.len());
                        window.extend(ranges);
                    }
                    let mark = log.mark();
                    let mut parts = colf.reader().read_vectored(&window)?.into_iter();
                    for n in arity {
                        staged.push_back(parts.by_ref().take(n).collect());
                    }
                    for d in log.since(mark) {
                        let (s, r) = self.modeled_io(&d);
                        demand_ssd += s;
                        demand_remote += r;
                    }
                    next_fetch = last + 1;
                }
                let raws = staged.pop_front().expect("staged above");

                // Refill the lookahead window once it has drained to half
                // depth. The whole refill is issued as ONE vectored call —
                // the pipeline keeps `depth` row groups' requests in flight
                // together, so they amortize inside a single modeled batch
                // (exactly how a reader with `depth` outstanding ranged GETs
                // behaves) instead of paying one round trip per group. The
                // I/O overlaps this row group's decode below.
                let issue_start = tracer.now_nanos();
                let mut pf_time = Duration::ZERO;
                let mut pf_fragments = 0usize;
                if staged.len() * 2 <= depth {
                    let mut window: Vec<(u64, u64)> = Vec::new();
                    let mut arity: Vec<usize> = Vec::new();
                    while next_fetch < pruned.len() && next_fetch <= pos + depth {
                        let ranges = colf.chunk_ranges(pruned[next_fetch], &proj)?;
                        arity.push(ranges.len());
                        window.extend(ranges);
                        next_fetch += 1;
                    }
                    if !window.is_empty() {
                        pf_fragments = window.len();
                        let mark = log.mark();
                        let mut parts = colf.reader().read_vectored(&window)?.into_iter();
                        for n in arity {
                            staged.push_back(parts.by_ref().take(n).collect());
                        }
                        for d in log.since(mark) {
                            let (s, r) = self.modeled_io(&d);
                            pf_time += s + r;
                        }
                    }
                }
                if pf_fragments > 0 {
                    if let (Some(t0), Some(t1)) = (issue_start, tracer.now_nanos()) {
                        tracer.record_interval(
                            parent,
                            "prefetch_issue",
                            t0,
                            t1,
                            vec![
                                ("row_group", pruned[next_fetch - 1].to_string()),
                                ("fragments", pf_fragments.to_string()),
                            ],
                        );
                    }
                }
                // Only the prefetch time the decode can't hide is charged.
                let residual = pf_time.saturating_sub(decode);
                if residual > Duration::ZERO {
                    out.charge_stage("io.prefetch", residual);
                    prefetch_io += residual;
                }

                colf.decode_chunks(rg, &proj, raws)?
            } else {
                // Sequential per-column baseline: one demand read per chunk.
                let mut cols = Vec::with_capacity(proj.len());
                for &idx in &proj {
                    let mark = log.mark();
                    cols.push(colf.read_column(rg, idx)?);
                    for d in log.since(mark) {
                        let (s, r) = self.modeled_io(&d);
                        demand_ssd += s;
                        demand_remote += r;
                    }
                }
                cols
            };
            let columns: Vec<(String, ColumnData)> = column_indexes
                .iter()
                .map(|(name, _)| name.clone())
                .zip(decoded)
                .collect();
            out.rows_scanned += rows as u64;
            cpu += decode;
            out.charge_stage("cpu.decode", decode);

            if joins.is_empty() {
                // Fast columnar path.
                let keep: Vec<usize> = match &plan.predicate {
                    Some(p) => {
                        let filter =
                            Duration::from_nanos(rows as u64 * self.config.filter_nanos_per_row);
                        cpu += filter;
                        out.charge_stage("cpu.filter", filter);
                        let refs: Vec<(&str, &ColumnData)> =
                            columns.iter().map(|(n, d)| (n.as_str(), d)).collect();
                        p.matching_rows(&refs, rows)
                    }
                    None => (0..rows).collect(),
                };
                if keep.is_empty() {
                    continue;
                }
                match &mut partial {
                    Some(agg) => {
                        agg.accumulate(plan, &columns, &keep)?;
                    }
                    None => {
                        for &row in &keep {
                            let mut values = Vec::with_capacity(plan.projection.len());
                            for name in &plan.projection {
                                let (_, data) = columns
                                    .iter()
                                    .find(|(n, _)| n == name)
                                    .expect("projection in required columns");
                                values.push(data.value(row));
                            }
                            out.rows.push(values);
                        }
                    }
                }
                continue;
            }

            // Join path: probe build sides per row, evaluate the predicate
            // over the combined (fact ∪ dimension) row, then accumulate.
            let probe = Duration::from_nanos(
                rows as u64 * joins.len() as u64 * self.config.join_probe_nanos_per_row,
            );
            cpu += probe;
            out.charge_stage("cpu.join_probe", probe);
            if plan.predicate.is_some() {
                let filter = Duration::from_nanos(rows as u64 * self.config.filter_nanos_per_row);
                cpu += filter;
                out.charge_stage("cpu.filter", filter);
            }
            let find = |name: &str| columns.iter().find(|(n, _)| n == name).map(|(_, d)| d);
            for row in 0..rows {
                let mut dim_values: Vec<(&str, Value)> = Vec::new();
                let mut dropped = false;
                for pj in joins {
                    let key_col = find(&pj.fact_key).ok_or_else(|| {
                        Error::InvalidArgument(format!("join key `{}` not read", pj.fact_key))
                    })?;
                    let key = match key_col.value(row) {
                        Value::Int64(k) => k,
                        other => {
                            return Err(Error::InvalidArgument(format!(
                                "join key `{}` must be int64, got {}",
                                pj.fact_key,
                                other.column_type()
                            )))
                        }
                    };
                    match pj.map.get(&key) {
                        Some(vals) => {
                            dim_values.extend(vals.iter().map(|(n, v)| (n.as_str(), v.clone())))
                        }
                        None => {
                            dropped = true;
                            break;
                        }
                    }
                }
                if dropped {
                    continue;
                }
                let value_of = |name: &str| -> Option<Value> {
                    dim_values
                        .iter()
                        .find(|(n, _)| *n == name)
                        .map(|(_, v)| v.clone())
                        .or_else(|| find(name).map(|d| d.value(row)))
                };
                if let Some(p) = &plan.predicate {
                    if !p.matches(&value_of) {
                        continue;
                    }
                }
                match &mut partial {
                    Some(agg) => agg.accumulate_row(plan, &value_of)?,
                    None => {
                        let mut values = Vec::with_capacity(plan.projection.len());
                        for name in &plan.projection {
                            values.push(value_of(name).ok_or_else(|| {
                                Error::InvalidArgument(format!("unknown column `{name}`"))
                            })?);
                        }
                        out.rows.push(values);
                    }
                }
            }
        }
        out.charge_stage("io.cache_read", demand_ssd);
        out.charge_stage("io.remote_read", demand_remote);
        out.io_time = demand_ssd + demand_remote + prefetch_io;
        out.partial = partial;
        out.cpu_time = cpu;
        Ok(out)
    }
}

/// Cache counter snapshot used for per-split attribution.
#[derive(Debug, Default, Clone, Copy)]
struct CacheCounters {
    hits: u64,
    misses: u64,
    bytes_from_cache: u64,
    bytes_from_remote: u64,
    remote_requests: u64,
}

impl CacheCounters {
    fn snapshot(m: &MetricRegistry) -> Self {
        Self {
            hits: m.counter("hits").get(),
            misses: m.counter("misses").get(),
            bytes_from_cache: m.counter("bytes_from_cache").get(),
            bytes_from_remote: m.counter("bytes_from_remote").get(),
            remote_requests: m.counter("remote_requests").get(),
        }
    }

    fn minus(&self, other: &Self) -> Self {
        Self {
            hits: self.hits - other.hits,
            misses: self.misses - other.misses,
            bytes_from_cache: self.bytes_from_cache - other.bytes_from_cache,
            bytes_from_remote: self.bytes_from_remote - other.bytes_from_remote,
            remote_requests: self.remote_requests - other.remote_requests,
        }
    }
}

/// Partial (and mergeable) aggregation state.
#[derive(Debug, Clone)]
pub struct PartialAgg {
    /// Group key (None for global aggregation) → accumulator per aggregate.
    groups: BTreeMap<Option<String>, Vec<AggState>>,
    n_aggs: usize,
}

#[derive(Debug, Clone)]
enum AggState {
    Count(u64),
    Sum(f64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: u64 },
}

impl AggState {
    fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(0.0),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
        }
    }

    fn update(&mut self, v: Option<&Value>) -> Result<()> {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum(s) => *s += numeric(v)?,
            AggState::Avg { sum, n } => {
                *sum += numeric(v)?;
                *n += 1;
            }
            AggState::Min(cur) => {
                if let Some(v) = v {
                    let replace = match cur {
                        None => true,
                        Some(c) => v.partial_cmp_same_type(c) == Some(std::cmp::Ordering::Less),
                    };
                    if replace {
                        *cur = Some(v.clone());
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(v) = v {
                    let replace = match cur {
                        None => true,
                        Some(c) => v.partial_cmp_same_type(c) == Some(std::cmp::Ordering::Greater),
                    };
                    if replace {
                        *cur = Some(v.clone());
                    }
                }
            }
        }
        Ok(())
    }

    fn merge(&mut self, other: &AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum(a), AggState::Sum(b)) => *a += b,
            (AggState::Avg { sum: s1, n: n1 }, AggState::Avg { sum: s2, n: n2 }) => {
                *s1 += s2;
                *n1 += n2;
            }
            (AggState::Min(a), AggState::Min(Some(b))) => {
                let replace = match a {
                    None => true,
                    Some(c) => b.partial_cmp_same_type(c) == Some(std::cmp::Ordering::Less),
                };
                if replace {
                    *a = Some(b.clone());
                }
            }
            (AggState::Max(a), AggState::Max(Some(b))) => {
                let replace = match a {
                    None => true,
                    Some(c) => b.partial_cmp_same_type(c) == Some(std::cmp::Ordering::Greater),
                };
                if replace {
                    *a = Some(b.clone());
                }
            }
            (AggState::Min(_), AggState::Min(None)) | (AggState::Max(_), AggState::Max(None)) => {}
            _ => panic!("merging mismatched aggregate states"),
        }
    }

    fn finalize(&self) -> Value {
        match self {
            AggState::Count(n) => Value::Int64(*n as i64),
            AggState::Sum(s) => Value::Float64(*s),
            AggState::Avg { sum, n } => Value::Float64(if *n == 0 { 0.0 } else { sum / *n as f64 }),
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Int64(0)),
        }
    }
}

fn numeric(v: Option<&Value>) -> Result<f64> {
    match v {
        Some(Value::Int64(x)) => Ok(*x as f64),
        Some(Value::Float64(x)) => Ok(*x),
        Some(Value::Bool(b)) => Ok(*b as u8 as f64),
        Some(Value::Utf8(_)) | None => Err(Error::InvalidArgument(
            "non-numeric value in numeric aggregate".into(),
        )),
    }
}

impl PartialAgg {
    /// Fresh state for the given aggregates.
    pub fn new(aggregates: &[AggExpr]) -> Self {
        Self {
            groups: BTreeMap::new(),
            n_aggs: aggregates.len(),
        }
    }

    fn accumulate(
        &mut self,
        plan: &QueryPlan,
        columns: &[(String, ColumnData)],
        keep: &[usize],
    ) -> Result<()> {
        let find = |name: &str| columns.iter().find(|(n, _)| n == name).map(|(_, d)| d);
        let group_col = match &plan.group_by {
            Some(g) => {
                Some(find(g).ok_or_else(|| Error::InvalidArgument(format!("group column `{g}`")))?)
            }
            None => None,
        };
        for &row in keep {
            let key = group_col.map(|c| c.value(row).to_string());
            let states = self.groups.entry(key).or_insert_with(|| {
                plan.aggregates
                    .iter()
                    .map(|a| AggState::new(a.func))
                    .collect()
            });
            for (state, agg) in states.iter_mut().zip(&plan.aggregates) {
                let v = if agg.column.is_empty() {
                    None
                } else {
                    find(&agg.column).map(|c| c.value(row))
                };
                state.update(v.as_ref())?;
            }
        }
        Ok(())
    }

    /// Accumulates one row resolved through `value_of` (the join path's
    /// combined fact ∪ dimension view).
    pub fn accumulate_row(
        &mut self,
        plan: &QueryPlan,
        value_of: &dyn Fn(&str) -> Option<Value>,
    ) -> Result<()> {
        let key = match &plan.group_by {
            Some(g) => Some(
                value_of(g)
                    .ok_or_else(|| Error::InvalidArgument(format!("group column `{g}`")))?
                    .to_string(),
            ),
            None => None,
        };
        let states = self.groups.entry(key).or_insert_with(|| {
            plan.aggregates
                .iter()
                .map(|a| AggState::new(a.func))
                .collect()
        });
        for (state, agg) in states.iter_mut().zip(&plan.aggregates) {
            let v = if agg.column.is_empty() {
                None
            } else {
                value_of(&agg.column)
            };
            state.update(v.as_ref())?;
        }
        Ok(())
    }

    /// Merges another partial state (from a different split).
    pub fn merge(&mut self, other: &PartialAgg) {
        assert_eq!(self.n_aggs, other.n_aggs);
        for (key, states) in &other.groups {
            match self.groups.get_mut(key) {
                Some(mine) => {
                    for (a, b) in mine.iter_mut().zip(states) {
                        a.merge(b);
                    }
                }
                None => {
                    self.groups.insert(key.clone(), states.clone());
                }
            }
        }
    }

    /// Finalizes into result rows: `[group_key?, agg0, agg1, ...]`.
    pub fn finalize(&self) -> Vec<Vec<Value>> {
        self.groups
            .iter()
            .map(|(key, states)| {
                let mut row = Vec::with_capacity(states.len() + 1);
                if let Some(k) = key {
                    row.push(Value::Utf8(k.clone()));
                }
                row.extend(states.iter().map(AggState::finalize));
                row
            })
            .collect()
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no rows were accumulated.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Number of aggregate states per group.
    pub fn n_aggs(&self) -> usize {
        self.n_aggs
    }

    /// Reorders the per-group aggregate states: output position `i` takes
    /// input position `perm[i]`. Exact, not approximate — each state
    /// accumulates its own aggregate independently of its position, so the
    /// result cache can store canonical-order partials and convert to any
    /// equivalent plan's order losslessly.
    pub fn permute(&self, perm: &[usize]) -> PartialAgg {
        assert_eq!(perm.len(), self.n_aggs);
        PartialAgg {
            groups: self
                .groups
                .iter()
                .map(|(key, states)| {
                    (
                        key.clone(),
                        perm.iter().map(|&i| states[i].clone()).collect(),
                    )
                })
                .collect(),
            n_aggs: self.n_aggs,
        }
    }

    /// Estimated resident footprint of this state, the currency of the
    /// result cache's byte budget.
    pub fn approx_bytes(&self) -> u64 {
        // Map-node overhead per group plus the per-state accumulators.
        let mut total = 48u64;
        for (key, states) in &self.groups {
            total += 56 + key.as_ref().map_or(0, |k| k.len() as u64);
            for state in states {
                total += 24
                    + match state {
                        AggState::Min(Some(Value::Utf8(s)))
                        | AggState::Max(Some(Value::Utf8(s))) => s.len() as u64,
                        _ => 0,
                    };
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgecache_columnar::{ColfWriter, ColumnType, Predicate, Schema};
    use edgecache_common::clock::SimClock;
    use parking_lot::Mutex as PlMutex;
    use std::collections::HashMap;
    use std::sync::Arc;

    struct MapRemote {
        files: PlMutex<HashMap<String, Bytes>>,
    }

    impl RemoteSource for MapRemote {
        fn read(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
            let files = self.files.lock();
            let data = files
                .get(path)
                .ok_or_else(|| Error::NotFound(path.into()))?;
            let total = data.len() as u64;
            let start = offset.min(total) as usize;
            let end = offset.saturating_add(len).min(total) as usize;
            Ok(data.slice(start..end))
        }
    }

    fn sample_remote() -> (MapRemote, DataFile) {
        let schema = Schema::new(vec![
            ("id", ColumnType::Int64),
            ("region", ColumnType::Utf8),
            ("amount", ColumnType::Float64),
        ]);
        let mut w = ColfWriter::new(schema, 25);
        for i in 0..100i64 {
            w.push_row(vec![
                Value::Int64(i),
                Value::Utf8(format!("r{}", i % 4)),
                Value::Float64(i as f64),
            ])
            .unwrap();
        }
        let bytes = w.finish().unwrap();
        let file = DataFile {
            path: "/t/f0".into(),
            version: 1,
            length: bytes.len() as u64,
        };
        let remote = MapRemote {
            files: PlMutex::new(HashMap::from([(file.path.clone(), bytes)])),
        };
        (remote, file)
    }

    fn worker() -> Worker {
        Worker::new(
            "w0",
            WorkerConfig {
                page_size: ByteSize::kib(1),
                ..Default::default()
            },
            Arc::new(SimClock::new()),
        )
        .unwrap()
    }

    #[test]
    fn projection_query_returns_rows() {
        let (remote, file) = sample_remote();
        let w = worker();
        let plan =
            QueryPlan::scan("s", "t", &["id"]).filter(Predicate::Lt("id".into(), Value::Int64(3)));
        let out = w
            .execute_split(
                &file,
                &CacheScope::table("s", "t"),
                &plan,
                &[],
                &remote,
                true,
            )
            .unwrap();
        assert_eq!(
            out.rows,
            vec![
                vec![Value::Int64(0)],
                vec![Value::Int64(1)],
                vec![Value::Int64(2)]
            ]
        );
        // Predicate pruning means only the first row group is scanned.
        assert_eq!(out.rows_scanned, 25);
        assert!(out.io_time > Duration::ZERO);
        assert!(out.cpu_time > Duration::ZERO);
    }

    #[test]
    fn aggregate_query_partial_state() {
        let (remote, file) = sample_remote();
        let w = worker();
        let plan = QueryPlan::scan("s", "t", &[])
            .aggregate(vec![AggExpr::count(), AggExpr::sum("amount")])
            .group("region");
        let out = w
            .execute_split(
                &file,
                &CacheScope::table("s", "t"),
                &plan,
                &[],
                &remote,
                true,
            )
            .unwrap();
        let rows = out.partial.unwrap().finalize();
        assert_eq!(rows.len(), 4);
        // Each region has 25 rows.
        for row in &rows {
            assert_eq!(row[1], Value::Int64(25));
        }
    }

    #[test]
    fn warm_cache_shifts_bytes_to_ssd() {
        let (remote, file) = sample_remote();
        let w = worker();
        let plan = QueryPlan::scan("s", "t", &["id", "amount"]);
        let cold = w
            .execute_split(
                &file,
                &CacheScope::table("s", "t"),
                &plan,
                &[],
                &remote,
                true,
            )
            .unwrap();
        assert!(cold.bytes_from_remote > 0);
        let warm = w
            .execute_split(
                &file,
                &CacheScope::table("s", "t"),
                &plan,
                &[],
                &remote,
                true,
            )
            .unwrap();
        assert_eq!(warm.bytes_from_remote, 0, "fully cached");
        assert!(warm.bytes_from_cache > 0);
        assert!(warm.io_time < cold.io_time, "SSD is cheaper than remote");
    }

    #[test]
    fn bypass_never_touches_cache() {
        let (remote, file) = sample_remote();
        let w = worker();
        let plan = QueryPlan::scan("s", "t", &["id"]);
        let out = w
            .execute_split(
                &file,
                &CacheScope::table("s", "t"),
                &plan,
                &[],
                &remote,
                false,
            )
            .unwrap();
        assert_eq!(out.bytes_from_cache, 0);
        assert!(out.bytes_from_remote > 0);
        assert_eq!(w.cache_metrics().unwrap().counter("puts").get(), 0);
    }

    #[test]
    fn metadata_cache_charges_parse_once() {
        let (remote, file) = sample_remote();
        let w = worker();
        let plan = QueryPlan::scan("s", "t", &["id"]);
        let scope = CacheScope::table("s", "t");
        let first = w
            .execute_split(&file, &scope, &plan, &[], &remote, true)
            .unwrap();
        let second = w
            .execute_split(&file, &scope, &plan, &[], &remote, true)
            .unwrap();
        assert!(second.cpu_time < first.cpu_time, "no footer parse on reuse");
        assert_eq!(w.metadata_cache().misses(), 1);
        assert_eq!(w.metadata_cache().hits(), 1);
    }

    #[test]
    fn partial_agg_merge_matches_single_pass() {
        let aggs = vec![
            AggExpr::count(),
            AggExpr::sum("x"),
            AggExpr::min("x"),
            AggExpr::max("x"),
            AggExpr::avg("x"),
        ];
        let plan = QueryPlan::scan("s", "t", &[]).aggregate(aggs.clone());
        let col = |vals: Vec<i64>| vec![("x".to_string(), ColumnData::Int64(vals))];

        let mut single = PartialAgg::new(&aggs);
        single
            .accumulate(&plan, &col(vec![1, 2, 3, 4, 5, 6]), &[0, 1, 2, 3, 4, 5])
            .unwrap();

        let mut a = PartialAgg::new(&aggs);
        a.accumulate(&plan, &col(vec![1, 2, 3]), &[0, 1, 2])
            .unwrap();
        let mut b = PartialAgg::new(&aggs);
        b.accumulate(&plan, &col(vec![4, 5, 6]), &[0, 1, 2])
            .unwrap();
        a.merge(&b);

        assert_eq!(a.finalize(), single.finalize());
        let row = &a.finalize()[0];
        assert_eq!(row[0], Value::Int64(6));
        assert_eq!(row[1], Value::Float64(21.0));
        assert_eq!(row[2], Value::Int64(1));
        assert_eq!(row[3], Value::Int64(6));
        assert_eq!(row[4], Value::Float64(3.5));
    }

    /// A remote that charges virtual latency per request, so modeled spans
    /// get real (virtual) extents.
    struct SlowRemote {
        inner: MapRemote,
        clock: Arc<SimClock>,
        latency: Duration,
    }

    impl RemoteSource for SlowRemote {
        fn read(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
            self.clock.advance(self.latency);
            self.inner.read(path, offset, len)
        }
    }

    fn worker_with(config: WorkerConfig) -> Worker {
        Worker::new("w0", config, Arc::new(SimClock::new())).unwrap()
    }

    fn agg_plan() -> QueryPlan {
        QueryPlan::scan("s", "t", &[])
            .aggregate(vec![
                AggExpr::count(),
                AggExpr::sum("amount"),
                AggExpr::min("id"),
            ])
            .group("region")
    }

    #[test]
    fn vectored_scan_matches_sequential_baseline() {
        let (remote, file) = sample_remote();
        let scope = CacheScope::table("s", "t");
        let vectored = worker_with(WorkerConfig {
            page_size: ByteSize::kib(1),
            ..Default::default()
        });
        let sequential = worker_with(WorkerConfig {
            page_size: ByteSize::kib(1),
            vectored_scan: false,
            ..Default::default()
        });
        let plan = agg_plan();
        let a = vectored
            .execute_split(&file, &scope, &plan, &[], &remote, true)
            .unwrap();
        let b = sequential
            .execute_split(&file, &scope, &plan, &[], &remote, true)
            .unwrap();
        assert_eq!(
            a.partial.as_ref().unwrap().finalize(),
            b.partial.as_ref().unwrap().finalize()
        );
        assert_eq!(a.rows_scanned, b.rows_scanned);
        assert_eq!(a.bytes_from_remote, b.bytes_from_remote);
        assert!(
            a.io_time < b.io_time,
            "vectored cold scan must beat per-column sequential ({:?} vs {:?})",
            a.io_time,
            b.io_time
        );
    }

    #[test]
    fn prefetch_pipeline_hides_io_behind_decode() {
        let (remote, file) = sample_remote();
        let scope = CacheScope::table("s", "t");
        let plan = agg_plan();
        let no_prefetch = worker_with(WorkerConfig {
            page_size: ByteSize::kib(1),
            prefetch_depth: 0,
            ..Default::default()
        });
        let pipelined = worker_with(WorkerConfig {
            page_size: ByteSize::kib(1),
            prefetch_depth: 1,
            ..Default::default()
        });
        let flat = no_prefetch
            .execute_split(&file, &scope, &plan, &[], &remote, true)
            .unwrap();
        let deep = pipelined
            .execute_split(&file, &scope, &plan, &[], &remote, true)
            .unwrap();
        assert_eq!(
            flat.partial.as_ref().unwrap().finalize(),
            deep.partial.as_ref().unwrap().finalize()
        );
        assert!(
            deep.io_time < flat.io_time,
            "prefetch overlap must shrink modeled I/O ({:?} vs {:?})",
            deep.io_time,
            flat.io_time
        );
        assert!(deep.stage_breakdown.contains_key("io.prefetch"));
        assert!(!flat.stage_breakdown.contains_key("io.prefetch"));
    }

    #[test]
    fn split_stage_spans_partition_the_split_exactly() {
        let (remote, file) = sample_remote();
        let clock = Arc::new(SimClock::new());
        let tracer = Tracer::enabled(clock.clone());
        let w = Worker::new(
            "w0",
            WorkerConfig {
                page_size: ByteSize::kib(1),
                tracer: tracer.clone(),
                ..Default::default()
            },
            clock,
        )
        .unwrap();
        let plan = agg_plan();
        w.execute_split_traced(
            &file,
            &CacheScope::table("s", "t"),
            &plan,
            &[],
            &remote,
            true,
            SpanId::NONE,
        )
        .unwrap();
        let records = tracer.records();
        let split = records
            .iter()
            .find(|r| r.name == "olap.split")
            .expect("olap.split span");
        let children: Vec<_> = records.iter().filter(|r| r.parent == split.id).collect();
        let names: Vec<_> = children.iter().map(|r| r.name).collect();
        assert!(names.contains(&"io.prefetch"), "stages: {names:?}");
        assert!(names.contains(&"io.remote_read"), "stages: {names:?}");
        assert!(names.contains(&"cpu.decode"), "stages: {names:?}");
        let stage_sum: u64 = children.iter().map(|r| r.end_nanos - r.start_nanos).sum();
        assert_eq!(
            stage_sum,
            split.end_nanos - split.start_nanos,
            "split children must partition the split span exactly"
        );
    }

    #[test]
    fn prefetch_issue_spans_cover_their_vectored_reads_exactly() {
        // A file large enough that mid-file row groups sit outside both the
        // cold-start window's page-aligned fetch and the 64 KiB tail
        // over-read done at open — so refill prefetches actually miss.
        let schema = Schema::new(vec![
            ("id", ColumnType::Int64),
            ("region", ColumnType::Utf8),
            ("amount", ColumnType::Float64),
        ]);
        let mut wtr = ColfWriter::new(schema, 3_000);
        for i in 0..12_000i64 {
            wtr.push_row(vec![
                Value::Int64(i),
                Value::Utf8(format!("r{}", i % 4)),
                Value::Float64(i as f64),
            ])
            .unwrap();
        }
        let bytes = wtr.finish().unwrap();
        let file = DataFile {
            path: "/t/big".into(),
            version: 1,
            length: bytes.len() as u64,
        };
        let inner = MapRemote {
            files: PlMutex::new(HashMap::from([(file.path.clone(), bytes)])),
        };
        let clock = Arc::new(SimClock::new());
        let remote = SlowRemote {
            inner,
            clock: clock.clone(),
            latency: Duration::from_micros(750),
        };
        let tracer = Tracer::enabled(clock.clone());
        let w = Worker::new(
            "w0",
            WorkerConfig {
                page_size: ByteSize::kib(4),
                tracer: tracer.clone(),
                ..Default::default()
            },
            clock,
        )
        .unwrap();
        let plan = agg_plan();
        w.execute_split(
            &file,
            &CacheScope::table("s", "t"),
            &plan,
            &[],
            &remote,
            true,
        )
        .unwrap();
        let records = tracer.records();
        let issues: Vec<_> = records
            .iter()
            .filter(|r| r.name == "prefetch_issue")
            .collect();
        // 4 row groups, depth 1: the cold start primes groups 0..=1 in one
        // demand call, so groups 2 and 3 ride the pipeline.
        assert_eq!(issues.len(), 2);
        assert!(
            issues.iter().any(|i| i.end_nanos > i.start_nanos),
            "at least one prefetch must advance virtual time (cold misses)"
        );
        for issue in issues {
            let covered: u64 = records
                .iter()
                .filter(|r| {
                    r.name == "cache.read_multi"
                        && r.parent == 0
                        && r.start_nanos >= issue.start_nanos
                        && r.end_nanos <= issue.end_nanos
                })
                .map(|r| r.end_nanos - r.start_nanos)
                .sum();
            assert_eq!(
                covered,
                issue.end_nanos - issue.start_nanos,
                "prefetch_issue must span exactly the vectored reads it issued"
            );
        }
    }

    #[test]
    fn unknown_column_is_an_error() {
        let (remote, file) = sample_remote();
        let w = worker();
        let plan = QueryPlan::scan("s", "t", &["nonexistent"]);
        assert!(w
            .execute_split(
                &file,
                &CacheScope::table("s", "t"),
                &plan,
                &[],
                &remote,
                true
            )
            .is_err());
    }
}
