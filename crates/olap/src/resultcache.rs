//! The query-fragment result cache (ROADMAP item 5(b), per "Semantic
//! Caching for OLAP"): repeated aggregations skip the page cache, the SSD,
//! and the remote store altogether.
//!
//! A [`QueryPlan`] is canonicalized — associative `AND`/`OR` chains are
//! flattened and their operands sorted, aggregates are sorted with the
//! permutation recorded, literals render by exact bit pattern, and
//! result-irrelevant parts (projection, partition pruning, `LIMIT`) are
//! dropped — into a stable [`Fingerprint`]. Cached values are **per-split
//! partial aggregates** keyed by `(fingerprint, path@version)`:
//!
//! * split granularity means two different queries over the same canonical
//!   shape share work split by split, and a partition append only re-scans
//!   the newly added files;
//! * the `path@version` half rides the exact invalidation discipline the
//!   metadata cache already uses, so file rewrites miss naturally and the
//!   catalog's stale-file listeners purge the garbage eagerly;
//! * join build sides are folded into the fingerprint as a `path@version`
//!   salt over the dimension tables' files, so a dimension rewrite changes
//!   the fingerprint (and the stale entries are dropped via the path
//!   index).
//!
//! The cache is byte-budgeted (estimated [`PartialAgg`] footprint) with LRU
//! eviction, and counts hits/misses/inserts/evictions/invalidations in a
//! [`MetricRegistry`].

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use edgecache_columnar::{Predicate, Value};
use edgecache_common::error::{Error, Result};
use edgecache_common::ByteSize;
use edgecache_metrics::MetricRegistry;
use parking_lot::Mutex;

use crate::catalog::{Catalog, DataFile};
use crate::plan::{AggFunc, QueryPlan};
use crate::worker::PartialAgg;

/// Simulated coordinator CPU cost of probing the cache for one split
/// (a hash lookup plus an LRU touch).
pub const PROBE_NANOS_PER_SPLIT: u64 = 250;

/// Result-cache configuration. Disabled by default: the paper-reproduction
/// benches measure the *page* cache, and a result cache in front would
/// short-circuit the very scans they characterize.
#[derive(Debug, Clone)]
pub struct ResultCacheConfig {
    pub enabled: bool,
    /// Byte budget over the estimated partial-aggregate footprints.
    pub capacity: ByteSize,
}

impl Default for ResultCacheConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            capacity: ByteSize::mib(64),
        }
    }
}

impl ResultCacheConfig {
    /// An enabled cache with the given byte budget.
    pub fn enabled(capacity: ByteSize) -> Self {
        Self {
            enabled: true,
            capacity,
        }
    }
}

/// A canonical query identity: equal fingerprints guarantee bit-identical
/// aggregate semantics (the converse does not hold — canonicalization is
/// sound, not complete).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fingerprint(Arc<str>);

impl Fingerprint {
    /// The full canonical text (exact; no collisions by construction).
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// A compact FNV-1a digest for display/annotation.
    pub fn hash64(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.0.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Renders a literal by exact bit pattern: floats by `to_bits`, so `NaN`
/// payloads and `0.0`/`-0.0` stay distinct (never equating plans whose
/// float semantics could diverge).
fn canon_value(v: &Value) -> String {
    match v {
        Value::Int64(x) => format!("i{x}"),
        Value::Float64(x) => format!("f{:x}", x.to_bits()),
        Value::Utf8(s) => format!("s{s:?}"),
        Value::Bool(b) => format!("b{b}"),
    }
}

/// Canonicalizes a predicate: associative `AND`/`OR` chains flatten into
/// sorted, deduplicated operand lists. Commuting conjunction/disjunction
/// operands never changes the matching row set *or its order* (rows keep
/// file order), so equal canonical forms accumulate floats identically.
fn canon_pred(p: &Predicate) -> String {
    match p {
        Predicate::Eq(c, v) => format!("eq({c},{})", canon_value(v)),
        Predicate::Lt(c, v) => format!("lt({c},{})", canon_value(v)),
        Predicate::Gt(c, v) => format!("gt({c},{})", canon_value(v)),
        Predicate::Between(c, lo, hi) => {
            format!("btw({c},{},{})", canon_value(lo), canon_value(hi))
        }
        Predicate::And(_, _) => {
            let mut ops = Vec::new();
            flatten_chain(p, true, &mut ops);
            ops.sort();
            ops.dedup();
            format!("and({})", ops.join(","))
        }
        Predicate::Or(_, _) => {
            let mut ops = Vec::new();
            flatten_chain(p, false, &mut ops);
            ops.sort();
            ops.dedup();
            format!("or({})", ops.join(","))
        }
    }
}

fn flatten_chain(p: &Predicate, conjunctive: bool, out: &mut Vec<String>) {
    match (p, conjunctive) {
        (Predicate::And(a, b), true) => {
            flatten_chain(a, true, out);
            flatten_chain(b, true, out);
        }
        (Predicate::Or(a, b), false) => {
            flatten_chain(a, false, out);
            flatten_chain(b, false, out);
        }
        _ => out.push(canon_pred(p)),
    }
}

/// `COUNT` ignores its column (it counts rows), so every `COUNT` spelling
/// canonicalizes the same.
fn agg_token(func: AggFunc, column: &str) -> String {
    match func {
        AggFunc::Count => "cnt".to_string(),
        AggFunc::Sum => format!("sum({column})"),
        AggFunc::Min => format!("min({column})"),
        AggFunc::Max => format!("max({column})"),
        AggFunc::Avg => format!("avg({column})"),
    }
}

/// The canonical form of a cacheable query plan, plus the permutations
/// between plan-order and canonical-order aggregate states.
#[derive(Debug, Clone)]
pub struct CanonicalQuery {
    /// Canonical rendering of table/predicate/joins/aggregates/group-by.
    text: String,
    /// Join dimension tables, plan order (join application order matters
    /// when dimensions expose clashing column names, so it is *not*
    /// normalized away).
    dims: Vec<(String, String)>,
    /// `canonical position i` holds the plan aggregate `canon_from_plan[i]`.
    canon_from_plan: Vec<usize>,
    /// `plan position j` holds the canonical aggregate `plan_from_canon[j]`.
    plan_from_canon: Vec<usize>,
}

impl CanonicalQuery {
    /// Canonicalizes `plan`, or `None` when the query is not cacheable
    /// (only aggregations are: projection queries return raw rows whose
    /// footprint defeats the purpose).
    pub fn of(plan: &QueryPlan) -> Option<Self> {
        if plan.aggregates.is_empty() {
            return None;
        }
        let mut order: Vec<usize> = (0..plan.aggregates.len()).collect();
        let tokens: Vec<String> = plan
            .aggregates
            .iter()
            .map(|a| agg_token(a.func, &a.column))
            .collect();
        order.sort_by(|&a, &b| tokens[a].cmp(&tokens[b]));
        let canon_from_plan = order;
        let mut plan_from_canon = vec![0usize; canon_from_plan.len()];
        for (canon, &plan_idx) in canon_from_plan.iter().enumerate() {
            plan_from_canon[plan_idx] = canon;
        }

        let mut text = format!("t={}.{};", plan.schema, plan.table);
        text.push_str("p=");
        match &plan.predicate {
            Some(p) => text.push_str(&canon_pred(p)),
            None => text.push('-'),
        }
        text.push_str(";j=[");
        let mut dims = Vec::with_capacity(plan.joins.len());
        for (i, j) in plan.joins.iter().enumerate() {
            if i > 0 {
                text.push(';');
            }
            let filter = match &j.dim_filter {
                Some(f) => canon_pred(f),
                None => "-".to_string(),
            };
            text.push_str(&format!(
                "{}.{}:{}->{}:cols=[{}]:f={}",
                j.dim_schema,
                j.dim_table,
                j.fact_key,
                j.dim_key,
                j.dim_columns.join(","),
                filter
            ));
            dims.push((j.dim_schema.clone(), j.dim_table.clone()));
        }
        text.push_str("];a=[");
        for (i, &plan_idx) in canon_from_plan.iter().enumerate() {
            if i > 0 {
                text.push(',');
            }
            text.push_str(&tokens[plan_idx]);
        }
        text.push_str("];g=");
        match &plan.group_by {
            Some(g) => text.push_str(g),
            None => text.push('-'),
        }

        Some(Self {
            text,
            dims,
            canon_from_plan,
            plan_from_canon,
        })
    }

    /// Stamps the canonical text with the join build sides' current
    /// `path@version` sets, producing the probe/insert fingerprint: a
    /// dimension-file rewrite or version bump changes the fingerprint, so
    /// stale entries can never be probed.
    pub fn fingerprint(&self, catalog: &Catalog) -> Result<Fingerprint> {
        let mut text = self.text.clone();
        text.push_str(";d=[");
        for (i, (schema, table)) in self.dims.iter().enumerate() {
            if i > 0 {
                text.push(';');
            }
            let def = catalog.table(schema, table)?;
            let mut files: Vec<String> = def
                .files()
                .map(|(_, f)| format!("{}@{}", f.path, f.version))
                .collect();
            files.sort();
            text.push_str(&format!("{schema}.{table}=[{}]", files.join(",")));
        }
        text.push(']');
        Ok(Fingerprint(Arc::from(text.as_str())))
    }

    /// The paths of the join build sides' files (for the invalidation
    /// index), resolved against the catalog.
    pub fn dim_paths(&self, catalog: &Catalog) -> Result<Vec<String>> {
        let mut out = Vec::new();
        for (schema, table) in &self.dims {
            let def = catalog.table(schema, table)?;
            out.extend(def.files().map(|(_, f)| f.path.clone()));
        }
        Ok(out)
    }

    /// Reorders a plan-order partial into canonical aggregate order.
    pub fn to_canonical(&self, partial: &PartialAgg) -> PartialAgg {
        partial.permute(&self.canon_from_plan)
    }

    /// Reorders a canonical-order partial back into plan aggregate order.
    pub fn to_plan(&self, partial: &PartialAgg) -> PartialAgg {
        partial.permute(&self.plan_from_canon)
    }

    /// Whether plan order and canonical order coincide (permutes are
    /// no-ops then).
    pub fn identity_order(&self) -> bool {
        self.canon_from_plan
            .iter()
            .enumerate()
            .all(|(i, &p)| i == p)
    }
}

/// The split half of a cache key.
pub fn split_key(file: &DataFile) -> String {
    format!("{}@{}", file.path, file.version)
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct EntryKey {
    fingerprint: Fingerprint,
    split: String,
}

struct Entry {
    partial: Arc<PartialAgg>,
    bytes: u64,
    stamp: u64,
    /// Paths this entry depends on (the split's own file plus the join
    /// build sides' files): any of them going stale drops the entry.
    paths: Vec<String>,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<EntryKey, Entry>,
    /// Recency stamps → keys; the smallest stamp is the LRU victim.
    lru: BTreeMap<u64, EntryKey>,
    /// Path → keys depending on it (all fingerprints, all versions).
    by_path: HashMap<String, HashSet<EntryKey>>,
    bytes: u64,
    capacity: u64,
    next_stamp: u64,
}

/// Point-in-time counter values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheCounters {
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub evictions: u64,
    pub invalidations: u64,
}

impl ResultCacheCounters {
    /// Deltas since `earlier`.
    pub fn minus(&self, earlier: &Self) -> Self {
        Self {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            inserts: self.inserts - earlier.inserts,
            evictions: self.evictions - earlier.evictions,
            invalidations: self.invalidations - earlier.invalidations,
        }
    }
}

/// The byte-budgeted, LRU-evicted result cache.
pub struct ResultCache {
    inner: Mutex<Inner>,
    metrics: MetricRegistry,
}

impl ResultCache {
    /// Creates a cache with the given byte budget.
    pub fn new(capacity: ByteSize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                capacity: capacity.as_u64(),
                ..Default::default()
            }),
            metrics: MetricRegistry::new("resultcache"),
        }
    }

    /// Looks up one split's partial for a fingerprint, refreshing its
    /// recency on a hit.
    pub fn probe(&self, fp: &Fingerprint, split: &str) -> Option<Arc<PartialAgg>> {
        let key = EntryKey {
            fingerprint: fp.clone(),
            split: split.to_string(),
        };
        let mut inner = self.inner.lock();
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        match inner.entries.get_mut(&key) {
            Some(entry) => {
                let old = entry.stamp;
                entry.stamp = stamp;
                let partial = Arc::clone(&entry.partial);
                inner.lru.remove(&old);
                inner.lru.insert(stamp, key);
                self.metrics.counter("hits").inc();
                Some(partial)
            }
            None => {
                self.metrics.counter("misses").inc();
                None
            }
        }
    }

    /// Inserts one split's partial (canonical aggregate order), indexed
    /// under every path it depends on, then evicts LRU entries until the
    /// byte budget holds again.
    pub fn insert(&self, fp: &Fingerprint, split: &str, paths: Vec<String>, partial: PartialAgg) {
        let key = EntryKey {
            fingerprint: fp.clone(),
            split: split.to_string(),
        };
        let bytes = partial.approx_bytes();
        let mut inner = self.inner.lock();
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        if inner.entries.contains_key(&key) {
            Self::remove_key(&mut inner, &key);
        }
        for path in &paths {
            inner
                .by_path
                .entry(path.clone())
                .or_default()
                .insert(key.clone());
        }
        inner.bytes += bytes;
        inner.lru.insert(stamp, key.clone());
        inner.entries.insert(
            key,
            Entry {
                partial: Arc::new(partial),
                bytes,
                stamp,
                paths,
            },
        );
        self.metrics.counter("inserts").inc();
        let evicted = Self::evict_to_capacity(&mut inner);
        if evicted > 0 {
            self.metrics.counter("evictions").add(evicted);
        }
    }

    /// Drops every entry depending on `path` (any version, any
    /// fingerprint). Over-invalidation is always safe; rewrites call this
    /// through the catalog's stale-file listeners.
    pub fn invalidate_path(&self, path: &str) -> usize {
        let mut inner = self.inner.lock();
        let keys: Vec<EntryKey> = inner
            .by_path
            .get(path)
            .map(|set| set.iter().cloned().collect())
            .unwrap_or_default();
        for key in &keys {
            Self::remove_key(&mut inner, key);
        }
        if !keys.is_empty() {
            self.metrics.counter("invalidations").add(keys.len() as u64);
        }
        keys.len()
    }

    /// Drops everything (counted as invalidations).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        let n = inner.entries.len() as u64;
        *inner = Inner {
            capacity: inner.capacity,
            next_stamp: inner.next_stamp,
            ..Default::default()
        };
        if n > 0 {
            self.metrics.counter("invalidations").add(n);
        }
    }

    /// Adjusts the byte budget, evicting down if it shrank.
    pub fn set_capacity(&self, capacity: ByteSize) {
        let mut inner = self.inner.lock();
        inner.capacity = capacity.as_u64();
        let evicted = Self::evict_to_capacity(&mut inner);
        if evicted > 0 {
            self.metrics.counter("evictions").add(evicted);
        }
    }

    fn remove_key(inner: &mut Inner, key: &EntryKey) {
        if let Some(entry) = inner.entries.remove(key) {
            inner.bytes -= entry.bytes;
            inner.lru.remove(&entry.stamp);
            for path in &entry.paths {
                if let Some(set) = inner.by_path.get_mut(path) {
                    set.remove(key);
                    if set.is_empty() {
                        inner.by_path.remove(path);
                    }
                }
            }
        }
    }

    fn evict_to_capacity(inner: &mut Inner) -> u64 {
        let mut evicted = 0;
        while inner.bytes > inner.capacity {
            let Some((&stamp, _)) = inner.lru.iter().next() else {
                break;
            };
            let key = inner.lru.remove(&stamp).expect("stamp just seen");
            if let Some(entry) = inner.entries.remove(&key) {
                inner.bytes -= entry.bytes;
                for path in &entry.paths {
                    if let Some(set) = inner.by_path.get_mut(path) {
                        set.remove(&key);
                        if set.is_empty() {
                            inner.by_path.remove(path);
                        }
                    }
                }
            }
            evicted += 1;
        }
        evicted
    }

    /// Number of cached split partials.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().entries.is_empty()
    }

    /// Estimated resident bytes.
    pub fn bytes(&self) -> u64 {
        self.inner.lock().bytes
    }

    /// The metric registry (hits/misses/inserts/evictions/invalidations).
    pub fn metrics(&self) -> &MetricRegistry {
        &self.metrics
    }

    /// Point-in-time counter values.
    pub fn counters(&self) -> ResultCacheCounters {
        ResultCacheCounters {
            hits: self.metrics.counter("hits").get(),
            misses: self.metrics.counter("misses").get(),
            inserts: self.metrics.counter("inserts").get(),
            evictions: self.metrics.counter("evictions").get(),
            invalidations: self.metrics.counter("invalidations").get(),
        }
    }

    /// Validates internal bookkeeping (tests and the simtest oracle):
    /// entries ≡ LRU stamps, byte ledger exact, path index bidirectional.
    pub fn check_consistency(&self) -> Result<()> {
        let inner = self.inner.lock();
        if inner.entries.len() != inner.lru.len() {
            return Err(Error::Other(format!(
                "resultcache: {} entries vs {} lru stamps",
                inner.entries.len(),
                inner.lru.len()
            )));
        }
        let booked: u64 = inner.entries.values().map(|e| e.bytes).sum();
        if booked != inner.bytes {
            return Err(Error::Other(format!(
                "resultcache: ledger {} != summed {}",
                inner.bytes, booked
            )));
        }
        if inner.bytes > inner.capacity && inner.entries.len() > 1 {
            return Err(Error::Other(format!(
                "resultcache: {} bytes over budget {}",
                inner.bytes, inner.capacity
            )));
        }
        for (stamp, key) in &inner.lru {
            match inner.entries.get(key) {
                Some(e) if e.stamp == *stamp => {}
                _ => return Err(Error::Other("resultcache: lru points at ghost".into())),
            }
        }
        for (path, keys) in &inner.by_path {
            for key in keys {
                match inner.entries.get(key) {
                    Some(e) if e.paths.iter().any(|p| p == path) => {}
                    _ => {
                        return Err(Error::Other(format!(
                            "resultcache: path index `{path}` points at ghost"
                        )))
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::AggExpr;

    fn plan() -> QueryPlan {
        QueryPlan::scan("s", "t", &[])
            .filter(
                Predicate::Eq("a".into(), Value::Int64(1))
                    .and(Predicate::Gt("b".into(), Value::Float64(2.5))),
            )
            .aggregate(vec![AggExpr::sum("x"), AggExpr::count()])
            .group("g")
    }

    #[test]
    fn commuted_predicates_and_aggregates_fingerprint_equal() {
        let catalog = Catalog::new();
        catalog.register(crate::catalog::TableDef {
            schema_name: "s".into(),
            table_name: "t".into(),
            columns: edgecache_columnar::Schema::default(),
            partitions: vec![],
        });
        let a = plan();
        let b = QueryPlan::scan("s", "t", &["x"])
            .filter(
                Predicate::Gt("b".into(), Value::Float64(2.5))
                    .and(Predicate::Eq("a".into(), Value::Int64(1))),
            )
            .aggregate(vec![AggExpr::count(), AggExpr::sum("x")])
            .group("g")
            .take(5);
        let ca = CanonicalQuery::of(&a).unwrap();
        let cb = CanonicalQuery::of(&b).unwrap();
        assert_eq!(
            ca.fingerprint(&catalog).unwrap(),
            cb.fingerprint(&catalog).unwrap()
        );
        // And the permutations map each plan's own order correctly.
        assert!(!ca.identity_order() || !cb.identity_order());
    }

    #[test]
    fn different_literals_fingerprint_distinct() {
        let a = CanonicalQuery::of(&plan()).unwrap();
        let mut other = plan();
        other.predicate = Some(
            Predicate::Eq("a".into(), Value::Int64(2))
                .and(Predicate::Gt("b".into(), Value::Float64(2.5))),
        );
        let b = CanonicalQuery::of(&other).unwrap();
        assert_ne!(a.text, b.text);
    }

    #[test]
    fn projection_partitions_and_limit_are_normalized_away() {
        let a = CanonicalQuery::of(&plan()).unwrap();
        let b = CanonicalQuery::of(&plan().in_partitions(&["2024-01-01"]).take(3)).unwrap();
        assert_eq!(a.text, b.text);
    }

    #[test]
    fn non_aggregate_plans_are_not_cacheable() {
        assert!(CanonicalQuery::of(&QueryPlan::scan("s", "t", &["a"])).is_none());
    }

    #[test]
    fn nested_chains_flatten() {
        let p1 = Predicate::Eq("a".into(), Value::Int64(1))
            .and(Predicate::Eq("b".into(), Value::Int64(2)))
            .and(Predicate::Eq("c".into(), Value::Int64(3)));
        let p2 = Predicate::Eq("c".into(), Value::Int64(3)).and(
            Predicate::Eq("b".into(), Value::Int64(2))
                .and(Predicate::Eq("a".into(), Value::Int64(1))),
        );
        assert_eq!(canon_pred(&p1), canon_pred(&p2));
        // Mixed trees do not flatten across the operator boundary.
        let or1 = Predicate::Eq("a".into(), Value::Int64(1))
            .or(Predicate::Eq("b".into(), Value::Int64(2)));
        let and_of_or = or1.clone().and(Predicate::Eq("c".into(), Value::Int64(3)));
        assert!(canon_pred(&and_of_or).contains("or("));
    }

    #[test]
    fn float_literals_are_bit_exact() {
        let eq = |v: f64| canon_pred(&Predicate::Eq("a".into(), Value::Float64(v)));
        assert_ne!(eq(0.0), eq(-0.0));
        assert_eq!(eq(1.5), eq(1.5));
    }

    fn partial(n: usize) -> PartialAgg {
        // A count-only partial whose footprint is stable.
        PartialAgg::new(&vec![AggExpr::count(); n])
    }

    fn fp(tag: &str) -> Fingerprint {
        Fingerprint(Arc::from(tag))
    }

    #[test]
    fn probe_hit_miss_and_lru_eviction() {
        let cache = ResultCache::new(ByteSize::new(3 * partial(1).approx_bytes()));
        assert!(cache.probe(&fp("q"), "/f1@1").is_none());
        cache.insert(&fp("q"), "/f1@1", vec!["/f1".into()], partial(1));
        cache.insert(&fp("q"), "/f2@1", vec!["/f2".into()], partial(1));
        cache.insert(&fp("q"), "/f3@1", vec!["/f3".into()], partial(1));
        assert_eq!(cache.len(), 3);
        // Touch f1 so f2 becomes LRU, then overflow.
        assert!(cache.probe(&fp("q"), "/f1@1").is_some());
        cache.insert(&fp("q"), "/f4@1", vec!["/f4".into()], partial(1));
        assert_eq!(cache.len(), 3);
        assert!(cache.probe(&fp("q"), "/f2@1").is_none(), "f2 was LRU");
        assert!(cache.probe(&fp("q"), "/f1@1").is_some());
        let c = cache.counters();
        assert_eq!(c.inserts, 4);
        assert_eq!(c.evictions, 1);
        cache.check_consistency().unwrap();
    }

    #[test]
    fn invalidate_path_drops_all_dependents() {
        let cache = ResultCache::new(ByteSize::mib(1));
        cache.insert(&fp("q1"), "/f1@1", vec!["/f1".into()], partial(1));
        cache.insert(&fp("q2"), "/f1@1", vec!["/f1".into()], partial(1));
        cache.insert(&fp("q1"), "/f1@2", vec!["/f1".into()], partial(1));
        cache.insert(
            &fp("q3"),
            "/f2@1",
            vec!["/f2".into(), "/dim".into()],
            partial(1),
        );
        assert_eq!(cache.invalidate_path("/f1"), 3);
        assert_eq!(cache.len(), 1);
        // Dimension dependency drops the entry too.
        assert_eq!(cache.invalidate_path("/dim"), 1);
        assert!(cache.is_empty());
        assert_eq!(cache.counters().invalidations, 4);
        cache.check_consistency().unwrap();
    }

    #[test]
    fn shrinking_capacity_evicts_down() {
        let cache = ResultCache::new(ByteSize::mib(1));
        for i in 0..8 {
            cache.insert(
                &fp("q"),
                &format!("/f{i}@1"),
                vec![format!("/f{i}")],
                partial(2),
            );
        }
        let one = partial(2).approx_bytes();
        cache.set_capacity(ByteSize::new(2 * one));
        assert_eq!(cache.len(), 2);
        assert!(cache.bytes() <= 2 * one);
        cache.check_consistency().unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn reinserting_a_key_replaces_it() {
        let cache = ResultCache::new(ByteSize::mib(1));
        cache.insert(&fp("q"), "/f@1", vec!["/f".into()], partial(1));
        cache.insert(&fp("q"), "/f@1", vec!["/f".into()], partial(3));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), partial(3).approx_bytes());
        assert_eq!(cache.probe(&fp("q"), "/f@1").unwrap().n_aggs(), 3);
        cache.check_consistency().unwrap();
    }
}
