//! Page-oriented storage for the edgecache local cache.
//!
//! The paper's cache "transforms file-level read operations into more
//! granular page-level operations through the *page store*" (§4.1). This
//! crate implements that page store:
//!
//! * [`page`] — page identity ([`FileId`], [`PageId`]) and metadata
//!   ([`PageInfo`]), plus the hierarchical [`CacheScope`] used for quota and
//!   bulk operations (§4.4).
//! * [`store`] — the [`PageStore`] trait: put/get/delete of pages with
//!   partial (ranged) reads.
//! * [`local`] — [`LocalPageStore`], the SSD-backed implementation with the
//!   paper's on-disk layout (§4.3): a top-level `page_size=` directory that
//!   makes recovery self-describing, hash-bucket fan-out, one directory per
//!   file ID, self-contained page names, atomic tmp+rename writes, and a
//!   checksum trailer for corruption detection (§8).
//! * [`memory`] — [`MemoryPageStore`], an in-memory implementation for tests
//!   and metadata-style payloads.
//! * [`memtier`] — [`MemTierStore`], the DRAM cache tier: checksummed,
//!   pinnable frames the `CacheManager` mounts above its SSD directories
//!   (pages are demoted to SSD under pressure, not dropped).
//! * [`faulty`] — [`FaultyStore`], a fault-injection wrapper reproducing the
//!   failure modes of §8 (corruption, `No space left on device`, read hangs).
//! * [`crash`] — [`CrashPlan`], armable crash points that make a
//!   [`LocalPageStore`] operation leave a realistic half-effect on disk
//!   (orphaned tmp file, torn tail) and fail as if the process died, so
//!   recovery (§4.3) can be tortured deterministically.

pub mod crash;
pub mod faulty;
pub mod local;
pub mod memory;
pub mod memtier;
pub mod page;
pub mod store;

pub use crash::{is_simulated_crash, CrashPlan, CrashSite};
pub use faulty::{FaultPlan, FaultyStore};
pub use local::{LocalPageStore, LocalStoreConfig};
pub use memory::MemoryPageStore;
pub use memtier::MemTierStore;
pub use page::{CacheScope, FileId, PageId, PageInfo};
pub use store::PageStore;
