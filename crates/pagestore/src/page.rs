//! Page identity, metadata, and the hierarchical cache scope.

use std::fmt;

use edgecache_common::hash::{combine, hash_str};

/// A stable identifier for a source file, derived from its path and version.
///
/// The paper identifies cached files by path plus "file version information"
/// (§4.3); an updated file (new modification timestamp or HDFS generation
/// stamp) gets a *different* `FileId`, which is how stale cache entries are
/// invalidated (§6.1.1) and how HDFS `append` gets snapshot isolation
/// (§6.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

impl FileId {
    /// Derives a file ID from a path and a version token (modification time,
    /// generation stamp, etag, ...).
    pub fn from_path_version(path: &str, version: u64) -> Self {
        Self(combine(hash_str(path), version))
    }

    /// Hex form used as the on-disk directory name.
    pub fn as_hex(&self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the hex form back.
    pub fn from_hex(s: &str) -> Option<Self> {
        (s.len() == 16)
            .then(|| u64::from_str_radix(s, 16).ok())
            .flatten()
            .map(Self)
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.as_hex())
    }
}

/// Identifies one page: a file plus a page index within that file.
///
/// Page `i` of a file covers bytes `[i * page_size, (i + 1) * page_size)` of
/// the source file (the last page may be short).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    pub file: FileId,
    pub index: u64,
}

impl PageId {
    /// Creates a page ID.
    pub fn new(file: FileId, index: u64) -> Self {
        Self { file, index }
    }

    /// A stable 64-bit hash of this page ID (used for placement and lock
    /// sharding).
    pub fn stable_hash(&self) -> u64 {
        combine(self.file.0, self.index)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.file, self.index)
    }
}

/// A node in the paper's nested scope tree (§4.4): global → schema → table →
/// partition. Pages are tagged with their most specific scope; quota checks
/// and bulk deletes walk up the chain.
///
/// [`CacheScope::Custom`] is the §5.2 "custom tenant": a bespoke logical
/// grouping (per project, per application, per team) that sits directly
/// under the global scope.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CacheScope {
    /// The entire cache.
    Global,
    /// One schema (database).
    Schema { schema: String },
    /// One table.
    Table { schema: String, table: String },
    /// One partition of a table.
    Partition {
        schema: String,
        table: String,
        partition: String,
    },
    /// A custom tenant (project, application, team, ...).
    Custom { group: String },
}

impl CacheScope {
    /// Parses a dotted scope path: `""` → global, `"s"`, `"s.t"`, `"s.t.p"`.
    pub fn parse(path: &str) -> Self {
        let mut parts = path.splitn(3, '.');
        match (
            parts.next().filter(|s| !s.is_empty()),
            parts.next(),
            parts.next(),
        ) {
            (None, _, _) => CacheScope::Global,
            (Some(s), None, _) => CacheScope::Schema {
                schema: s.to_string(),
            },
            (Some(s), Some(t), None) => CacheScope::Table {
                schema: s.to_string(),
                table: t.to_string(),
            },
            (Some(s), Some(t), Some(p)) => CacheScope::Partition {
                schema: s.to_string(),
                table: t.to_string(),
                partition: p.to_string(),
            },
        }
    }

    /// Builds a partition scope.
    pub fn partition(schema: &str, table: &str, partition: &str) -> Self {
        CacheScope::Partition {
            schema: schema.to_string(),
            table: table.to_string(),
            partition: partition.to_string(),
        }
    }

    /// Builds a table scope.
    pub fn table(schema: &str, table: &str) -> Self {
        CacheScope::Table {
            schema: schema.to_string(),
            table: table.to_string(),
        }
    }

    /// Builds a custom-tenant scope (§5.2).
    pub fn custom(group: &str) -> Self {
        CacheScope::Custom {
            group: group.to_string(),
        }
    }

    /// The parent scope, or `None` for [`CacheScope::Global`].
    pub fn parent(&self) -> Option<CacheScope> {
        match self {
            CacheScope::Global => None,
            CacheScope::Schema { .. } | CacheScope::Custom { .. } => Some(CacheScope::Global),
            CacheScope::Table { schema, .. } => Some(CacheScope::Schema {
                schema: schema.clone(),
            }),
            CacheScope::Partition { schema, table, .. } => Some(CacheScope::Table {
                schema: schema.clone(),
                table: table.clone(),
            }),
        }
    }

    /// This scope followed by all its ancestors up to (and including) global.
    pub fn chain(&self) -> Vec<CacheScope> {
        let mut out = vec![self.clone()];
        let mut cur = self.clone();
        while let Some(p) = cur.parent() {
            out.push(p.clone());
            cur = p;
        }
        out
    }

    /// Whether `self` contains `other` (every scope contains itself; global
    /// contains everything).
    pub fn contains(&self, other: &CacheScope) -> bool {
        other.chain().contains(self)
    }
}

impl fmt::Display for CacheScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheScope::Global => f.write_str("<global>"),
            CacheScope::Schema { schema } => f.write_str(schema),
            CacheScope::Table { schema, table } => write!(f, "{schema}.{table}"),
            CacheScope::Partition {
                schema,
                table,
                partition,
            } => {
                write!(f, "{schema}.{table}.{partition}")
            }
            CacheScope::Custom { group } => write!(f, "custom:{group}"),
        }
    }
}

/// Metadata for one cached page, kept in memory by the index manager (§4.2:
/// "maintaining the metadata still in memory to ensure fast access").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageInfo {
    pub id: PageId,
    /// Payload size in bytes (the last page of a file may be short).
    pub size: u64,
    /// The most specific scope this page belongs to.
    pub scope: CacheScope,
    /// Index of the cache directory holding the page.
    pub dir: usize,
    /// Insertion time (clock milliseconds), used for TTL eviction (§4.1's
    /// time-based eviction for data-privacy requirements).
    pub created_ms: u64,
}

impl PageInfo {
    /// Creates page metadata.
    pub fn new(id: PageId, size: u64, scope: CacheScope, dir: usize, created_ms: u64) -> Self {
        Self {
            id,
            size,
            scope,
            dir,
            created_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_id_changes_with_version() {
        let a = FileId::from_path_version("/warehouse/t/part-0.colf", 1);
        let b = FileId::from_path_version("/warehouse/t/part-0.colf", 2);
        assert_ne!(a, b);
        assert_eq!(a, FileId::from_path_version("/warehouse/t/part-0.colf", 1));
    }

    #[test]
    fn file_id_hex_round_trip() {
        let id = FileId::from_path_version("/x", 7);
        assert_eq!(FileId::from_hex(&id.as_hex()), Some(id));
        assert_eq!(FileId::from_hex("nothex"), None);
        assert_eq!(FileId::from_hex("zz00000000000000"), None);
    }

    #[test]
    fn scope_parse_levels() {
        assert_eq!(CacheScope::parse(""), CacheScope::Global);
        assert_eq!(
            CacheScope::parse("sales"),
            CacheScope::Schema {
                schema: "sales".into()
            }
        );
        assert_eq!(
            CacheScope::parse("sales.orders"),
            CacheScope::table("sales", "orders")
        );
        assert_eq!(
            CacheScope::parse("sales.orders.2024-01-01"),
            CacheScope::partition("sales", "orders", "2024-01-01")
        );
    }

    #[test]
    fn scope_chain_walks_to_global() {
        let p = CacheScope::partition("s", "t", "p");
        let chain = p.chain();
        assert_eq!(chain.len(), 4);
        assert_eq!(chain[0], p);
        assert_eq!(chain[3], CacheScope::Global);
    }

    #[test]
    fn scope_containment() {
        let part = CacheScope::partition("s", "t", "p");
        let table = CacheScope::table("s", "t");
        assert!(CacheScope::Global.contains(&part));
        assert!(table.contains(&part));
        assert!(part.contains(&part));
        assert!(!part.contains(&table));
        assert!(!CacheScope::table("s", "other").contains(&part));
    }

    #[test]
    fn custom_tenant_scope_sits_under_global() {
        let c = CacheScope::custom("ml-training");
        assert_eq!(c.parent(), Some(CacheScope::Global));
        assert_eq!(c.chain(), vec![c.clone(), CacheScope::Global]);
        assert!(CacheScope::Global.contains(&c));
        assert!(!c.contains(&CacheScope::partition("s", "t", "p")));
        assert_eq!(c.to_string(), "custom:ml-training");
    }

    #[test]
    fn page_id_display_and_hash() {
        let id = PageId::new(FileId(0xabcd), 17);
        assert_eq!(id.to_string(), "000000000000abcd/17");
        assert_ne!(
            PageId::new(FileId(1), 2).stable_hash(),
            PageId::new(FileId(2), 1).stable_hash()
        );
    }
}
