//! Fault injection for page stores.
//!
//! §8 of the paper catalogues the failure modes seen in production:
//! read hangs (up to 10 minutes), corrupted page files, and the device
//! filling up before the configured cache capacity is reached.
//! [`FaultyStore`] wraps any [`PageStore`] and injects exactly those
//! failures so the cache manager's mitigations (remote fallback on timeout,
//! early eviction on corruption / `NoSpace`) can be tested deterministically.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use edgecache_common::clock::SharedClock;
use edgecache_common::error::{Error, Result};
use parking_lot::Mutex;

use crate::page::PageId;
use crate::store::PageStore;

/// Mutable fault configuration shared with the wrapped store.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Pages whose reads return [`Error::Corrupted`].
    corrupt: Mutex<HashSet<PageId>>,
    /// Simulated device capacity in bytes; `put`s that would exceed it fail
    /// with [`Error::NoSpace`] — *before* the cache thinks it is full,
    /// mirroring §8's "Insufficient disk capacity".
    device_capacity: AtomicU64,
    /// Artificial delay added to every `get` (models the §8 read hangs).
    get_delay_nanos: AtomicU64,
    /// If nonzero, every Nth `get` hangs for `get_delay`; 1 = every get.
    hang_every: AtomicU64,
    gets: AtomicU64,
    /// Clock that pays for hangs. `None` sleeps on the wall clock (the
    /// historical behaviour, which real-timeout tests rely on); a
    /// [`SimClock`](edgecache_common::clock::SimClock) here makes hangs
    /// advance virtual time only, keeping simulation runs deterministic.
    clock: Mutex<Option<SharedClock>>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Arc<Self> {
        Arc::new(Self {
            device_capacity: AtomicU64::new(u64::MAX),
            ..Default::default()
        })
    }

    /// Marks a page as corrupt (reads will fail checksum).
    pub fn corrupt_page(&self, id: PageId) {
        self.corrupt.lock().insert(id);
    }

    /// Clears a page's corruption marker.
    pub fn heal_page(&self, id: PageId) {
        self.corrupt.lock().remove(&id);
    }

    /// Sets the simulated device capacity.
    pub fn set_device_capacity(&self, bytes: u64) {
        self.device_capacity.store(bytes, Ordering::SeqCst);
    }

    /// Makes every `period`-th `get` sleep for `delay` (0 disables).
    pub fn set_read_hang(&self, delay: Duration, period: u64) {
        self.get_delay_nanos
            .store(delay.as_nanos() as u64, Ordering::SeqCst);
        self.hang_every.store(period, Ordering::SeqCst);
    }

    /// Charges injected hangs to `clock` instead of the wall clock (see the
    /// `clock` field; simulation harnesses pass a `SimClock` here).
    pub fn set_clock(&self, clock: SharedClock) {
        *self.clock.lock() = Some(clock);
    }
}

/// A [`PageStore`] wrapper that injects failures per a shared [`FaultPlan`].
pub struct FaultyStore<S> {
    inner: S,
    plan: Arc<FaultPlan>,
}

impl<S: PageStore> FaultyStore<S> {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: S, plan: Arc<FaultPlan>) -> Self {
        Self { inner, plan }
    }

    /// Access to the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn maybe_hang(&self) {
        let period = self.plan.hang_every.load(Ordering::SeqCst);
        if period == 0 {
            return;
        }
        let n = self.plan.gets.fetch_add(1, Ordering::SeqCst) + 1;
        if n.is_multiple_of(period) {
            let delay = self.plan.get_delay_nanos.load(Ordering::SeqCst);
            if delay > 0 {
                let delay = Duration::from_nanos(delay);
                match self.plan.clock.lock().as_ref() {
                    Some(clock) => clock.sleep(delay),
                    None => std::thread::sleep(delay),
                }
            }
        }
    }
}

impl<S: PageStore> PageStore for FaultyStore<S> {
    fn put(&self, id: PageId, data: &[u8]) -> Result<()> {
        let cap = self.plan.device_capacity.load(Ordering::SeqCst);
        if self.inner.bytes_used() + data.len() as u64 > cap {
            return Err(Error::NoSpace);
        }
        self.inner.put(id, data)
    }

    fn get(&self, id: PageId, offset: u64, len: u64) -> Result<Bytes> {
        self.maybe_hang();
        if self.plan.corrupt.lock().contains(&id) {
            return Err(Error::Corrupted(format!("page {id}: injected corruption")));
        }
        self.inner.get(id, offset, len)
    }

    fn delete(&self, id: PageId) -> Result<bool> {
        self.plan.heal_page(id);
        self.inner.delete(id)
    }

    fn contains(&self, id: PageId) -> bool {
        self.inner.contains(id)
    }

    fn bytes_used(&self) -> u64 {
        self.inner.bytes_used()
    }

    fn recover(&self) -> Result<Vec<(PageId, u64)>> {
        self.inner.recover()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryPageStore;
    use crate::page::FileId;
    use std::time::Instant;

    fn pid(i: u64) -> PageId {
        PageId::new(FileId(1), i)
    }

    #[test]
    fn no_faults_passes_through() {
        let store = FaultyStore::new(MemoryPageStore::new(), FaultPlan::none());
        store.put(pid(0), b"data").unwrap();
        assert_eq!(store.get_full(pid(0)).unwrap().as_ref(), b"data");
    }

    #[test]
    fn injected_corruption_fails_reads_until_delete() {
        let plan = FaultPlan::none();
        let store = FaultyStore::new(MemoryPageStore::new(), Arc::clone(&plan));
        store.put(pid(0), b"data").unwrap();
        plan.corrupt_page(pid(0));
        assert!(matches!(store.get_full(pid(0)), Err(Error::Corrupted(_))));
        // Deleting (early eviction) heals the slot; a re-put then reads fine.
        store.delete(pid(0)).unwrap();
        store.put(pid(0), b"fresh").unwrap();
        assert_eq!(store.get_full(pid(0)).unwrap().as_ref(), b"fresh");
    }

    #[test]
    fn device_capacity_triggers_no_space() {
        let plan = FaultPlan::none();
        plan.set_device_capacity(10);
        let store = FaultyStore::new(MemoryPageStore::new(), Arc::clone(&plan));
        store.put(pid(0), &[0u8; 8]).unwrap();
        assert!(matches!(store.put(pid(1), &[0u8; 8]), Err(Error::NoSpace)));
        // After deleting (early eviction) the put succeeds.
        store.delete(pid(0)).unwrap();
        store.put(pid(1), &[0u8; 8]).unwrap();
    }

    #[test]
    fn read_hang_delays_gets() {
        let plan = FaultPlan::none();
        plan.set_read_hang(Duration::from_millis(30), 1);
        let store = FaultyStore::new(MemoryPageStore::new(), Arc::clone(&plan));
        store.put(pid(0), b"x").unwrap();
        let t = Instant::now();
        store.get_full(pid(0)).unwrap();
        assert!(t.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn hangs_on_a_sim_clock_cost_no_wall_time() {
        use edgecache_common::clock::{Clock, SimClock};
        let sim = SimClock::new();
        let plan = FaultPlan::none();
        plan.set_clock(Arc::new(sim.clone()));
        plan.set_read_hang(Duration::from_secs(600), 1); // §8's 10-minute hang
        let store = FaultyStore::new(MemoryPageStore::new(), Arc::clone(&plan));
        store.put(pid(0), b"x").unwrap();
        let t = Instant::now();
        store.get_full(pid(0)).unwrap();
        assert!(t.elapsed() < Duration::from_secs(5), "no real sleep");
        assert_eq!(sim.now_millis(), 600_000, "hang charged to virtual time");
    }

    #[test]
    fn hang_every_n_only_delays_some() {
        let plan = FaultPlan::none();
        plan.set_read_hang(Duration::from_millis(40), 3);
        let store = FaultyStore::new(MemoryPageStore::new(), Arc::clone(&plan));
        store.put(pid(0), b"x").unwrap();
        let t = Instant::now();
        store.get_full(pid(0)).unwrap(); // 1st: fast
        store.get_full(pid(0)).unwrap(); // 2nd: fast
        assert!(t.elapsed() < Duration::from_millis(40));
        let t = Instant::now();
        store.get_full(pid(0)).unwrap(); // 3rd: hangs
        assert!(t.elapsed() >= Duration::from_millis(40));
    }
}
